//! **Eureka** — a reproduction of *"Eureka: Efficient Tensor Cores for
//! One-sided Unstructured Sparsity in DNN Inference"* (MICRO 2023).
//!
//! This umbrella crate re-exports the workspace members:
//!
//! * [`fp16`] — bit-level binary16 arithmetic and the SUDS three-input
//!   carry-save adder;
//! * [`sparse`] — sparse matrix formats, tiling, generators;
//! * [`offline`] — the paper's contribution: matrix compaction, SUDS
//!   displacement with optimal work assignment, systolic scheduling, and
//!   the functional executor proving correctness;
//! * [`models`] — the benchmark networks, pruning profiles and GEMM
//!   lowering;
//! * [`sim`] — the cycle-level tensor-core simulator with all nine
//!   evaluated architectures;
//! * [`energy`] — ASIC area/power models (Table 2) and energy accounting;
//! * [`verify`] — differential verification: the dense-GEMM numeric
//!   oracle, the brute-force SUDS checker, metamorphic invariants, and
//!   the seeded shrinking fuzz driver behind `eureka verify`;
//! * [`obs`] — telemetry: tracing spans, the metrics registry, and the
//!   Chrome-trace / metrics-snapshot exporters behind the CLI's
//!   `--trace-out` / `--metrics-out` flags.
//!
//! The experiment harness lives in the `eureka-bench` crate
//! (`cargo run -p eureka-bench --bin fig11`, etc.).
//!
//! # Quickstart
//!
//! ```
//! use eureka::prelude::*;
//!
//! // An imbalanced sparse filter tile: 4 filters over 16 reduction steps.
//! let tile = TilePattern::from_rows(&[0b0101_0011_0011, 0b10, 0, 0b100], 16)?;
//! assert_eq!(tile.critical_path(), 6); // compaction alone: 6 cycles
//!
//! // Optimal SUDS halves the critical path by displacing work downward.
//! let plan = suds::optimize(&tile.row_lens());
//! assert_eq!(plan.k, 3);
//!
//! // And the displaced schedule still computes the exact same outputs.
//! let schedule = DisplacedTile::from_plan(&AlignedTile::from_tile(&tile), &plan)?;
//! schedule.validate()?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use eureka_core as offline;
pub use eureka_energy as energy;
pub use eureka_fp16 as fp16;
pub use eureka_models as models;
pub use eureka_obs as obs;
pub use eureka_sim as sim;
pub use eureka_sparse as sparse;
pub use eureka_verify as verify;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use eureka_core::exec;
    pub use eureka_core::schedule::{self, SystolicConfig};
    pub use eureka_core::suds::{self, DisplacementPlan};
    pub use eureka_core::{CompactedTile, CompiledLayer, DisplacedTile};
    pub use eureka_energy::{EnergyModel, MacVariant};
    pub use eureka_fp16::{MacUnit, F16};
    pub use eureka_models::{Benchmark, PruningLevel, Workload};
    pub use eureka_sim::{arch, engine, SimConfig, SimReport};
    pub use eureka_sparse::{
        gen, rng::DetRng, AlignedTile, Matrix, SparsityPattern, TileGrid, TilePattern,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_exposes_key_types() {
        use crate::prelude::*;
        let _ = F16::ONE;
        let _ = SimConfig::fast();
        let _ = SystolicConfig::paper_default();
        let _ = Benchmark::ResNet50;
    }
}
