#!/usr/bin/env bash
# Job-service smoke test over a real Unix socket: a clean
# serve/submit/drain round trip (with a mid-run metrics scrape and a
# stats read), then a SIGKILL mid-lifecycle — the restarted server must
# replay the journaled job and finish it, and the killed server must
# leave a well-formed flight-recorder dump behind — and finally a
# SIGTERM that drains the server gracefully and writes the SLA summary
# plus its run-ledger record.
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=${EUREKA_BIN:-target/release/eureka}
dir=$(mktemp -d)
server_pid=""
cleanup() {
    [ -n "$server_pid" ] && kill -9 "$server_pid" 2>/dev/null || true
    rm -rf "$dir"
}
trap cleanup EXIT

serve_args=(serve --socket "$dir/eureka.sock" --journal-dir "$dir/journal"
    --checkpoint-dir "$dir/ckpt" --fast
    --metrics-out "$dir/metrics.prom" --flightrec-dir "$dir/flightrec"
    --sla-budget-us 1000000 --ledger-dir "$dir/ledger")
submit_args=(submit --socket "$dir/eureka.sock" --benchmark mobilenetv1
    --arch eureka-p4 --batch 32)

start_server() {
    "$BIN" "${serve_args[@]}" >> "$dir/server.log" 2>&1 &
    server_pid=$!
    for _ in $(seq 1 100); do
        [ -S "$dir/eureka.sock" ] && return 0
        sleep 0.05
    done
    echo "server never opened its socket" >&2
    cat "$dir/server.log" >&2
    exit 1
}

# Waits for the per-connection flight-recorder dump to land on disk
# with at least one record of the given kind.
wait_for_flightrec() {
    for _ in $(seq 1 100); do
        if ls "$dir/flightrec"/flightrec-*.jsonl > /dev/null 2>&1 &&
            grep -q "\"kind\":\"$1\"" "$dir/flightrec"/flightrec-*.jsonl; then
            return 0
        fi
        sleep 0.05
    done
    echo "no flight-recorder dump with a $1 record appeared" >&2
    exit 1
}

# --- Round trip: submit --wait completes, drain --shutdown exits. -----
start_server
"$BIN" "${submit_args[@]}" --wait > "$dir/first.json"
grep -q '"status":"completed"' "$dir/first.json"

# Mid-run observability: the Prometheus exposition is rewritten after
# every connection and must validate; the stats verb must report the
# completed job's latency quantiles.
for _ in $(seq 1 100); do
    grep -q "eureka_service_e2e_us_completed_count 1" "$dir/metrics.prom" \
        2>/dev/null && break
    sleep 0.05
done
python3 scripts/check_metrics.py "$dir/metrics.prom" \
    --require eureka_service_served \
    --require eureka_service_completed \
    --require eureka_service_e2e_us_completed
"$BIN" stats --socket "$dir/eureka.sock" > "$dir/stats.txt"
grep -q "completed=1" "$dir/stats.txt"
grep -q "e2e_us" "$dir/stats.txt"
"$BIN" stats --socket "$dir/eureka.sock" --json | grep -q '"latency"'

"$BIN" drain --socket "$dir/eureka.sock" --shutdown > /dev/null
wait "$server_pid" 2>/dev/null || true
server_pid=""
[ ! -S "$dir/eureka.sock" ] || { echo "socket not removed on shutdown" >&2; exit 1; }

# --- SIGKILL: an accepted job survives in the journal and replays, ----
# and the last per-connection flight-recorder dump survives as the
# crashed server's black box.
rm -rf "$dir/flightrec"
start_server
"$BIN" "${submit_args[@]}" > /dev/null   # accepted; maybe still running
wait_for_flightrec job-admitted
kill -9 "$server_pid"
wait "$server_pid" 2>/dev/null || true
server_pid=""
# The write-ahead record is the durable truth. It must exist whether or
# not the job finished before the kill landed.
[ "$(ls "$dir/journal"/*.job 2>/dev/null | wc -l)" -ge 1 ] || {
    echo "no journal record survived the SIGKILL" >&2
    exit 1
}
# The dump must be schema-valid, densely sequenced, and its admitted
# jobs must correspond to write-ahead journal records.
python3 - "$dir" <<'EOF'
import glob, json, sys
dir = sys.argv[1]
dumps = glob.glob(f"{dir}/flightrec/flightrec-*.jsonl")
assert len(dumps) == 1, f"expected one dump, found {dumps}"
records = [json.loads(l) for l in open(dumps[0], encoding="utf-8") if l.strip()]
assert records, "empty flight-recorder dump"
seqs = [r["seq"] for r in records]
assert seqs == list(range(seqs[0], seqs[0] + len(seqs))), "seqs not consecutive"
stems = {p.rsplit("/", 1)[1].split(".")[0] for p in glob.glob(f"{dir}/journal/*.job")}
for r in records:
    assert r["schema"] == "eureka-flightrec-v1", f"bad schema stamp: {r}"
    for field in ("seq", "t_us", "kind", "job", "value"):
        assert field in r, f"missing {field}: {r}"
    if r["kind"] == "job-admitted":
        assert f"{r['value']:016x}" in stems, (
            f"admitted job key {r['value']:016x} has no journal record {stems}")
print(f"flight recorder OK ({len(records)} records)")
EOF
mkdir -p results
cp "$dir/flightrec"/flightrec-*.jsonl results/flightrec-smoke.jsonl

rm -f "$dir/eureka.sock"  # stale socket from the killed server
start_server
# The restart either replays the unfinished job or finds it already
# journaled terminal; a fresh submit of the same spec must complete
# either way, replaying checkpointed units instead of recomputing.
"$BIN" "${submit_args[@]}" --wait > "$dir/replayed.json"
grep -q '"status":"completed"' "$dir/replayed.json"

# --- SIGTERM: graceful drain, clean exit, SLA summary + ledger. -------
kill -TERM "$server_pid"
wait "$server_pid"
server_pid=""
grep -q "serve: drained" "$dir/server.log" || {
    echo "server did not report a graceful drain" >&2
    cat "$dir/server.log" >&2
    exit 1
}
grep -q "sla: budget=1000000us" "$dir/server.log" || {
    echo "server did not print the SLA summary" >&2
    cat "$dir/server.log" >&2
    exit 1
}
grep -lq '"kind":"serve"' "$dir/ledger"/*.json || {
    echo "no serve record appended to the run ledger" >&2
    exit 1
}
grep -q '"sla_budget_us":1000000' "$dir/ledger"/*.json || {
    echo "ledger record is missing the SLA fields" >&2
    exit 1
}

echo "serve smoke OK ($(ls "$dir/ckpt" 2>/dev/null | wc -l) checkpoint file(s))"
