#!/usr/bin/env bash
# Job-service smoke test over a real Unix socket: a clean
# serve/submit/drain round trip, then a SIGKILL mid-lifecycle — the
# restarted server must replay the journaled job and finish it, and a
# SIGTERM must drain the server gracefully.
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=${EUREKA_BIN:-target/release/eureka}
dir=$(mktemp -d)
server_pid=""
cleanup() {
    [ -n "$server_pid" ] && kill -9 "$server_pid" 2>/dev/null || true
    rm -rf "$dir"
}
trap cleanup EXIT

serve_args=(serve --socket "$dir/eureka.sock" --journal-dir "$dir/journal"
    --checkpoint-dir "$dir/ckpt" --fast)
submit_args=(submit --socket "$dir/eureka.sock" --benchmark mobilenetv1
    --arch eureka-p4 --batch 32)

start_server() {
    "$BIN" "${serve_args[@]}" >> "$dir/server.log" 2>&1 &
    server_pid=$!
    for _ in $(seq 1 100); do
        [ -S "$dir/eureka.sock" ] && return 0
        sleep 0.05
    done
    echo "server never opened its socket" >&2
    cat "$dir/server.log" >&2
    exit 1
}

# --- Round trip: submit --wait completes, drain --shutdown exits. -----
start_server
"$BIN" "${submit_args[@]}" --wait > "$dir/first.json"
grep -q '"status":"completed"' "$dir/first.json"
"$BIN" drain --socket "$dir/eureka.sock" --shutdown > /dev/null
wait "$server_pid" 2>/dev/null || true
server_pid=""
[ ! -S "$dir/eureka.sock" ] || { echo "socket not removed on shutdown" >&2; exit 1; }

# --- SIGKILL: an accepted job survives in the journal and replays. ----
start_server
"$BIN" "${submit_args[@]}" > /dev/null   # accepted; maybe still running
kill -9 "$server_pid"
wait "$server_pid" 2>/dev/null || true
server_pid=""
# The write-ahead record is the durable truth. It must exist whether or
# not the job finished before the kill landed.
[ "$(ls "$dir/journal"/*.job 2>/dev/null | wc -l)" -ge 1 ] || {
    echo "no journal record survived the SIGKILL" >&2
    exit 1
}

rm -f "$dir/eureka.sock"  # stale socket from the killed server
start_server
# The restart either replays the unfinished job or finds it already
# journaled terminal; a fresh submit of the same spec must complete
# either way, replaying checkpointed units instead of recomputing.
"$BIN" "${submit_args[@]}" --wait > "$dir/replayed.json"
grep -q '"status":"completed"' "$dir/replayed.json"

# --- SIGTERM: graceful drain, clean exit, summary on stdout. ----------
kill -TERM "$server_pid"
wait "$server_pid"
server_pid=""
grep -q "serve: drained" "$dir/server.log" || {
    echo "server did not report a graceful drain" >&2
    cat "$dir/server.log" >&2
    exit 1
}

echo "serve smoke OK ($(ls "$dir/ckpt" 2>/dev/null | wc -l) checkpoint file(s))"
