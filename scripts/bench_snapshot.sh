#!/usr/bin/env bash
# Emit a versioned benchmark snapshot: results/BENCH_<n>.json with the
# next free <n>. The snapshot records cycles, MAC utilization and
# speedup-vs-dense for the standard arch matrix on one benchmark, so
# successive snapshots (committed over time) track simulator drift.
#
# Usage: scripts/bench_snapshot.sh [--benchmark B] [--arch A] [extra
# `eureka profile` flags...]. Defaults: mobilenetv1 / eureka-p4 / fast
# sampling.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHMARK=mobilenetv1
ARCH=eureka-p4
EXTRA=()
while [[ $# -gt 0 ]]; do
    case "$1" in
        --benchmark) BENCHMARK="$2"; shift 2 ;;
        --arch)      ARCH="$2";      shift 2 ;;
        *)           EXTRA+=("$1");  shift ;;
    esac
done

cargo build --release -q -p eureka-cli

mkdir -p results
n=1
while [[ -e "results/BENCH_${n}.json" ]]; do
    n=$((n + 1))
done
out="results/BENCH_${n}.json"

target/release/eureka profile --benchmark "$BENCHMARK" --arch "$ARCH" \
    --fast --bench-json "$out" "${EXTRA[@]+"${EXTRA[@]}"}"
echo "wrote $out"
