#!/usr/bin/env bash
# Emit a versioned benchmark snapshot: results/BENCH_<n>.json with the
# next free <n>. The snapshot records cycles, MAC utilization and
# speedup-vs-dense for the standard arch matrix on one benchmark, so
# successive snapshots (committed over time) track simulator drift.
#
# The profile runs twice against one tile-store directory — cold, then
# warm — and the snapshot gains three top-level wall-clock fields:
# `cold_wall_ms`, `warm_wall_ms` and `warm_speedup` (cold/warm), so the
# committed history also tracks what the persistent store buys. The two
# runs' simulation results must be byte-identical; the script fails if
# the warm snapshot drifts from the cold one.
#
# The snapshot also records the paired kernel micro-benchmarks from
# `crates/bench/benches/kernels.rs` under a top-level `kernels` object:
# each pair (a scalar reference vs its word-parallel / batched
# replacement) contributes both mean times and the in-pair speedup, so
# committed snapshots track kernel-level deltas alongside the
# end-to-end wall clock.
#
# Each snapshot is also stamped with its provenance: `git` (the commit
# the snapshot was taken at), `config_digest` (FNV-1a 64 over the
# benchmark/arch/sampling configuration — two snapshots are comparable
# iff their digests match), and `events` (the number of run-events the
# cold profile emitted, a structural fingerprint of the run shape). The
# cold run's event stream is schema-validated before the snapshot is
# accepted.
#
# Usage: scripts/bench_snapshot.sh [--benchmark B] [--arch A] [extra
# `eureka profile` flags...]. Defaults: mobilenetv1 / eureka-p4 / fast
# sampling.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHMARK=mobilenetv1
ARCH=eureka-p4
EXTRA=()
while [[ $# -gt 0 ]]; do
    case "$1" in
        --benchmark) BENCHMARK="$2"; shift 2 ;;
        --arch)      ARCH="$2";      shift 2 ;;
        *)           EXTRA+=("$1");  shift ;;
    esac
done

cargo build --release -q -p eureka-cli

mkdir -p results
n=1
while [[ -e "results/BENCH_${n}.json" ]]; do
    n=$((n + 1))
done
out="results/BENCH_${n}.json"

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

run=(target/release/eureka profile --benchmark "$BENCHMARK" --arch "$ARCH"
     --fast --store-dir "$tmp/store" "${EXTRA[@]+"${EXTRA[@]}"}")

cold_start=$(date +%s%N)
"${run[@]}" --bench-json "$out" --events-out "$tmp/events.jsonl" --no-progress
cold_ns=$(($(date +%s%N) - cold_start))

warm_start=$(date +%s%N)
"${run[@]}" --bench-json "$tmp/warm.json"
warm_ns=$(($(date +%s%N) - warm_start))

# The store must never change results: cold and warm snapshots are
# byte-identical or the snapshot is not trustworthy.
cmp "$out" "$tmp/warm.json"

# A malformed event stream means the run itself is suspect.
python3 scripts/check_events.py "$tmp/events.jsonl"

# Kernel pair micro-benchmarks (scalar reference vs optimized kernel).
cargo bench -q -p eureka-bench --bench kernels -- \
    mask_intersection mac_dot256 > "$tmp/kernels.txt"

git_rev=$(git describe --always --dirty 2>/dev/null || echo unknown)
event_count=$(wc -l < "$tmp/events.jsonl")

python3 - "$out" "$cold_ns" "$warm_ns" "$git_rev" "$event_count" \
    "$BENCHMARK" "$ARCH" "$tmp/kernels.txt" <<'EOF'
import json, re, sys
path, cold_ns, warm_ns = sys.argv[1], int(sys.argv[2]), int(sys.argv[3])
git_rev, event_count = sys.argv[4], int(sys.argv[5])
benchmark, arch = sys.argv[6], sys.argv[7]
kernels_txt = sys.argv[8]

UNIT_US = {"ns": 1e-3, "us": 1.0, "ms": 1e3, "s": 1e6}
means = {}
with open(kernels_txt) as f:
    for line in f:
        m = re.match(
            r"(\S+)\s+time: \[\S+ \S+ (\S+) (ns|us|ms|s) ", line)
        if m:
            means[m.group(1)] = float(m.group(2)) * UNIT_US[m.group(3)]

def pair(group, baseline, candidate):
    base = means.get(f"{group}/{baseline}")
    cand = means.get(f"{group}/{candidate}")
    if base is None or cand is None:
        return None
    return {
        f"{baseline}_us": round(base, 3),
        f"{candidate}_us": round(cand, 3),
        "speedup": round(base / cand, 2) if cand else None,
    }

kernels = {
    name: entry
    for name, entry in [
        ("mask_intersection",
         pair("mask_intersection", "scalar_256_rows",
              "word_parallel_256_rows")),
        ("mac_dot256", pair("mac_dot256", "elementwise", "batched")),
    ]
    if entry is not None
}

with open(path) as f:
    snap = json.load(f)
snap["cold_wall_ms"] = round(cold_ns / 1e6, 3)
snap["warm_wall_ms"] = round(warm_ns / 1e6, 3)
snap["warm_speedup"] = round(cold_ns / warm_ns, 3) if warm_ns else None
snap["kernels"] = kernels
snap["git"] = git_rev
snap["events"] = event_count
# FNV-1a 64 over the run configuration, mirroring the ledger's key
# scheme: snapshots are comparable iff their config digests match.
config = f"{benchmark}|{arch}|fast"
h = 0xcbf29ce484222325
for b in config.encode():
    h = ((h ^ b) * 0x100000001b3) & 0xFFFFFFFFFFFFFFFF
snap["config_digest"] = f"{h:016x}"
with open(path, "w") as f:
    json.dump(snap, f, separators=(",", ":"))
    f.write("\n")
EOF
echo "wrote $out (warm_speedup $(python3 -c "
import json; print(json.load(open('$out'))['warm_speedup'])"))"
