#!/usr/bin/env python3
"""Validate a Prometheus text exposition (as written by `eureka serve
--metrics-out` and returned by the `metrics` wire verb).

Usage:
  scripts/check_metrics.py FILE [--require NAME]...

Checks, using only the Python standard library:
  * every non-comment line is `name[{labels}] value` with a metric name
    matching [a-zA-Z_:][a-zA-Z0-9_:]* and a value that parses as a
    float (NaN / +Inf / -Inf spelled out, never JSON null);
  * every sample belongs to a family announced by a `# TYPE` line, and
    every announced family has at least one sample;
  * counter and gauge samples are bare (no labels);
  * each histogram family has `_bucket` samples with `le` labels whose
    cumulative counts are nondecreasing and end at `le="+Inf"`, plus
    `_sum` and `_count` samples, with the +Inf bucket equal to _count;
  * with --require NAME (repeatable), the named family must be present.

Exits non-zero with a pointed message on the first violation.
"""

import math
import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)$"
)
LABEL_RE = re.compile(r'^(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<val>[^"]*)"$')
TYPES = ("counter", "gauge", "histogram")


def parse_value(text, where):
    """Prometheus float syntax: decimals plus NaN/+Inf/-Inf."""
    try:
        return float(text)
    except ValueError:
        sys.exit(f"{where}: unparsable sample value {text!r}")


def parse_labels(text, where):
    labels = {}
    for part in text.split(","):
        m = LABEL_RE.match(part.strip())
        if not m:
            sys.exit(f"{where}: malformed label {part!r}")
        labels[m.group("key")] = m.group("val")
    return labels


def family_of(name, types):
    """Maps a sample name to its announced family, honouring the
    histogram _bucket/_sum/_count suffixes."""
    if name in types:
        return name
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            base = name[: -len(suffix)]
            if types.get(base) == "histogram":
                return base
    return None


def check(path, required):
    with open(path, encoding="utf-8") as f:
        lines = [line.rstrip("\n") for line in f]

    types = {}  # family -> type
    samples = {}  # family -> [(name, labels, value)]
    for i, line in enumerate(lines, 1):
        where = f"{path}:{i}"
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                sys.exit(f"{where}: malformed TYPE line {line!r}")
            _, _, name, kind = parts
            if not NAME_RE.match(name):
                sys.exit(f"{where}: bad metric name {name!r}")
            if kind not in TYPES:
                sys.exit(f"{where}: unknown metric type {kind!r}")
            if name in types:
                sys.exit(f"{where}: duplicate TYPE line for {name!r}")
            types[name] = kind
            samples[name] = []
            continue
        if line.startswith("#"):
            continue  # free-form comment
        m = SAMPLE_RE.match(line)
        if not m:
            sys.exit(f"{where}: malformed sample line {line!r}")
        name = m.group("name")
        family = family_of(name, types)
        if family is None:
            sys.exit(f"{where}: sample {name!r} has no preceding TYPE line")
        labels = parse_labels(m.group("labels"), where) if m.group("labels") else {}
        value = parse_value(m.group("value"), where)
        samples[family].append((name, labels, value))

    for family, kind in types.items():
        rows = samples[family]
        if not rows:
            sys.exit(f"{path}: family {family!r} announced but has no samples")
        if kind in ("counter", "gauge"):
            for name, labels, value in rows:
                if name != family or labels:
                    sys.exit(f"{path}: {kind} {family!r} has unexpected sample {name!r}")
                if math.isnan(value) or value < 0 and kind == "counter":
                    sys.exit(f"{path}: counter {family!r} has invalid value {value}")
        else:
            check_histogram(path, family, rows)

    for name in required:
        if name not in types:
            sys.exit(f"{path}: required metric family {name!r} is missing")
    total = sum(len(rows) for rows in samples.values())
    print(f"OK: {len(types)} famil{'y' if len(types) == 1 else 'ies'}, {total} samples")


def check_histogram(path, family, rows):
    buckets = []
    sums = counts = None
    for name, labels, value in rows:
        if name == f"{family}_bucket":
            if "le" not in labels:
                sys.exit(f"{path}: histogram {family!r} bucket without an le label")
            buckets.append((labels["le"], value))
        elif name == f"{family}_sum":
            sums = value
        elif name == f"{family}_count":
            counts = value
        else:
            sys.exit(f"{path}: histogram {family!r} has unexpected sample {name!r}")
    if not buckets:
        sys.exit(f"{path}: histogram {family!r} has no buckets")
    if sums is None or counts is None:
        sys.exit(f"{path}: histogram {family!r} is missing _sum or _count")
    if buckets[-1][0] != "+Inf":
        sys.exit(f"{path}: histogram {family!r} does not end at le=\"+Inf\"")
    previous_le = -math.inf
    previous = 0.0
    for le_text, value in buckets:
        le = math.inf if le_text == "+Inf" else parse_value(le_text, path)
        if le <= previous_le:
            sys.exit(f"{path}: histogram {family!r} bucket bounds not increasing")
        if value < previous:
            sys.exit(
                f"{path}: histogram {family!r} cumulative counts decrease "
                f'at le="{le_text}" ({value} < {previous})'
            )
        previous_le, previous = le, value
    if buckets[-1][1] != counts:
        sys.exit(
            f"{path}: histogram {family!r} +Inf bucket ({buckets[-1][1]}) "
            f"!= _count ({counts})"
        )


def main(argv):
    path = None
    required = []
    it = iter(argv)
    for a in it:
        if a == "--require":
            name = next(it, None)
            if name is None:
                sys.exit("--require needs a metric family name")
            required.append(name)
        elif a in ("-h", "--help"):
            print(__doc__.strip())
            return 0
        elif a.startswith("-"):
            sys.exit(f"unknown flag {a!r}")
        elif path is None:
            path = a
        else:
            sys.exit("exactly one FILE expected")
    if path is None:
        sys.exit("usage: check_metrics.py FILE [--require NAME]...")
    check(path, required)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
