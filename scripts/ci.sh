#!/usr/bin/env bash
# Full verification: format, lints, tests, docs, experiment smoke.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings
cargo test --workspace
cargo doc --workspace --no-deps
cargo bench --workspace -- --test   # criterion harness smoke (no timing)
cargo run --release -q -p eureka-cli -- verify --replay tests/corpus
cargo run --release -q -p eureka-cli -- verify --cases 200 --seed 42 | tail -n 1
cargo run --release -q -p eureka-cli -- verify --fault-matrix --seed 42 | tail -n 1
scripts/resume_smoke.sh
# Profile smoke: the cycle-attribution export must be byte-identical
# across runs (determinism is part of the profiler's contract).
cargo run --release -q -p eureka-cli -- profile --benchmark mobilenetv1 \
    --arch eureka-p4 --fast --json - > /tmp/eureka-profile-a.json
cargo run --release -q -p eureka-cli -- profile --benchmark mobilenetv1 \
    --arch eureka-p4 --fast --json - > /tmp/eureka-profile-b.json
cmp /tmp/eureka-profile-a.json /tmp/eureka-profile-b.json
echo "CI OK"
