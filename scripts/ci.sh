#!/usr/bin/env bash
# Full verification: format, lints, tests, docs, experiment smoke.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings
cargo test --workspace
cargo doc --workspace --no-deps
cargo bench --workspace -- --test   # criterion harness smoke (no timing)
echo "CI OK"
