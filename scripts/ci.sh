#!/usr/bin/env bash
# Full verification: format, lints, tests, docs, experiment smoke.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings
cargo test --workspace
cargo doc --workspace --no-deps
cargo bench --workspace -- --test   # criterion harness smoke (no timing)
cargo run --release -q -p eureka-cli -- verify --replay tests/corpus
cargo run --release -q -p eureka-cli -- verify --cases 200 --seed 42 | tail -n 1
cargo run --release -q -p eureka-cli -- verify --fault-matrix --seed 42 | tail -n 1
scripts/resume_smoke.sh
scripts/store_smoke.sh
# Store persistence: a second run against a warmed --store-dir performs
# zero tile simulations and emits byte-identical reports.
store_dir=$(mktemp -d)
trap 'rm -rf "$store_dir"' EXIT
cargo run --release -q -p eureka-cli -- simulate --benchmark mobilenetv1 \
    --arch eureka-p4 --csv --store-dir "$store_dir/tiles" \
    > /tmp/eureka-store-cold.csv
cargo run --release -q -p eureka-cli -- simulate --benchmark mobilenetv1 \
    --arch eureka-p4 --csv --store-dir "$store_dir/tiles" \
    --metrics-out /tmp/eureka-store-warm.json > /tmp/eureka-store-warm.csv
cmp /tmp/eureka-store-cold.csv /tmp/eureka-store-warm.csv
python3 - <<'EOF'
import json
c = json.load(open("/tmp/eureka-store-warm.json"))["counters"]
assert c["store.misses"] == 0, f"warm run re-simulated tiles: {c}"
assert c["store.hits"] == c["store.lookups"] > 0, c
assert c["cache.misses"] == 0, f"units escaped the store: {c}"
EOF
# Profile smoke: the cycle-attribution export must be byte-identical
# across runs (determinism is part of the profiler's contract).
cargo run --release -q -p eureka-cli -- profile --benchmark mobilenetv1 \
    --arch eureka-p4 --fast --json - > /tmp/eureka-profile-a.json
cargo run --release -q -p eureka-cli -- profile --benchmark mobilenetv1 \
    --arch eureka-p4 --fast --json - > /tmp/eureka-profile-b.json
cmp /tmp/eureka-profile-a.json /tmp/eureka-profile-b.json
echo "CI OK"
