#!/usr/bin/env bash
# Full verification: format, lints, tests, docs, experiment smoke.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings
cargo test --workspace
cargo doc --workspace --no-deps
cargo bench --workspace -- --test   # criterion harness smoke (no timing)
cargo run --release -q -p eureka-cli -- verify --replay tests/corpus
cargo run --release -q -p eureka-cli -- verify --cases 200 --seed 42 | tail -n 1
cargo run --release -q -p eureka-cli -- verify --fault-matrix --seed 42 | tail -n 1
cargo run --release -q -p eureka-cli -- verify --chaos --cases 50 --seed 42 | tail -n 1
scripts/resume_smoke.sh
scripts/store_smoke.sh
scripts/serve_smoke.sh
# bench diff exit-code contract: missing snapshot = 2 (broken wiring),
# regression = 1 (the gate fired) — CI must be able to tell them apart.
set +e
cargo run --release -q -p eureka-cli -- bench diff /nonexistent.json /nonexistent.json 2>/dev/null
[ $? -eq 2 ] || { echo "bench diff on a missing snapshot must exit 2" >&2; exit 1; }
set -e
# Store persistence: a second run against a warmed --store-dir performs
# zero tile simulations and emits byte-identical reports.
store_dir=$(mktemp -d)
obs_dir=$(mktemp -d)
trap 'rm -rf "$store_dir" "$obs_dir"' EXIT
cargo run --release -q -p eureka-cli -- simulate --benchmark mobilenetv1 \
    --arch eureka-p4 --csv --store-dir "$store_dir/tiles" \
    > /tmp/eureka-store-cold.csv
cargo run --release -q -p eureka-cli -- simulate --benchmark mobilenetv1 \
    --arch eureka-p4 --csv --store-dir "$store_dir/tiles" \
    --metrics-out /tmp/eureka-store-warm.json > /tmp/eureka-store-warm.csv
cmp /tmp/eureka-store-cold.csv /tmp/eureka-store-warm.csv
python3 - <<'EOF'
import json
c = json.load(open("/tmp/eureka-store-warm.json"))["counters"]
assert c["store.misses"] == 0, f"warm run re-simulated tiles: {c}"
assert c["store.hits"] == c["store.lookups"] > 0, c
assert c["cache.misses"] == 0, f"units escaped the store: {c}"
EOF
# Profile smoke: the cycle-attribution export must be byte-identical
# across runs (determinism is part of the profiler's contract).
cargo run --release -q -p eureka-cli -- profile --benchmark mobilenetv1 \
    --arch eureka-p4 --fast --json - > /tmp/eureka-profile-a.json
cargo run --release -q -p eureka-cli -- profile --benchmark mobilenetv1 \
    --arch eureka-p4 --fast --json - > /tmp/eureka-profile-b.json
cmp /tmp/eureka-profile-a.json /tmp/eureka-profile-b.json
# Run-event stream: every line is schema-valid and the deterministic
# projection is byte-identical across --jobs 1 and --jobs 4. Reports
# must be unaffected by arming the bus and forcing the reporter on.
cargo run --release -q -p eureka-cli -- simulate --benchmark mobilenetv1 \
    --arch eureka-p4 --fast --csv --jobs 1 --no-ledger \
    --events-out "$obs_dir/ev-j1.jsonl" > "$obs_dir/report-j1.csv"
cargo run --release -q -p eureka-cli -- simulate --benchmark mobilenetv1 \
    --arch eureka-p4 --fast --csv --jobs 4 --no-ledger --progress \
    --events-out "$obs_dir/ev-j4.jsonl" > "$obs_dir/report-j4.csv" 2>/dev/null
cargo run --release -q -p eureka-cli -- simulate --benchmark mobilenetv1 \
    --arch eureka-p4 --fast --csv --jobs 4 --no-ledger \
    > "$obs_dir/report-plain.csv"
python3 scripts/check_events.py "$obs_dir/ev-j1.jsonl" "$obs_dir/ev-j4.jsonl"
cmp "$obs_dir/report-j1.csv" "$obs_dir/report-j4.csv"
cmp "$obs_dir/report-j1.csv" "$obs_dir/report-plain.csv"
# Run ledger + regression gate: identical runs diff clean, the fresh
# BENCH snapshot stays within threshold of the committed trajectory,
# and an injected regression fails with a non-zero exit.
cargo run --release -q -p eureka-cli -- simulate --benchmark mobilenetv1 \
    --arch eureka-p4 --fast --ledger-dir "$obs_dir/ledger" > /dev/null
cargo run --release -q -p eureka-cli -- simulate --benchmark mobilenetv1 \
    --arch eureka-p4 --fast --ledger-dir "$obs_dir/ledger" > /dev/null
cargo run --release -q -p eureka-cli -- bench list --ledger-dir "$obs_dir/ledger"
recs=("$obs_dir"/ledger/*.json)
cargo run --release -q -p eureka-cli -- bench diff "${recs[0]}" "${recs[1]}"
cargo run --release -q -p eureka-cli -- profile --benchmark mobilenetv1 \
    --arch eureka-p4 --fast --no-ledger --bench-json "$obs_dir/bench-fresh.json"
cargo run --release -q -p eureka-cli -- bench diff \
    results/BENCH_1.json "$obs_dir/bench-fresh.json"
# The BENCH_2 → BENCH_3 step of the committed trajectory (the hot-path
# overhaul) must stay cycle-clean: modeled results were required to be
# byte-identical, so even a 2% drift between the snapshots is a bug.
cargo run --release -q -p eureka-cli -- bench diff \
    results/BENCH_2.json results/BENCH_3.json --max-regress 2
python3 - "$obs_dir/bench-fresh.json" "$obs_dir/bench-bad.json" <<'EOF'
import json, sys
snap = json.load(open(sys.argv[1]))
for arch in snap["archs"]:
    arch["total_cycles"] = int(arch["total_cycles"] * 1.10)
json.dump(snap, open(sys.argv[2], "w"), separators=(",", ":"))
EOF
if cargo run --release -q -p eureka-cli -- bench diff \
    results/BENCH_1.json "$obs_dir/bench-bad.json" 2>/dev/null; then
    echo "bench diff failed to reject a 10% cycle regression" >&2
    exit 1
fi
echo "CI OK"
