#!/usr/bin/env bash
# Kill-and-warm-resume smoke test for the persistent tile store: a
# `simulate` pointed at a --store-dir and killed mid-run leaves behind
# whatever shards it managed to flush. Re-running against that partial
# store must complete, produce output byte-identical to an uninterrupted
# run, and leave the store warm enough that a third run performs zero
# tile simulations (store.misses == 0). Also passes when the run
# finishes before the kill lands (fast machines) — the resume is then a
# pure warm replay.
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=${EUREKA_BIN:-target/release/eureka}
dir=$(mktemp -d)
trap 'rm -rf "$dir"' EXIT

args=(simulate --benchmark resnet50 --arch eureka-p4 --csv --jobs 2)

# Uninterrupted reference run (its own store directory, so the flag is
# exercised in both runs).
"$BIN" "${args[@]}" --store-dir "$dir/ref-store" > "$dir/reference.csv"

# The same run again, killed mid-flight.
"$BIN" "${args[@]}" --store-dir "$dir/store" > "$dir/killed.csv" &
pid=$!
sleep 0.2
kill -9 "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null || true

# Warm-resume from whatever shards survived. Must complete and match
# the uninterrupted output byte for byte.
"$BIN" "${args[@]}" --store-dir "$dir/store" > "$dir/resumed.csv"
cmp "$dir/reference.csv" "$dir/resumed.csv"

# By now the store holds every tile this workload needs: a third run
# must be all hits (store.misses == 0, store.hits == store.lookups > 0).
"$BIN" "${args[@]}" --store-dir "$dir/store" \
    --metrics-out "$dir/metrics.json" > "$dir/warm.csv"
cmp "$dir/reference.csv" "$dir/warm.csv"
python3 - "$dir/metrics.json" <<'EOF'
import json, sys
c = json.load(open(sys.argv[1]))["counters"]
assert c["store.misses"] == 0, f"warm run re-simulated tiles: {c['store.misses']}"
assert c["store.hits"] == c["store.lookups"] > 0, (c["store.hits"], c["store.lookups"])
EOF
echo "store kill-and-warm-resume smoke OK ($(ls "$dir/store" | wc -l) shard file(s))"
