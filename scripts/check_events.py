#!/usr/bin/env python3
"""Validate eureka-events-v1 JSONL streams and compare their
deterministic projections.

Usage:
  scripts/check_events.py FILE [FILE ...]     validate every line of every
                                              file; with 2+ files, also
                                              require byte-identical
                                              deterministic projections
  scripts/check_events.py --project FILE      print FILE's deterministic
                                              projection to stdout

The projection mirrors `eureka_obs::events::deterministic_projection`
exactly: per line keep only {"event":...,"det":{...}} (field order
preserved, compact separators, Rust-style string escaping), sort the
projected lines lexicographically, join with newlines. Two runs of the
same plan must agree byte-for-byte on this projection regardless of
`--jobs`; the `wall` object (seq, t_us, jobs, exec_us) is where
legitimate variation lives.
"""

import json
import sys

SCHEMA = "eureka-events-v1"

# Event kinds and their required deterministic fields — a mirror of
# `eureka_obs::events::KINDS`; keep the two tables in sync.
KINDS = {
    "run-started": [],
    "unit-planned": ["unit", "job", "arch", "gemm", "key"],
    "unit-started": ["unit"],
    "unit-finished": ["unit", "source", "ok", "cycles"],
    "retry": ["unit", "attempt", "kind"],
    "failure": ["unit", "kind", "attempts", "payload"],
    "checkpoint-written": ["unit"],
    "store-flush": [],
    "run-finished": ["units", "failures"],
    # Job-service lifecycle (eureka serve).
    "job-accepted": ["job", "key"],
    "job-queued": ["job"],
    "job-started": ["job"],
    "job-retried": ["job", "attempts"],
    "job-completed": ["job", "ok"],
    "job-cancelled": ["job"],
    "job-deadline-exceeded": ["job"],
    "job-shed": ["capacity"],
    "job-recovered": ["job", "key"],
    # SLA lifecycle tracing (admission -> dequeue -> terminal outcome).
    "job-admitted": ["job", "key"],
    "job-dequeued": ["job"],
    "job-finished": ["job", "outcome"],
    "service-drained": [],
}


def esc(s):
    """String escaping identical to `eureka_obs::json::escape`."""
    out = []
    for ch in s:
        if ch == "\\":
            out.append("\\\\")
        elif ch == '"':
            out.append('\\"')
        elif ch == "\n":
            out.append("\\n")
        elif ch == "\r":
            out.append("\\r")
        elif ch == "\t":
            out.append("\\t")
        elif ord(ch) < 0x20:
            out.append("\\u%04x" % ord(ch))
        else:
            out.append(ch)
    return "".join(out)


def ser(v):
    """Compact serialization identical to `eureka_obs::json::Value::to_json`."""
    if v is None:
        return "null"
    if v is True:
        return "true"
    if v is False:
        return "false"
    if isinstance(v, int):
        return str(v)
    if isinstance(v, float):
        # Rust re-parses numbers as f64 and prints integral values
        # without a trailing .0; match that.
        return str(int(v)) if v.is_integer() else repr(v)
    if isinstance(v, str):
        return '"%s"' % esc(v)
    if isinstance(v, list):
        return "[%s]" % ",".join(ser(x) for x in v)
    if isinstance(v, dict):
        return "{%s}" % ",".join('"%s":%s' % (esc(k), ser(x)) for k, x in v.items())
    raise TypeError(f"unserializable {type(v)}")


def validate_line(line):
    """Returns the parsed object; raises ValueError on any v1 violation."""
    try:
        v = json.loads(line)
    except json.JSONDecodeError as e:
        raise ValueError(f"not JSON: {e}") from e
    if not isinstance(v, dict):
        raise ValueError("line is not an object")
    if v.get("schema") != SCHEMA:
        raise ValueError(f"bad or missing schema stamp (want {SCHEMA})")
    kind = v.get("event")
    if kind not in KINDS:
        raise ValueError(f"unknown event kind {kind!r}")
    det = v.get("det")
    if not isinstance(det, dict):
        raise ValueError("missing det object")
    for field in KINDS[kind]:
        if field not in det:
            raise ValueError(f"event {kind!r} missing det field {field!r}")
    wall = v.get("wall")
    if not isinstance(wall, dict):
        raise ValueError("missing wall object")
    for field in ("seq", "t_us"):
        if not isinstance(wall.get(field), (int, float)) or isinstance(
            wall.get(field), bool
        ):
            raise ValueError(f"missing numeric wall field {field!r}")
    return v


def check_file(path):
    """Validates one stream; returns its deterministic projection."""
    with open(path, encoding="utf-8") as f:
        lines = [line.rstrip("\n") for line in f if line.strip()]
    projected = []
    seqs = []
    for i, line in enumerate(lines, 1):
        try:
            v = validate_line(line)
        except ValueError as e:
            sys.exit(f"{path}:{i}: {e}")
        seqs.append(v["wall"]["seq"])
        projected.append(ser({"event": v["event"], "det": v["det"]}))
    # The bus assigns seq densely from 0 in emission order.
    if sorted(seqs) != list(range(len(seqs))):
        sys.exit(f"{path}: wall.seq is not a dense 0..{len(seqs) - 1} sequence")
    projected.sort()
    return "\n".join(projected)


def main(argv):
    project = False
    files = []
    for a in argv:
        if a == "--project":
            project = True
        elif a in ("-h", "--help"):
            print(__doc__.strip())
            return 0
        elif a.startswith("-"):
            sys.exit(f"unknown flag {a!r}")
        else:
            files.append(a)
    if not files:
        sys.exit("usage: check_events.py [--project] FILE [FILE ...]")
    projections = [(path, check_file(path)) for path in files]
    if project:
        for _, p in projections:
            print(p)
        return 0
    base_path, base = projections[0]
    for path, p in projections[1:]:
        if p != base:
            a, b = base.splitlines(), p.splitlines()
            for i, (la, lb) in enumerate(zip(a, b), 1):
                if la != lb:
                    sys.exit(
                        f"deterministic projections differ at projected line {i}:\n"
                        f"  {base_path}: {la}\n  {path}: {lb}"
                    )
            sys.exit(
                f"deterministic projections differ in length: "
                f"{base_path} has {len(a)} line(s), {path} has {len(b)}"
            )
    total = sum(len(p.splitlines()) for _, p in projections[:1])
    print(
        f"OK: {len(files)} stream(s) schema-valid"
        + (f", projections identical ({total} events)" if len(files) > 1 else "")
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
