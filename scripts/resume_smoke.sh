#!/usr/bin/env bash
# Kill-and-resume smoke test: a checkpointed `simulate` killed mid-run
# must, when re-run with --resume, produce output byte-identical to an
# uninterrupted run. Also passes when the run finishes before the kill
# lands (fast machines) — resume is then a pure checkpoint replay.
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=${EUREKA_BIN:-target/release/eureka}
dir=$(mktemp -d)
trap 'rm -rf "$dir"' EXIT

args=(simulate --benchmark resnet50 --arch eureka-p4 --csv --jobs 2)

# Uninterrupted reference run (checkpointing on, its own directory, so
# the flag itself is exercised in both runs).
"$BIN" "${args[@]}" --checkpoint-dir "$dir/ref-ckpt" > "$dir/reference.csv"

# The same run again, killed mid-flight.
"$BIN" "${args[@]}" --checkpoint-dir "$dir/ckpt" > "$dir/killed.csv" &
pid=$!
sleep 0.2
kill -9 "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null || true

# Resume from whatever survived. Must complete and match the
# uninterrupted output byte for byte.
"$BIN" "${args[@]}" --checkpoint-dir "$dir/ckpt" --resume > "$dir/resumed.csv"
cmp "$dir/reference.csv" "$dir/resumed.csv"
echo "kill-and-resume smoke OK ($(ls "$dir/ckpt" | wc -l) checkpoint file(s))"
