//! BERT-SQuAD under coarse (clustered) filter sparsity: why Eureka beats
//! the two-sided SparTen on transformers (paper §5.1).
//!
//! Run with `cargo run --release --example bert_squad`.

use eureka::energy::calibrate;
use eureka::prelude::*;

fn main() {
    let cfg = SimConfig::paper_default();
    let model = calibrate::calibrated_model(&cfg);

    println!("BERT-base SQuAD (seq 384, batch 32): clustered filter sparsity, GELU (dense) activations\n");
    println!(
        "{:<22}{:>10}{:>10}{:>14}{:>14}",
        "architecture", "cons", "mod", "energy(cons)", "energy(mod)"
    );
    let archs: Vec<Box<dyn arch::Architecture>> = vec![
        Box::new(arch::ampere()),
        Box::new(arch::eureka_p4()),
        Box::new(arch::dstc()),
        Box::new(arch::sparten()),
        Box::new(arch::s2ta()),
    ];
    let mut eureka_vs_sparten = (0.0, 0.0);
    for a in &archs {
        let mut speeds = Vec::new();
        let mut energies = Vec::new();
        for level in [PruningLevel::Conservative, PruningLevel::Moderate] {
            let w = Workload::new(Benchmark::BertSquad, level, 32);
            let dense = engine::simulate(&arch::dense(), &w, &cfg);
            let r = engine::simulate(a.as_ref(), &w, &cfg);
            speeds.push(engine::speedup(&dense, &r));
            let e_dense = model.energy(&dense, &cfg).total_pj();
            energies.push(model.energy(&r, &cfg).total_pj() / e_dense);
        }
        println!(
            "{:<22}{:>10.2}{:>10.2}{:>14.3}{:>14.3}",
            a.name(),
            speeds[0],
            speeds[1],
            energies[0],
            energies[1]
        );
        if a.name() == "Eureka P=4" {
            eureka_vs_sparten.0 = speeds[1];
        }
        if a.name() == "SparTen" {
            eureka_vs_sparten.1 = speeds[1];
        }
    }

    println!(
        "\nEureka P=4 vs SparTen at moderate pruning: {:.2}x vs {:.2}x —",
        eureka_vs_sparten.0, eureka_vs_sparten.1
    );
    println!("SparTen fetches BERT's nearly-dense activation chunks and skips over the");
    println!("pruned-away filter blocks, wasting front-end cycles; Eureka's SUDS fills");
    println!("the sparse chunks with non-zero weights from elsewhere (paper §5.1).");

    // The representative mean (75% BERT per TPUv4i's workload mix) is what
    // makes this matter: transformers dominate modern serving fleets.
    let fig11 = eureka_bench_like_rep_mean(&cfg);
    println!(
        "\nrep-mean speedups (75% BERT / 25% CNNs): Eureka P=4 {:.2}x, SparTen {:.2}x",
        fig11.0, fig11.1
    );
}

/// Representative mean over the full benchmark grid for two architectures.
fn eureka_bench_like_rep_mean(cfg: &SimConfig) -> (f64, f64) {
    let mut eureka = (0.0, 0, 0.0, 0); // (bert_sum, n, cnn_sum, n)
    let mut sparten = (0.0, 0, 0.0, 0);
    for b in Benchmark::all() {
        for level in [PruningLevel::Conservative, PruningLevel::Moderate] {
            let w = Workload::new(b, level, 32);
            let dense = engine::simulate(&arch::dense(), &w, cfg);
            let se = engine::speedup(&dense, &engine::simulate(&arch::eureka_p4(), &w, cfg));
            let ss = engine::speedup(&dense, &engine::simulate(&arch::sparten(), &w, cfg));
            if b == Benchmark::BertSquad {
                eureka.0 += se;
                eureka.1 += 1;
                sparten.0 += ss;
                sparten.1 += 1;
            } else {
                eureka.2 += se;
                eureka.3 += 1;
                sparten.2 += ss;
                sparten.3 += 1;
            }
        }
    }
    (
        0.75 * eureka.0 / eureka.1 as f64 + 0.25 * eureka.2 / eureka.3 as f64,
        0.75 * sparten.0 / sparten.1 as f64 + 0.25 * sparten.2 / sparten.3 as f64,
    )
}
