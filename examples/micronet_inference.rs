//! End-to-end inference of a small CNN ("MicroNet") through the complete
//! Eureka offline pipeline: every layer's pruned weights are compiled to
//! the serialized displaced format, executed via the implicit-GEMM view,
//! and checked against a plain direct-convolution reference.
//!
//! Along the way, the post-ReLU activation densities show the two-sided
//! sparsity the paper's CNN baselines feed on — and that BERT lacks.
//!
//! Run with `cargo run --release --example micronet_inference`.

use eureka::models::functional::{activation_matrix, conv_reference, output_dims, Tensor3};
use eureka::models::{Layer, LayerKind};
use eureka::offline::CompiledLayer;
use eureka::prelude::*;

fn conv_layer(name: &str, in_ch: usize, out_ch: usize, stride: usize, hw: usize) -> Layer {
    Layer::new(
        name,
        LayerKind::Conv {
            in_ch,
            out_ch,
            kernel: (3, 3),
            stride,
            input: (hw, hw),
            same_pad: true,
        },
    )
}

fn pruned_weights(n: usize, k: usize, density: f64, rng: &mut DetRng) -> Matrix {
    let pattern = gen::uniform_pattern(n, k, density, rng);
    gen::values_for_pattern(&pattern, rng)
}

/// Runs one conv layer through the compiled Eureka format + ReLU.
fn conv_forward(
    layer: &Layer,
    input: &Tensor3,
    weights: &Matrix,
) -> Result<(Tensor3, f64), Box<dyn std::error::Error>> {
    let compiled = CompiledLayer::compile(weights, 4, 4)?;
    let acts = activation_matrix(layer, input);
    let out = compiled.execute(&acts)?.relu();
    let (oh, ow) = output_dims(layer, input);
    Ok((Tensor3::from_gemm_output(&out, oh, ow), out.density()))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = DetRng::new(7);
    // A 12x12 RGB input.
    let input = Tensor3::from_fn(3, 12, 12, |_, _, _| {
        F16::from_f64(rng.next_gaussian() * 0.5)
    });

    // --- MicroNet: conv(3->8) -> conv(8->16, /2) -> fc(16*6*6 -> 10) ---
    let conv1 = conv_layer("conv1", 3, 8, 1, 12);
    let conv2 = conv_layer("conv2", 8, 16, 2, 12);
    let w1 = pruned_weights(8, 27, 0.4, &mut rng);
    let w2 = pruned_weights(16, 72, 0.2, &mut rng);
    let w_fc = pruned_weights(10, 16 * 6 * 6, 0.15, &mut rng);

    println!("MicroNet inference through the compiled Eureka format:\n");
    let (a1, d1) = conv_forward(&conv1, &input, &w1)?;
    println!(
        "  conv1: 3->8 @12x12, filter density 40%  | post-ReLU activation density {:.0}%",
        100.0 * d1
    );
    let (a2, d2) = conv_forward(&conv2, &a1, &w2)?;
    println!(
        "  conv2: 8->16 /2,   filter density 20%  | post-ReLU activation density {:.0}%",
        100.0 * d2
    );

    // FC head: flatten CHW and multiply.
    let flat = Matrix::from_fn(16 * 6 * 6, 1, |r, _| a2.get(r / 36, (r / 6) % 6, r % 6));
    let fc = CompiledLayer::compile(&w_fc, 4, 4)?;
    let logits = fc.execute(&flat)?;
    print!("  logits:");
    for c in 0..10 {
        print!(" {:+.2}", logits.get(c, 0).to_f32());
    }
    println!("\n");

    // --- Verify every step against plain references --------------------
    // With continuous weights, the displaced accumulation order differs
    // from the direct loop by half-precision rounding only; assert the
    // deviation stays at noise level. (Integer-valued runs are bit-exact;
    // see tests/end_to_end_correctness.rs.)
    let relu = |t: &Tensor3| {
        Tensor3::from_fn(t.channels(), t.height(), t.width(), |c, y, x| {
            let v = t.get(c, y, x);
            if v.is_sign_negative() {
                F16::ZERO
            } else {
                v
            }
        })
    };
    let close = |a: &Tensor3, b: &Tensor3, what: &str| {
        let mut worst = 0.0f64;
        for c in 0..a.channels() {
            for y in 0..a.height() {
                for x in 0..a.width() {
                    worst = worst.max((a.get(c, y, x).to_f64() - b.get(c, y, x).to_f64()).abs());
                }
            }
        }
        assert!(worst < 0.02, "{what}: worst |delta| {worst}");
        worst
    };
    let r1 = relu(&conv_reference(&conv1, &input, &w1));
    let d1 = close(&a1, &r1, "conv1");
    let r2 = relu(&conv_reference(&conv2, &r1, &w2));
    let d2 = close(&a2, &r2, "conv2");
    let ref_logits = w_fc.matmul_hw(&flat)?;
    let mut d3 = 0.0f64;
    for c in 0..10 {
        d3 = d3.max((logits.get(c, 0).to_f64() - ref_logits.get(c, 0).to_f64()).abs());
    }
    assert!(d3 < 0.02, "fc: worst |delta| {d3}");
    println!(
        "every layer verified against the direct reference ✓ (worst FP16 reorder \
         noise: {d1:.4} / {d2:.4} / {d3:.4})"
    );
    println!("(post-ReLU densities ~50% are exactly the CNN activation sparsity the");
    println!(" two-sided baselines exploit and transformers lack — paper §1, §2.2)");
    Ok(())
}
