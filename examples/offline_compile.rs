//! The offline flow end-to-end: compile a pruned layer to the serialized
//! Eureka format, inspect its compression and cycle statistics, and
//! execute an inference directly from the encoded bytes.
//!
//! Run with `cargo run --release --example offline_compile`.

use eureka::offline::CompiledLayer;
use eureka::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A ResNet-ish pruned layer: 64 filters x 576 reduction, 13% dense.
    let mut rng = DetRng::new(42);
    let pattern = gen::uniform_pattern(64, 576, 0.13, &mut rng);
    let weights = gen::values_for_pattern(&pattern, &mut rng);

    println!(
        "compiling 64x576 filter matrix at {:.0}% density (P = 4)...",
        100.0 * pattern.density()
    );
    let compiled = CompiledLayer::compile(&weights, 4, 4)?;
    let stats = compiled.stats();
    println!("  tiles            : {}", compiled.tiles().len());
    println!("  non-zeros        : {}", stats.nnz);
    println!("  dense FP16 size  : {} bytes", stats.dense_bytes);
    println!(
        "  encoded size     : {} bytes (byte-aligned shipping format)",
        stats.encoded_bytes
    );
    println!(
        "  ideal bit-packed : {} bytes ({:.1}x smaller than dense, metadata included)",
        stats.ideal_bits / 8,
        stats.ideal_compression()
    );
    println!(
        "  total tile cycles: {} (dense would need {})",
        stats.total_cycles,
        compiled.tiles().len() * 16
    );

    // Execute an inference from the encoded bytes and verify against the
    // reference matmul.
    let act_pattern = gen::uniform_pattern(576, 8, 1.0, &mut rng);
    let activations = gen::values_for_pattern(&act_pattern, &mut rng);
    let out = compiled.execute(&activations)?;
    let hw_reference = weights.matmul_hw(&activations)?;
    let (mut worst_abs, mut rms_num, mut rms_den) = (0.0f64, 0.0f64, 0usize);
    for r in 0..out.rows() {
        for c in 0..out.cols() {
            let d = (out.get(r, c).to_f64() - hw_reference.get(r, c).to_f64()).abs();
            worst_abs = worst_abs.max(d);
            rms_num += hw_reference.get(r, c).to_f64().powi(2);
            rms_den += 1;
        }
    }
    let rms = (rms_num / rms_den as f64).sqrt();
    println!(
        "\nexecuted 8 activation columns from the encoded format: worst |delta| vs the \
         undisplaced FP16 dataflow = {worst_abs:.4} (output RMS {rms:.2})"
    );
    println!("(displacement only reorders FP16 additions — the deviation is half-precision");
    println!(" rounding noise; on small-integer weights the test suite enforces bit-exact");
    println!(" equality — see tests/end_to_end_correctness.rs)");
    Ok(())
}
