//! Quickstart: compact a sparse filter tile, balance it with SUDS, and
//! prove the displaced schedule computes the exact same outputs as a dense
//! matrix multiplication.
//!
//! Run with `cargo run --example quickstart`.

use eureka::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. A sparse filter sub-matrix --------------------------------
    // Four filters over a 16-wide reduction slice (compaction factor 4 on
    // a 4x4 MAC sub-array). Row 0 is "hot" — magnitude pruning kept six of
    // its weights — while the others are nearly empty.
    let tile = TilePattern::from_rows(&[0b0101_0011_0011, 0b0000_0010, 0, 0b0100], 16)?;
    println!("tile rows (nnz): {:?}", tile.row_lens());
    println!("compaction only      : {} cycles", tile.critical_path());

    // --- 2. SUDS: single-step uni-directional displacement ------------
    let greedy = suds::greedy(&tile.row_lens());
    let optimal = suds::optimize(&tile.row_lens());
    println!("greedy SUDS          : {} cycles", greedy.k);
    println!("optimal SUDS         : {} cycles", optimal.k);
    println!(
        "displacements        : {:?} (base row {})",
        optimal.disp, optimal.base_row
    );

    // --- 3. The concrete schedule -------------------------------------
    let aligned = AlignedTile::from_tile(&tile);
    let schedule = DisplacedTile::from_plan(&aligned, &optimal)?;
    schedule.validate()?;
    println!(
        "MAC utilization      : {:.0}% over {} cycles ({} displaced products/column)",
        100.0 * schedule.utilization(),
        schedule.cycles(),
        schedule.displaced_work(),
    );

    // --- 4. Functional proof -------------------------------------------
    // Execute the displaced schedule on real FP16 values and compare with
    // the undisplaced hardware dataflow: bit-exact equality.
    let mut rng = DetRng::new(2023);
    let pattern = SparsityPattern::from_fn(4, 16, |r, c| tile.row_mask(r) >> c & 1 == 1);
    let weights = gen::integer_values_for_pattern(&pattern, &mut rng);
    let act_pattern = SparsityPattern::from_fn(16, 4, |_, _| true);
    let activations = gen::integer_values_for_pattern(&act_pattern, &mut rng);

    let displaced_out = exec::execute(&schedule, &weights, &activations)?;
    let reference_out = exec::reference(&weights, &activations)?;
    assert_eq!(displaced_out, reference_out);
    println!("functional check     : displaced output == dense output ✓");

    // --- 5. What that buys at device scale -----------------------------
    let cfg = SimConfig::fast();
    let workload = Workload::new(Benchmark::ResNet50, PruningLevel::Moderate, 32);
    let dense = engine::simulate(&arch::dense(), &workload, &cfg);
    let eureka = engine::simulate(&arch::eureka_p4(), &workload, &cfg);
    println!(
        "ResNet50 (mod), 432 tensor cores: Eureka P=4 is {:.1}x faster than Dense",
        engine::speedup(&dense, &eureka)
    );
    Ok(())
}
