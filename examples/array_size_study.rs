//! Figure 14 in miniature: plain vs systolic MAC-array scale-up at a
//! constant device MAC budget, plus a custom geometry of your own.
//!
//! Run with `cargo run --release --example array_size_study`.

use eureka::prelude::*;
use eureka::sim::config::TensorCoreConfig;
use eureka::sim::sweep::{self, ArrayVariant};

fn main() {
    let cfg = SimConfig::paper_default();
    let workload = Workload::new(Benchmark::ResNet50, PruningLevel::Moderate, 32);

    println!("Eureka speedup over Dense, ResNet50 (mod), equal MAC budget:\n");
    for v in sweep::figure14_variants() {
        let s = sweep::speedup_at(&v, &workload, &cfg);
        println!("  {:<16}{:>6.2}x", v.label, s);
    }

    // A custom geometry: one wide systolic row of 4x4 blocks (8 stages).
    let custom = ArrayVariant {
        label: "4x(4x4) row",
        core: TensorCoreConfig {
            sub_array_dim: 4,
            grid_rows: 1,
            grid_cols: 4,
            window: 2,
        },
    };
    let s = sweep::speedup_at(&custom, &workload, &cfg);
    println!(
        "  {:<16}{:>6.2}x   (custom: deep single-row pipeline)",
        custom.label, s
    );

    println!();
    println!("Plain scale-up pays twice: a hot filter row idles p-1 rows of a");
    println!("monolithic p x p array, and SUDS's single-step displacement cannot");
    println!("spread one row's overflow across a tall array. Systolic composition");
    println!("keeps p = 4 and loses only pipeline-bubble slack, which the offline");
    println!("scheduler recovers (paper §5.5).");
}
