//! Implementing your own architecture against the simulator's
//! [`Architecture`] trait: a hypothetical "Eureka-lite" that keeps the
//! 16-1 compaction mux but replaces optimal SUDS with the greedy
//! assignment and a wider scheduling window — a cheaper offline flow.
//!
//! Run with `cargo run --release --example custom_architecture`.

use eureka::models::workload::LayerGemm;
use eureka::prelude::*;
use eureka::sim::arch::{Architecture, LayerCtx, OneSided, ScheduleMode, SimError, TileTimer};
use eureka::sim::LayerReport;

/// Greedy SUDS + grouped scheduling with a window of 4.
struct EurekaLite {
    inner: OneSided,
}

impl EurekaLite {
    fn new() -> Self {
        EurekaLite {
            inner: OneSided::new(
                "Eureka-lite",
                4,
                TileTimer::GreedySuds,
                ScheduleMode::Grouped,
            ),
        }
    }
}

impl Architecture for EurekaLite {
    fn name(&self) -> &str {
        "Eureka-lite"
    }

    fn simulate_layer(
        &self,
        gemm: &LayerGemm,
        ctx: &LayerCtx,
        cfg: &SimConfig,
    ) -> Result<LayerReport, SimError> {
        // Delegate the tile-stream engine, but widen the scheduler window
        // to partially compensate for the greedy assignment's longer and
        // more varied critical paths.
        let mut wide = *cfg;
        wide.core.window = 4;
        self.inner.simulate_layer(gemm, ctx, &wide)
    }
}

fn main() {
    let cfg = SimConfig::paper_default();
    println!(
        "{:<14}{:>12}{:>14}{:>14}",
        "workload", "Eureka-lite", "Greedy SUDS", "Eureka P=4"
    );
    for bench in [Benchmark::ResNet50, Benchmark::BertSquad] {
        let w = Workload::new(bench, PruningLevel::Moderate, 32);
        let dense = engine::simulate(&arch::dense(), &w, &cfg);
        let lite = engine::simulate(&EurekaLite::new(), &w, &cfg);
        let greedy = engine::simulate(&arch::greedy_suds_p4(), &w, &cfg);
        let full = engine::simulate(&arch::eureka_p4(), &w, &cfg);
        println!(
            "{:<14}{:>11.2}x{:>13.2}x{:>13.2}x",
            bench.name(),
            engine::speedup(&dense, &lite),
            engine::speedup(&dense, &greedy),
            engine::speedup(&dense, &full),
        );
    }
    println!();
    println!("A wider window claws back part of the greedy assignment's loss, but");
    println!("the optimal polynomial-time assignment (Eureka P=4) still wins — the");
    println!("paper's argument for doing the work assignment exactly, offline.");

    // Export the per-layer data for external plotting.
    let w = Workload::new(Benchmark::ResNet50, PruningLevel::Moderate, 32);
    let report = engine::simulate(&EurekaLite::new(), &w, &cfg);
    let csv = report.to_csv();
    println!(
        "\nCSV export ({} layers, first two rows):",
        report.layers.len()
    );
    for line in csv.lines().take(3) {
        println!("  {line}");
    }
}
