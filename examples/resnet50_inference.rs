//! Simulate a full ResNet50 inference (batch 32) across architectures and
//! break the result down by network stage.
//!
//! Run with `cargo run --release --example resnet50_inference`.

use eureka::prelude::*;
use eureka::sim::memory;

fn main() {
    let cfg = SimConfig::paper_default();
    let workload = Workload::new(Benchmark::ResNet50, PruningLevel::Moderate, 32);
    println!(
        "ResNet50, moderate pruning: {} layers, {:.0}% filter density, {:.1} GMACs/batch",
        workload.layer_count(),
        100.0 * workload.global_weight_density(),
        workload.total_macs() as f64 / 1e9,
    );

    let dense = engine::simulate(&arch::dense(), &workload, &cfg);
    let archs: Vec<Box<dyn arch::Architecture>> = vec![
        Box::new(arch::ampere()),
        Box::new(arch::cnvlutin_like()),
        Box::new(arch::eureka_p2()),
        Box::new(arch::eureka_p4()),
        Box::new(arch::ideal()),
    ];

    println!(
        "\n{:<16}{:>12}{:>10}{:>10}{:>12}",
        "architecture", "cycles", "speedup", "mem %", "MAC util %"
    );
    println!(
        "{:<16}{:>12}{:>10}{:>10.1}{:>12.1}",
        dense.arch,
        dense.total_cycles(),
        "1.00",
        100.0 * dense.mem_share(),
        100.0 * dense.mac_utilization()
    );
    for a in &archs {
        let r = engine::simulate(a.as_ref(), &workload, &cfg);
        println!(
            "{:<16}{:>12}{:>10.2}{:>10.1}{:>12.1}",
            r.arch,
            r.total_cycles(),
            engine::speedup(&dense, &r),
            100.0 * r.mem_share(),
            100.0 * r.mac_utilization()
        );
    }

    // Per-stage breakdown under Eureka P=4: where do the cycles go?
    let eureka = engine::simulate(&arch::eureka_p4(), &workload, &cfg);
    let mut stages: Vec<(&str, u64, u64)> = vec![
        ("stem (conv1)", 0, 0),
        ("conv2_x", 0, 0),
        ("conv3_x", 0, 0),
        ("conv4_x", 0, 0),
        ("conv5_x", 0, 0),
    ];
    for (d, e) in dense.layers.iter().zip(&eureka.layers) {
        let idx = match () {
            () if d.name.starts_with("conv1") => 0,
            () if d.name.starts_with("conv2") => 1,
            () if d.name.starts_with("conv3") => 2,
            () if d.name.starts_with("conv4") => 3,
            _ => 4,
        };
        stages[idx].1 += d.total_cycles();
        stages[idx].2 += e.total_cycles();
    }
    println!("\nper-stage cycles (Dense -> Eureka P=4):");
    for (name, dc, ec) in stages {
        println!(
            "  {:<14}{:>12} -> {:>12}   ({:.2}x)",
            name,
            dc,
            ec,
            dc as f64 / ec as f64
        );
    }

    // The paper's bandwidth observation: peak demand far below 1.5 TB/s.
    let peak = eureka
        .layers
        .iter()
        .map(|l| memory::bandwidth_demand(l, &cfg.mem))
        .fold(0.0f64, f64::max);
    println!(
        "\npeak DRAM bandwidth demand: {:.0} GB/s (available: {:.0} GB/s)",
        peak, cfg.mem.bytes_per_cycle
    );
}
