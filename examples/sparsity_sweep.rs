//! Sweep filter density on a synthetic layer to find the crossovers:
//! where does unstructured sparsity (Eureka) pull away from 2:4 (Ampere),
//! and how close does Eureka track the one-sided ideal?
//!
//! Run with `cargo run --release --example sparsity_sweep`.

use eureka::models::workload::LayerGemm;
use eureka::models::GemmShape;
use eureka::prelude::*;
use eureka::sim::arch::{Architecture, LayerCtx};

fn main() {
    let cfg = SimConfig::paper_default();
    // A ResNet-ish mid-network layer: 256 filters, K = 2304, batch-32
    // output columns.
    let shape = GemmShape {
        n: 256,
        k: 2304,
        m: 6272,
    };

    println!(
        "{:>8}{:>12}{:>12}{:>12}{:>12}{:>14}",
        "density", "Ampere", "EurekaP2", "EurekaP4", "Ideal", "Eureka/ideal"
    );
    for pct in [5, 10, 13, 20, 30, 40, 50, 60, 75, 90] {
        let density = pct as f64 / 100.0;
        let gemm = LayerGemm {
            name: format!("sweep-{pct}"),
            shape,
            unique_act_bytes: 2 * (shape.k * shape.m) as u64 / 9, // conv-style reuse
            weight_density: density,
            clustered: false,
            depthwise: false,
        };
        let ctx = LayerCtx {
            act_density: 0.5,
            s2ta_act_density: None,
            s2ta_fil_density: None,
            rng: DetRng::new(pct as u64),
            tiles: Default::default(),
            scratch: Default::default(),
        };
        let run = |a: &dyn Architecture| a.simulate_layer(&gemm, &ctx, &cfg).unwrap();
        let dense = run(&arch::dense());
        let speed = |r: &eureka::sim::LayerReport| {
            (dense.compute_cycles + dense.mem_cycles) as f64
                / (r.compute_cycles + r.mem_cycles) as f64
        };
        let ampere = speed(&run(&arch::ampere()));
        let p2 = speed(&run(&arch::eureka_p2()));
        let p4 = speed(&run(&arch::eureka_p4()));
        let ideal = speed(&run(&arch::ideal()));
        println!(
            "{:>7}%{:>12.2}{:>12.2}{:>12.2}{:>12.2}{:>13.0}%",
            pct,
            ampere,
            p2,
            p4,
            ideal,
            100.0 * p4 / ideal
        );
    }
    println!();
    println!("Below ~40% density unstructured sparsity (Eureka) beats Ampere's fixed 2x;");
    println!("above ~50% the 2:4 structured scheme is as good and simpler — exactly the");
    println!("regime split the paper's introduction draws.");
}
