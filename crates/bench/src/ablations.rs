//! Design-choice ablations beyond the paper's figures.
//!
//! DESIGN.md calls these out as the load-bearing choices worth sweeping:
//!
//! * **displacement reach** — why single-step? ([`reach_sweep`])
//! * **scheduling window** — why a look-ahead of 2? ([`window_sweep`])
//! * **compaction factor** — why P = 2/4? ([`compaction_sweep`])
//! * **filter-row heterogeneity** — model sensitivity ([`sigma_sweep`])
//! * **two-sided gating** — the extension the paper declined
//!   ([`two_sided_energy`])
//!
//! Run them all with `cargo run -p eureka-bench --release --bin ablations`.

use crate::FigTable;
use eureka_energy::calibrate;
use eureka_models::{Benchmark, PruningLevel, Workload};
use eureka_sim::arch::{self, Architecture};
use eureka_sim::{engine, Runner, SimConfig, SimJob};

/// The two workloads the ablations sweep: a sparsity-friendly CNN and the
/// clustered transformer.
fn probe_workloads() -> Vec<Workload> {
    vec![
        Workload::new(Benchmark::ResNet50, PruningLevel::Moderate, 32),
        Workload::new(Benchmark::BertSquad, PruningLevel::Moderate, 32),
    ]
}

fn speedup_table(
    title: &str,
    archs: Vec<(String, Box<dyn Architecture>)>,
    cfg_for: impl Fn(usize) -> SimConfig,
) -> FigTable {
    let mut table = FigTable {
        title: title.to_string(),
        columns: archs.iter().map(|(n, _)| n.clone()).collect(),
        rows: Vec::new(),
    };
    // One job batch for the whole table: each column pairs a Dense
    // baseline with its variant at that column's configuration (the
    // runner's cache collapses the repeated baselines).
    let workloads = probe_workloads();
    let dense = arch::dense();
    let mut jobs = Vec::with_capacity(workloads.len() * archs.len() * 2);
    for w in &workloads {
        for (i, (_, a)) in archs.iter().enumerate() {
            let cfg = cfg_for(i);
            jobs.push(SimJob::new(&dense, w, cfg));
            jobs.push(SimJob::new(a.as_ref(), w, cfg));
        }
    }
    let mut results = Runner::default().run_all(&jobs).into_iter();
    for w in &workloads {
        let cells = archs
            .iter()
            .map(|_| {
                let dense_r = results.next().expect("dense job").expect("Dense runs");
                results
                    .next()
                    .expect("variant job")
                    .ok()
                    .map(|r| engine::speedup(&dense_r, &r))
            })
            .collect();
        table.rows.push((
            format!("{} ({})", w.benchmark().name(), w.pruning().label()),
            cells,
        ));
    }
    table
}

/// Displacement-reach sweep: no displacement, single-step (SUDS), reach 2
/// and reach 3 (the full-balance limit for 4-row tiles).
#[must_use]
pub fn reach_sweep(cfg: &SimConfig) -> FigTable {
    let archs: Vec<(String, Box<dyn Architecture>)> = vec![
        ("no disp".into(), Box::new(arch::eureka_no_suds_p4())),
        ("reach 1 (SUDS)".into(), Box::new(arch::eureka_p4())),
        ("reach 2".into(), Box::new(arch::eureka_multistep(2))),
        ("reach 3".into(), Box::new(arch::eureka_multistep(3))),
    ];
    let cfg = *cfg;
    speedup_table(
        "Ablation: displacement reach (speedup over Dense). Hardware cost grows \
         with reach: R return wires + an (R+2)-input adder per MAC.",
        archs,
        move |_| cfg,
    )
}

/// Systolic-scheduling look-ahead window sweep.
#[must_use]
pub fn window_sweep(cfg: &SimConfig) -> FigTable {
    let windows = [1usize, 2, 4, 8];
    let archs: Vec<(String, Box<dyn Architecture>)> = windows
        .iter()
        .map(|w| {
            (
                format!("window {w}"),
                Box::new(arch::eureka_p4()) as Box<dyn Architecture>,
            )
        })
        .collect();
    let base = *cfg;
    speedup_table(
        "Ablation: scheduling look-ahead window (speedup over Dense). Larger \
         windows raise register-file pressure (§3.3).",
        archs,
        move |i| {
            let mut c = base;
            c.core.window = windows[i];
            c
        },
    )
}

/// Compaction-factor sweep (P = 1 disables compaction; P = 16 saturates
/// the 64-wide mask datapath at p = 4).
#[must_use]
pub fn compaction_sweep(cfg: &SimConfig) -> FigTable {
    use eureka_sim::arch::{OneSided, ScheduleMode, TileTimer};
    let factors = [1usize, 2, 4, 8, 16];
    let archs: Vec<(String, Box<dyn Architecture>)> = factors
        .iter()
        .map(|&p| {
            (
                format!("P={p}"),
                Box::new(OneSided::new(
                    format!("Eureka P={p}"),
                    p,
                    TileTimer::OptimalSuds,
                    ScheduleMode::Grouped,
                )) as Box<dyn Architecture>,
            )
        })
        .collect();
    let cfg = *cfg;
    speedup_table(
        "Ablation: compaction factor (speedup over Dense). Metadata grows \
         log2(4P)+1 bits per value; the operand mux grows 4P-to-1.",
        archs,
        move |_| cfg,
    )
}

/// Sensitivity to the per-filter-row density heterogeneity sigma — a
/// model parameter, not a hardware knob; shows how load imbalance drives
/// every sparse scheme.
#[must_use]
pub fn sigma_sweep(cfg: &SimConfig) -> FigTable {
    let sigmas = [0.0f64, 0.4, 0.8, 1.2];
    let archs: Vec<(String, Box<dyn Architecture>)> = sigmas
        .iter()
        .map(|s| {
            (
                format!("sigma {s}"),
                Box::new(arch::eureka_p4()) as Box<dyn Architecture>,
            )
        })
        .collect();
    let base = *cfg;
    speedup_table(
        "Ablation: filter-row density heterogeneity (Eureka P=4 speedup over \
         Dense). More heterogeneous rows are harder to balance.",
        archs,
        move |i| SimConfig {
            row_density_sigma: sigmas[i],
            ..base
        },
    )
}

/// Calibration sensitivity of the SparTen baseline: its front-end
/// double-buffer refill floor (`sparten_chunk_min_cycles`) is this
/// reproduction's only fitted baseline parameter; this table shows how
/// the SparTen bars move with it (the Eureka results are untouched).
#[must_use]
pub fn sparten_calibration(cfg: &SimConfig) -> FigTable {
    let mins = [2.0f64, 3.0, 4.0, 6.0];
    let mut table = FigTable {
        title: "Calibration: SparTen speedup over Dense vs its chunk-refill floor \
                (default 4.0; Eureka P=4 shown for reference)"
            .to_string(),
        columns: mins
            .iter()
            .map(|m| format!("min={m}"))
            .chain(["Eureka P=4".to_string()])
            .collect(),
        rows: Vec::new(),
    };
    let workloads = probe_workloads();
    let dense = arch::dense();
    let sparten = arch::sparten();
    let eureka = arch::eureka_p4();
    let mut jobs = Vec::with_capacity(workloads.len() * (mins.len() * 2 + 2));
    for w in &workloads {
        for &m in &mins {
            let c = SimConfig {
                sparten_chunk_min_cycles: m,
                ..*cfg
            };
            jobs.push(SimJob::new(&dense, w, c));
            jobs.push(SimJob::new(&sparten, w, c));
        }
        jobs.push(SimJob::new(&dense, w, *cfg));
        jobs.push(SimJob::new(&eureka, w, *cfg));
    }
    let mut results = Runner::default().run_all(&jobs).into_iter();
    let mut next = || {
        results
            .next()
            .expect("one result per job")
            .expect("all sparten-calibration archs run")
    };
    for w in &workloads {
        let mut cells: Vec<Option<f64>> = mins
            .iter()
            .map(|_| {
                let d = next();
                Some(engine::speedup(&d, &next()))
            })
            .collect();
        let d = next();
        cells.push(Some(engine::speedup(&d, &next())));
        table.rows.push((
            format!("{} ({})", w.benchmark().name(), w.pruning().label()),
            cells,
        ));
    }
    table
}

/// Batch-size sweep: inference latency amortization. Small batches
/// under-fill the output columns (`m = tokens·batch` or
/// `pixels·batch`), so per-input throughput grows with batch until the
/// device saturates.
#[must_use]
pub fn batch_sweep(cfg: &SimConfig) -> FigTable {
    let batches = [1usize, 4, 16, 32, 64];
    let mut table = FigTable {
        title: "Sweep: Eureka P=4 throughput (inputs/s at 1 GHz) vs batch size".to_string(),
        columns: batches.iter().map(|b| format!("batch {b}")).collect(),
        rows: Vec::new(),
    };
    let benches = [Benchmark::ResNet50, Benchmark::BertSquad];
    let eureka = arch::eureka_p4();
    let workloads: Vec<Workload> = benches
        .iter()
        .flat_map(|&bench| {
            batches
                .iter()
                .map(move |&b| Workload::new(bench, PruningLevel::Moderate, b))
        })
        .collect();
    let jobs: Vec<SimJob<'_>> = workloads
        .iter()
        .map(|w| SimJob::new(&eureka, w, *cfg))
        .collect();
    let mut results = Runner::default().run_all(&jobs).into_iter();
    for bench in benches {
        let cells = batches
            .iter()
            .map(|&b| {
                let r = results
                    .next()
                    .expect("one result per job")
                    .expect("Eureka runs");
                Some(r.throughput_per_s(b, 1.0))
            })
            .collect();
        table.rows.push((format!("{} (mod)", bench.name()), cells));
    }
    table
}

/// Clock-penalty caveat (§5.4): the public-domain synthesis puts Eureka's
/// critical path at 1.84 ns vs Ampere's 1.66 ns; the paper argues
/// commercial tools and pipelining close the gap. This table shows the
/// speedup with and without charging the 11% slower clock.
#[must_use]
pub fn clock_penalty(cfg: &SimConfig) -> FigTable {
    use eureka_energy::components::{AMPERE_DELAY_NS, EUREKA_DELAY_NS};
    let penalty = EUREKA_DELAY_NS / AMPERE_DELAY_NS;
    let mut table = FigTable {
        title: format!(
            "Caveat: Eureka speedup at iso-clock vs with the synthesized {:.0}% slower \
             clock (paper §5.4 expects pipelining to recover it)",
            100.0 * (penalty - 1.0)
        ),
        columns: vec!["iso-clock".into(), "with delay penalty".into()],
        rows: Vec::new(),
    };
    let workloads = probe_workloads();
    let dense = arch::dense();
    let eureka = arch::eureka_p4();
    let jobs: Vec<SimJob<'_>> = workloads
        .iter()
        .flat_map(|w| [SimJob::new(&dense, w, *cfg), SimJob::new(&eureka, w, *cfg)])
        .collect();
    let mut results = Runner::default().run_all(&jobs).into_iter();
    for w in &workloads {
        let d = results.next().expect("dense job").expect("Dense runs");
        let e = results.next().expect("eureka job").expect("Eureka runs");
        let iso = engine::speedup(&d, &e);
        table.rows.push((
            format!("{} ({})", w.benchmark().name(), w.pruning().label()),
            vec![Some(iso), Some(iso / penalty)],
        ));
    }
    table
}

/// The two-sided extension the paper declined (§1, §3.4): activation-zero
/// clock gating. Energy normalized to Dense; timing is identical to
/// Eureka P=4 by construction.
#[must_use]
pub fn two_sided_energy(cfg: &SimConfig) -> FigTable {
    let model = calibrate::calibrated_model(cfg);
    let archs: Vec<(String, Box<dyn Architecture>)> = vec![
        ("Eureka P=4".into(), Box::new(arch::eureka_p4())),
        ("+act gating".into(), Box::new(arch::eureka_two_sided())),
    ];
    let mut table = FigTable {
        title: "Extension: two-sided activation gating (energy normalized to Dense). \
                CNNs benefit; ReLU-free BERT does not — the paper's rationale for \
                staying one-sided."
            .to_string(),
        columns: archs.iter().map(|(n, _)| n.clone()).collect(),
        rows: Vec::new(),
    };
    let workloads = probe_workloads();
    let dense = arch::dense();
    let mut jobs = Vec::with_capacity(workloads.len() * (archs.len() + 1));
    for w in &workloads {
        jobs.push(SimJob::new(&dense, w, *cfg));
        for (_, a) in &archs {
            jobs.push(SimJob::new(a.as_ref(), w, *cfg));
        }
    }
    let mut results = Runner::default().run_all(&jobs).into_iter();
    for w in &workloads {
        let dense_r = results.next().expect("dense job").expect("Dense runs");
        let dense_e = model.energy(&dense_r, cfg);
        let cells = archs
            .iter()
            .map(|_| {
                results
                    .next()
                    .expect("variant job")
                    .ok()
                    .map(|r| model.energy(&r, cfg).total_pj() / dense_e.total_pj())
            })
            .collect();
        table.rows.push((
            format!("{} ({})", w.benchmark().name(), w.pruning().label()),
            cells,
        ));
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SimConfig {
        SimConfig {
            rowgroup_samples: 12,
            slice_samples: 12,
            act_samples: 12,
            ..SimConfig::paper_default()
        }
    }

    #[test]
    fn reach_has_diminishing_returns() {
        let t = reach_sweep(&cfg());
        let row = "ResNet50 (mod)";
        let none = t.value(row, "no disp").unwrap();
        let r1 = t.value(row, "reach 1 (SUDS)").unwrap();
        let r3 = t.value(row, "reach 3").unwrap();
        // Single-step captures most of the gain over no displacement.
        let step1_gain = r1 - none;
        let extra_gain = r3 - r1;
        assert!(step1_gain > 0.0);
        assert!(
            extra_gain < step1_gain,
            "reach>1 gain {extra_gain} should be below the single-step gain {step1_gain}"
        );
    }

    #[test]
    fn compaction_grows_then_saturates() {
        let t = compaction_sweep(&cfg());
        let row = "ResNet50 (mod)";
        let p1 = t.value(row, "P=1").unwrap();
        let p4 = t.value(row, "P=4").unwrap();
        let p16 = t.value(row, "P=16").unwrap();
        assert!(p4 > p1 * 1.5);
        // Saturation: doubling twice more buys comparatively little.
        assert!(p16 - p4 < p4 - p1);
    }

    #[test]
    fn sigma_hurts_balance() {
        let t = sigma_sweep(&cfg());
        let row = "ResNet50 (mod)";
        let s0 = t.value(row, "sigma 0").unwrap();
        let s12 = t.value(row, "sigma 1.2").unwrap();
        assert!(s0 > s12, "sigma 0 {s0} vs 1.2 {s12}");
    }

    #[test]
    fn sparten_calibration_is_monotone() {
        let t = sparten_calibration(&cfg());
        let row = "ResNet50 (mod)";
        let vals: Vec<f64> = ["min=2", "min=3", "min=4", "min=6"]
            .iter()
            .map(|c| t.value(row, c).unwrap())
            .collect();
        assert!(
            vals.windows(2).all(|w| w[1] <= w[0] * 1.02),
            "higher refill floor must not speed SparTen up: {vals:?}"
        );
        // The calibration choice does not decide the BERT crossover.
        let bert_eureka = t.value("BERT-squad (mod)", "Eureka P=4").unwrap();
        for c in ["min=3", "min=4", "min=6"] {
            let s = t.value("BERT-squad (mod)", c).unwrap();
            assert!(s < bert_eureka, "{c}: SparTen {s} vs Eureka {bert_eureka}");
        }
    }

    #[test]
    fn batch_amortizes_throughput() {
        let t = batch_sweep(&cfg());
        let b1 = t.value("ResNet50 (mod)", "batch 1").unwrap();
        let b32 = t.value("ResNet50 (mod)", "batch 32").unwrap();
        assert!(b32 > b1, "batch 32 {b32} vs batch 1 {b1}");
    }

    #[test]
    fn clock_penalty_scales_speedup() {
        let t = clock_penalty(&cfg());
        let iso = t.value("ResNet50 (mod)", "iso-clock").unwrap();
        let pen = t.value("ResNet50 (mod)", "with delay penalty").unwrap();
        assert!((pen / iso - 1.66 / 1.84).abs() < 1e-9);
    }

    #[test]
    fn gating_helps_cnn_not_bert() {
        let t = two_sided_energy(&cfg());
        let cnn_base = t.value("ResNet50 (mod)", "Eureka P=4").unwrap();
        let cnn_gated = t.value("ResNet50 (mod)", "+act gating").unwrap();
        assert!(cnn_gated < cnn_base);
        let bert_base = t.value("BERT-squad (mod)", "Eureka P=4").unwrap();
        let bert_gated = t.value("BERT-squad (mod)", "+act gating").unwrap();
        assert!((bert_gated - bert_base).abs() / bert_base < 0.05);
    }
}
