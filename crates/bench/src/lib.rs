//! Experiment harness reproducing every table and figure of the Eureka
//! paper's evaluation (§5).
//!
//! Each `figure*` / `table*` function computes the corresponding result as
//! a structured [`FigTable`]; the `src/bin/*` binaries print them, the
//! Criterion benches in `benches/` time them, and the workspace
//! integration tests assert the paper's qualitative claims on them.
//!
//! | Function | Paper content |
//! |---|---|
//! | [`table1`] | benchmark summary |
//! | [`figure9`] | critical-path distribution before/after optimal SUDS |
//! | [`figure11`] | performance vs Dense across nine architectures |
//! | [`figure12`] | isolation of Eureka's techniques |
//! | [`figure13`] | total energy vs Dense (incl. Dense Bench) |
//! | [`table2`] | per-MAC area/power and delay |
//! | [`figure14`] | sensitivity to MAC array size |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod svg;

use eureka_energy::{area, calibrate, MacVariant};
use eureka_models::{Benchmark, PruningLevel, Workload};
use eureka_sim::arch::{self, Architecture};
use eureka_sim::{engine, sweep, Runner, SimConfig, SimJob, SimReport};
use eureka_sparse::stats::Histogram;

/// A labelled results grid: one row per workload/configuration, one column
/// per architecture/variant. `None` marks combinations the paper leaves
/// blank (S2TA on InceptionV3).
#[derive(Clone, Debug, PartialEq)]
pub struct FigTable {
    /// Title printed above the table.
    pub title: String,
    /// Column names.
    pub columns: Vec<String>,
    /// Rows: label plus one optional value per column.
    pub rows: Vec<(String, Vec<Option<f64>>)>,
}

impl FigTable {
    /// Looks up a value by row label and column name.
    #[must_use]
    pub fn value(&self, row: &str, column: &str) -> Option<f64> {
        let c = self.columns.iter().position(|x| x == column)?;
        let r = self.rows.iter().find(|(label, _)| label == row)?;
        r.1.get(c).copied().flatten()
    }

    /// Renders a fixed-width text table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = format!("{}\n", self.title);
        out.push_str(&format!("{:<22}", ""));
        for c in &self.columns {
            out.push_str(&format!("{c:>15}"));
        }
        out.push('\n');
        for (label, cells) in &self.rows {
            out.push_str(&format!("{label:<22}"));
            for cell in cells {
                match cell {
                    Some(v) => out.push_str(&format!("{v:>15.2}")),
                    None => out.push_str(&format!("{:>15}", "-")),
                }
            }
            out.push('\n');
        }
        out
    }

    /// Serializes the table as CSV (blank cells stay empty).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("row");
        for c in &self.columns {
            out.push(',');
            out.push_str(c);
        }
        out.push('\n');
        for (label, cells) in &self.rows {
            out.push_str(label);
            for cell in cells {
                out.push(',');
                if let Some(v) = cell {
                    out.push_str(&format!("{v:.4}"));
                }
            }
            out.push('\n');
        }
        out
    }

    /// Appends an arithmetic-mean row over the existing rows (skipping
    /// blanks per column).
    fn push_mean_row(&mut self, label: &str) {
        let cols = self.columns.len();
        let mut sums = vec![0.0; cols];
        let mut counts = vec![0usize; cols];
        for (_, cells) in &self.rows {
            for (i, cell) in cells.iter().enumerate() {
                if let Some(v) = cell {
                    sums[i] += v;
                    counts[i] += 1;
                }
            }
        }
        let means = sums
            .iter()
            .zip(&counts)
            .map(|(s, &c)| (c > 0).then(|| s / c as f64))
            .collect();
        self.rows.push((label.to_string(), means));
    }

    /// Appends the paper's *representative mean*: BERT weighted 75%, the
    /// CNNs 25% (TPUv4i's workload mix, §5.1). Rows whose label contains
    /// "BERT" form the BERT group.
    fn push_rep_mean_row(&mut self, label: &str) {
        let cols = self.columns.len();
        let mut acc = vec![(0.0f64, 0usize, 0.0f64, 0usize); cols]; // (bert_sum, n, cnn_sum, n)
        for (row_label, cells) in &self.rows {
            let is_bert = row_label.contains("BERT");
            for (i, cell) in cells.iter().enumerate() {
                if let Some(v) = cell {
                    if is_bert {
                        acc[i].0 += v;
                        acc[i].1 += 1;
                    } else {
                        acc[i].2 += v;
                        acc[i].3 += 1;
                    }
                }
            }
        }
        let means = acc
            .iter()
            .map(|&(bs, bn, cs, cn)| {
                if bn == 0 || cn == 0 {
                    None
                } else {
                    Some(0.75 * bs / bn as f64 + 0.25 * cs / cn as f64)
                }
            })
            .collect();
        self.rows.push((label.to_string(), means));
    }
}

/// The benchmark × pruning grid of Figures 11–13, in the paper's order of
/// increasing moderate-pruning sparsity.
#[must_use]
pub fn workload_grid(batch: usize) -> Vec<Workload> {
    let mut out = Vec::new();
    for bench in Benchmark::all() {
        for level in [PruningLevel::Conservative, PruningLevel::Moderate] {
            out.push(Workload::new(bench, level, batch));
        }
    }
    out
}

fn row_label(w: &Workload) -> String {
    format!("{} ({})", w.benchmark().name(), w.pruning().label())
}

/// Simulates the whole grid — Dense plus every listed architecture for
/// every workload — as one batch of runner jobs (the runner fans the
/// per-layer units out across cores), then maps each workload's reports
/// to row cells. Architectures that cannot run a workload (S2TA on
/// InceptionV3) yield `None` reports, matching the paper's blank cells.
fn rows_over_grid<F>(
    archs: &[Box<dyn Architecture>],
    cfg: &SimConfig,
    per_row: F,
) -> Vec<(String, Vec<Option<f64>>)>
where
    F: Fn(&Workload, &SimReport, &[Option<SimReport>]) -> Vec<Option<f64>>,
{
    let grid = workload_grid(32);
    let dense = arch::dense();
    let mut jobs = Vec::with_capacity(grid.len() * (archs.len() + 1));
    for w in &grid {
        jobs.push(SimJob::new(&dense, w, *cfg));
        for a in archs {
            jobs.push(SimJob::new(a.as_ref(), w, *cfg));
        }
    }
    let mut results = Runner::default().run_all(&jobs).into_iter();
    grid.iter()
        .map(|w| {
            let dense_r = results
                .next()
                .expect("one result per job")
                .expect("Dense runs every workload");
            let arch_rs: Vec<Option<SimReport>> = archs
                .iter()
                .map(|_| results.next().expect("one result per job").ok())
                .collect();
            (row_label(w), per_row(w, &dense_r, &arch_rs))
        })
        .collect()
}

/// Table 1: the benchmark summary (delegates to `eureka-models`).
#[must_use]
pub fn table1() -> String {
    eureka_models::table1::render()
}

/// Figure 9: critical-path distribution of four filter sub-matrix groups
/// of a ResNet50 intermediate layer (conv4_2/3x3, moderate pruning),
/// before (compaction only) and after the optimal SUDS assignment.
#[must_use]
pub fn figure9(cfg: &SimConfig) -> FigTable {
    use eureka_core::suds;
    use eureka_sim::arch::tile_samples_for_layer;

    let _span = eureka_obs::span!("bench.figure9");
    let w = Workload::new(Benchmark::ResNet50, PruningLevel::Moderate, 32);
    let gemm = w
        .gemms()
        .into_iter()
        .find(|g| g.name == "conv4_2/3x3")
        .expect("ResNet50 defines conv4_2/3x3");
    // Four groups of sub-matrices, as in the paper's figure.
    const GROUPS: usize = 4;
    let mut before: Vec<Histogram> = vec![Histogram::new(); GROUPS];
    let mut after: Vec<Histogram> = vec![Histogram::new(); GROUPS];
    for group in 0..GROUPS {
        let tiles = tile_samples_for_layer(&gemm, cfg, group as u64);
        for tile in tiles {
            before[group].record(tile.critical_path().max(1));
            after[group].record(suds::optimal_cycles(&tile));
        }
    }
    let max = before
        .iter()
        .chain(&after)
        .filter_map(Histogram::max)
        .max()
        .unwrap_or(0);
    let mut columns = Vec::new();
    for g in 1..=GROUPS {
        columns.push(format!("g{g} before"));
    }
    for g in 1..=GROUPS {
        columns.push(format!("g{g} after"));
    }
    let mut table = FigTable {
        title: "Figure 9: critical-path distribution (fraction of sub-matrices) of four \
                filter sub-matrix groups, ResNet50 conv4_2/3x3 (mod), P=4"
            .to_string(),
        columns,
        rows: Vec::new(),
    };
    for k in 0..=max {
        let mut cells: Vec<Option<f64>> = before.iter().map(|h| Some(h.fraction(k))).collect();
        cells.extend(after.iter().map(|h| Some(h.fraction(k))));
        table.rows.push((format!("critical path {k}"), cells));
    }
    let mut mean_cells: Vec<Option<f64>> = before.iter().map(|h| Some(h.mean())).collect();
    mean_cells.extend(after.iter().map(|h| Some(h.mean())));
    table.rows.push(("mean".into(), mean_cells));
    let mut sd_cells: Vec<Option<f64>> = before.iter().map(|h| Some(h.std_dev())).collect();
    sd_cells.extend(after.iter().map(|h| Some(h.std_dev())));
    table.rows.push(("std dev".into(), sd_cells));
    table
}

/// The nine Figure 11 architectures in plot order.
#[must_use]
pub fn figure11_archs() -> Vec<Box<dyn Architecture>> {
    vec![
        Box::new(arch::ampere()),
        Box::new(arch::cnvlutin_like()),
        Box::new(arch::eureka_p2()),
        Box::new(arch::eureka_p4()),
        Box::new(arch::ideal()),
        Box::new(arch::dstc()),
        Box::new(arch::sparten()),
        Box::new(arch::s2ta()),
    ]
}

/// Figure 11: speedup over Dense for every architecture × benchmark ×
/// pruning level, plus the mean and representative-mean rows.
#[must_use]
pub fn figure11(cfg: &SimConfig) -> FigTable {
    let _span = eureka_obs::span!("bench.figure11");
    let archs = figure11_archs();
    let mut table = FigTable {
        title: "Figure 11: speedup over Dense (batch 32, 432 tensor cores)".to_string(),
        columns: archs.iter().map(|a| a.name().to_string()).collect(),
        rows: Vec::new(),
    };
    table.rows = rows_over_grid(&archs, cfg, |_, dense, reports| {
        reports
            .iter()
            .map(|r| r.as_ref().map(|r| engine::speedup(dense, r)))
            .collect()
    });
    table.push_mean_row("mean");
    table.push_rep_mean_row("rep mean");
    table
}

/// The Figure 12 technique-isolation variants, in progressive order.
#[must_use]
pub fn figure12_archs() -> Vec<Box<dyn Architecture>> {
    vec![
        Box::new(arch::eureka_unopt()),
        Box::new(arch::compaction_only(4)),
        Box::new(arch::greedy_suds_p4()),
        Box::new(arch::optimal_suds_p4()),
        Box::new(arch::eureka_p4()),
        Box::new(arch::eureka_no_suds_p4()),
    ]
}

/// Figure 12: isolating compaction, SUDS (greedy/optimal) and systolic
/// scheduling; speedups over Dense.
#[must_use]
pub fn figure12(cfg: &SimConfig) -> FigTable {
    let _span = eureka_obs::span!("bench.figure12");
    let archs = figure12_archs();
    let mut table = FigTable {
        title: "Figure 12: isolation of Eureka's techniques (speedup over Dense)".to_string(),
        columns: archs.iter().map(|a| a.name().to_string()).collect(),
        rows: Vec::new(),
    };
    table.rows = rows_over_grid(&archs, cfg, |_, dense, reports| {
        reports
            .iter()
            .map(|r| r.as_ref().map(|r| engine::speedup(dense, r)))
            .collect()
    });
    table.push_mean_row("mean");
    table
}

/// Figure 13: total (compute + memory) energy normalized to Dense,
/// including the unpruned *Dense Bench* row showing each scheme's
/// sparsity-hardware overhead on dense models.
#[must_use]
pub fn figure13(cfg: &SimConfig) -> FigTable {
    let _span = eureka_obs::span!("bench.figure13");
    let model = calibrate::calibrated_model(cfg);
    let archs = figure11_archs();
    let mut table = FigTable {
        title: "Figure 13: total energy normalized to Dense (lower is better)".to_string(),
        columns: archs.iter().map(|a| a.name().to_string()).collect(),
        rows: Vec::new(),
    };
    table.rows = rows_over_grid(&archs, cfg, |_, dense, reports| {
        let dense = model.energy(dense, cfg);
        reports
            .iter()
            .map(|r| {
                r.as_ref()
                    .map(|r| model.energy(r, cfg).total_pj() / dense.total_pj())
            })
            .collect()
    });
    table.push_mean_row("mean");
    table.push_rep_mean_row("rep mean");

    // Dense Bench: unpruned model, dense-mode timing, each scheme paying
    // for its sparsity hardware.
    let w = Workload::new(Benchmark::ResNet50, PruningLevel::Dense, 32);
    let dense_r = engine::simulate(&arch::dense(), &w, cfg);
    let base = model
        .dense_mode_energy(&dense_r, MacVariant::Dense, cfg)
        .total_pj();
    let variants = [
        Some(MacVariant::Ampere),   // Ampere/STC
        Some(MacVariant::EurekaP4), // Cnvlutin-like shares the 16-1 mux
        Some(MacVariant::EurekaP2), // Eureka P=2
        Some(MacVariant::EurekaP4), // Eureka P=4
        None,                       // Ideal has no hardware
        Some(MacVariant::Dstc),     // DSTC
        Some(MacVariant::SparTen),  // SparTen
        Some(MacVariant::Ampere),   // S2TA's per-MAC delta is Ampere-like
    ];
    let cells = variants
        .iter()
        .map(|v| v.map(|variant| model.dense_mode_energy(&dense_r, variant, cfg).total_pj() / base))
        .collect();
    table.rows.push(("Dense Bench".into(), cells));
    table
}

/// Table 2: per-MAC area/power of the key components and the Ampere /
/// Eureka totals with overheads and delays.
#[must_use]
pub fn table2() -> String {
    use eureka_energy::components::{spec, Component};
    let mut out = String::from("Table 2: ASIC 15 nm area and power (per MAC)\n");
    out.push_str(&format!(
        "{:<34}{:>12}{:>12}\n",
        "Component", "Area (um2)", "Power (uW)"
    ));
    let rows: [(&str, Component); 8] = [
        ("MAC", Component::Mac),
        ("FP carry-save adder", Component::FpCsa),
        ("16-1 Multiplexer", Component::Mux16),
        ("8-1 Multiplexer*", Component::Mux8),
        ("4-1 Multiplexer", Component::Mux4),
        ("2-1 Multiplexer", Component::Mux2),
        ("DSTC Crossbar", Component::DstcCrossbar),
        ("SparTen logic", Component::SparTenLogic),
    ];
    for (name, c) in rows {
        let s = spec(c);
        out.push_str(&format!(
            "{name:<34}{:>12.0}{:>12.0}\n",
            s.area_um2, s.power_uw
        ));
    }
    let sp = spec(Component::SparTenBuffers);
    out.push_str(&format!(
        "{:<34}{:>12.0}{:>12.0}\n",
        "SparTen buffers", sp.area_um2, sp.power_uw
    ));
    for (name, v) in [
        ("Total Ampere", MacVariant::Ampere),
        ("Total Eureka P=2", MacVariant::EurekaP2),
        ("Total Eureka P=4", MacVariant::EurekaP4),
    ] {
        let b = area::per_mac(v);
        out.push_str(&format!(
            "{name:<34}{:>12.0}{:>12.0}   delay {:.2} ns\n",
            b.area_um2, b.power_uw, b.delay_ns
        ));
    }
    let (a, p) = area::overhead_vs_ampere(MacVariant::EurekaP4);
    out.push_str(&format!(
        "Eureka P=4 overhead vs Ampere: area {:.1}%, power {:.1}%\n",
        100.0 * a,
        100.0 * p
    ));
    out.push_str("(* structural estimate; not listed in the paper's table)\n");
    out
}

/// Figure 14: mean and representative-mean Eureka speedup over Dense
/// across MAC-array geometries, at a constant device MAC budget.
#[must_use]
pub fn figure14(cfg: &SimConfig) -> FigTable {
    let _span = eureka_obs::span!("bench.figure14");
    let variants = sweep::figure14_variants();
    let mut table = FigTable {
        title: "Figure 14: sensitivity to MAC array size (Eureka speedup over Dense)".to_string(),
        columns: variants.iter().map(|v| v.label.to_string()).collect(),
        rows: Vec::new(),
    };
    // Every (geometry, workload) cell compares a matched Eureka against
    // Dense at that geometry: one job batch for the whole figure.
    let grid = workload_grid(32);
    let dense = arch::dense();
    let archs: Vec<_> = variants.iter().map(sweep::variant_arch).collect();
    let mut jobs = Vec::with_capacity(grid.len() * variants.len() * 2);
    for w in &grid {
        for (v, a) in variants.iter().zip(&archs) {
            let c = cfg.with_core(v.core);
            jobs.push(SimJob::new(&dense, w, c));
            jobs.push(SimJob::new(a, w, c));
        }
    }
    let mut results = Runner::default().run_all(&jobs).into_iter();
    table.rows = grid
        .iter()
        .map(|w| {
            let cells = variants
                .iter()
                .map(|_| {
                    let d = results.next().expect("dense job").expect("Dense runs");
                    let e = results.next().expect("eureka job").expect("Eureka runs");
                    Some(engine::speedup(&d, &e))
                })
                .collect();
            (row_label(w), cells)
        })
        .collect();
    table.push_mean_row("mean");
    table.push_rep_mean_row("rep mean");
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figtable_render_and_lookup() {
        let t = FigTable {
            title: "t".into(),
            columns: vec!["a".into(), "b".into()],
            rows: vec![("r1".into(), vec![Some(1.5), None])],
        };
        assert_eq!(t.value("r1", "a"), Some(1.5));
        assert_eq!(t.value("r1", "b"), None);
        assert_eq!(t.value("r2", "a"), None);
        let s = t.render();
        assert!(s.contains("1.50"));
        assert!(s.contains('-'));
    }

    #[test]
    fn csv_serialization() {
        let t = FigTable {
            title: "t".into(),
            columns: vec!["a".into(), "b".into()],
            rows: vec![("r1".into(), vec![Some(1.5), None])],
        };
        assert_eq!(t.to_csv(), "row,a,b\nr1,1.5000,\n");
    }

    #[test]
    fn mean_rows() {
        let mut t = FigTable {
            title: "t".into(),
            columns: vec!["a".into()],
            rows: vec![
                ("CNN x".into(), vec![Some(2.0)]),
                ("BERT y".into(), vec![Some(10.0)]),
            ],
        };
        t.push_mean_row("mean");
        assert_eq!(t.value("mean", "a"), Some(6.0));
        t.rows.pop();
        t.push_rep_mean_row("rep");
        assert_eq!(t.value("rep", "a"), Some(0.75 * 10.0 + 0.25 * 2.0));
    }

    #[test]
    fn workload_grid_shape() {
        let grid = workload_grid(32);
        assert_eq!(grid.len(), 8);
        assert!(grid.iter().all(|w| w.batch() == 32));
    }

    #[test]
    fn table1_renders() {
        assert!(table1().contains("ResNet50"));
    }

    #[test]
    fn table2_matches_paper_totals() {
        let s = table2();
        assert!(s.contains("1246"));
        assert!(s.contains("1321"));
        assert!(s.contains("area 6.0%"));
        assert!(s.contains("power 11.5%"));
    }
}
