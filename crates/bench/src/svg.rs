//! Minimal grouped-bar-chart SVG emitter for [`crate::FigTable`]s.
//!
//! No dependencies, no styling framework — just enough to eyeball a
//! regenerated figure next to the paper's. The `reproduce` driver writes
//! one SVG per figure alongside the text and CSV outputs.

use crate::FigTable;

/// A qualitative palette (colorblind-safe Okabe-Ito).
const PALETTE: [&str; 9] = [
    "#0072B2", "#E69F00", "#009E73", "#D55E00", "#CC79A7", "#56B4E9", "#F0E442", "#999999",
    "#000000",
];

fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Renders the table as a grouped bar chart.
///
/// Rows become x-axis groups, columns become colored series; blank cells
/// are skipped. Returns a complete standalone SVG document.
#[must_use]
pub fn to_svg(table: &FigTable) -> String {
    let rows = &table.rows;
    let n_groups = rows.len().max(1);
    let n_series = table.columns.len().max(1);

    let max_v = rows
        .iter()
        .flat_map(|(_, cells)| cells.iter().flatten())
        .fold(0.0f64, |a, &b| a.max(b))
        .max(1e-9);

    // Layout.
    let (bar_w, gap, group_gap) = (14.0, 2.0, 24.0);
    let group_w = n_series as f64 * (bar_w + gap) + group_gap;
    let plot_w = n_groups as f64 * group_w;
    let (plot_h, margin_l, margin_t) = (260.0, 60.0, 40.0);
    let legend_h = 18.0 * n_series as f64;
    let width = margin_l + plot_w + 220.0;
    let height = margin_t + plot_h + 120.0_f64.max(legend_h);

    let mut svg = format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{width:.0}\" height=\"{height:.0}\" \
         font-family=\"sans-serif\" font-size=\"11\">\n"
    );
    svg.push_str(&format!(
        "<text x=\"{margin_l}\" y=\"20\" font-size=\"13\">{}</text>\n",
        esc(&table.title)
    ));

    // Y axis with 5 ticks.
    for i in 0..=5 {
        let v = max_v * f64::from(i) / 5.0;
        let y = margin_t + plot_h - plot_h * f64::from(i) / 5.0;
        svg.push_str(&format!(
            "<line x1=\"{margin_l}\" y1=\"{y:.1}\" x2=\"{:.1}\" y2=\"{y:.1}\" \
             stroke=\"#ddd\"/><text x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"end\">{v:.1}</text>\n",
            margin_l + plot_w,
            margin_l - 6.0,
            y + 4.0
        ));
    }

    // Bars and group labels.
    for (g, (label, cells)) in rows.iter().enumerate() {
        let gx = margin_l + g as f64 * group_w;
        for (s, cell) in cells.iter().enumerate() {
            let Some(v) = cell else { continue };
            let h = plot_h * v / max_v;
            let x = gx + s as f64 * (bar_w + gap);
            let y = margin_t + plot_h - h;
            svg.push_str(&format!(
                "<rect x=\"{x:.1}\" y=\"{y:.1}\" width=\"{bar_w}\" height=\"{h:.1}\" \
                 fill=\"{}\"><title>{}: {} = {v:.3}</title></rect>\n",
                PALETTE[s % PALETTE.len()],
                esc(label),
                esc(&table.columns[s]),
            ));
        }
        svg.push_str(&format!(
            "<text x=\"{:.1}\" y=\"{:.1}\" transform=\"rotate(35 {:.1} {:.1})\">{}</text>\n",
            gx,
            margin_t + plot_h + 14.0,
            gx,
            margin_t + plot_h + 14.0,
            esc(label)
        ));
    }

    // Legend.
    let lx = margin_l + plot_w + 20.0;
    for (s, col) in table.columns.iter().enumerate() {
        let y = margin_t + s as f64 * 18.0;
        svg.push_str(&format!(
            "<rect x=\"{lx}\" y=\"{y:.1}\" width=\"12\" height=\"12\" fill=\"{}\"/>\
             <text x=\"{:.1}\" y=\"{:.1}\">{}</text>\n",
            PALETTE[s % PALETTE.len()],
            lx + 18.0,
            y + 10.0,
            esc(col)
        ));
    }
    svg.push_str("</svg>\n");
    svg
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FigTable {
        FigTable {
            title: "test <figure>".into(),
            columns: vec!["A".into(), "B".into()],
            rows: vec![
                ("r1".into(), vec![Some(1.0), Some(2.0)]),
                ("r2".into(), vec![Some(3.0), None]),
            ],
        }
    }

    #[test]
    fn well_formed_and_complete() {
        let svg = to_svg(&sample());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        // 3 bars (one cell blank) + 2 legend swatches.
        assert_eq!(svg.matches("<rect").count(), 5);
        // Title is escaped.
        assert!(svg.contains("test &lt;figure&gt;"));
        assert!(!svg.contains("test <figure>"));
        // Balanced rect tags (self-closing or with title children).
        assert_eq!(svg.matches("<title>").count(), 3);
    }

    #[test]
    fn scales_to_max_value() {
        let svg = to_svg(&sample());
        // The 3.0 bar reaches full plot height (260).
        assert!(svg.contains("height=\"260.0\""), "{svg}");
    }

    #[test]
    fn empty_table_is_valid() {
        let t = FigTable {
            title: "empty".into(),
            columns: vec![],
            rows: vec![],
        };
        let svg = to_svg(&t);
        assert!(svg.contains("</svg>"));
    }
}
