//! Regenerates Table 2: per-MAC ASIC area/power and delay.

fn main() {
    println!("{}", eureka_bench::table2());
}
