//! Compiles representative pruned layers to the serialized Eureka format
//! and reports compression and cycle statistics — the storage-side
//! counterpart of the performance figures (paper §2.3.1/§3: the metadata
//! growth is "more than offset" by dropping zeros).

use eureka_core::CompiledLayer;
use eureka_models::{Benchmark, PruningLevel, Workload};
use eureka_sparse::{gen, rng::DetRng, storage, SparsityPattern};

fn main() {
    println!(
        "{:<28}{:>9}{:>11}{:>12}{:>12}{:>12}{:>10}",
        "layer", "density", "nnz", "dense B", "encoded B", "ideal B", "cycles"
    );
    for (bench, layer_name) in [
        (Benchmark::ResNet50, "conv4_2/3x3"),
        (Benchmark::ResNet50, "conv2_0/3x3"),
        (Benchmark::MobileNetV1, "pw7"),
        (Benchmark::BertSquad, "enc0/q"),
    ] {
        let w = Workload::new(bench, PruningLevel::Moderate, 1);
        let Some((idx, gemm)) = w
            .gemms()
            .into_iter()
            .enumerate()
            .find(|(_, g)| g.name == layer_name)
        else {
            continue;
        };
        let mut rng = DetRng::new(w.seed() ^ idx as u64);
        let pattern = if gemm.clustered {
            gen::clustered_pattern(
                gemm.shape.n.min(256),
                gemm.shape.k.min(768),
                gemm.weight_density,
                16,
                32,
                0.2,
                &mut rng,
            )
        } else {
            gen::uniform_pattern(
                gemm.shape.n.min(256),
                gemm.shape.k.min(2304),
                gemm.weight_density,
                &mut rng,
            )
        };
        let weights = gen::values_for_pattern(&pattern, &mut rng);
        let compiled = CompiledLayer::compile(&weights, 4, 4).expect("compile");
        let s = compiled.stats();
        println!(
            "{:<28}{:>8.0}%{:>11}{:>12}{:>12}{:>12}{:>10}",
            format!("{} {layer_name}", bench.name()),
            100.0 * gemm.weight_density,
            s.nnz,
            s.dense_bytes,
            s.encoded_bytes,
            s.ideal_bits / 8,
            s.total_cycles,
        );
        // Cross-check against the analytic storage model.
        let analytic = storage_bits_check(&pattern);
        let delta = (analytic as f64 - s.ideal_bits as f64).abs() / analytic as f64;
        assert!(delta < 0.02, "storage models disagree by {delta}");
    }
    println!(
        "\n(ideal = bit-packed 16-bit payload + 5-bit col/displaced metadata + rotation fields)"
    );
}

fn storage_bits_check(pattern: &SparsityPattern) -> u64 {
    storage::storage_bits(pattern, storage::Format::EurekaCompacted { factor: 4 })
}
