//! Runs the design-choice ablations (see `eureka_bench::ablations`).

use eureka_bench::ablations;
use eureka_sim::SimConfig;

fn main() {
    let cfg = SimConfig::paper_default();
    println!("{}", ablations::reach_sweep(&cfg).render());
    println!("{}", ablations::window_sweep(&cfg).render());
    println!("{}", ablations::compaction_sweep(&cfg).render());
    println!("{}", ablations::sigma_sweep(&cfg).render());
    println!("{}", ablations::two_sided_energy(&cfg).render());
    println!("{}", ablations::clock_penalty(&cfg).render());
    println!("{}", ablations::sparten_calibration(&cfg).render());
    println!("{}", ablations::batch_sweep(&cfg).render());
}
