//! Regenerates Figure 12: isolation of Eureka's techniques.
//!
//! Pass `--csv` for machine-readable output.

use eureka_sim::SimConfig;

fn main() {
    let cfg = SimConfig::paper_default();
    let table = eureka_bench::figure12(&cfg);
    if std::env::args().any(|a| a == "--csv") {
        print!("{}", table.to_csv());
    } else {
        println!("{}", table.render());
    }
}
