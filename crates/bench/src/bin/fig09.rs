//! Regenerates Figure 9: critical-path distributions before/after the optimal SUDS assignment.
//!
//! Pass `--csv` for machine-readable output.

use eureka_sim::SimConfig;

fn main() {
    let cfg = SimConfig::paper_default();
    let table = eureka_bench::figure9(&cfg);
    if std::env::args().any(|a| a == "--csv") {
        print!("{}", table.to_csv());
    } else {
        println!("{}", table.render());
    }
}
