//! Regenerates Figure 11: performance of all architectures vs Dense.
//!
//! Pass `--csv` for machine-readable output.

use eureka_sim::SimConfig;

fn main() {
    let cfg = SimConfig::paper_default();
    let table = eureka_bench::figure11(&cfg);
    if std::env::args().any(|a| a == "--csv") {
        print!("{}", table.to_csv());
    } else {
        println!("{}", table.render());
    }
}
