//! Regenerates Figure 13: total energy vs Dense, including Dense Bench.
//!
//! Pass `--csv` for machine-readable output.

use eureka_sim::SimConfig;

fn main() {
    let cfg = SimConfig::paper_default();
    let table = eureka_bench::figure13(&cfg);
    if std::env::args().any(|a| a == "--csv") {
        print!("{}", table.to_csv());
    } else {
        println!("{}", table.render());
    }
}
