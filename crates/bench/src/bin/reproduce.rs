//! Reproduces the paper's entire evaluation in one command, writing every
//! table/figure as text and CSV under `results/`.
//!
//! ```console
//! $ cargo run -p eureka-bench --release --bin reproduce [-- <out_dir>]
//! ```

use eureka_bench::{ablations, figure11, figure12, figure13, figure14, figure9, table1, table2};
use eureka_sim::SimConfig;
use std::fs;
use std::path::PathBuf;

fn main() -> std::io::Result<()> {
    let out_dir = std::env::args()
        .nth(1)
        .map_or_else(|| PathBuf::from("results"), PathBuf::from);
    fs::create_dir_all(&out_dir)?;
    let cfg = SimConfig::paper_default();

    let write = |name: &str, text: &str| -> std::io::Result<()> {
        fs::write(out_dir.join(name), text)?;
        println!("wrote {}", out_dir.join(name).display());
        Ok(())
    };

    write("table1.txt", &table1())?;
    write("table2.txt", &table2())?;

    let fig9 = figure9(&cfg);
    write("fig09.txt", &fig9.render())?;
    write("fig09.csv", &fig9.to_csv())?;

    let fig11 = figure11(&cfg);
    write("fig11.txt", &fig11.render())?;
    write("fig11.csv", &fig11.to_csv())?;
    write("fig11.svg", &eureka_bench::svg::to_svg(&fig11))?;

    let fig12 = figure12(&cfg);
    write("fig12.txt", &fig12.render())?;
    write("fig12.csv", &fig12.to_csv())?;
    write("fig12.svg", &eureka_bench::svg::to_svg(&fig12))?;

    let fig13 = figure13(&cfg);
    write("fig13.txt", &fig13.render())?;
    write("fig13.csv", &fig13.to_csv())?;
    write("fig13.svg", &eureka_bench::svg::to_svg(&fig13))?;

    let fig14 = figure14(&cfg);
    write("fig14.txt", &fig14.render())?;
    write("fig14.csv", &fig14.to_csv())?;
    write("fig14.svg", &eureka_bench::svg::to_svg(&fig14))?;

    let mut abl = String::new();
    for t in [
        ablations::reach_sweep(&cfg),
        ablations::window_sweep(&cfg),
        ablations::compaction_sweep(&cfg),
        ablations::sigma_sweep(&cfg),
        ablations::two_sided_energy(&cfg),
        ablations::clock_penalty(&cfg),
        ablations::sparten_calibration(&cfg),
        ablations::batch_sweep(&cfg),
    ] {
        abl.push_str(&t.render());
        abl.push('\n');
    }
    write("ablations.txt", &abl)?;

    println!("\nheadlines:");
    let v = |t: &eureka_bench::FigTable, r: &str, c: &str| t.value(r, c).unwrap_or(f64::NAN);
    println!(
        "  Eureka P=4 mean speedup over Dense : {:.2}x (paper 4.8x)",
        v(&fig11, "mean", "Eureka P=4")
    );
    println!(
        "  Eureka P=4 over Ampere             : {:.2}x (paper 2.4x)",
        v(&fig11, "mean", "Eureka P=4") / v(&fig11, "mean", "Ampere/STC")
    );
    println!(
        "  Eureka P=4 mean energy vs Dense    : {:.2}x less (paper 3.1x)",
        1.0 / v(&fig13, "mean", "Eureka P=4")
    );
    println!(
        "  Eureka P=4 energy vs Ampere        : {:.2}x less (paper 1.8x)",
        v(&fig13, "mean", "Ampere/STC") / v(&fig13, "mean", "Eureka P=4")
    );
    Ok(())
}
