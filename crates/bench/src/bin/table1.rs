//! Regenerates Table 1: the benchmark summary.

fn main() {
    println!("{}", eureka_bench::table1());
}
