//! Serial vs parallel runner on the headline workload (ResNet-50,
//! moderate pruning, Eureka P=4), plus the measured speedup and the
//! telemetry (span-recording) overhead on the serial path.
//!
//! The cache is disabled and cleared so both modes do the full per-layer
//! work every iteration; the determinism contract guarantees they produce
//! bit-identical reports, so any timing gap is pure scheduling.

use criterion::{criterion_group, criterion_main, Criterion};
use eureka_models::{Benchmark, PruningLevel, Workload};
use eureka_sim::{arch, runner, ProfileConfig, Runner, SimConfig, SimJob};
use std::time::Instant;

fn bench_cfg() -> SimConfig {
    SimConfig {
        rowgroup_samples: 48,
        slice_samples: 48,
        act_samples: 32,
        ..SimConfig::paper_default()
    }
}

fn serial_vs_parallel(c: &mut Criterion) {
    let w = Workload::new(Benchmark::ResNet50, PruningLevel::Moderate, 32);
    let cfg = bench_cfg();
    let eureka = arch::eureka_p4();
    let job = SimJob::new(&eureka, &w, cfg);
    runner::clear_cache();

    let mut group = c.benchmark_group("runner/resnet50-moderate");
    group.sample_size(10);
    group.bench_function("serial", |b| {
        b.iter(|| Runner::serial().without_cache().run(&job).unwrap())
    });
    group.bench_function("parallel", |b| {
        b.iter(|| Runner::parallel().without_cache().run(&job).unwrap())
    });
    group.finish();

    // Record the speedup directly in the bench output.
    let time = |r: Runner| {
        let r = r.without_cache();
        let start = Instant::now();
        for _ in 0..5 {
            r.run(&job).unwrap();
        }
        start.elapsed()
    };
    let serial = time(Runner::serial());
    let parallel = time(Runner::parallel());
    println!(
        "runner/resnet50-moderate speedup: {:.2}x ({} workers; serial {:.1} ms, parallel {:.1} ms per run)",
        serial.as_secs_f64() / parallel.as_secs_f64(),
        Runner::parallel().effective_jobs(),
        serial.as_secs_f64() * 1e3 / 5.0,
        parallel.as_secs_f64() * 1e3 / 5.0,
    );
}

/// Serial run with span recording on vs off — the instrumentation budget
/// (acceptance: well under 5% on this workload).
fn telemetry_overhead(c: &mut Criterion) {
    let w = Workload::new(Benchmark::ResNet50, PruningLevel::Moderate, 32);
    let cfg = bench_cfg();
    let eureka = arch::eureka_p4();
    let job = SimJob::new(&eureka, &w, cfg);
    runner::clear_cache();

    let mut group = c.benchmark_group("runner/telemetry");
    group.sample_size(10);
    eureka_obs::span::set_enabled(false);
    group.bench_function("spans-off", |b| {
        b.iter(|| Runner::serial().without_cache().run(&job).unwrap())
    });
    eureka_obs::span::set_enabled(true);
    group.bench_function("spans-on", |b| {
        b.iter(|| {
            let r = Runner::serial().without_cache().run(&job).unwrap();
            eureka_obs::span::clear(); // keep the buffer from growing unbounded
            r
        })
    });
    eureka_obs::span::set_enabled(false);
    eureka_obs::span::clear();
    group.finish();

    let time = |on: bool| {
        eureka_obs::span::set_enabled(on);
        let start = Instant::now();
        for _ in 0..5 {
            Runner::serial().without_cache().run(&job).unwrap();
            eureka_obs::span::clear();
        }
        let t = start.elapsed();
        eureka_obs::span::set_enabled(false);
        t
    };
    let off = time(false);
    let on = time(true);
    println!(
        "runner/telemetry overhead: {:+.2}% (off {:.1} ms, on {:.1} ms per run)",
        100.0 * (on.as_secs_f64() / off.as_secs_f64() - 1.0),
        off.as_secs_f64() * 1e3 / 5.0,
        on.as_secs_f64() * 1e3 / 5.0,
    );
}

/// Plain run vs cycle-attribution profiling on the serial path — the
/// profiler's budget (acceptance: under 5% on this workload). The plain
/// path monomorphizes over the no-op sink, so "off" here is the exact
/// code every non-profiled run executes.
fn profile_overhead(c: &mut Criterion) {
    let w = Workload::new(Benchmark::ResNet50, PruningLevel::Moderate, 32);
    let cfg = bench_cfg();
    let eureka = arch::eureka_p4();
    let job = SimJob::new(&eureka, &w, cfg);
    let pcfg = ProfileConfig::default();
    runner::clear_cache();

    let mut group = c.benchmark_group("runner/profile");
    group.sample_size(10);
    group.bench_function("profiling-off", |b| {
        b.iter(|| Runner::serial().without_cache().run(&job).unwrap())
    });
    group.bench_function("profiling-on", |b| {
        b.iter(|| {
            Runner::serial()
                .without_cache()
                .run_profiled(&job, &pcfg)
                .unwrap()
        })
    });
    group.finish();

    let start = Instant::now();
    for _ in 0..5 {
        Runner::serial().without_cache().run(&job).unwrap();
    }
    let off = start.elapsed();
    let start = Instant::now();
    for _ in 0..5 {
        Runner::serial()
            .without_cache()
            .run_profiled(&job, &pcfg)
            .unwrap();
    }
    let on = start.elapsed();
    println!(
        "runner/profile overhead: {:+.2}% (off {:.1} ms, profiled {:.1} ms per run)",
        100.0 * (on.as_secs_f64() / off.as_secs_f64() - 1.0),
        off.as_secs_f64() * 1e3 / 5.0,
        on.as_secs_f64() * 1e3 / 5.0,
    );
}

criterion_group!(
    benches,
    serial_vs_parallel,
    telemetry_overhead,
    profile_overhead
);
criterion_main!(benches);
