//! Serial vs parallel runner on the headline workload (ResNet-50,
//! moderate pruning, Eureka P=4), plus the measured speedup.
//!
//! The cache is disabled and cleared so both modes do the full per-layer
//! work every iteration; the determinism contract guarantees they produce
//! bit-identical reports, so any timing gap is pure scheduling.

use criterion::{criterion_group, criterion_main, Criterion};
use eureka_models::{Benchmark, PruningLevel, Workload};
use eureka_sim::{arch, runner, Runner, SimConfig, SimJob};
use std::time::Instant;

fn bench_cfg() -> SimConfig {
    SimConfig {
        rowgroup_samples: 48,
        slice_samples: 48,
        act_samples: 32,
        ..SimConfig::paper_default()
    }
}

fn serial_vs_parallel(c: &mut Criterion) {
    let w = Workload::new(Benchmark::ResNet50, PruningLevel::Moderate, 32);
    let cfg = bench_cfg();
    let eureka = arch::eureka_p4();
    let job = SimJob::new(&eureka, &w, cfg);
    runner::clear_cache();

    let mut group = c.benchmark_group("runner/resnet50-moderate");
    group.sample_size(10);
    group.bench_function("serial", |b| {
        b.iter(|| Runner::serial().without_cache().run(&job).unwrap())
    });
    group.bench_function("parallel", |b| {
        b.iter(|| Runner::parallel().without_cache().run(&job).unwrap())
    });
    group.finish();

    // Record the speedup directly in the bench output.
    let time = |r: Runner| {
        let start = Instant::now();
        for _ in 0..5 {
            r.without_cache().run(&job).unwrap();
        }
        start.elapsed()
    };
    let serial = time(Runner::serial());
    let parallel = time(Runner::parallel());
    println!(
        "runner/resnet50-moderate speedup: {:.2}x ({} workers; serial {:.1} ms, parallel {:.1} ms per run)",
        serial.as_secs_f64() / parallel.as_secs_f64(),
        Runner::parallel().effective_jobs(),
        serial.as_secs_f64() * 1e3 / 5.0,
        parallel.as_secs_f64() * 1e3 / 5.0,
    );
}

criterion_group!(benches, serial_vs_parallel);
criterion_main!(benches);
