//! Micro-benchmarks of the core algorithmic kernels: SUDS work assignment,
//! systolic scheduling, FP16 arithmetic, and the functional executor.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eureka_core::schedule::{schedule_grouped, schedule_natural, SystolicConfig};
use eureka_core::suds::{self, DisplacedTile};
use eureka_core::{exec, CompactedTile};
use eureka_fp16::mac::{self, MacUnit};
use eureka_fp16::{csa, Prepared, F16};
use eureka_sparse::bitmask::MaskedRow;
use eureka_sparse::{gen, rng::DetRng, AlignedTile, SparsityPattern, TilePattern};
use std::hint::black_box;

fn sample_lens(count: usize, p: usize, q: usize, density: f64, seed: u64) -> Vec<Vec<usize>> {
    let mut rng = DetRng::new(seed);
    (0..count)
        .map(|_| {
            (0..p)
                .map(|_| (0..q).filter(|_| rng.bernoulli(density)).count())
                .collect()
        })
        .collect()
}

fn bench_suds(c: &mut Criterion) {
    let mut group = c.benchmark_group("suds_assignment");
    for (p, q) in [(4usize, 16usize), (8, 32), (16, 64)] {
        let lens = sample_lens(256, p, q, 0.13, 42);
        group.bench_with_input(
            BenchmarkId::new("optimal", format!("{p}x{q}")),
            &lens,
            |b, lens| {
                b.iter(|| {
                    for l in lens {
                        black_box(suds::optimize(l));
                    }
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("greedy", format!("{p}x{q}")),
            &lens,
            |b, lens| {
                b.iter(|| {
                    for l in lens {
                        black_box(suds::greedy(l));
                    }
                });
            },
        );
    }
    group.finish();
}

fn bench_suds_lut(c: &mut Criterion) {
    // The memoized small-tile lookup vs the polynomial algorithm.
    let lens = sample_lens(4096, 4, 16, 0.13, 99);
    let mut group = c.benchmark_group("suds_lut");
    // Warm the table outside the measurement.
    let _ = eureka_core::suds::lut::optimal_k(&[1, 2, 3, 4]);
    group.bench_function("lut_4096_tiles", |b| {
        b.iter(|| {
            for l in &lens {
                black_box(eureka_core::suds::lut::optimal_k(l));
            }
        });
    });
    group.bench_function("algorithm_4096_tiles", |b| {
        b.iter(|| {
            for l in &lens {
                black_box(suds::optimize(l));
            }
        });
    });
    group.finish();
}

fn bench_scheduling(c: &mut Criterion) {
    let mut rng = DetRng::new(7);
    let times: Vec<u64> = (0..4096).map(|_| 1 + rng.next_below(4) as u64).collect();
    let cfg = SystolicConfig::paper_default();
    let mut group = c.benchmark_group("systolic_scheduling");
    group.bench_function("natural_4096_tiles", |b| {
        b.iter(|| black_box(schedule_natural(&times, &cfg)));
    });
    group.bench_function("grouped_4096_tiles", |b| {
        b.iter(|| black_box(schedule_grouped(&times, &cfg)));
    });
    group.finish();
}

fn bench_fp16(c: &mut Criterion) {
    let mut rng = DetRng::new(11);
    let vals: Vec<F16> = (0..1024)
        .map(|_| F16::from_f64(rng.next_gaussian()))
        .collect();
    let mut group = c.benchmark_group("fp16");
    group.bench_function("mul_1024", |b| {
        b.iter(|| {
            let mut acc = F16::ZERO;
            for w in vals.windows(2) {
                acc = black_box(w[0].mul_hw(w[1]));
            }
            acc
        });
    });
    group.bench_function("csa_add3_1024", |b| {
        b.iter(|| {
            let mut acc = F16::ZERO;
            for w in vals.windows(2) {
                acc = black_box(csa::add3(acc, w[0], w[1]));
            }
            acc
        });
    });
    group.finish();
}

fn bench_mask_intersection(c: &mut Criterion) {
    // Word-parallel popcount intersection (the DSTC chunk-match hot
    // path) against the per-position scalar walk it replaced.
    let mut rng = DetRng::new(17);
    let rows: Vec<(MaskedRow, MaskedRow, SparsityPattern, SparsityPattern)> = (0..256)
        .map(|_| {
            let a = SparsityPattern::from_fn(1, 128, |_, _| rng.bernoulli(0.13));
            let b = SparsityPattern::from_fn(1, 128, |_, _| rng.bernoulli(0.25));
            (
                MaskedRow::from_pattern(&a, 0),
                MaskedRow::from_pattern(&b, 0),
                a,
                b,
            )
        })
        .collect();
    let mut group = c.benchmark_group("mask_intersection");
    group.bench_function("scalar_256_rows", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for (_, _, a, b) in &rows {
                for col in 0..128 {
                    if a.get(0, col) && b.get(0, col) {
                        total += 1;
                    }
                }
            }
            black_box(total)
        });
    });
    group.bench_function("word_parallel_256_rows", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for (a, b, _, _) in &rows {
                total += a.total_matches(b);
            }
            black_box(total)
        });
    });
    group.finish();
}

fn bench_mac_batched(c: &mut Criterion) {
    // The batched dot product (operands classified once, up front)
    // against the element-wise MAC chain that re-classifies each term.
    let mut rng = DetRng::new(19);
    let a: Vec<F16> = (0..256)
        .map(|_| F16::from_f64(rng.next_gaussian()))
        .collect();
    let b: Vec<F16> = (0..256)
        .map(|_| F16::from_f64(rng.next_gaussian()))
        .collect();
    let ap: Vec<Prepared> = a.iter().map(|&x| Prepared::new(x)).collect();
    let bp: Vec<Prepared> = b.iter().map(|&x| Prepared::new(x)).collect();
    let mut group = c.benchmark_group("mac_dot256");
    group.bench_function("elementwise", |bch| {
        bch.iter(|| {
            let mut unit = MacUnit::new();
            for (&x, &y) in a.iter().zip(&b) {
                unit.fma(x, y);
            }
            black_box(unit.value())
        });
    });
    group.bench_function("batched", |bch| {
        bch.iter(|| black_box(mac::dot_hw(&ap, &bp)));
    });
    group.finish();
}

fn bench_executor(c: &mut Criterion) {
    let mut rng = DetRng::new(23);
    let pattern = SparsityPattern::from_fn(4, 16, |_, _| rng.bernoulli(0.2));
    let tile = TilePattern::from_pattern(&pattern, 0, 0, 4, 16).unwrap();
    let plan = suds::optimize(&tile.row_lens());
    let schedule = DisplacedTile::from_plan(&AlignedTile::from_tile(&tile), &plan).unwrap();
    let weights = gen::integer_values_for_pattern(&pattern, &mut rng);
    let act_pattern = SparsityPattern::from_fn(16, 8, |_, _| true);
    let acts = gen::integer_values_for_pattern(&act_pattern, &mut rng);
    c.bench_function("functional_executor_4x16_tile", |b| {
        b.iter(|| black_box(exec::execute(&schedule, &weights, &acts).unwrap()));
    });
}

fn bench_compaction(c: &mut Criterion) {
    let mut rng = DetRng::new(31);
    let tiles: Vec<TilePattern> = (0..256)
        .map(|_| {
            let p = SparsityPattern::from_fn(4, 16, |_, _| rng.bernoulli(0.13));
            TilePattern::from_pattern(&p, 0, 0, 4, 16).unwrap()
        })
        .collect();
    c.bench_function("compaction_256_tiles", |b| {
        b.iter(|| {
            for t in &tiles {
                black_box(CompactedTile::new(t, 4).unwrap());
            }
        });
    });
}

criterion_group!(
    kernels,
    bench_suds,
    bench_suds_lut,
    bench_scheduling,
    bench_fp16,
    bench_mask_intersection,
    bench_mac_batched,
    bench_executor,
    bench_compaction
);
criterion_main!(kernels);
