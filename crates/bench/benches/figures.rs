//! Criterion benches: one per reproduced table/figure.
//!
//! Each bench times the full experiment harness at a reduced sampling
//! configuration (identical model, lighter statistics) so the suite stays
//! fast; the `src/bin/*` binaries run the paper-scale configuration.

use criterion::{criterion_group, criterion_main, Criterion};
use eureka_sim::SimConfig;
use std::hint::black_box;

/// Reduced-sampling configuration for benchmarking the harness itself.
fn bench_cfg() -> SimConfig {
    SimConfig {
        rowgroup_samples: 8,
        slice_samples: 8,
        act_samples: 8,
        ..SimConfig::paper_default()
    }
}

fn bench_table1(c: &mut Criterion) {
    c.bench_function("table1_benchmarks", |b| {
        b.iter(|| black_box(eureka_bench::table1()));
    });
}

fn bench_table2(c: &mut Criterion) {
    c.bench_function("table2_area_power", |b| {
        b.iter(|| black_box(eureka_bench::table2()));
    });
}

fn bench_fig09(c: &mut Criterion) {
    let cfg = bench_cfg();
    c.bench_function("fig09_critical_path_distribution", |b| {
        b.iter(|| black_box(eureka_bench::figure9(&cfg)));
    });
}

fn bench_fig11(c: &mut Criterion) {
    let cfg = bench_cfg();
    let mut group = c.benchmark_group("fig11_performance");
    group.sample_size(10);
    group.bench_function("all_archs_all_benchmarks", |b| {
        b.iter(|| black_box(eureka_bench::figure11(&cfg)));
    });
    group.finish();
}

fn bench_fig12(c: &mut Criterion) {
    let cfg = bench_cfg();
    let mut group = c.benchmark_group("fig12_isolation");
    group.sample_size(10);
    group.bench_function("technique_progression", |b| {
        b.iter(|| black_box(eureka_bench::figure12(&cfg)));
    });
    group.finish();
}

fn bench_fig13(c: &mut Criterion) {
    let cfg = bench_cfg();
    let mut group = c.benchmark_group("fig13_energy");
    group.sample_size(10);
    group.bench_function("all_archs_all_benchmarks", |b| {
        b.iter(|| black_box(eureka_bench::figure13(&cfg)));
    });
    group.finish();
}

fn bench_fig14(c: &mut Criterion) {
    let cfg = bench_cfg();
    let mut group = c.benchmark_group("fig14_array_size");
    group.sample_size(10);
    group.bench_function("five_geometries", |b| {
        b.iter(|| black_box(eureka_bench::figure14(&cfg)));
    });
    group.finish();
}

fn bench_ablations(c: &mut Criterion) {
    let cfg = bench_cfg();
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    group.bench_function("reach_sweep", |b| {
        b.iter(|| black_box(eureka_bench::ablations::reach_sweep(&cfg)));
    });
    group.bench_function("compaction_sweep", |b| {
        b.iter(|| black_box(eureka_bench::ablations::compaction_sweep(&cfg)));
    });
    group.finish();
}

criterion_group!(
    figures,
    bench_table1,
    bench_table2,
    bench_fig09,
    bench_fig11,
    bench_fig12,
    bench_fig13,
    bench_fig14,
    bench_ablations
);
criterion_main!(figures);
