//! Bit-level binary16 multiplication.
//!
//! The tensor-core MAC multiplies two FP16 operands exactly (an 11×11-bit
//! significand product fits in 22 bits) and rounds once to FP16, which is
//! what this module models.

use crate::bits::{classify, round_pack, zero, Class};
use crate::F16;

/// A binary16 operand with its bit-field decomposition precomputed.
///
/// [`classify`] (sign/exponent/significand unpacking with subnormal
/// normalization) is the per-operand front-end of every multiply. In the
/// executor's `cycle × p × m` loop the same activations and weights are
/// multiplied against many partners, so decomposing each operand once and
/// reusing it via [`mul_prepared`] removes the redundant unpacking while
/// keeping results bit-identical to [`mul`].
///
/// # Examples
///
/// ```
/// use eureka_fp16::{arith, F16};
/// let a = arith::Prepared::new(F16::from_f32(-3.0));
/// let b = arith::Prepared::new(F16::from_f32(0.5));
/// assert_eq!(arith::mul_prepared(a, b), arith::mul(a.value(), b.value()));
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Prepared {
    raw: F16,
    class: Class,
}

impl Prepared {
    /// Decomposes `x` once for repeated multiplication.
    #[must_use]
    pub fn new(x: F16) -> Self {
        Prepared {
            raw: x,
            class: classify(x),
        }
    }

    /// The original binary16 value.
    #[must_use]
    pub fn value(self) -> F16 {
        self.raw
    }
}

impl From<F16> for Prepared {
    fn from(x: F16) -> Self {
        Prepared::new(x)
    }
}

impl Default for Prepared {
    fn default() -> Self {
        Prepared::new(F16::ZERO)
    }
}

/// Multiplies two pre-decomposed operands — bit-identical to
/// [`mul`]`(a.value(), b.value())` (the differential suite in
/// `tests/kernel_equivalence.rs` proves this exhaustively over the
/// special-value grid), with the per-operand [`classify`] hoisted out.
#[must_use]
pub fn mul_prepared(a: Prepared, b: Prepared) -> F16 {
    mul_classified(a.class, b.class)
}

/// Multiplies two binary16 values with round-to-nearest-even.
///
/// Special cases follow IEEE 754: `NaN * x = NaN`, `inf * 0 = NaN`,
/// `inf * finite = inf` with the XOR of the signs, and zero results carry
/// the XOR of the signs.
///
/// # Examples
///
/// ```
/// use eureka_fp16::{arith, F16};
/// let p = arith::mul(F16::from_f32(-3.0), F16::from_f32(0.5));
/// assert_eq!(p.to_f32(), -1.5);
/// ```
#[must_use]
pub fn mul(a: F16, b: F16) -> F16 {
    mul_classified(classify(a), classify(b))
}

/// The shared multiply datapath over pre-classified operands.
fn mul_classified(ca: Class, cb: Class) -> F16 {
    match (ca, cb) {
        (Class::Nan, _) | (_, Class::Nan) => F16::NAN,
        (Class::Inf { .. }, Class::Zero { .. }) | (Class::Zero { .. }, Class::Inf { .. }) => {
            F16::NAN
        }
        (Class::Inf { sign: sa }, Class::Inf { sign: sb })
        | (Class::Inf { sign: sa }, Class::Finite(crate::bits::Unpacked { sign: sb, .. }))
        | (Class::Finite(crate::bits::Unpacked { sign: sa, .. }), Class::Inf { sign: sb }) => {
            if sa ^ sb {
                F16::NEG_INFINITY
            } else {
                F16::INFINITY
            }
        }
        (Class::Zero { sign: sa }, Class::Zero { sign: sb })
        | (Class::Zero { sign: sa }, Class::Finite(crate::bits::Unpacked { sign: sb, .. }))
        | (Class::Finite(crate::bits::Unpacked { sign: sa, .. }), Class::Zero { sign: sb }) => {
            zero(sa ^ sb)
        }
        (Class::Finite(ua), Class::Finite(ub)) => {
            let sign = ua.sign ^ ub.sign;
            // Exact 22-bit product of the 11-bit significands. Each
            // significand's leading bit is worth 2^exp, i.e. the value is
            // sig * 2^(exp - 10), so the product is
            // p * 2^(ea + eb - 20) = p * 2^((ea + eb) - guard - 10) with
            // guard = 10.
            let p = u64::from(ua.sig) * u64::from(ub.sig);
            round_pack(sign, ua.exp + ub.exp, p, 10)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference_mul(a: F16, b: F16) -> F16 {
        // f64 holds the exact product of two f16 values, so a single
        // narrowing conversion performs correct rounding.
        F16::from_f64(a.to_f64() * b.to_f64())
    }

    #[test]
    fn simple_products() {
        assert_eq!(mul(F16::from_f32(2.0), F16::from_f32(3.0)).to_f32(), 6.0);
        assert_eq!(mul(F16::from_f32(-2.0), F16::from_f32(3.0)).to_f32(), -6.0);
        assert_eq!(mul(F16::ONE, F16::MAX), F16::MAX);
    }

    #[test]
    fn specials() {
        assert!(mul(F16::NAN, F16::ONE).is_nan());
        assert!(mul(F16::INFINITY, F16::ZERO).is_nan());
        assert_eq!(mul(F16::INFINITY, F16::NEG_ONE), F16::NEG_INFINITY);
        assert_eq!(mul(F16::NEG_ZERO, F16::ONE), F16::NEG_ZERO);
        assert_eq!(mul(F16::NEG_ZERO, F16::NEG_ONE), F16::ZERO);
    }

    #[test]
    fn overflow_and_underflow() {
        assert_eq!(mul(F16::MAX, F16::from_f32(2.0)), F16::INFINITY);
        assert_eq!(
            mul(F16::MIN_POSITIVE_SUBNORMAL, F16::from_f32(0.5)),
            F16::ZERO
        );
        // Subnormal times two stays exact.
        assert_eq!(
            mul(F16::MIN_POSITIVE_SUBNORMAL, F16::from_f32(2.0)).to_f32(),
            2.0 * F16::MIN_POSITIVE_SUBNORMAL.to_f32()
        );
    }

    #[test]
    fn matches_reference_on_grid() {
        // A deterministic sweep over a mixed grid of bit patterns, covering
        // normals, subnormals and sign combinations.
        let mut patterns = vec![0u16, 1, 2, 0x03FF, 0x0400, 0x0401, 0x3C00, 0x7BFF];
        for i in 0..200u16 {
            patterns.push(i.wrapping_mul(331).wrapping_add(17) & 0x7FFF);
        }
        for &pa in &patterns {
            for &pb in &patterns {
                for signs in 0..4u16 {
                    let a = F16::from_bits(pa | ((signs & 1) << 15));
                    let b = F16::from_bits(pb | ((signs >> 1) << 15));
                    let got = mul(a, b);
                    let want = reference_mul(a, b);
                    assert_eq!(
                        got.to_bits(),
                        want.to_bits(),
                        "a={a:?} b={b:?} got={got:?} want={want:?}"
                    );
                }
            }
        }
    }
}
