//! Software IEEE-754 binary16 ("half precision") arithmetic for the Eureka
//! reproduction.
//!
//! Tensor cores operate on FP16 operands. The Eureka paper (MICRO 2023)
//! augments each multiply-accumulate unit (MAC) with a *three-input* adder —
//! implemented as a carry-save adder with floating-point mantissa alignment —
//! so that a partial product displaced to the MAC row below can be routed
//! back up and folded into the original row's accumulator in a single
//! addition (paper §3.1, Figure 8).
//!
//! This crate provides:
//!
//! * [`F16`] — a bit-exact binary16 value type with conversions, comparisons
//!   and formatting;
//! * bit-level [`mul`](F16::mul_hw) and the three-input aligned adder
//!   [`csa`](csa::add3) that model the hardware datapath;
//! * [`mac::MacUnit`] — a functional MAC with the SUDS third input, used by
//!   `eureka-core`'s executor to prove that displaced schedules compute the
//!   same output as a dense matrix multiplication.
//!
//! # Examples
//!
//! ```
//! use eureka_fp16::F16;
//!
//! let a = F16::from_f32(1.5);
//! let b = F16::from_f32(2.0);
//! assert_eq!((a * b).to_f32(), 3.0);
//!
//! // The SUDS three-input adder: acc + local product + product from below.
//! let sum = eureka_fp16::csa::add3(a, b, F16::from_f32(0.25));
//! assert_eq!(sum.to_f32(), 3.75);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arith;
mod bits;
mod convert;
pub mod csa;
pub mod mac;

pub use arith::Prepared;
pub use mac::MacUnit;

use core::cmp::Ordering;
use core::fmt;
use core::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// An IEEE-754 binary16 floating-point value.
///
/// The representation is the raw 16-bit encoding: 1 sign bit, 5 exponent
/// bits (bias 15), 10 fraction bits. All arithmetic provided by this crate
/// is performed at the bit level, modelling the tensor-core datapath, and is
/// validated against an `f64` reference in the test suite.
///
/// # Examples
///
/// ```
/// use eureka_fp16::F16;
///
/// let x = F16::from_f32(0.333_25);
/// assert!((x.to_f32() - 0.333_25).abs() < 1e-3);
/// assert!(F16::INFINITY.is_infinite());
/// ```
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct F16(u16);

impl F16 {
    /// Positive zero.
    pub const ZERO: F16 = F16(0x0000);
    /// Negative zero.
    pub const NEG_ZERO: F16 = F16(0x8000);
    /// The value `1.0`.
    pub const ONE: F16 = F16(0x3C00);
    /// The value `-1.0`.
    pub const NEG_ONE: F16 = F16(0xBC00);
    /// Positive infinity.
    pub const INFINITY: F16 = F16(0x7C00);
    /// Negative infinity.
    pub const NEG_INFINITY: F16 = F16(0xFC00);
    /// A quiet NaN.
    pub const NAN: F16 = F16(0x7E00);
    /// Largest finite value, `65504.0`.
    pub const MAX: F16 = F16(0x7BFF);
    /// Smallest finite value, `-65504.0`.
    pub const MIN: F16 = F16(0xFBFF);
    /// Smallest positive normal value, `2^-14`.
    pub const MIN_POSITIVE: F16 = F16(0x0400);
    /// Smallest positive subnormal value, `2^-24`.
    pub const MIN_POSITIVE_SUBNORMAL: F16 = F16(0x0001);
    /// The machine epsilon, `2^-10`.
    pub const EPSILON: F16 = F16(0x1400);

    /// Creates a value from its raw IEEE-754 binary16 encoding.
    ///
    /// # Examples
    ///
    /// ```
    /// use eureka_fp16::F16;
    /// assert_eq!(F16::from_bits(0x3C00), F16::ONE);
    /// ```
    #[inline]
    #[must_use]
    pub const fn from_bits(bits: u16) -> Self {
        F16(bits)
    }

    /// Returns the raw IEEE-754 binary16 encoding.
    #[inline]
    #[must_use]
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Converts an `f32` to binary16 with round-to-nearest-even.
    #[inline]
    #[must_use]
    pub fn from_f32(x: f32) -> Self {
        convert::f32_to_f16(x)
    }

    /// Converts an `f64` to binary16 with round-to-nearest-even.
    ///
    /// This conversion rounds once from the full `f64` value, avoiding the
    /// double-rounding hazard of going through `f32`.
    #[inline]
    #[must_use]
    pub fn from_f64(x: f64) -> Self {
        convert::f64_to_f16(x)
    }

    /// Converts to `f32` (always exact).
    #[inline]
    #[must_use]
    pub fn to_f32(self) -> f32 {
        convert::f16_to_f32(self)
    }

    /// Converts to `f64` (always exact).
    #[inline]
    #[must_use]
    pub fn to_f64(self) -> f64 {
        f64::from(self.to_f32())
    }

    /// Returns `true` if the value is NaN.
    #[inline]
    #[must_use]
    pub const fn is_nan(self) -> bool {
        (self.0 & 0x7C00) == 0x7C00 && (self.0 & 0x03FF) != 0
    }

    /// Returns `true` if the value is positive or negative infinity.
    #[inline]
    #[must_use]
    pub const fn is_infinite(self) -> bool {
        (self.0 & 0x7FFF) == 0x7C00
    }

    /// Returns `true` if the value is neither infinite nor NaN.
    #[inline]
    #[must_use]
    pub const fn is_finite(self) -> bool {
        (self.0 & 0x7C00) != 0x7C00
    }

    /// Returns `true` if the value is positive or negative zero.
    #[inline]
    #[must_use]
    pub const fn is_zero(self) -> bool {
        (self.0 & 0x7FFF) == 0
    }

    /// Returns `true` if the value is subnormal (nonzero with a zero
    /// exponent field).
    #[inline]
    #[must_use]
    pub const fn is_subnormal(self) -> bool {
        (self.0 & 0x7C00) == 0 && (self.0 & 0x03FF) != 0
    }

    /// Returns `true` if the sign bit is set (including `-0.0` and NaNs with
    /// a negative sign).
    #[inline]
    #[must_use]
    pub const fn is_sign_negative(self) -> bool {
        (self.0 & 0x8000) != 0
    }

    /// Returns the absolute value.
    #[inline]
    #[must_use]
    pub const fn abs(self) -> Self {
        F16(self.0 & 0x7FFF)
    }

    /// Returns `true` for normal (not zero, subnormal, infinite or NaN)
    /// values.
    #[inline]
    #[must_use]
    pub const fn is_normal(self) -> bool {
        let exp = self.0 & 0x7C00;
        exp != 0 && exp != 0x7C00
    }

    /// The next representable value toward `+∞` (NaN propagates;
    /// `MAX.next_up()` is infinity).
    #[must_use]
    pub fn next_up(self) -> Self {
        if self.is_nan() || self == F16::INFINITY {
            return self;
        }
        if self.is_zero() {
            return F16::MIN_POSITIVE_SUBNORMAL;
        }
        if self.is_sign_negative() {
            F16(self.0 - 1)
        } else {
            F16(self.0 + 1)
        }
    }

    /// The next representable value toward `-∞`.
    #[must_use]
    pub fn next_down(self) -> Self {
        if self.is_nan() || self == F16::NEG_INFINITY {
            return self;
        }
        if self.is_zero() {
            return -F16::MIN_POSITIVE_SUBNORMAL;
        }
        if self.is_sign_negative() {
            F16(self.0 + 1)
        } else {
            F16(self.0 - 1)
        }
    }

    /// Hardware-path multiplication (bit-level, round-to-nearest-even).
    ///
    /// Equivalent to the `*` operator; exposed under this name so call sites
    /// in the simulator can make the datapath explicit.
    #[inline]
    #[must_use]
    pub fn mul_hw(self, rhs: Self) -> Self {
        arith::mul(self, rhs)
    }

    /// Hardware-path addition: the three-input carry-save adder with the
    /// third input forced to zero (paper §3.1 case 1).
    #[inline]
    #[must_use]
    pub fn add_hw(self, rhs: Self) -> Self {
        csa::add3(self, rhs, F16::ZERO)
    }

    /// IEEE total ordering (like [`f32::total_cmp`]).
    ///
    /// # Examples
    ///
    /// ```
    /// use eureka_fp16::F16;
    /// assert!(F16::NEG_ZERO.total_cmp(F16::ZERO).is_lt());
    /// ```
    #[must_use]
    pub fn total_cmp(self, other: Self) -> Ordering {
        let mut a = i32::from(self.0 as i16);
        let mut b = i32::from(other.0 as i16);
        a ^= (((a >> 15) as u32) >> 17) as i32;
        b ^= (((b >> 15) as u32) >> 17) as i32;
        a.cmp(&b)
    }

    /// Number of distinct representable values between `self` and `other`,
    /// measured in units in the last place. NaNs and differing-sign pairs
    /// return `u32::MAX`.
    ///
    /// Useful for tolerance-based comparisons in tests.
    #[must_use]
    pub fn ulp_distance(self, other: Self) -> u32 {
        if self.is_nan() || other.is_nan() {
            return u32::MAX;
        }
        let to_ordered = |v: F16| -> i32 {
            let b = i32::from(v.0 as i16);
            if b < 0 {
                -(b & 0x7FFF)
            } else {
                b
            }
        };
        let a = to_ordered(self);
        let b = to_ordered(other);
        a.abs_diff(b)
    }
}

impl PartialOrd for F16 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        self.to_f32().partial_cmp(&other.to_f32())
    }
}

impl fmt::Debug for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "F16({})", self.to_f32())
    }
}

impl fmt::Display for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.to_f32(), f)
    }
}

impl From<f32> for F16 {
    fn from(x: f32) -> Self {
        F16::from_f32(x)
    }
}

impl From<F16> for f32 {
    fn from(x: F16) -> Self {
        x.to_f32()
    }
}

impl From<F16> for f64 {
    fn from(x: F16) -> Self {
        x.to_f64()
    }
}

impl From<i8> for F16 {
    fn from(x: i8) -> Self {
        F16::from_f32(f32::from(x))
    }
}

impl Neg for F16 {
    type Output = F16;
    fn neg(self) -> F16 {
        F16(self.0 ^ 0x8000)
    }
}

impl Add for F16 {
    type Output = F16;
    fn add(self, rhs: F16) -> F16 {
        self.add_hw(rhs)
    }
}

impl Sub for F16 {
    type Output = F16;
    fn sub(self, rhs: F16) -> F16 {
        self.add_hw(-rhs)
    }
}

impl Mul for F16 {
    type Output = F16;
    fn mul(self, rhs: F16) -> F16 {
        arith::mul(self, rhs)
    }
}

impl AddAssign for F16 {
    fn add_assign(&mut self, rhs: F16) {
        *self = *self + rhs;
    }
}

impl SubAssign for F16 {
    fn sub_assign(&mut self, rhs: F16) {
        *self = *self - rhs;
    }
}

impl MulAssign for F16 {
    fn mul_assign(&mut self, rhs: F16) {
        *self = *self * rhs;
    }
}

impl core::iter::Sum for F16 {
    fn sum<I: Iterator<Item = F16>>(iter: I) -> F16 {
        iter.fold(F16::ZERO, |acc, x| acc + x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_roundtrip() {
        assert_eq!(F16::ONE.to_f32(), 1.0);
        assert_eq!(F16::NEG_ONE.to_f32(), -1.0);
        assert_eq!(F16::MAX.to_f32(), 65504.0);
        assert_eq!(F16::MIN.to_f32(), -65504.0);
        assert_eq!(F16::MIN_POSITIVE.to_f32(), 2.0_f32.powi(-14));
        assert_eq!(F16::MIN_POSITIVE_SUBNORMAL.to_f32(), 2.0_f32.powi(-24));
        assert_eq!(F16::EPSILON.to_f32(), 2.0_f32.powi(-10));
    }

    #[test]
    fn classification() {
        assert!(F16::NAN.is_nan());
        assert!(!F16::NAN.is_finite());
        assert!(F16::INFINITY.is_infinite());
        assert!(F16::NEG_INFINITY.is_infinite());
        assert!(F16::ZERO.is_zero());
        assert!(F16::NEG_ZERO.is_zero());
        assert!(F16::MIN_POSITIVE_SUBNORMAL.is_subnormal());
        assert!(!F16::MIN_POSITIVE.is_subnormal());
        assert!(F16::NEG_ONE.is_sign_negative());
    }

    #[test]
    fn negation_flips_sign_bit_only() {
        assert_eq!((-F16::ONE).to_bits(), 0xBC00);
        assert_eq!((-F16::ZERO).to_bits(), 0x8000);
        assert_eq!((-F16::NAN).abs().to_bits(), F16::NAN.to_bits());
    }

    #[test]
    fn total_cmp_orders_all_values() {
        let vals = [
            F16::NEG_INFINITY,
            F16::MIN,
            F16::NEG_ONE,
            F16::NEG_ZERO,
            F16::ZERO,
            F16::MIN_POSITIVE_SUBNORMAL,
            F16::ONE,
            F16::MAX,
            F16::INFINITY,
        ];
        for w in vals.windows(2) {
            assert!(w[0].total_cmp(w[1]).is_lt(), "{:?} < {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn ulp_distance_basics() {
        assert_eq!(F16::ONE.ulp_distance(F16::ONE), 0);
        let next = F16::from_bits(F16::ONE.to_bits() + 1);
        assert_eq!(F16::ONE.ulp_distance(next), 1);
        assert_eq!(F16::NAN.ulp_distance(F16::ONE), u32::MAX);
    }

    #[test]
    fn normality_and_neighbours() {
        assert!(F16::ONE.is_normal());
        assert!(!F16::ZERO.is_normal());
        assert!(!F16::MIN_POSITIVE_SUBNORMAL.is_normal());
        assert!(!F16::INFINITY.is_normal());
        assert!(!F16::NAN.is_normal());

        assert_eq!(F16::ZERO.next_up(), F16::MIN_POSITIVE_SUBNORMAL);
        assert_eq!(F16::ZERO.next_down(), -F16::MIN_POSITIVE_SUBNORMAL);
        assert_eq!(F16::MAX.next_up(), F16::INFINITY);
        assert_eq!(F16::INFINITY.next_up(), F16::INFINITY);
        assert!(F16::NAN.next_up().is_nan());
        // next_up/next_down are inverses away from zero crossings.
        let x = F16::from_f32(1.5);
        assert_eq!(x.next_up().next_down(), x);
        assert!((-x).next_up().to_f32() > -1.5);
        assert_eq!(F16::NEG_INFINITY.next_down(), F16::NEG_INFINITY);
    }

    #[test]
    fn display_and_debug_nonempty() {
        assert_eq!(format!("{}", F16::ONE), "1");
        assert_eq!(format!("{:?}", F16::ZERO), "F16(0)");
    }

    #[test]
    fn sum_iterator() {
        let s: F16 = (1..=4).map(|i| F16::from(i as i8)).sum();
        assert_eq!(s.to_f32(), 10.0);
    }
}
