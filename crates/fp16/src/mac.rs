//! A functional multiply-accumulate unit with the SUDS third input.
//!
//! Models one MAC of the tensor core (paper Figure 8). Per cycle a MAC can:
//!
//! * multiply its stationary-side operand with the broadcast operand;
//! * fold the product into its accumulator together with an optional
//!   *product from below* (a displaced multiplication executed by the MAC in
//!   the row below whose result is routed one hop up);
//! * or forward its own product *up* instead of accumulating locally (when
//!   the value it multiplied was displaced from the row above).

use crate::arith::{mul_prepared, Prepared};
use crate::bits::{classify, round_pack, zero, Class};
use crate::{csa, F16};

/// Batched tensor-core dot product over pre-decomposed operands.
///
/// Processes one tile row's products in a single pass: each pair is
/// multiplied by the hardware multiply (one rounding, via
/// [`mul_prepared`]) and folded into the accumulator through the
/// three-input adder with the third port gated — bit-identical to the
/// element-wise reference
///
/// ```text
/// let mut mac = MacUnit::new();
/// for (x, y) in a.iter().zip(b) { mac.fma(x.value(), y.value()); }
/// mac.value()
/// ```
///
/// but without re-classifying operands that the caller already prepared.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub fn dot_hw(a: &[Prepared], b: &[Prepared]) -> F16 {
    assert_eq!(a.len(), b.len(), "operand slices differ in length");
    let mut acc = F16::ZERO;
    for (&x, &y) in a.iter().zip(b) {
        acc = csa::add3(acc, mul_prepared(x, y), F16::ZERO);
    }
    acc
}

/// Batched three-input accumulate: `acc[i] <- acc[i] + local[i] + below[i]`
/// for every lane, through the SUDS carry-save adder ([`csa::add3`]).
///
/// One call models one adder cycle across a sub-array column of MACs —
/// the batched form of [`MacUnit::accumulate`], bit-identical lane by
/// lane.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn fma_slice(acc: &mut [F16], local: &[F16], below: &[F16]) {
    assert_eq!(acc.len(), local.len(), "lane counts differ");
    assert_eq!(acc.len(), below.len(), "lane counts differ");
    for ((a, &l), &b) in acc.iter_mut().zip(local).zip(below) {
        *a = csa::add3(*a, l, b);
    }
}

/// Fused multiply-add with a *single* rounding: `round(a·b + c)` computed
/// exactly before the one conversion to binary16.
///
/// Contrast with the tensor-core datapath ([`MacUnit::fma`]), which rounds
/// the product to FP16 before the add — the paper's MACs are FP16-in,
/// FP16-out. `fma` quantifies what that intermediate rounding costs
/// (at most one ulp per step; see the `fma_vs_two_roundings` test).
#[must_use]
pub fn fma(a: F16, b: F16, c: F16) -> F16 {
    match (classify(a), classify(b)) {
        (Class::Nan, _) | (_, Class::Nan) => return F16::NAN,
        (Class::Inf { .. }, Class::Zero { .. }) | (Class::Zero { .. }, Class::Inf { .. }) => {
            return F16::NAN
        }
        (Class::Inf { sign: sa }, other) | (other, Class::Inf { sign: sa }) => {
            let sb = match other {
                Class::Inf { sign } | Class::Zero { sign } => sign,
                Class::Finite(u) => u.sign,
                Class::Nan => unreachable!("handled above"),
            };
            let inf = if sa ^ sb {
                F16::NEG_INFINITY
            } else {
                F16::INFINITY
            };
            // inf + opposing inf is NaN; otherwise the inf dominates.
            return csa::add3(inf, c, F16::ZERO);
        }
        (Class::Zero { sign: sa }, Class::Zero { sign: sb })
        | (Class::Zero { sign: sa }, Class::Finite(crate::bits::Unpacked { sign: sb, .. }))
        | (Class::Finite(crate::bits::Unpacked { sign: sa, .. }), Class::Zero { sign: sb }) => {
            return csa::add3(zero(sa ^ sb), c, F16::ZERO)
        }
        (Class::Finite(_), Class::Finite(_)) => {}
    }
    if c.is_nan() {
        return F16::NAN;
    }
    if c.is_infinite() {
        return c;
    }
    // Exact integer arithmetic: product significand is 22 bits at exponent
    // ea + eb; align c (11 bits) against it. The full range fits i128.
    let (Class::Finite(ua), Class::Finite(ub)) = (classify(a), classify(b)) else {
        unreachable!("specials handled above")
    };
    let psig = i128::from(ua.sig) * i128::from(ub.sig); // at 2^(ea+eb-20)
    let psig = if ua.sign ^ ub.sign { -psig } else { psig };
    let pexp = ua.exp + ub.exp - 20; // exponent of the product's LSB
    let (csig, cexp) = match classify(c) {
        Class::Finite(uc) => {
            let s = i128::from(uc.sig);
            (if uc.sign { -s } else { s }, uc.exp - 10)
        }
        Class::Zero { .. } => (0, pexp),
        _ => unreachable!("handled above"),
    };
    let emin = pexp.min(cexp);
    let sum = (psig << (pexp - emin)) + (csig << (cexp - emin));
    if sum == 0 {
        return F16::ZERO;
    }
    let sign = sum < 0;
    let mut mag = sum.unsigned_abs();
    // Fold anything beyond 63 bits into a sticky (cannot round wrong: the
    // value is then far past the f16 range anyway).
    let mut emin = emin;
    while mag >> 63 != 0 {
        let lost = mag & 1;
        mag >>= 1;
        mag |= lost;
        emin += 1;
    }
    // round_pack contract: value = mag * 2^(exp - guard - 10).
    round_pack(sign, emin + 40 + 10, mag as u64, 40)
}

/// One multiply-accumulate unit with the Eureka three-input adder.
///
/// # Examples
///
/// ```
/// use eureka_fp16::{F16, MacUnit};
///
/// let mut mac = MacUnit::new();
/// mac.accumulate(F16::from_f32(2.0) * F16::from_f32(3.0), F16::ZERO);
/// mac.accumulate(F16::from_f32(1.0) * F16::from_f32(4.0), F16::from_f32(0.5));
/// assert_eq!(mac.value().to_f32(), 10.5);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MacUnit {
    acc: F16,
}

impl MacUnit {
    /// Creates a MAC with a zero accumulator.
    #[must_use]
    pub fn new() -> Self {
        MacUnit { acc: F16::ZERO }
    }

    /// Creates a MAC with an initial accumulator value.
    #[must_use]
    pub fn with_initial(acc: F16) -> Self {
        MacUnit { acc }
    }

    /// Current accumulator value.
    #[must_use]
    pub fn value(&self) -> F16 {
        self.acc
    }

    /// Resets the accumulator to zero.
    pub fn reset(&mut self) {
        self.acc = F16::ZERO;
    }

    /// One adder cycle: `acc <- acc + local_product + product_from_below`.
    ///
    /// Pass [`F16::ZERO`] for either input to model the 2-1 multiplexers
    /// gating the unused adder ports (paper §3.1, cases 1–4).
    pub fn accumulate(&mut self, local_product: F16, product_from_below: F16) {
        self.acc = csa::add3(self.acc, local_product, product_from_below);
    }

    /// Convenience: multiply two operands on this MAC and accumulate the
    /// product locally (the undisplaced common case).
    pub fn fma(&mut self, a: F16, b: F16) {
        self.accumulate(a.mul_hw(b), F16::ZERO);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_product_small_integers_is_exact() {
        let a = [3.0f32, -1.0, 4.0, 1.0];
        let b = [2.0f32, 7.0, 0.5, -8.0];
        let mut mac = MacUnit::new();
        for (&x, &y) in a.iter().zip(&b) {
            mac.fma(F16::from_f32(x), F16::from_f32(y));
        }
        let want: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert_eq!(mac.value().to_f32(), want);
    }

    #[test]
    fn displaced_product_folds_in_same_cycle() {
        // acc=5, local product 2*3=6, displaced product from below 4*0.25=1.
        let mut mac = MacUnit::with_initial(F16::from_f32(5.0));
        let below = F16::from_f32(4.0).mul_hw(F16::from_f32(0.25));
        mac.accumulate(F16::from_f32(2.0).mul_hw(F16::from_f32(3.0)), below);
        assert_eq!(mac.value().to_f32(), 12.0);
    }

    #[test]
    fn fma_matches_f64_reference() {
        // a*b + c is exact in f64 for f16 operands (22 + alignment bits
        // stay under 53 only when exponents are close — so sweep a
        // moderate grid where it is exact, plus random checks vs a wide
        // tolerance).
        let cases = [
            (1.5f32, 2.0, 0.25),
            (-3.0, 0.5, 10.0),
            (0.1, 0.1, -0.01),
            (1000.0, 60.0, -5.0),
            (2.0f32.powi(-14), 2.0f32.powi(-10), 1.0),
        ];
        for (a, b, c) in cases {
            let (fa, fb, fc) = (F16::from_f32(a), F16::from_f32(b), F16::from_f32(c));
            let got = fma(fa, fb, fc);
            let want = F16::from_f64(fa.to_f64() * fb.to_f64() + fc.to_f64());
            assert_eq!(got.to_bits(), want.to_bits(), "({a}, {b}, {c})");
        }
    }

    #[test]
    fn fma_specials() {
        assert!(fma(F16::NAN, F16::ONE, F16::ONE).is_nan());
        assert!(fma(F16::INFINITY, F16::ZERO, F16::ONE).is_nan());
        assert_eq!(fma(F16::INFINITY, F16::ONE, F16::ONE), F16::INFINITY);
        assert!(fma(F16::INFINITY, F16::ONE, F16::NEG_INFINITY).is_nan());
        assert_eq!(fma(F16::ZERO, F16::ONE, F16::from_f32(3.0)).to_f32(), 3.0);
        assert!(fma(F16::ONE, F16::ONE, F16::NAN).is_nan());
        assert_eq!(fma(F16::MAX, F16::MAX, F16::ZERO), F16::INFINITY);
        assert_eq!(fma(F16::ONE, F16::NEG_ONE, F16::ONE), F16::ZERO);
    }

    #[test]
    fn fma_vs_two_roundings() {
        // The fused result can differ from round(round(a*b) + c) by the
        // product's rounding — e.g. when a*b lands exactly on a halfway
        // point that the intermediate rounding resolves the "wrong" way
        // for the final sum. Verify both stay within one ulp.
        let mut diffs = 0;
        for i in 0..2000u32 {
            let a = F16::from_bits((0x3800 + (i % 512)) as u16);
            let b = F16::from_bits((0x3C00 + ((i * 7) % 512)) as u16);
            let c = F16::from_bits((0x3000 + ((i * 13) % 1024)) as u16);
            let fused = fma(a, b, c);
            let two_step = a.mul_hw(b).add_hw(c);
            let d = fused.ulp_distance(two_step);
            assert!(d <= 1, "a={a:?} b={b:?} c={c:?}: {fused:?} vs {two_step:?}");
            diffs += u32::from(d == 1);
        }
        // The intermediate rounding matters sometimes — that's the point.
        assert!(diffs > 0, "expected at least one double-rounding case");
    }

    #[test]
    fn reset_and_initial() {
        let mut mac = MacUnit::with_initial(F16::ONE);
        assert_eq!(mac.value(), F16::ONE);
        mac.reset();
        assert_eq!(mac.value(), F16::ZERO);
        assert_eq!(MacUnit::new(), MacUnit::default());
    }
}
