//! Bit-field decomposition shared by the arithmetic modules.

use crate::F16;

/// Number of explicit fraction bits in binary16.
pub(crate) const FRAC_BITS: u32 = 10;
/// Exponent bias.
pub(crate) const BIAS: i32 = 15;
/// Maximum biased exponent field (infinity/NaN).
pub(crate) const EXP_MAX: i32 = 0x1F;
/// Unbiased exponent of the largest finite binade.
pub(crate) const EMAX: i32 = 15;
/// Unbiased exponent of the smallest normal binade.
pub(crate) const EMIN: i32 = -14;

/// A nonzero finite value decomposed as `(-1)^sign * sig * 2^(exp - FRAC_BITS)`
/// with `sig` normalized into `[2^10, 2^11)`.
///
/// Subnormals are normalized on unpacking so downstream arithmetic never
/// branches on them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct Unpacked {
    pub sign: bool,
    /// Unbiased exponent of the leading significand bit.
    pub exp: i32,
    /// Significand with the hidden bit explicit: `0x400..=0x7FF`.
    pub sig: u32,
}

/// Coarse classification used to route specials before the main datapath.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Class {
    Nan,
    Inf { sign: bool },
    Zero { sign: bool },
    Finite(Unpacked),
}

/// Decomposes a value, normalizing subnormals.
pub(crate) fn classify(x: F16) -> Class {
    let bits = x.to_bits();
    let sign = (bits & 0x8000) != 0;
    let exp_field = i32::from((bits >> FRAC_BITS) & 0x1F);
    let frac = u32::from(bits & 0x03FF);
    if exp_field == EXP_MAX {
        if frac != 0 {
            Class::Nan
        } else {
            Class::Inf { sign }
        }
    } else if exp_field == 0 {
        if frac == 0 {
            Class::Zero { sign }
        } else {
            // Subnormal: normalize. Value is frac * 2^(EMIN - FRAC_BITS).
            let shift = FRAC_BITS - (31 - frac.leading_zeros());
            Class::Finite(Unpacked {
                sign,
                exp: EMIN - shift as i32,
                sig: frac << shift,
            })
        }
    } else {
        Class::Finite(Unpacked {
            sign,
            exp: exp_field - BIAS,
            sig: frac | (1 << FRAC_BITS),
        })
    }
}

/// Packs a rounded result. `sig` must already be a valid 11-bit significand
/// in `[2^10, 2^11)` for a normal result, or the caller uses
/// [`round_pack`] which handles normalization, rounding, overflow and
/// subnormals.
fn pack_raw(sign: bool, exp_field: i32, frac: u32) -> F16 {
    debug_assert!((0..=EXP_MAX).contains(&exp_field));
    debug_assert!(frac < (1 << FRAC_BITS));
    let bits = (u16::from(sign) << 15) | ((exp_field as u16) << FRAC_BITS) | frac as u16;
    F16::from_bits(bits)
}

/// Rounds and packs a magnitude given as `mag * 2^(exp - G - FRAC_BITS)`
/// where `mag` is an unnormalized integer significand carrying `G` guard
/// bits below the target fraction, with all discarded lower bits already
/// jammed into the sticky (lowest) position by the caller.
///
/// Concretely: the caller provides `mag` (nonzero) and the unbiased exponent
/// `exp` that corresponds to `mag`'s bit `G + FRAC_BITS` being the leading
/// (hidden) significand bit. This helper normalizes, applies
/// round-to-nearest-even, and handles overflow to infinity and underflow to
/// subnormal/zero.
pub(crate) fn round_pack(sign: bool, exp: i32, mag: u64, guard_bits: u32) -> F16 {
    debug_assert!(mag != 0);
    // Keep at least two guard bits so a sticky jam can never masquerade as
    // the significand LSB and the round/half test below stays meaningful.
    let (mag, guard_bits) = if guard_bits < 2 {
        debug_assert!(mag.leading_zeros() >= 2 - guard_bits);
        (mag << (2 - guard_bits), 2)
    } else {
        (mag, guard_bits)
    };
    let target_msb = guard_bits + FRAC_BITS;
    let msb = 63 - mag.leading_zeros();
    // Normalize so the leading bit sits at `target_msb`, adjusting exponent.
    let mut exp = exp + msb as i32 - target_msb as i32;
    let mut mag = mag;
    if msb > target_msb {
        let d = msb - target_msb;
        let lost = mag & ((1u64 << d) - 1);
        mag >>= d;
        if lost != 0 {
            mag |= 1;
        }
    } else {
        mag <<= target_msb - msb;
    }

    // Underflow: shift right until the exponent reaches EMIN, jamming sticky.
    if exp < EMIN {
        let d = (EMIN - exp) as u32;
        if d >= 63 {
            mag = 1; // pure sticky
        } else {
            let lost = mag & ((1u64 << d) - 1);
            mag >>= d;
            if lost != 0 {
                mag |= 1;
            }
        }
        exp = EMIN;
    }

    // Round to nearest even on the guard bits.
    let round_point = 1u64 << guard_bits;
    let frac_part = mag >> guard_bits;
    let rem = mag & (round_point - 1);
    let half = round_point >> 1;
    let mut sig = frac_part;
    if rem > half || (rem == half && rem != 0 && (sig & 1) == 1) {
        sig += 1;
    }
    // Rounding may carry out: 0x7FF + 1 = 0x800.
    if sig == (1 << (FRAC_BITS + 1)) {
        sig >>= 1;
        exp += 1;
    }

    if exp > EMAX {
        return if sign {
            F16::NEG_INFINITY
        } else {
            F16::INFINITY
        };
    }
    if sig < (1 << FRAC_BITS) {
        // Subnormal (or zero after rounding down at EMIN).
        debug_assert_eq!(exp, EMIN);
        return pack_raw(sign, 0, sig as u32);
    }
    let exp_field = exp + BIAS;
    pack_raw(sign, exp_field, (sig as u32) & ((1 << FRAC_BITS) - 1))
}

/// Returns a signed zero.
pub(crate) fn zero(sign: bool) -> F16 {
    if sign {
        F16::NEG_ZERO
    } else {
        F16::ZERO
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_normals() {
        match classify(F16::ONE) {
            Class::Finite(u) => {
                assert!(!u.sign);
                assert_eq!(u.exp, 0);
                assert_eq!(u.sig, 0x400);
            }
            other => panic!("unexpected class {other:?}"),
        }
    }

    #[test]
    fn classify_subnormal_normalizes() {
        match classify(F16::MIN_POSITIVE_SUBNORMAL) {
            Class::Finite(u) => {
                assert_eq!(u.exp, -24);
                assert_eq!(u.sig, 0x400);
            }
            other => panic!("unexpected class {other:?}"),
        }
    }

    #[test]
    fn classify_specials() {
        assert_eq!(classify(F16::NAN), Class::Nan);
        assert_eq!(classify(F16::INFINITY), Class::Inf { sign: false });
        assert_eq!(classify(F16::NEG_ZERO), Class::Zero { sign: true });
    }

    #[test]
    fn round_pack_exact_one() {
        // 1.0 expressed with 4 guard bits: sig = 0x400 << 4, exp = 0.
        let r = round_pack(false, 0, 0x400 << 4, 4);
        assert_eq!(r, F16::ONE);
    }

    #[test]
    fn round_pack_ties_to_even() {
        // 1 + 2^-11 is exactly halfway between 1.0 and the next value; RNE
        // keeps the even significand (1.0).
        let mag = (0x400u64 << 4) | (1 << 3);
        let r = round_pack(false, 0, mag, 4);
        assert_eq!(r, F16::ONE);
        // 1 + 3*2^-12 rounds up.
        let mag = (0x400u64 << 4) | (1 << 3) | 1;
        let r = round_pack(false, 0, mag, 4);
        assert_eq!(r.to_bits(), F16::ONE.to_bits() + 1);
    }

    #[test]
    fn round_pack_overflow_to_infinity() {
        let r = round_pack(false, 16, 0x400, 0);
        assert_eq!(r, F16::INFINITY);
        let r = round_pack(true, 100, 0x7FF, 0);
        assert_eq!(r, F16::NEG_INFINITY);
    }

    #[test]
    fn round_pack_underflow_to_subnormal() {
        // 2^-24 exactly.
        let r = round_pack(false, -24, 0x400, 0);
        assert_eq!(r, F16::MIN_POSITIVE_SUBNORMAL);
        // 2^-26 rounds to zero.
        let r = round_pack(false, -26, 0x400, 0);
        assert_eq!(r, F16::ZERO);
    }
}
