//! The three-input floating-point adder added to each MAC by SUDS.
//!
//! Paper §3.1 (Figure 8): the adder's inputs are the local product, the
//! local accumulator, and the product arriving from the MAC below. "The
//! three-input addition can be implemented as a carry-save adder to reduce
//! the three values to two (the sum and carry) followed by a full adder.
//! For FP16 values, the three exponents are compared against each other
//! before the three mantissas are aligned and added together."
//!
//! [`add3`] models that datapath with a full-width alignment window, which
//! makes the three-operand sum exact before the single final rounding (the
//! entire dynamic range of binary16 spans < 50 bits, so a 64-bit datapath
//! loses nothing). [`add3_windowed`] exposes a limited alignment window with
//! sticky-bit jamming for studying narrower hardware.

use crate::bits::{classify, round_pack, zero, Class, Unpacked, FRAC_BITS};
use crate::F16;

/// Alignment window (bits kept below the leading operand bit) that makes the
/// three-input sum exact. 50 bits cover the full binary16 dynamic range
/// (exponents −24..=15 with 11-bit significands).
pub const EXACT_WINDOW: u32 = 50;

/// Adds three binary16 values with a single rounding, modelling the SUDS
/// carry-save adder at full alignment width.
///
/// The two-input hardware add is this function with one operand zero.
///
/// Special cases: any NaN input yields NaN; infinities of conflicting sign
/// yield NaN; an exact zero sum of nonzero operands is `+0.0`; an all-zero
/// input keeps `-0.0` only when every operand is `-0.0`.
///
/// # Examples
///
/// ```
/// use eureka_fp16::{csa, F16};
/// let s = csa::add3(F16::from_f32(1.0), F16::from_f32(2.0), F16::from_f32(4.0));
/// assert_eq!(s.to_f32(), 7.0);
/// ```
#[must_use]
pub fn add3(a: F16, b: F16, c: F16) -> F16 {
    add3_windowed(a, b, c, EXACT_WINDOW)
}

/// Adds three binary16 values with an alignment window of `window` bits.
///
/// Operand significands are aligned to the largest exponent; bits shifted
/// beyond the window are jammed into a sticky bit, as alignment shifters do
/// in hardware. `window >= `[`EXACT_WINDOW`] is exact; narrower windows can
/// deviate by an ulp when cancellation exposes jammed bits.
///
/// # Panics
///
/// Panics if `window` is smaller than the 10-bit significand fraction or
/// larger than 56 (the headroom available in the 64-bit datapath after the
/// 3-value carry bits).
#[must_use]
pub fn add3_windowed(a: F16, b: F16, c: F16, window: u32) -> F16 {
    assert!(
        (FRAC_BITS..=56).contains(&window),
        "alignment window must be in 10..=56, got {window}"
    );
    let classes = [classify(a), classify(b), classify(c)];
    if classes.iter().any(|c| matches!(c, Class::Nan)) {
        return F16::NAN;
    }
    let mut inf_sign: Option<bool> = None;
    for cl in &classes {
        if let Class::Inf { sign } = cl {
            match inf_sign {
                None => inf_sign = Some(*sign),
                Some(s) if s != *sign => return F16::NAN,
                Some(_) => {}
            }
        }
    }
    if let Some(sign) = inf_sign {
        return if sign {
            F16::NEG_INFINITY
        } else {
            F16::INFINITY
        };
    }

    // Collect finite operands into a fixed array — this runs once per MAC
    // per cycle, so it must not allocate.
    let mut buf = [Unpacked {
        sign: false,
        exp: 0,
        sig: 0,
    }; 3];
    let mut n = 0;
    for c in &classes {
        if let Class::Finite(u) = c {
            buf[n] = *u;
            n += 1;
        }
    }
    let finites = &buf[..n];
    if finites.is_empty() {
        // All zeros: -0 only if every operand is -0 (IEEE sum of zeros).
        let all_neg = classes
            .iter()
            .all(|c| matches!(c, Class::Zero { sign: true }));
        return zero(all_neg);
    }

    // Align every significand to the largest exponent. Each operand value is
    // sig * 2^(exp - FRAC_BITS); place the leading bit of the max-exponent
    // operand at bit position `window`, so smaller operands shift right with
    // sticky jamming at bit 0.
    let emax = finites.iter().map(|u| u.exp).max().expect("nonempty");
    let mut sum: i64 = 0;
    for u in finites {
        let d = (emax - u.exp) as u32;
        let aligned = if d > window {
            // Entirely below the window: pure sticky.
            1
        } else {
            let v = u64::from(u.sig) << (window - FRAC_BITS);
            let lost = if d == 0 { 0 } else { v & ((1u64 << d) - 1) };
            let kept = v >> d;
            if lost != 0 {
                kept | 1
            } else {
                kept
            }
        } as i64;
        sum += if u.sign { -aligned } else { aligned };
    }

    if sum == 0 {
        return F16::ZERO;
    }
    let sign = sum < 0;
    let mag = sum.unsigned_abs();
    // Value = mag * 2^(emax - window); round_pack's contract is
    // value = mag * 2^(exp - guard - FRAC_BITS), so exp = emax - window +
    // guard + FRAC_BITS with guard chosen as the window's sub-significand
    // width.
    let guard = window - FRAC_BITS;
    round_pack(sign, emax, mag, guard)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference_add3(a: F16, b: F16, c: F16) -> F16 {
        // The exact three-operand sum fits in f64 (< 50 significant bits),
        // so one narrowing conversion performs the correct single rounding.
        F16::from_f64(a.to_f64() + b.to_f64() + c.to_f64())
    }

    #[test]
    fn simple_sums() {
        let f = F16::from_f32;
        assert_eq!(add3(f(1.0), f(2.0), f(3.0)).to_f32(), 6.0);
        assert_eq!(add3(f(1.0), f(-1.0), f(0.5)).to_f32(), 0.5);
        assert_eq!(add3(f(0.0), f(0.0), f(-0.25)).to_f32(), -0.25);
    }

    #[test]
    fn cancellation_is_exact() {
        let f = F16::from_f32;
        // Catastrophic cancellation must produce the exact tiny remainder.
        let big = f(1024.0);
        let eps = f(0.5);
        assert_eq!(add3(big, -big, eps).to_f32(), 0.5);
        assert_eq!(add3(big, eps, -big).to_f32(), 0.5);
    }

    #[test]
    fn zero_sign_rules() {
        assert_eq!(
            add3(F16::NEG_ZERO, F16::NEG_ZERO, F16::NEG_ZERO),
            F16::NEG_ZERO
        );
        assert_eq!(add3(F16::ZERO, F16::NEG_ZERO, F16::NEG_ZERO), F16::ZERO);
        // Exact cancellation of nonzero values gives +0.
        assert_eq!(add3(F16::ONE, F16::NEG_ONE, F16::ZERO), F16::ZERO);
    }

    #[test]
    fn infinity_rules() {
        assert_eq!(add3(F16::INFINITY, F16::ONE, F16::ONE), F16::INFINITY);
        assert_eq!(
            add3(F16::NEG_INFINITY, F16::ONE, F16::NEG_INFINITY),
            F16::NEG_INFINITY
        );
        assert!(add3(F16::INFINITY, F16::NEG_INFINITY, F16::ONE).is_nan());
        assert!(add3(F16::NAN, F16::ONE, F16::ONE).is_nan());
    }

    #[test]
    fn overflow_saturates_to_infinity() {
        assert_eq!(add3(F16::MAX, F16::MAX, F16::ZERO), F16::INFINITY);
        assert_eq!(add3(F16::MIN, F16::MIN, F16::ZERO), F16::NEG_INFINITY);
    }

    #[test]
    fn matches_reference_on_grid() {
        let mut patterns = vec![0u16, 1, 0x03FF, 0x0400, 0x3C00, 0x4200, 0x7BFF];
        for i in 0..60u16 {
            patterns.push(i.wrapping_mul(1117).wrapping_add(29) & 0x7FFF);
        }
        let signed: Vec<F16> = patterns
            .iter()
            .flat_map(|&p| [F16::from_bits(p), F16::from_bits(p | 0x8000)])
            .collect();
        // Exhaustive triples are too many; stride deterministically.
        for (i, &a) in signed.iter().enumerate() {
            for (j, &b) in signed.iter().enumerate().skip(i % 3) {
                let c = signed[(i * 7 + j * 13) % signed.len()];
                let got = add3(a, b, c);
                let want = reference_add3(a, b, c);
                assert_eq!(
                    got.to_bits(),
                    want.to_bits(),
                    "a={a:?} b={b:?} c={c:?} got={got:?} want={want:?}"
                );
            }
        }
    }

    #[test]
    fn windowed_matches_exact_at_full_width() {
        let f = F16::from_f32;
        let cases = [
            (f(1.5), f(-1024.0), f(3.0e-4)),
            (f(0.1), f(0.2), f(0.3)),
            (F16::MAX, f(-1.0), f(1.0)),
        ];
        for (a, b, c) in cases {
            assert_eq!(add3_windowed(a, b, c, EXACT_WINDOW), add3(a, b, c));
        }
    }

    #[test]
    fn narrow_window_stays_within_one_ulp_without_cancellation() {
        let f = F16::from_f32;
        // Same-sign operands: sticky jamming keeps RNE correct even for a
        // narrow window.
        let got = add3_windowed(f(2048.0), f(1.0), f(1.0), 13);
        let want = add3(f(2048.0), f(1.0), f(1.0));
        assert!(got.ulp_distance(want) <= 1, "{got:?} vs {want:?}");
    }

    #[test]
    #[should_panic(expected = "alignment window")]
    fn window_validation() {
        let _ = add3_windowed(F16::ONE, F16::ONE, F16::ONE, 0);
    }
}
