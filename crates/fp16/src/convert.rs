//! Conversions between binary16 and the native float types.

use crate::F16;

/// Widens binary16 to `f32`. Always exact.
pub(crate) fn f16_to_f32(x: F16) -> f32 {
    let bits = u32::from(x.to_bits());
    let sign = (bits & 0x8000) << 16;
    let exp = (bits >> 10) & 0x1F;
    let frac = bits & 0x03FF;
    let out = if exp == 0x1F {
        // Inf / NaN: preserve payload in the top fraction bits.
        sign | 0x7F80_0000 | (frac << 13)
    } else if exp == 0 {
        if frac == 0 {
            sign
        } else {
            // Subnormal: normalize into an f32 normal. The leading bit of
            // `frac` at position m encodes the binade 2^(m - 24).
            let m = 31 - frac.leading_zeros();
            let frac = (frac << (10 - m)) & 0x03FF;
            let exp = 127 + m - 24;
            sign | (exp << 23) | (frac << 13)
        }
    } else {
        sign | ((exp + 127 - 15) << 23) | (frac << 13)
    };
    f32::from_bits(out)
}

/// Narrows `f32` to binary16 with round-to-nearest-even.
pub(crate) fn f32_to_f16(x: f32) -> F16 {
    // The f32 encoding is shifted to the top of the u64 so the sign lands at
    // bit 63; the fraction is then 23 + 32 zero-padded bits wide, which the
    // shared kernel handles uniformly.
    narrow(u64::from(x.to_bits()) << 32, 8, 55, 127)
}

/// Narrows `f64` to binary16 with round-to-nearest-even (single rounding).
pub(crate) fn f64_to_f16(x: f64) -> F16 {
    narrow(x.to_bits(), 11, 52, 1023)
}

/// Shared narrowing kernel. The source value is given as raw bits packed
/// into the *top* of a u64 layout: sign, `exp_bits` exponent, `frac_bits`
/// fraction (f64 natively; f32 shifted up by 32).
fn narrow(bits: u64, exp_bits: u32, frac_bits: u32, bias: i32) -> F16 {
    let sign = (bits >> 63) != 0;
    let exp_field = ((bits >> frac_bits) & ((1 << exp_bits) - 1)) as i32;
    let frac = bits & ((1u64 << frac_bits) - 1);
    let exp_max = (1 << exp_bits) - 1;

    if exp_field == exp_max {
        return if frac != 0 {
            F16::NAN
        } else if sign {
            F16::NEG_INFINITY
        } else {
            F16::INFINITY
        };
    }
    if exp_field == 0 && frac == 0 {
        return crate::bits::zero(sign);
    }
    // Normalize (source subnormals are far below the f16 range but handle
    // them uniformly anyway).
    let (exp, sig) = if exp_field == 0 {
        let msb = 63 - frac.leading_zeros();
        (1 - bias - frac_bits as i32 + msb as i32, frac)
    } else {
        (exp_field - bias, frac | (1u64 << frac_bits))
    };
    // `sig`'s leading bit corresponds to 2^exp. Feed round_pack with the
    // significand aligned so its MSB is the hidden bit over G guard bits.
    let msb = 63 - sig.leading_zeros();
    let guard = msb.saturating_sub(crate::bits::FRAC_BITS);
    let (mag, guard) = if guard == 0 {
        (sig << (crate::bits::FRAC_BITS - msb), 0)
    } else {
        (sig, guard)
    };
    crate::bits::round_pack(sign, exp, mag, guard)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widen_roundtrips_all_finite_bit_patterns() {
        for bits in 0..=u16::MAX {
            let h = F16::from_bits(bits);
            if h.is_nan() {
                assert!(h.to_f32().is_nan());
                continue;
            }
            let back = f32_to_f16(h.to_f32());
            assert_eq!(back.to_bits(), bits, "bits {bits:#06x}");
        }
    }

    #[test]
    fn narrow_matches_known_values() {
        assert_eq!(f32_to_f16(1.0), F16::ONE);
        assert_eq!(f32_to_f16(-2.0).to_bits(), 0xC000);
        assert_eq!(f32_to_f16(65504.0), F16::MAX);
        assert_eq!(f32_to_f16(65520.0), F16::INFINITY); // midpoint rounds to even=inf
        assert_eq!(f32_to_f16(65519.0), F16::MAX);
        assert!(f32_to_f16(f32::NAN).is_nan());
        assert_eq!(f32_to_f16(1e-8), F16::ZERO); // below subnormal range/2
    }

    #[test]
    fn narrow_subnormal_range() {
        let tiny = 2.0_f32.powi(-24);
        assert_eq!(f32_to_f16(tiny), F16::MIN_POSITIVE_SUBNORMAL);
        // Half of the smallest subnormal ties to even (zero).
        assert_eq!(f32_to_f16(tiny / 2.0), F16::ZERO);
        // Slightly more than half rounds up.
        assert_eq!(f32_to_f16(tiny * 0.50001), F16::MIN_POSITIVE_SUBNORMAL);
    }

    #[test]
    fn f64_narrow_single_rounding() {
        // A value where f64 -> f32 -> f16 double-rounds differently:
        // 1 + 2^-11 + 2^-26 must round UP to 1 + 2^-10 in one step.
        let v = 1.0 + 2.0_f64.powi(-11) + 2.0_f64.powi(-26);
        let direct = f64_to_f16(v);
        assert_eq!(direct.to_bits(), F16::ONE.to_bits() + 1);
    }

    #[test]
    fn f64_narrow_matches_f32_on_exact_values() {
        for bits in (0..=u16::MAX).step_by(7) {
            let h = F16::from_bits(bits);
            if h.is_nan() {
                continue;
            }
            assert_eq!(f64_to_f16(h.to_f64()).to_bits(), h.to_bits());
        }
    }
}
