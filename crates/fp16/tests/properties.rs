//! Property tests validating the bit-level FP16 datapath against an exact
//! f64 reference: every f16 operation's mathematically exact result fits in
//! f64, so converting the f64 result back with a single rounding gives the
//! correctly rounded answer.

use eureka_fp16::{arith, csa, F16};
use proptest::prelude::*;

/// Arbitrary finite (possibly subnormal, possibly zero) f16 bit patterns.
fn finite_f16() -> impl Strategy<Value = F16> {
    (0u16..0x7C00u16, any::<bool>()).prop_map(|(mag, neg)| {
        let bits = if neg { mag | 0x8000 } else { mag };
        F16::from_bits(bits)
    })
}

/// Any bit pattern, including NaN and infinities.
fn any_f16() -> impl Strategy<Value = F16> {
    any::<u16>().prop_map(F16::from_bits)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4096))]

    #[test]
    fn f32_roundtrip_is_identity(h in finite_f16()) {
        prop_assert_eq!(F16::from_f32(h.to_f32()).to_bits(), h.to_bits());
    }

    #[test]
    fn f32_narrowing_matches_host_half_even(x in any::<f32>()) {
        // Cross-check against the host conversion semantics: widening the
        // result must be the closest representable value.
        let h = F16::from_f32(x);
        if x.is_nan() {
            prop_assert!(h.is_nan());
        } else if x.is_finite() && h.is_finite() {
            let back = h.to_f32();
            // The error must not exceed half an ulp of the result's binade.
            let next_up = F16::from_bits(h.to_bits().wrapping_add(1));
            let next_dn = F16::from_bits(h.to_bits().wrapping_sub(1));
            for n in [next_up, next_dn] {
                if n.is_finite() && !n.is_nan() {
                    prop_assert!(
                        (f64::from(back) - f64::from(x)).abs()
                            <= (f64::from(n.to_f32()) - f64::from(x)).abs() + 1e-30,
                        "x={x} rounded to {back} but neighbour {n:?} is closer"
                    );
                }
            }
        }
    }

    #[test]
    fn mul_matches_reference(a in finite_f16(), b in finite_f16()) {
        let got = arith::mul(a, b);
        let want = F16::from_f64(a.to_f64() * b.to_f64());
        prop_assert_eq!(got.to_bits(), want.to_bits(), "a={:?} b={:?}", a, b);
    }

    #[test]
    fn add3_matches_reference(a in finite_f16(), b in finite_f16(), c in finite_f16()) {
        let got = csa::add3(a, b, c);
        let want = F16::from_f64(a.to_f64() + b.to_f64() + c.to_f64());
        prop_assert_eq!(got.to_bits(), want.to_bits(), "a={:?} b={:?} c={:?}", a, b, c);
    }

    #[test]
    fn add_is_commutative(a in finite_f16(), b in finite_f16()) {
        prop_assert_eq!((a + b).to_bits(), (b + a).to_bits());
    }

    #[test]
    fn add3_is_permutation_invariant(a in finite_f16(), b in finite_f16(), c in finite_f16()) {
        let r = csa::add3(a, b, c).to_bits();
        prop_assert_eq!(csa::add3(a, c, b).to_bits(), r);
        prop_assert_eq!(csa::add3(b, a, c).to_bits(), r);
        prop_assert_eq!(csa::add3(c, b, a).to_bits(), r);
    }

    #[test]
    fn mul_never_panics_on_any_bits(a in any_f16(), b in any_f16()) {
        let _ = arith::mul(a, b);
    }

    #[test]
    fn add3_never_panics_on_any_bits(a in any_f16(), b in any_f16(), c in any_f16()) {
        let _ = csa::add3(a, b, c);
    }

    #[test]
    fn fma_tracks_f64_reference(a in finite_f16(), b in finite_f16(), c in finite_f16()) {
        use eureka_fp16::mac::fma;
        let got = fma(a, b, c);
        let want = F16::from_f64(a.to_f64() * b.to_f64() + c.to_f64());
        // f64 holds a*b exactly but can round the +c when the exponent gap
        // exceeds ~53 bits, so allow one ulp; bit-equality holds in the
        // overwhelming majority of cases.
        prop_assert!(
            got.ulp_distance(want) <= 1,
            "a={:?} b={:?} c={:?}: {:?} vs {:?}",
            a, b, c, got, want
        );
    }

    #[test]
    fn fma_never_panics(a in any_f16(), b in any_f16(), c in any_f16()) {
        let _ = eureka_fp16::mac::fma(a, b, c);
    }

    #[test]
    fn nan_propagates(a in finite_f16(), b in finite_f16()) {
        prop_assert!(arith::mul(F16::NAN, a).is_nan());
        prop_assert!(csa::add3(F16::NAN, a, b).is_nan());
    }

    #[test]
    fn windowed_add_error_bounded_by_window(
        a in finite_f16(),
        b in finite_f16(),
        c in finite_f16(),
        window in 13u32..=56,
    ) {
        let exact = csa::add3(a, b, c);
        let windowed = csa::add3_windowed(a, b, c, window);
        // Bits jammed below the alignment window are worth at most
        // 2^(e_max - window) each; with up to two jammed operands plus the
        // final rounding, the absolute error is bounded by
        // 4 * 2^(e_max - window), where e_max is the largest operand's
        // binade. Cancellation can make this *many* ulps of the result —
        // which is exactly why the exact-width datapath matters.
        // Identical results (including both overflowing to the same
        // infinity) trivially satisfy any bound; differing-but-nonfinite
        // results cannot happen because the windowed path only loses
        // magnitude, never gains it.
        if exact.to_bits() == windowed.to_bits() {
            return Ok(());
        }
        prop_assert!(exact.is_finite() && windowed.is_finite());
        let e_max = [a, b, c]
            .iter()
            .filter(|v| !v.is_zero())
            .map(|v| v.to_f64().abs().log2().floor())
            .fold(f64::NEG_INFINITY, f64::max);
        if e_max.is_finite() {
            let bound = 4.0 * (e_max - f64::from(window)).exp2();
            let err = (windowed.to_f64() - exact.to_f64()).abs();
            prop_assert!(
                err <= bound.max(exact.to_f64().abs() * 2.0f64.powi(-10)),
                "window={} a={:?} b={:?} c={:?} exact={:?} got={:?} err={} bound={}",
                window, a, b, c, exact, windowed, err, bound
            );
        }
    }

    #[test]
    fn windowed_add_exact_for_same_sign(
        a in finite_f16(),
        b in finite_f16(),
        c in finite_f16(),
        window in 13u32..=56,
    ) {
        // Without cancellation, sticky jamming preserves correct rounding
        // to within one ulp even for narrow windows.
        let (a, b, c) = (a.abs(), b.abs(), c.abs());
        let exact = csa::add3(a, b, c);
        let windowed = csa::add3_windowed(a, b, c, window);
        prop_assert!(
            exact.ulp_distance(windowed) <= 1,
            "window={window} a={a:?} b={b:?} c={c:?} exact={exact:?} got={windowed:?}"
        );
    }

    #[test]
    fn integer_valued_arithmetic_is_exact(a in -45i32..=45, b in -45i32..=45, c in -45i32..=45) {
        // Products and 3-sums of small integers (|a*b| <= 2025 < 2^11) are
        // exactly representable, the foundation of the executor equivalence
        // tests in eureka-core.
        let (fa, fb, fc) = (
            F16::from_f32(a as f32),
            F16::from_f32(b as f32),
            F16::from_f32(c as f32),
        );
        prop_assert_eq!(arith::mul(fa, fb).to_f32(), (a * b) as f32);
        prop_assert_eq!(csa::add3(fa, fb, fc).to_f32(), (a + b + c) as f32);
    }
}
