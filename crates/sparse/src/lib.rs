//! Sparse matrix substrate for the Eureka (MICRO 2023) reproduction.
//!
//! Every scheme evaluated in the paper — dense tensor cores, Ampere's 2:4
//! structured sparsity, Cnvlutin-like compaction, DSTC, SparTen, S2TA and
//! Eureka itself — consumes sparse *filter* matrices and (for the two-sided
//! baselines) sparse *activation* matrices. This crate provides their shared
//! representations:
//!
//! * [`Matrix`] — a dense row-major FP16 value matrix;
//! * [`SparsityPattern`] — a bit matrix of non-zero positions;
//! * [`TilePattern`] / [`TileGrid`] — the `p×q` sub-matrix windows the MAC
//!   sub-arrays operate on;
//! * [`AlignedTile`] — a left-aligned tile with original-column metadata
//!   (paper Figure 4);
//! * [`canon`] — canonical tile signatures (row-length form) so
//!   timing-equivalent tiles share one content-addressed cache key;
//! * [`structured`] — 2:4 structured pruning and its 2-bit metadata format;
//! * [`bitmask`] — SparTen-style chunked bitmask format;
//! * [`gen`] — deterministic uniform and clustered sparsity generators;
//! * [`rng::DetRng`] — a seedable, version-stable random number generator so
//!   every experiment is reproducible bit-for-bit.
//!
//! # Examples
//!
//! ```
//! use eureka_sparse::{gen, rng::DetRng, TileGrid};
//!
//! let mut rng = DetRng::new(42);
//! let pattern = gen::uniform_pattern(16, 64, 0.13, &mut rng);
//! let tiles = TileGrid::new(&pattern, 4, 16);
//! let worst = tiles.iter().map(|t| t.critical_path()).max().unwrap();
//! assert!(worst <= 16);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitmask;
pub mod canon;
pub mod error;
pub mod gen;
pub mod leftalign;
pub mod matrix;
pub mod pattern;
pub mod rng;
pub mod stats;
pub mod storage;
pub mod structured;
pub mod tile;
pub mod tiling;

pub use error::SparseError;
pub use leftalign::AlignedTile;
pub use matrix::Matrix;
pub use pattern::{SetBits, SparsityPattern};
pub use tile::TilePattern;
pub use tiling::TileGrid;
