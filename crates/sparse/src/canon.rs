//! Canonical tile signatures for content-addressed result reuse.
//!
//! Every tile timer in the simulator (max-row compaction, greedy SUDS,
//! optimal SUDS, reach-R SUDS) is a pure function of the tile's per-row
//! non-zero counts: column *positions* never influence timing, only how
//! many values each row holds. Two tiles whose row-length signatures
//! agree are therefore indistinguishable to the timing model, and their
//! results can share one cache entry.
//!
//! How much of the row order matters depends on the timer:
//!
//! * [`RowOrder::Sorted`] — the timer is invariant under *any* row
//!   permutation (e.g. max-row compaction, which takes the maximum of
//!   the multiset of lengths). Sorting descending collapses all `p!`
//!   permutations onto one signature.
//! * [`RowOrder::Exact`] — the timer consumes the row sequence in order
//!   (the SUDS displacement planners walk adjacent rows, and the chosen
//!   base row is position-dependent), so the signature preserves it.
//!
//! The signature deliberately excludes the tile width `q`: a timer that
//! only reads row lengths produces the same result for a `4×16` and a
//! `4×32` tile with equal row counts, and keys that ignore `q` let
//! results flow between compaction factors. Timers whose cycle count
//! *does* depend on `q` (dense, 2:4) are uniform per tile and are never
//! keyed at tile granularity at all.
//!
//! The congruence — equal canonical signature implies equal simulated
//! tile outcome — is asserted property-style by this crate's test-suite
//! (signature level) and by the workspace suite against the real timers.

use crate::tile::TilePattern;

/// How much row-order information a canonical signature keeps.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RowOrder {
    /// Preserve the row sequence exactly (order-sensitive timers).
    Exact,
    /// Sort row lengths descending (permutation-invariant timers).
    Sorted,
}

/// The canonical row-length signature of `tile` under `order`.
///
/// # Examples
///
/// ```
/// use eureka_sparse::canon::{canonical_lens, RowOrder};
/// use eureka_sparse::TilePattern;
///
/// let t = TilePattern::from_rows(&[0b0011, 0b1111, 0b0000, 0b1000], 4).unwrap();
/// assert_eq!(canonical_lens(&t, RowOrder::Exact), vec![2, 4, 0, 1]);
/// assert_eq!(canonical_lens(&t, RowOrder::Sorted), vec![4, 2, 1, 0]);
/// ```
#[must_use]
pub fn canonical_lens(tile: &TilePattern, order: RowOrder) -> Vec<usize> {
    let mut lens = Vec::new();
    canonical_lens_into(tile, order, &mut lens);
    lens
}

/// In-place variant of [`canonical_lens`]: clears `out` and fills it with
/// the signature, reusing the buffer's capacity across calls (the
/// zero-allocation path for the simulator's per-tile key construction).
pub fn canonical_lens_into(tile: &TilePattern, order: RowOrder, out: &mut Vec<usize>) {
    out.clear();
    out.extend((0..tile.p()).map(|r| tile.row_len(r)));
    if order == RowOrder::Sorted {
        out.sort_unstable_by(|a, b| b.cmp(a));
    }
}

/// Renders a signature as a compact, stable, whitespace-free token
/// (`"4,2,1,0"`) — the form embedded in on-disk store keys, so it must
/// never change for a given signature.
#[must_use]
pub fn lens_token(lens: &[usize]) -> String {
    let mut out = String::new();
    lens_token_into(lens, &mut out);
    out
}

/// In-place variant of [`lens_token`]: clears `out` and writes the token
/// into it, reusing the buffer's capacity across calls. The rendered text
/// is byte-identical to [`lens_token`] (on-disk keys depend on it).
pub fn lens_token_into(lens: &[usize], out: &mut String) {
    use std::fmt::Write as _;
    out.clear();
    for (i, n) in lens.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{n}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tile(rows: &[u64]) -> TilePattern {
        TilePattern::from_rows(rows, 16).unwrap()
    }

    #[test]
    fn exact_preserves_order_sorted_collapses_it() {
        let a = tile(&[0b11, 0b1111, 0, 0b1]);
        let b = tile(&[0b1111, 0b11, 0b1, 0]);
        assert_ne!(
            canonical_lens(&a, RowOrder::Exact),
            canonical_lens(&b, RowOrder::Exact)
        );
        assert_eq!(
            canonical_lens(&a, RowOrder::Sorted),
            canonical_lens(&b, RowOrder::Sorted)
        );
        assert_eq!(canonical_lens(&a, RowOrder::Sorted), vec![4, 2, 1, 0]);
    }

    #[test]
    fn signature_ignores_column_positions() {
        // Same row lengths, different column placements: same signature.
        let a = tile(&[0b0000_1111, 0b0011, 0, 0b1]);
        let b = tile(&[0b1111_0000, 0b1100, 0, 0b1000]);
        assert_eq!(
            canonical_lens(&a, RowOrder::Exact),
            canonical_lens(&b, RowOrder::Exact)
        );
    }

    #[test]
    fn token_is_stable_and_unambiguous() {
        assert_eq!(lens_token(&[4, 2, 1, 0]), "4,2,1,0");
        assert_eq!(lens_token(&[]), "");
        assert_eq!(lens_token(&[12]), "12");
        // "1,2" vs "12" must not collide.
        assert_ne!(lens_token(&[1, 2]), lens_token(&[12]));
    }
}
