//! Small statistics helpers: histograms and summary moments for the
//! critical-path distributions of Figure 9 and for test assertions.

/// A histogram over small non-negative integers (e.g. tile critical paths).
///
/// # Examples
///
/// ```
/// use eureka_sparse::stats::Histogram;
///
/// let mut h = Histogram::new();
/// for v in [1usize, 2, 2, 3] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.bin(2), 2);
/// assert_eq!(h.max(), Some(3));
/// assert!((h.mean() - 2.0).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    bins: Vec<u64>,
    count: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one observation.
    pub fn record(&mut self, value: usize) {
        if value >= self.bins.len() {
            self.bins.resize(value + 1, 0);
        }
        self.bins[value] += 1;
        self.count += 1;
    }

    /// Number of observations recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Number of observations equal to `value`.
    #[must_use]
    pub fn bin(&self, value: usize) -> u64 {
        self.bins.get(value).copied().unwrap_or(0)
    }

    /// Largest observed value.
    #[must_use]
    pub fn max(&self) -> Option<usize> {
        self.bins.iter().rposition(|&c| c > 0)
    }

    /// Smallest observed value.
    #[must_use]
    pub fn min(&self) -> Option<usize> {
        self.bins.iter().position(|&c| c > 0)
    }

    /// Mean of the observations (0 for an empty histogram).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let sum: u64 = self
            .bins
            .iter()
            .enumerate()
            .map(|(v, &c)| v as u64 * c)
            .sum();
        sum as f64 / self.count as f64
    }

    /// Population standard deviation (0 for fewer than two observations).
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        let mean = self.mean();
        let ss: f64 = self
            .bins
            .iter()
            .enumerate()
            .map(|(v, &c)| c as f64 * (v as f64 - mean) * (v as f64 - mean))
            .sum();
        (ss / self.count as f64).sqrt()
    }

    /// Fraction of observations equal to `value`.
    #[must_use]
    pub fn fraction(&self, value: usize) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.bin(value) as f64 / self.count as f64
    }

    /// Iterates `(value, count)` pairs for non-empty bins.
    pub fn iter(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.bins
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(v, &c)| (v, c))
    }
}

impl FromIterator<usize> for Histogram {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut h = Histogram::new();
        for v in iter {
            h.record(v);
        }
        h
    }
}

impl Extend<usize> for Histogram {
    fn extend<I: IntoIterator<Item = usize>>(&mut self, iter: I) {
        for v in iter {
            self.record(v);
        }
    }
}

/// Arithmetic mean of an f64 slice (0 for empty input).
#[must_use]
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Geometric mean of positive values (0 if any value is non-positive or the
/// slice is empty). The paper's cross-benchmark means are arithmetic, but
/// the geomean is provided for sensitivity checks.
#[must_use]
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() || xs.iter().any(|&x| x <= 0.0) {
        return 0.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Weighted arithmetic mean; weights are normalized internally.
///
/// # Panics
///
/// Panics if slices differ in length or total weight is zero.
#[must_use]
pub fn weighted_mean(xs: &[f64], weights: &[f64]) -> f64 {
    assert_eq!(xs.len(), weights.len(), "length mismatch");
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "total weight must be positive");
    xs.iter().zip(weights).map(|(x, w)| x * w).sum::<f64>() / total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_basics() {
        let h: Histogram = [3usize, 1, 3, 3, 0].into_iter().collect();
        assert_eq!(h.count(), 5);
        assert_eq!(h.bin(3), 3);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(3));
        assert!((h.mean() - 2.0).abs() < 1e-12);
        assert!((h.fraction(3) - 0.6).abs() < 1e-12);
        let pairs: Vec<_> = h.iter().collect();
        assert_eq!(pairs, vec![(0, 1), (1, 1), (3, 3)]);
    }

    #[test]
    fn histogram_std_dev() {
        let h: Histogram = [2usize, 2, 2].into_iter().collect();
        assert_eq!(h.std_dev(), 0.0);
        let h: Histogram = [0usize, 4].into_iter().collect();
        assert!((h.std_dev() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.fraction(1), 0.0);
    }

    #[test]
    fn extend_accumulates() {
        let mut h = Histogram::new();
        h.extend([1usize, 1]);
        h.extend([2usize]);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn means() {
        assert_eq!(mean(&[]), 0.0);
        assert!((mean(&[1.0, 3.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[1.0, -1.0]), 0.0);
        // Paper's rep-mean: 75% BERT, 25% CNN average.
        let m = weighted_mean(&[8.0, 4.0], &[0.75, 0.25]);
        assert!((m - 7.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn weighted_mean_validates() {
        let _ = weighted_mean(&[1.0], &[0.5, 0.5]);
    }
}
