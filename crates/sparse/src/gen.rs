//! Deterministic synthetic sparsity and value generators.
//!
//! The paper evaluates on SparseZoo checkpoints; this reproduction
//! substitutes seeded synthetic patterns with matched densities (see
//! DESIGN.md §5). Two pattern families are provided:
//!
//! * [`uniform_pattern`] — i.i.d. Bernoulli non-zeros, the standard model
//!   for magnitude-pruned CNN filters;
//! * [`clustered_pattern`] — block-structured density variation modelling
//!   BERT's "large chunks of high sparsity in the filters" (paper §5.1),
//!   which is what makes SparTen fetch-and-skip whole chunks while Eureka's
//!   SUDS keeps its MACs fed.

use crate::matrix::Matrix;
use crate::pattern::SparsityPattern;
use crate::rng::DetRng;
use eureka_fp16::F16;

/// I.i.d. Bernoulli pattern with the given non-zero `density`.
///
/// # Panics
///
/// Panics if `density` is not in `[0, 1]` or a dimension is zero.
#[must_use]
pub fn uniform_pattern(
    rows: usize,
    cols: usize,
    density: f64,
    rng: &mut DetRng,
) -> SparsityPattern {
    assert!(
        (0.0..=1.0).contains(&density),
        "density {density} not in [0,1]"
    );
    SparsityPattern::from_fn(rows, cols, |_, _| rng.bernoulli(density))
}

/// Block-clustered pattern: the matrix is divided into `block_rows ×
/// block_cols` blocks; each block draws its own density from a two-point
/// mixture so that a fraction `dense_block_fraction` of blocks carry almost
/// all the non-zeros while the rest are nearly empty. The overall expected
/// density equals `density`.
///
/// This reproduces the coarse filter-sparsity structure of pruned
/// transformer weights: whole attention heads / FFN slices pruned away.
///
/// # Panics
///
/// Panics if `density` or `dense_block_fraction` are outside `(0, 1]`, or a
/// dimension/block size is zero.
#[must_use]
pub fn clustered_pattern(
    rows: usize,
    cols: usize,
    density: f64,
    block_rows: usize,
    block_cols: usize,
    dense_block_fraction: f64,
    rng: &mut DetRng,
) -> SparsityPattern {
    assert!(
        (0.0..=1.0).contains(&density),
        "density {density} not in [0,1]"
    );
    assert!(
        dense_block_fraction > 0.0 && dense_block_fraction <= 1.0,
        "dense_block_fraction must be in (0,1]"
    );
    assert!(
        block_rows > 0 && block_cols > 0,
        "block shape must be positive"
    );
    // Dense blocks get density d_hi, sparse blocks d_lo, with
    //   f*d_hi + (1-f)*d_lo = density,  d_lo = 0.1 * d_hi (residual
    // stragglers). When the target is high enough that d_hi would exceed
    // 1, cap the blocks at fully dense and widen the dense fraction
    // instead, keeping the mixture mean exact.
    let f = dense_block_fraction;
    let (f, d_hi, d_lo) = {
        let d_hi = density / (f + 0.1 * (1.0 - f));
        if d_hi <= 1.0 {
            (f, d_hi, 0.1 * d_hi)
        } else {
            (((density - 0.1) / 0.9).clamp(0.0, 1.0), 1.0, 0.1)
        }
    };
    let grid_cols = cols.div_ceil(block_cols);
    let grid_rows = rows.div_ceil(block_rows);
    let block_density: Vec<f64> = (0..grid_rows * grid_cols)
        .map(|_| if rng.bernoulli(f) { d_hi } else { d_lo })
        .collect();
    SparsityPattern::from_fn(rows, cols, |r, c| {
        let b = (r / block_rows) * grid_cols + c / block_cols;
        rng.bernoulli(block_density[b])
    })
}

/// Fills the non-zero positions of `pattern` with synthetic magnitudes: a
/// Gaussian sample scaled to a typical pruned-weight range, never exactly
/// zero (so value-level density matches the pattern).
#[must_use]
pub fn values_for_pattern(pattern: &SparsityPattern, rng: &mut DetRng) -> Matrix {
    Matrix::from_fn(pattern.rows(), pattern.cols(), |r, c| {
        if pattern.get(r, c) {
            nonzero_weight(rng)
        } else {
            F16::ZERO
        }
    })
}

/// A single nonzero synthetic weight.
fn nonzero_weight(rng: &mut DetRng) -> F16 {
    loop {
        let v = rng.next_gaussian() * 0.25;
        // Survivors of magnitude pruning sit away from zero; reject tiny
        // values (also guarantees the FP16 rounding can't produce 0).
        if v.abs() >= 0.01 {
            return F16::from_f64(v);
        }
    }
}

/// Small random integer-valued matrix (values in `[-4, 4]`, never zero at
/// pattern positions). Products and short sums of such values are exact in
/// FP16, so functional-equivalence tests can require bit equality.
#[must_use]
pub fn integer_values_for_pattern(pattern: &SparsityPattern, rng: &mut DetRng) -> Matrix {
    Matrix::from_fn(pattern.rows(), pattern.cols(), |r, c| {
        if pattern.get(r, c) {
            let mag = 1 + rng.next_below(4) as i32;
            let sign = if rng.bernoulli(0.5) { 1 } else { -1 };
            F16::from_f32((sign * mag) as f32)
        } else {
            F16::ZERO
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_density_converges() {
        let mut rng = DetRng::new(1);
        let p = uniform_pattern(128, 512, 0.13, &mut rng);
        assert!((p.density() - 0.13).abs() < 0.01, "density {}", p.density());
    }

    #[test]
    fn uniform_is_deterministic() {
        let a = uniform_pattern(32, 32, 0.5, &mut DetRng::new(7));
        let b = uniform_pattern(32, 32, 0.5, &mut DetRng::new(7));
        assert_eq!(a, b);
    }

    #[test]
    fn clustered_density_matches_target() {
        let mut rng = DetRng::new(2);
        for target in [0.10, 0.28, 0.5, 0.9] {
            let p = clustered_pattern(256, 512, target, 16, 32, 0.2, &mut rng);
            assert!(
                (p.density() - target).abs() < 0.04,
                "target {target}: density {}",
                p.density()
            );
        }
    }

    #[test]
    fn clustered_is_coarser_than_uniform() {
        // Clustered patterns should have many more empty 32-column chunks
        // than uniform patterns of the same density.
        let mut rng = DetRng::new(3);
        let uni = uniform_pattern(128, 512, 0.10, &mut rng);
        let clu = clustered_pattern(128, 512, 0.10, 16, 32, 0.2, &mut rng);
        let empty_chunks = |p: &SparsityPattern| -> usize {
            (0..p.rows())
                .map(|r| {
                    let row = crate::bitmask::MaskedRow::from_pattern(p, r);
                    (0..row.chunk_count())
                        .filter(|&i| row.chunk_is_empty(i))
                        .count()
                })
                .sum()
        };
        let eu = empty_chunks(&uni);
        let ec = empty_chunks(&clu);
        assert!(ec > 2 * eu.max(1), "uniform {eu} clustered {ec}");
    }

    #[test]
    fn values_match_pattern() {
        let mut rng = DetRng::new(4);
        let p = uniform_pattern(16, 16, 0.3, &mut rng);
        let m = values_for_pattern(&p, &mut rng);
        assert_eq!(m.pattern(), p);
        let mi = integer_values_for_pattern(&p, &mut rng);
        assert_eq!(mi.pattern(), p);
        for r in 0..16 {
            for c in 0..16 {
                let v = mi.get(r, c).to_f32();
                assert!(v.abs() <= 4.0 && v.fract() == 0.0);
            }
        }
    }

    #[test]
    #[should_panic(expected = "not in [0,1]")]
    fn density_validation() {
        let _ = uniform_pattern(4, 4, 1.5, &mut DetRng::new(0));
    }
}
