//! Storage-cost comparison of sparse weight formats.
//!
//! Each scheme in the paper ships its filters differently: Ampere stores
//! half the values plus 2-bit positions, Eureka left-aligned values plus
//! `log2(4P)+1`-bit metadata, SparTen/DSTC bitmask-compressed payloads,
//! and classical CSR carries explicit column indices. This module computes
//! the bits each format needs for a given pattern — the quantity behind
//! the paper's bandwidth arguments (§2.3.1: metadata "more than offset by
//! the 50% reduction"; §3: compaction metadata grows "from 2 bits to 4").

use crate::pattern::SparsityPattern;

/// A sparse weight storage format.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Format {
    /// Uncompressed FP16.
    Dense,
    /// 2:4 structured: half the values + 2-bit in-group positions.
    TwoFour,
    /// Eureka compaction at the given factor `P`: non-zero values +
    /// `log2(4P)`-bit column metadata + the SUDS displaced bit +
    /// a 2-bit per-tile rotation field (amortized, negligible).
    EurekaCompacted {
        /// Compaction factor.
        factor: usize,
    },
    /// Bitmask (SparTen/DSTC): one bit per position + non-zero values.
    Bitmask,
    /// Compressed sparse row with 16-bit column indices and 32-bit row
    /// pointers.
    Csr,
}

/// Storage cost of `pattern`'s matrix in `format`, in bits.
///
/// # Panics
///
/// Panics if an `EurekaCompacted` factor is zero or widens tiles past the
/// 64-column datapath.
#[must_use]
pub fn storage_bits(pattern: &SparsityPattern, format: Format) -> u64 {
    let positions = (pattern.rows() * pattern.cols()) as u64;
    let nnz = pattern.nnz() as u64;
    match format {
        Format::Dense => 16 * positions,
        // Exactly half the values survive (sub-2 groups padded, §1).
        Format::TwoFour => positions / 2 * 16 + positions / 4 * 2 * 2,
        Format::EurekaCompacted { factor } => {
            assert!(
                (1..=16).contains(&factor),
                "compaction factor {factor} outside 1..=16"
            );
            let q = (4 * factor) as u64;
            let col_bits = u64::from(64 - (q - 1).leading_zeros());
            let tiles = (pattern.rows() as u64).div_ceil(4) * (pattern.cols() as u64).div_ceil(q);
            nnz * (16 + col_bits + 1) + tiles * 2
        }
        Format::Bitmask => positions + nnz * 16,
        Format::Csr => nnz * (16 + 16) + (pattern.rows() as u64 + 1) * 32,
    }
}

/// Ratio of dense to `format` storage (>1 ⇒ the format is smaller).
#[must_use]
pub fn compression_ratio(pattern: &SparsityPattern, format: Format) -> f64 {
    let dense = storage_bits(pattern, Format::Dense) as f64;
    let f = storage_bits(pattern, format) as f64;
    if f == 0.0 {
        return f64::INFINITY;
    }
    dense / f
}

/// The smallest format for a pattern among a candidate set.
#[must_use]
pub fn best_format(pattern: &SparsityPattern, candidates: &[Format]) -> Option<Format> {
    candidates
        .iter()
        .copied()
        .min_by_key(|&f| storage_bits(pattern, f))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::rng::DetRng;

    fn pattern(density: f64) -> SparsityPattern {
        gen::uniform_pattern(64, 256, density, &mut DetRng::new(1))
    }

    #[test]
    fn dense_is_16_bits_per_position() {
        let p = pattern(0.5);
        assert_eq!(storage_bits(&p, Format::Dense), 16 * 64 * 256);
    }

    #[test]
    fn two_four_is_about_half() {
        let p = pattern(0.5);
        let ratio = compression_ratio(&p, Format::TwoFour);
        // 16 bits kept per 2 positions + metadata ≈ 1.78x.
        assert!((1.7..1.9).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn eureka_beats_csr_and_bitmask_at_paper_density() {
        // At 13%: Eureka 21 bits/nnz; CSR 32 bits/nnz; bitmask
        // 16 bits/nnz + 1 bit/position (≈ 23.7/nnz at 13%).
        let p = pattern(0.13);
        let eureka = storage_bits(&p, Format::EurekaCompacted { factor: 4 });
        assert!(eureka < storage_bits(&p, Format::Csr));
        assert!(eureka < storage_bits(&p, Format::Bitmask));
        assert!(compression_ratio(&p, Format::EurekaCompacted { factor: 4 }) > 5.0);
    }

    #[test]
    fn bitmask_wins_at_very_high_density() {
        // Near-dense: the mask's fixed 1 bit/position beats Eureka's
        // 5 bits/value metadata.
        let p = pattern(0.9);
        let best = best_format(
            &p,
            &[
                Format::EurekaCompacted { factor: 4 },
                Format::Bitmask,
                Format::Csr,
            ],
        );
        assert_eq!(best, Some(Format::Bitmask));
    }

    #[test]
    fn metadata_growth_with_factor_matches_paper() {
        // §3: "the metadata to identify a non-zero value's original column
        // increases (e.g., from 2 bits to 4)" going from q=4 to q=16.
        let p = pattern(0.13);
        let nnz = p.nnz() as u64;
        let f1 = storage_bits(&p, Format::EurekaCompacted { factor: 1 });
        let f4 = storage_bits(&p, Format::EurekaCompacted { factor: 4 });
        // Factor 4 adds exactly 2 extra bits per value (4-bit vs 2-bit
        // columns), modulo the per-tile rotation fields.
        let delta = f4 as i64 - f1 as i64;
        // Exactly: +2 bits per value, minus the rotation fields of the
        // tiles that merged (factor 1 has 4x the tiles of factor 4).
        let tiles1 = (64 / 4) * (256 / 4);
        let tiles4 = (64 / 4) * (256 / 16);
        let expected = 2 * nnz as i64 - 2 * (tiles1 - tiles4);
        assert_eq!(delta, expected);
    }

    #[test]
    fn dense_model_punishes_sparse_formats() {
        let p = pattern(1.0);
        for f in [
            Format::EurekaCompacted { factor: 4 },
            Format::Bitmask,
            Format::Csr,
        ] {
            assert!(compression_ratio(&p, f) < 1.01, "{f:?}");
        }
    }

    #[test]
    #[should_panic(expected = "compaction factor")]
    fn factor_validation() {
        let _ = storage_bits(&pattern(0.5), Format::EurekaCompacted { factor: 0 });
    }
}
