//! Splitting a full filter matrix into the tile stream a tensor core
//! consumes.

use crate::error::SparseError;
use crate::pattern::SparsityPattern;
use crate::tile::TilePattern;

/// A grid view of a [`SparsityPattern`] as `p × q` tiles, zero-padded at
/// the boundary.
///
/// Iteration order is row-major over tiles: all `q`-wide slices of the
/// reduction dimension for the first `p` filters, then the next `p`
/// filters, matching the order in which an output-stationary tensor core
/// walks a layer's weight matrix.
///
/// # Examples
///
/// ```
/// use eureka_sparse::{SparsityPattern, TileGrid};
///
/// let pattern = SparsityPattern::from_fn(8, 32, |r, c| (r + c) % 5 == 0);
/// let grid = TileGrid::new(&pattern, 4, 16);
/// assert_eq!(grid.tile_rows(), 2);
/// assert_eq!(grid.tile_cols(), 2);
/// assert_eq!(grid.iter().count(), 4);
/// ```
#[derive(Clone, Debug)]
pub struct TileGrid {
    tiles: Vec<TilePattern>,
    tile_rows: usize,
    tile_cols: usize,
    p: usize,
    q: usize,
}

impl TileGrid {
    /// Tiles `pattern` into `p × q` windows.
    ///
    /// # Panics
    ///
    /// Panics if `p == 0` or `q` is not in `1..=64`. (Tile shapes are
    /// compile-time-ish configuration, not data, so this is a programming
    /// error rather than a recoverable condition.)
    #[must_use]
    pub fn new(pattern: &SparsityPattern, p: usize, q: usize) -> Self {
        assert!(p > 0 && (1..=64).contains(&q), "invalid tile shape {p}x{q}");
        let tile_rows = pattern.rows().div_ceil(p);
        let tile_cols = pattern.cols().div_ceil(q);
        let mut tiles = Vec::with_capacity(tile_rows * tile_cols);
        for tr in 0..tile_rows {
            for tc in 0..tile_cols {
                let tile = TilePattern::from_pattern(pattern, tr * p, tc * q, p, q)
                    .expect("window origin in bounds by construction");
                tiles.push(tile);
            }
        }
        TileGrid {
            tiles,
            tile_rows,
            tile_cols,
            p,
            q,
        }
    }

    /// Number of tile rows (filter groups).
    #[must_use]
    pub fn tile_rows(&self) -> usize {
        self.tile_rows
    }

    /// Number of tile columns (reduction slices).
    #[must_use]
    pub fn tile_cols(&self) -> usize {
        self.tile_cols
    }

    /// Tile height.
    #[must_use]
    pub fn p(&self) -> usize {
        self.p
    }

    /// Tile width.
    #[must_use]
    pub fn q(&self) -> usize {
        self.q
    }

    /// The tile at grid position `(tile_row, tile_col)`.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::IndexOutOfBounds`] if the position is outside
    /// the grid.
    pub fn tile(&self, tile_row: usize, tile_col: usize) -> Result<&TilePattern, SparseError> {
        if tile_row >= self.tile_rows {
            return Err(SparseError::IndexOutOfBounds {
                index: tile_row,
                bound: self.tile_rows,
            });
        }
        if tile_col >= self.tile_cols {
            return Err(SparseError::IndexOutOfBounds {
                index: tile_col,
                bound: self.tile_cols,
            });
        }
        Ok(&self.tiles[tile_row * self.tile_cols + tile_col])
    }

    /// Iterates tiles in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = &TilePattern> + '_ {
        self.tiles.iter()
    }

    /// Iterates the tiles of one tile row (all reduction slices of one
    /// filter group).
    ///
    /// # Panics
    ///
    /// Panics if `tile_row` is out of bounds.
    pub fn row_iter(&self, tile_row: usize) -> impl Iterator<Item = &TilePattern> + '_ {
        assert!(tile_row < self.tile_rows, "tile row out of bounds");
        self.tiles[tile_row * self.tile_cols..(tile_row + 1) * self.tile_cols].iter()
    }

    /// Total non-zeros across all tiles (equals the source pattern's nnz).
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.tiles.iter().map(TilePattern::nnz).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_shape_and_padding() {
        // 6x20 pattern with 4x16 tiles -> 2x2 grid, padded.
        let p = SparsityPattern::from_fn(6, 20, |_, _| true);
        let g = TileGrid::new(&p, 4, 16);
        assert_eq!((g.tile_rows(), g.tile_cols()), (2, 2));
        assert_eq!(g.tile(0, 0).unwrap().nnz(), 64);
        assert_eq!(g.tile(0, 1).unwrap().nnz(), 16); // 4 rows x 4 remaining cols
        assert_eq!(g.tile(1, 0).unwrap().nnz(), 32); // 2 remaining rows x 16
        assert_eq!(g.tile(1, 1).unwrap().nnz(), 8);
        assert_eq!(g.nnz(), 120);
    }

    #[test]
    fn tile_lookup_bounds() {
        let p = SparsityPattern::empty(4, 16);
        let g = TileGrid::new(&p, 4, 16);
        assert!(g.tile(1, 0).is_err());
        assert!(g.tile(0, 1).is_err());
    }

    #[test]
    fn row_iter_covers_reduction_slices() {
        let p = SparsityPattern::from_fn(4, 32, |r, c| r == 0 && c % 16 == 0);
        let g = TileGrid::new(&p, 4, 16);
        let row: Vec<_> = g.row_iter(0).collect();
        assert_eq!(row.len(), 2);
        assert_eq!(row[0].nnz(), 1);
        assert_eq!(row[1].nnz(), 1);
    }

    #[test]
    fn nnz_preserved() {
        let p = SparsityPattern::from_fn(9, 33, |r, c| (r * 31 + c * 7) % 3 == 0);
        let g = TileGrid::new(&p, 4, 8);
        assert_eq!(g.nnz(), p.nnz());
    }

    #[test]
    #[should_panic(expected = "invalid tile shape")]
    fn invalid_shape_panics() {
        let p = SparsityPattern::empty(4, 4);
        let _ = TileGrid::new(&p, 0, 4);
    }
}
