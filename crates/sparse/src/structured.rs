//! 2:4 structured sparsity (Nvidia Ampere's sparse tensor core format).
//!
//! Every group of four consecutive values along the reduction dimension
//! keeps at most two non-zeros; groups with fewer than two are treated as
//! two for regularity (paper §1). Re-pruning an unstructured matrix keeps
//! the top-2 magnitudes per group, which is how the Ampere baseline runs
//! the paper's unstructured-pruned models.

use crate::matrix::Matrix;
use crate::pattern::SparsityPattern;
use eureka_fp16::F16;

/// Result of structured 2:4 pruning.
#[derive(Clone, Debug, PartialEq)]
pub struct TwoFourPruned {
    /// Values with losers zeroed.
    pub matrix: Matrix,
    /// Fraction of originally non-zero values that survived.
    pub kept_fraction: f64,
}

/// Prunes `m` to 2:4 along the columns (reduction dimension), keeping the
/// two largest magnitudes per group of four.
///
/// # Examples
///
/// ```
/// use eureka_sparse::{structured, Matrix};
/// use eureka_fp16::F16;
///
/// let m = Matrix::from_fn(1, 4, |_, c| F16::from_f32([4.0, 1.0, 3.0, 2.0][c]));
/// let pruned = structured::prune_2_4(&m);
/// assert_eq!(pruned.matrix.get(0, 0).to_f32(), 4.0);
/// assert_eq!(pruned.matrix.get(0, 1).to_f32(), 0.0);
/// assert_eq!(pruned.matrix.get(0, 2).to_f32(), 3.0);
/// assert_eq!(pruned.matrix.get(0, 3).to_f32(), 0.0);
/// ```
#[must_use]
pub fn prune_2_4(m: &Matrix) -> TwoFourPruned {
    let mut out = m.clone();
    let mut original_nnz = 0usize;
    let mut kept_nnz = 0usize;
    for r in 0..m.rows() {
        let mut c0 = 0;
        while c0 < m.cols() {
            let group_end = (c0 + 4).min(m.cols());
            let mut entries: Vec<(usize, f64)> = (c0..group_end)
                .map(|c| (c, m.get(r, c).to_f64().abs()))
                .collect();
            original_nnz += entries.iter().filter(|(_, v)| *v != 0.0).count();
            // Keep the two largest magnitudes (stable on ties by index).
            entries.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
            for &(c, v) in entries.iter().skip(2) {
                if v != 0.0 {
                    out.set(r, c, F16::ZERO);
                }
            }
            kept_nnz += entries.iter().take(2).filter(|(_, v)| *v != 0.0).count();
            c0 = group_end;
        }
    }
    let kept_fraction = if original_nnz == 0 {
        1.0
    } else {
        kept_nnz as f64 / original_nnz as f64
    };
    TwoFourPruned {
        matrix: out,
        kept_fraction,
    }
}

/// Checks that a pattern satisfies the 2:4 constraint along the columns.
#[must_use]
pub fn satisfies_2_4(p: &SparsityPattern) -> bool {
    for r in 0..p.rows() {
        let mut c0 = 0;
        while c0 < p.cols() {
            let group_end = (c0 + 4).min(p.cols());
            let nnz = (c0..group_end).filter(|&c| p.get(r, c)).count();
            if nnz > 2 {
                return false;
            }
            c0 = group_end;
        }
    }
    true
}

/// Per-value metadata bits for 2:4 (the value's position within its group
/// of four).
pub const METADATA_BITS_2_4: u32 = 2;

#[cfg(test)]
mod tests {
    use super::*;

    fn f(x: f32) -> F16 {
        F16::from_f32(x)
    }

    #[test]
    fn prune_keeps_top_two_per_group() {
        let vals = [1.0f32, -5.0, 2.0, 0.5, 3.0, 3.0, -1.0, 0.0];
        let m = Matrix::from_fn(1, 8, |_, c| f(vals[c]));
        let p = prune_2_4(&m);
        // Group 1: keep -5 and 2.
        assert_eq!(p.matrix.get(0, 0).to_f32(), 0.0);
        assert_eq!(p.matrix.get(0, 1).to_f32(), -5.0);
        assert_eq!(p.matrix.get(0, 2).to_f32(), 2.0);
        assert_eq!(p.matrix.get(0, 3).to_f32(), 0.0);
        // Group 2: keep both 3.0s.
        assert_eq!(p.matrix.get(0, 4).to_f32(), 3.0);
        assert_eq!(p.matrix.get(0, 5).to_f32(), 3.0);
        assert_eq!(p.matrix.get(0, 6).to_f32(), 0.0);
        assert!(satisfies_2_4(&p.matrix.pattern()));
        assert!((p.kept_fraction - 4.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn already_sparse_groups_untouched() {
        let m = Matrix::from_fn(2, 4, |r, c| if c == r { f(1.0) } else { F16::ZERO });
        let p = prune_2_4(&m);
        assert_eq!(p.matrix, m);
        assert_eq!(p.kept_fraction, 1.0);
    }

    #[test]
    fn ragged_tail_group() {
        // 6 columns: the final group has width 2, nothing pruned there.
        let m = Matrix::from_fn(1, 6, |_, c| f((c + 1) as f32));
        let p = prune_2_4(&m);
        assert_eq!(p.matrix.get(0, 4).to_f32(), 5.0);
        assert_eq!(p.matrix.get(0, 5).to_f32(), 6.0);
        assert!(satisfies_2_4(&p.matrix.pattern()));
    }

    #[test]
    fn satisfies_detects_violation() {
        let p = SparsityPattern::from_fn(1, 4, |_, _| true);
        assert!(!satisfies_2_4(&p));
        let ok = SparsityPattern::from_fn(1, 4, |_, c| c < 2);
        assert!(satisfies_2_4(&ok));
    }
}
