//! Dense row-major FP16 matrices and reference matrix multiplication.

use crate::error::SparseError;
use crate::pattern::SparsityPattern;
use eureka_fp16::F16;

/// A dense row-major matrix of binary16 values.
///
/// Used as the ground-truth value container: the simulator works on
/// [`SparsityPattern`]s, while the functional executor in `eureka-core`
/// multiplies real `Matrix` values to prove numerical equivalence of the
/// displaced schedules.
///
/// # Examples
///
/// ```
/// use eureka_sparse::Matrix;
/// use eureka_fp16::F16;
///
/// let m = Matrix::from_fn(2, 3, |r, c| F16::from_f32((r * 3 + c) as f32));
/// assert_eq!(m.get(1, 2).to_f32(), 5.0);
/// assert_eq!(m.transpose().get(2, 1).to_f32(), 5.0);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<F16>,
}

impl Matrix {
    /// Creates a zero-filled matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Matrix {
            rows,
            cols,
            data: vec![F16::ZERO; rows * cols],
        }
    }

    /// Creates a matrix by evaluating `f(row, col)` at every position.
    #[must_use]
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> F16) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.set(r, c, f(r, c));
            }
        }
        m
    }

    /// Creates a matrix from a row-major value slice.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] if `values.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, values: &[F16]) -> Result<Self, SparseError> {
        if values.len() != rows * cols {
            return Err(SparseError::DimensionMismatch {
                expected: format!("{rows}x{cols} = {} values", rows * cols),
                actual: format!("{} values", values.len()),
            });
        }
        Ok(Matrix {
            rows,
            cols,
            data: values.to_vec(),
        })
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Value at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the position is out of bounds.
    #[must_use]
    pub fn get(&self, row: usize, col: usize) -> F16 {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col]
    }

    /// Sets the value at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the position is out of bounds.
    pub fn set(&mut self, row: usize, col: usize, value: F16) {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col] = value;
    }

    /// Borrow of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    #[must_use]
    pub fn row(&self, r: usize) -> &[F16] {
        assert!(r < self.rows, "row out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The non-zero structure of this matrix.
    #[must_use]
    pub fn pattern(&self) -> SparsityPattern {
        SparsityPattern::from_fn(self.rows, self.cols, |r, c| !self.get(r, c).is_zero())
    }

    /// Transposed copy.
    #[must_use]
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |r, c| self.get(c, r))
    }

    /// Fraction of non-zero values.
    #[must_use]
    pub fn density(&self) -> f64 {
        let nnz = self.data.iter().filter(|v| !v.is_zero()).count();
        nnz as f64 / self.data.len() as f64
    }

    /// Applies `f` to every element, returning a new matrix.
    #[must_use]
    pub fn map(&self, mut f: impl FnMut(F16) -> F16) -> Matrix {
        Matrix::from_fn(self.rows, self.cols, |r, c| f(self.get(r, c)))
    }

    /// Element-wise ReLU: negative values (and `-0.0`) become `+0.0` —
    /// the non-linearity whose zeros the two-sided baselines exploit.
    #[must_use]
    pub fn relu(&self) -> Matrix {
        self.map(|v| {
            if v.is_sign_negative() || v.is_nan() {
                F16::ZERO
            } else {
                v
            }
        })
    }

    /// Reference matrix product computed in `f64` and rounded once per
    /// output element. The gold standard the hardware paths are tested
    /// against (exact for integer-valued inputs with small dot products).
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] if `self.cols() != rhs.rows()`.
    pub fn matmul_reference(&self, rhs: &Matrix) -> Result<Matrix, SparseError> {
        if self.cols != rhs.rows {
            return Err(SparseError::DimensionMismatch {
                expected: format!("rhs with {} rows", self.cols),
                actual: format!("{}x{}", rhs.rows, rhs.cols),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for j in 0..rhs.cols {
                let mut acc = 0.0f64;
                for k in 0..self.cols {
                    acc += self.get(i, k).to_f64() * rhs.get(k, j).to_f64();
                }
                out.set(i, j, F16::from_f64(acc));
            }
        }
        Ok(out)
    }

    /// Hardware-path matrix product: per output element, FP16 products
    /// accumulated in FP16 in `k` order, matching the undisplaced
    /// output-stationary dataflow.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] if `self.cols() != rhs.rows()`.
    pub fn matmul_hw(&self, rhs: &Matrix) -> Result<Matrix, SparseError> {
        if self.cols != rhs.rows {
            return Err(SparseError::DimensionMismatch {
                expected: format!("rhs with {} rows", self.cols),
                actual: format!("{}x{}", rhs.rows, rhs.cols),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for j in 0..rhs.cols {
                let mut mac = eureka_fp16::MacUnit::new();
                for k in 0..self.cols {
                    mac.fma(self.get(i, k), rhs.get(k, j));
                }
                out.set(i, j, mac.value());
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(x: f32) -> F16 {
        F16::from_f32(x)
    }

    #[test]
    fn construction_and_access() {
        let m = Matrix::from_fn(3, 2, |r, c| f((r * 2 + c) as f32));
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 2);
        assert_eq!(m.get(2, 1).to_f32(), 5.0);
        assert_eq!(m.row(1), &[f(2.0), f(3.0)]);
    }

    #[test]
    fn from_rows_validates_length() {
        let err = Matrix::from_rows(2, 2, &[F16::ZERO; 3]).unwrap_err();
        assert!(matches!(err, SparseError::DimensionMismatch { .. }));
        let ok = Matrix::from_rows(2, 2, &[F16::ONE; 4]).unwrap();
        assert_eq!(ok.get(1, 1), F16::ONE);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_fn(3, 5, |r, c| f((r * 5 + c) as f32));
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn pattern_and_density() {
        let m = Matrix::from_fn(2, 2, |r, c| if r == c { F16::ONE } else { F16::ZERO });
        assert_eq!(m.density(), 0.5);
        let p = m.pattern();
        assert!(p.get(0, 0));
        assert!(!p.get(0, 1));
    }

    #[test]
    fn map_and_relu() {
        let m = Matrix::from_fn(2, 2, |r, c| f(if (r + c) % 2 == 0 { -1.5 } else { 2.0 }));
        let doubled = m.map(|v| v + v);
        assert_eq!(doubled.get(0, 1).to_f32(), 4.0);
        let rel = m.relu();
        assert_eq!(rel.get(0, 0), F16::ZERO);
        assert_eq!(rel.get(0, 1).to_f32(), 2.0);
        // -0.0 normalizes to +0.0 so density counts stay consistent.
        let z = Matrix::from_fn(1, 1, |_, _| F16::NEG_ZERO).relu();
        assert_eq!(z.get(0, 0).to_bits(), 0);
    }

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_fn(3, 3, |r, c| f((r * 3 + c + 1) as f32));
        let id = Matrix::from_fn(3, 3, |r, c| if r == c { F16::ONE } else { F16::ZERO });
        assert_eq!(a.matmul_reference(&id).unwrap(), a);
        assert_eq!(a.matmul_hw(&id).unwrap(), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(2, 2, &[f(1.0), f(2.0), f(3.0), f(4.0)]).unwrap();
        let b = Matrix::from_rows(2, 2, &[f(5.0), f(6.0), f(7.0), f(8.0)]).unwrap();
        let c = a.matmul_reference(&b).unwrap();
        assert_eq!(c.get(0, 0).to_f32(), 19.0);
        assert_eq!(c.get(0, 1).to_f32(), 22.0);
        assert_eq!(c.get(1, 0).to_f32(), 43.0);
        assert_eq!(c.get(1, 1).to_f32(), 50.0);
        assert_eq!(a.matmul_hw(&b).unwrap(), c);
    }

    #[test]
    fn matmul_dimension_check() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 2);
        assert!(a.matmul_reference(&b).is_err());
        assert!(a.matmul_hw(&b).is_err());
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_dims_panic() {
        let _ = Matrix::zeros(0, 3);
    }
}
