//! Error types for the sparse substrate.

use core::fmt;

/// Errors produced by sparse-matrix construction and transformation.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum SparseError {
    /// Two operands' dimensions are incompatible for the requested
    /// operation.
    DimensionMismatch {
        /// Description of the expected shape.
        expected: String,
        /// Description of the shape actually provided.
        actual: String,
    },
    /// A tile shape parameter is invalid (zero, or wider than the 64-column
    /// bitmask datapath).
    InvalidTileShape {
        /// Requested number of tile rows.
        rows: usize,
        /// Requested number of tile columns.
        cols: usize,
    },
    /// An index is out of bounds.
    IndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// The exclusive bound.
        bound: usize,
    },
    /// A density parameter is outside `[0, 1]`.
    InvalidDensity(f64),
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
            SparseError::InvalidTileShape { rows, cols } => {
                write!(
                    f,
                    "invalid tile shape {rows}x{cols} (rows and cols must be in 1..=64)"
                )
            }
            SparseError::IndexOutOfBounds { index, bound } => {
                write!(f, "index {index} out of bounds for length {bound}")
            }
            SparseError::InvalidDensity(d) => {
                write!(f, "density {d} outside the unit interval")
            }
        }
    }
}

impl std::error::Error for SparseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = SparseError::InvalidTileShape { rows: 0, cols: 4 };
        assert!(e.to_string().contains("0x4"));
        let e = SparseError::InvalidDensity(1.5);
        assert!(e.to_string().contains("1.5"));
        let e = SparseError::IndexOutOfBounds { index: 9, bound: 4 };
        assert!(e.to_string().contains('9'));
        let e = SparseError::DimensionMismatch {
            expected: "4x4".into(),
            actual: "4x5".into(),
        };
        assert!(e.to_string().contains("4x5"));
    }

    #[test]
    fn implements_std_error() {
        fn takes_err<E: std::error::Error + Send + Sync + 'static>(_: E) {}
        takes_err(SparseError::InvalidDensity(2.0));
    }
}
