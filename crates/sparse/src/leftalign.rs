//! Left-aligned tiles with original-column metadata (paper Figure 4).
//!
//! The sparse tensor core packs each row's non-zeros to the left; a per-value
//! metadata field records the original column so the broadcast-side
//! multiplexer (4-1 for 2:4, 8-1/16-1 after compaction) can select the
//! matching activation row.

use crate::tile::TilePattern;

/// A tile whose rows hold original-column indices of the non-zeros, packed
/// left (ascending by construction).
///
/// # Examples
///
/// ```
/// use eureka_sparse::{AlignedTile, TilePattern};
///
/// let t = TilePattern::from_rows(&[0b1010, 0b0001, 0, 0b1111], 4).unwrap();
/// let a = AlignedTile::from_tile(&t);
/// assert_eq!(a.row(0), &[1, 3]);
/// assert_eq!(a.max_row_len(), 4);
/// assert_eq!(a.metadata_bits(), 2); // 4 columns -> 2-bit indices
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AlignedTile {
    q: usize,
    rows: Vec<Vec<u16>>,
}

impl AlignedTile {
    /// Left-aligns a tile.
    #[must_use]
    pub fn from_tile(tile: &TilePattern) -> Self {
        let rows = (0..tile.p())
            .map(|r| tile.row_iter(r).map(|c| c as u16).collect())
            .collect();
        AlignedTile { q: tile.q(), rows }
    }

    /// Builds directly from per-row original-column lists.
    ///
    /// # Panics
    ///
    /// Panics if any index is `>= q` or `q` is not in `1..=64`.
    #[must_use]
    pub fn from_rows(rows: Vec<Vec<u16>>, q: usize) -> Self {
        assert!((1..=64).contains(&q), "q must be in 1..=64");
        for row in &rows {
            for &c in row {
                assert!((c as usize) < q, "column index {c} out of bounds for q={q}");
            }
        }
        AlignedTile { q, rows }
    }

    /// Original tile width (the multiplexer fan-in).
    #[must_use]
    pub fn q(&self) -> usize {
        self.q
    }

    /// Number of rows.
    #[must_use]
    pub fn p(&self) -> usize {
        self.rows.len()
    }

    /// Original-column indices of row `r`, left-packed.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    #[must_use]
    pub fn row(&self, r: usize) -> &[u16] {
        &self.rows[r]
    }

    /// Per-row non-zero counts.
    #[must_use]
    pub fn row_lens(&self) -> Vec<usize> {
        self.rows.iter().map(Vec::len).collect()
    }

    /// The longest row (the aligned tile's critical path).
    #[must_use]
    pub fn max_row_len(&self) -> usize {
        self.rows.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Total non-zeros.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.rows.iter().map(Vec::len).sum()
    }

    /// Metadata bits needed per value to encode the original column
    /// (2 bits for 2:4's q=4, 4 bits for compaction factor 4's q=16).
    #[must_use]
    pub fn metadata_bits(&self) -> u32 {
        usize::BITS - (self.q - 1).leading_zeros()
    }

    /// Reconstructs the (unaligned) sparsity tile; inverse of
    /// [`from_tile`](Self::from_tile).
    ///
    /// # Panics
    ///
    /// Panics if the tile shape would be invalid (cannot happen for values
    /// built through the public constructors).
    #[must_use]
    pub fn to_tile(&self) -> TilePattern {
        let masks: Vec<u64> = self
            .rows
            .iter()
            .map(|row| row.iter().fold(0u64, |m, &c| m | (1 << c)))
            .collect();
        TilePattern::from_rows(&masks, self.q).expect("indices validated on construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_roundtrip() {
        let t = TilePattern::from_rows(&[0b1011, 0, 0b1000, 0b0110], 4).unwrap();
        let a = AlignedTile::from_tile(&t);
        assert_eq!(a.to_tile(), t);
        assert_eq!(a.row(0), &[0, 1, 3]);
        assert_eq!(a.row(2), &[3]);
        assert_eq!(a.nnz(), t.nnz());
        assert_eq!(a.max_row_len(), t.critical_path());
    }

    #[test]
    fn metadata_bit_widths() {
        let mk = |q: usize| AlignedTile::from_rows(vec![vec![]], q).metadata_bits();
        assert_eq!(mk(4), 2);
        assert_eq!(mk(8), 3);
        assert_eq!(mk(16), 4);
        assert_eq!(mk(64), 6);
    }

    #[test]
    fn figure4_example_shape() {
        // A 2:4 sparse tile: every row has exactly two non-zeros, first in
        // columns 0..3, second in columns 1..4 — left-aligns to two columns.
        let t = TilePattern::from_rows(&[0b0011, 0b1010, 0b0101, 0b1100], 4).unwrap();
        let a = AlignedTile::from_tile(&t);
        assert!(a.row_lens().iter().all(|&l| l == 2));
        assert_eq!(a.max_row_len(), 2);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn from_rows_validates_indices() {
        let _ = AlignedTile::from_rows(vec![vec![4]], 4);
    }
}
