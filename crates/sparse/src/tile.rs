//! Fixed-size sparsity tiles — the unit the MAC sub-arrays operate on.
//!
//! A tensor-core sub-array multiplies a `p × q` *filter* sub-matrix
//! (p = sub-array dimension, q = p × compaction factor after compaction)
//! against a broadcast activation tile. All the paper's timing quantities —
//! row lengths, the critical path, the nnz lower bound — are tile-local,
//! so [`TilePattern`] stores each row as one 64-bit mask.

use crate::error::SparseError;
use crate::pattern::{SetBits, SparsityPattern};

/// The non-zero structure of one `p × q` tile (`q <= 64`).
///
/// # Examples
///
/// ```
/// use eureka_sparse::TilePattern;
///
/// let t = TilePattern::from_rows(&[0b1011, 0b0001, 0b0000, 0b1000], 4).unwrap();
/// assert_eq!(t.critical_path(), 3);      // row 0 has three non-zeros
/// assert_eq!(t.nnz(), 5);
/// assert_eq!(t.min_critical_path(), 2);  // ceil(5 / 4)
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct TilePattern {
    cols: usize,
    rows: Vec<u64>,
}

impl TilePattern {
    /// Creates a tile from per-row bitmasks.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::InvalidTileShape`] if there are no rows, the
    /// column count is not in `1..=64`, or a mask has bits above `cols`.
    pub fn from_rows(rows: &[u64], cols: usize) -> Result<Self, SparseError> {
        if rows.is_empty() || cols == 0 || cols > 64 {
            return Err(SparseError::InvalidTileShape {
                rows: rows.len(),
                cols,
            });
        }
        let valid = if cols == 64 {
            u64::MAX
        } else {
            (1u64 << cols) - 1
        };
        if rows.iter().any(|&m| m & !valid != 0) {
            return Err(SparseError::InvalidTileShape {
                rows: rows.len(),
                cols,
            });
        }
        Ok(TilePattern {
            cols,
            rows: rows.to_vec(),
        })
    }

    /// Extracts the tile at window `(row0, col0)` of a pattern, zero-padded
    /// past the edges.
    ///
    /// # Errors
    ///
    /// Returns an error if the shape is invalid or the origin out of bounds.
    pub fn from_pattern(
        pattern: &SparsityPattern,
        row0: usize,
        col0: usize,
        p: usize,
        q: usize,
    ) -> Result<Self, SparseError> {
        if p == 0 || q == 0 || q > 64 {
            return Err(SparseError::InvalidTileShape { rows: p, cols: q });
        }
        if row0 >= pattern.rows() {
            return Err(SparseError::IndexOutOfBounds {
                index: row0,
                bound: pattern.rows(),
            });
        }
        if col0 >= pattern.cols() {
            return Err(SparseError::IndexOutOfBounds {
                index: col0,
                bound: pattern.cols(),
            });
        }
        let mut rows = vec![0u64; p];
        Self::extract_masks(pattern, row0, col0, q, &mut rows);
        Ok(TilePattern { cols: q, rows })
    }

    /// Reinitializes this tile in place from per-row bitmasks, reusing the
    /// existing row storage (no allocation once capacity suffices) — the
    /// scratch-arena counterpart of [`from_rows`](Self::from_rows).
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::InvalidTileShape`] under the same conditions
    /// as [`from_rows`](Self::from_rows); the tile is left unchanged on
    /// error.
    pub fn reset_from_rows(&mut self, rows: &[u64], cols: usize) -> Result<(), SparseError> {
        if rows.is_empty() || cols == 0 || cols > 64 {
            return Err(SparseError::InvalidTileShape {
                rows: rows.len(),
                cols,
            });
        }
        let valid = if cols == 64 {
            u64::MAX
        } else {
            (1u64 << cols) - 1
        };
        if rows.iter().any(|&m| m & !valid != 0) {
            return Err(SparseError::InvalidTileShape {
                rows: rows.len(),
                cols,
            });
        }
        self.cols = cols;
        self.rows.clear();
        self.rows.extend_from_slice(rows);
        Ok(())
    }

    /// Extracts `q` bits starting at `col0` from each of `p` pattern rows
    /// starting at `row0` into `masks` (one funnel shift per row — no
    /// per-bit probes). Rows/columns past the pattern edge zero-pad: the
    /// pattern's own word tails are zero past `cols`, so the shift reads
    /// zeros for free.
    fn extract_masks(
        pattern: &SparsityPattern,
        row0: usize,
        col0: usize,
        q: usize,
        masks: &mut [u64],
    ) {
        let valid = if q == 64 { u64::MAX } else { (1u64 << q) - 1 };
        let (skip, sh) = (col0 / 64, col0 % 64);
        let live = masks.len().min(pattern.rows() - row0);
        for (r, mask) in masks.iter_mut().enumerate().take(live) {
            let src = pattern.row_words(row0 + r);
            let lo = src.get(skip).copied().unwrap_or(0);
            let w = if sh == 0 {
                lo
            } else {
                (lo >> sh) | (src.get(skip + 1).copied().unwrap_or(0) << (64 - sh))
            };
            *mask = w & valid;
        }
        for mask in masks.iter_mut().skip(live) {
            *mask = 0;
        }
    }

    /// Number of rows `p`.
    #[must_use]
    pub fn p(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns `q`.
    #[must_use]
    pub fn q(&self) -> usize {
        self.cols
    }

    /// Raw bitmask of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    #[must_use]
    pub fn row_mask(&self, r: usize) -> u64 {
        self.rows[r]
    }

    /// Non-zero count of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    #[must_use]
    pub fn row_len(&self, r: usize) -> usize {
        self.rows[r].count_ones() as usize
    }

    /// Per-row non-zero counts.
    #[must_use]
    pub fn row_lens(&self) -> Vec<usize> {
        self.rows.iter().map(|m| m.count_ones() as usize).collect()
    }

    /// Total non-zeros in the tile.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.rows.iter().map(|m| m.count_ones() as usize).sum()
    }

    /// The tile's critical path: the longest row, i.e. the cycles an
    /// output-stationary sub-array needs for this tile after left-alignment
    /// (paper §3).
    #[must_use]
    pub fn critical_path(&self) -> usize {
        self.rows
            .iter()
            .map(|m| m.count_ones() as usize)
            .max()
            .unwrap_or(0)
    }

    /// The information-theoretic lower bound on any balanced critical path:
    /// `ceil(nnz / p)` (paper §3.2, the lower bound of the `K` search).
    #[must_use]
    pub fn min_critical_path(&self) -> usize {
        self.nnz().div_ceil(self.p())
    }

    /// Whether the tile has no non-zeros.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.iter().all(|&m| m == 0)
    }

    /// Fraction of non-zero cells.
    #[must_use]
    pub fn density(&self) -> f64 {
        self.nnz() as f64 / (self.p() * self.q()) as f64
    }

    /// Zero-allocation iterator over the column indices of non-zeros in
    /// row `r`, ascending.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    #[must_use]
    pub fn row_iter(&self, r: usize) -> SetBits<'_> {
        SetBits::new(std::slice::from_ref(&self.rows[r]))
    }

    /// Column indices of non-zeros in row `r`, ascending.
    ///
    /// Note: allocates a fresh `Vec` per call; prefer the zero-allocation
    /// [`row_iter`](Self::row_iter) in hot loops. Retained as a
    /// convenience `collect` wrapper.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    #[must_use]
    pub fn row_indices(&self, r: usize) -> Vec<usize> {
        self.row_iter(r).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rows_validates() {
        assert!(TilePattern::from_rows(&[], 4).is_err());
        assert!(TilePattern::from_rows(&[0], 0).is_err());
        assert!(TilePattern::from_rows(&[0], 65).is_err());
        assert!(TilePattern::from_rows(&[0b10000], 4).is_err()); // bit 4 invalid for cols=4
        assert!(TilePattern::from_rows(&[0b1111], 4).is_ok());
        assert!(TilePattern::from_rows(&[u64::MAX], 64).is_ok());
    }

    #[test]
    fn counts_and_critical_path() {
        let t = TilePattern::from_rows(&[0b1111, 0b0011, 0, 0b1000], 4).unwrap();
        assert_eq!(t.p(), 4);
        assert_eq!(t.q(), 4);
        assert_eq!(t.nnz(), 7);
        assert_eq!(t.critical_path(), 4);
        assert_eq!(t.min_critical_path(), 2);
        assert_eq!(t.row_lens(), vec![4, 2, 0, 1]);
        assert!(!t.is_empty());
        assert_eq!(t.density(), 7.0 / 16.0);
    }

    #[test]
    fn empty_tile() {
        let t = TilePattern::from_rows(&[0, 0], 8).unwrap();
        assert!(t.is_empty());
        assert_eq!(t.critical_path(), 0);
        assert_eq!(t.min_critical_path(), 0);
    }

    #[test]
    fn from_pattern_window() {
        let p = SparsityPattern::from_fn(8, 8, |r, c| r == c);
        let t = TilePattern::from_pattern(&p, 4, 4, 4, 4).unwrap();
        assert_eq!(t.nnz(), 4);
        assert_eq!(t.row_indices(2), vec![2]);
        // Zero-padded window past the edge.
        let t = TilePattern::from_pattern(&p, 6, 6, 4, 4).unwrap();
        assert_eq!(t.nnz(), 2);
        assert!(TilePattern::from_pattern(&p, 8, 0, 4, 4).is_err());
        assert!(TilePattern::from_pattern(&p, 0, 0, 0, 4).is_err());
    }

    #[test]
    fn row_indices_order() {
        let t = TilePattern::from_rows(&[0b1010_0001], 8).unwrap();
        assert_eq!(t.row_indices(0), vec![0, 5, 7]);
    }
}
