//! A deterministic, version-stable random number generator.
//!
//! Experiment reproducibility matters more here than statistical exotica:
//! the same seed must generate the same synthetic weights on every machine
//! and with every dependency version. [`DetRng`] implements xoshiro256**
//! seeded through SplitMix64 — the standard, well-analyzed construction —
//! in ~60 lines with no dependencies.

/// Deterministic xoshiro256** generator.
///
/// # Examples
///
/// ```
/// use eureka_sparse::rng::DetRng;
///
/// let mut a = DetRng::new(7);
/// let mut b = DetRng::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DetRng {
    state: [u64; 4],
}

impl DetRng {
    /// Creates a generator from a 64-bit seed (expanded via SplitMix64).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let state = [next(), next(), next(), next()];
        DetRng { state }
    }

    /// Derives an independent stream for a named sub-experiment. Forked
    /// streams don't perturb the parent, so adding a consumer never changes
    /// the values other consumers see.
    #[must_use]
    pub fn fork(&self, stream: u64) -> Self {
        DetRng::new(
            self.state[0]
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(stream.wrapping_mul(0xD2B7_4407_B1CE_6E93)),
        )
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform value in `[0, 1)` as `f32`.
    pub fn next_f32(&mut self) -> f32 {
        self.next_f64() as f32
    }

    /// Uniform integer in `[0, bound)` via Lemire's rejection-free-ish
    /// multiply-shift (bias is negligible for the bounds used here).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "bound must be positive");
        ((u128::from(self.next_u64()) * bound as u128) >> 64) as usize
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Standard-normal-ish sample via the sum of 12 uniforms (Irwin–Hall),
    /// adequate for synthetic weight magnitudes.
    pub fn next_gaussian(&mut self) -> f64 {
        (0..12).map(|_| self.next_f64()).sum::<f64>() - 6.0
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.next_below(i + 1);
            items.swap(i, j);
        }
    }

    /// Chooses exactly `k` distinct indices out of `n` (reservoir-free,
    /// partial Fisher–Yates). Returned indices are in random order.
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn choose_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot choose {k} of {n}");
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.next_below(n - i);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = DetRng::new(123);
        let mut b = DetRng::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn fork_is_independent_of_parent_consumption() {
        let parent = DetRng::new(9);
        let mut f1 = parent.fork(3);
        let mut parent2 = parent.clone();
        let _ = parent2.next_u64();
        let mut f2 = parent.fork(3);
        assert_eq!(f1.next_u64(), f2.next_u64());
        let mut other = parent.fork(4);
        assert_ne!(parent.fork(3).next_u64(), other.next_u64());
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = DetRng::new(5);
        for _ in 0..1000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_bounds() {
        let mut rng = DetRng::new(5);
        for bound in [1usize, 2, 7, 100] {
            for _ in 0..200 {
                assert!(rng.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn bernoulli_rate_is_plausible() {
        let mut rng = DetRng::new(11);
        let hits = (0..10_000).filter(|_| rng.bernoulli(0.13)).count();
        assert!((1100..1500).contains(&hits), "got {hits}");
    }

    #[test]
    fn gaussian_moments_are_plausible() {
        let mut rng = DetRng::new(13);
        let n = 10_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.next_gaussian()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn choose_indices_distinct_and_complete() {
        let mut rng = DetRng::new(17);
        let mut picked = rng.choose_indices(10, 10);
        picked.sort_unstable();
        assert_eq!(picked, (0..10).collect::<Vec<_>>());
        let some = rng.choose_indices(100, 5);
        assert_eq!(some.len(), 5);
        let mut uniq = some.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 5);
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        DetRng::new(1).next_below(0);
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = DetRng::new(23);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }
}
