//! SparTen-style chunked bitmask format.
//!
//! SparTen (MICRO 2019; modelled as a baseline in the Eureka paper §4)
//! represents vectors as fixed-size chunks of a bitmask plus packed non-zero
//! values. Its inner-product datapath ANDs a filter chunk's mask with an
//! activation chunk's mask; the popcount of the intersection is the number
//! of multiply cycles that chunk pair contributes.

use crate::pattern::SparsityPattern;

/// SparTen's chunk width in values (two double-buffered input chunks of 32
/// FP16 values each, paper §4).
pub const CHUNK_WIDTH: usize = 32;

/// One row of a matrix in chunked-bitmask form.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MaskedRow {
    /// One 32-bit mask per chunk; bit set ⇒ non-zero value present.
    pub chunks: Vec<u32>,
    /// Number of valid columns (the final chunk may be partial).
    pub cols: usize,
}

impl MaskedRow {
    /// Extracts row `row` of `pattern` into chunked form.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    #[must_use]
    pub fn from_pattern(pattern: &SparsityPattern, row: usize) -> Self {
        let cols = pattern.cols();
        let n_chunks = cols.div_ceil(CHUNK_WIDTH);
        let mut chunks = vec![0u32; n_chunks];
        // Each packed 64-bit pattern word is exactly two 32-bit chunks;
        // split words instead of probing bits. Pattern word tails past
        // `cols` are zero, so a partial final chunk needs no masking.
        for (wi, &w) in pattern.row_words(row).iter().enumerate() {
            if let Some(lo) = chunks.get_mut(2 * wi) {
                *lo = w as u32;
            }
            if let Some(hi) = chunks.get_mut(2 * wi + 1) {
                *hi = (w >> 32) as u32;
            }
        }
        MaskedRow { chunks, cols }
    }

    /// Total non-zeros in the row.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.chunks.iter().map(|c| c.count_ones() as usize).sum()
    }

    /// Number of chunks.
    #[must_use]
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// Whether chunk `i` holds no non-zeros (a fetch-and-skip chunk in
    /// SparTen's pipeline — wasted front-end work on coarse sparsity).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[must_use]
    pub fn chunk_is_empty(&self, i: usize) -> bool {
        self.chunks[i] == 0
    }

    /// Per-chunk matched non-zero pairs against another row: the multiply
    /// work of SparTen's inner product for this row pair.
    ///
    /// # Panics
    ///
    /// Panics if the rows have different widths.
    #[must_use]
    pub fn matches_per_chunk(&self, other: &MaskedRow) -> Vec<usize> {
        assert_eq!(self.cols, other.cols, "row widths differ");
        self.chunks
            .iter()
            .zip(&other.chunks)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .collect()
    }

    /// Total matched pairs against another row. Word-parallel: one
    /// AND+popcount per chunk pair, no intermediate allocation (the
    /// alloc-free counterpart of [`matches_per_chunk`](Self::matches_per_chunk)).
    ///
    /// # Panics
    ///
    /// Panics if the rows have different widths.
    #[must_use]
    pub fn total_matches(&self, other: &MaskedRow) -> usize {
        assert_eq!(self.cols, other.cols, "row widths differ");
        self.chunks
            .iter()
            .zip(&other.chunks)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Storage cost in bits: one mask bit per column plus 16 bits per
    /// non-zero value.
    #[must_use]
    pub fn storage_bits(&self) -> usize {
        self.cols + 16 * self.nnz()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunking_and_nnz() {
        let p = SparsityPattern::from_fn(1, 70, |_, c| c % 7 == 0);
        let r = MaskedRow::from_pattern(&p, 0);
        assert_eq!(r.chunk_count(), 3);
        assert_eq!(r.nnz(), 10);
        assert_eq!(r.cols, 70);
    }

    #[test]
    fn match_counting() {
        let a = MaskedRow::from_pattern(&SparsityPattern::from_fn(1, 64, |_, c| c % 2 == 0), 0);
        let b = MaskedRow::from_pattern(&SparsityPattern::from_fn(1, 64, |_, c| c % 3 == 0), 0);
        // Multiples of 6 in 0..64: 0,6,...,60 -> 11 values.
        assert_eq!(a.total_matches(&b), 11);
        assert_eq!(a.matches_per_chunk(&b).len(), 2);
    }

    #[test]
    fn empty_chunk_detection() {
        let p = SparsityPattern::from_fn(1, 96, |_, c| c < 32);
        let r = MaskedRow::from_pattern(&p, 0);
        assert!(!r.chunk_is_empty(0));
        assert!(r.chunk_is_empty(1));
        assert!(r.chunk_is_empty(2));
    }

    #[test]
    fn storage_accounting() {
        let p = SparsityPattern::from_fn(1, 64, |_, c| c < 4);
        let r = MaskedRow::from_pattern(&p, 0);
        assert_eq!(r.storage_bits(), 64 + 16 * 4);
    }

    #[test]
    #[should_panic(expected = "row widths differ")]
    fn width_mismatch_panics() {
        let a = MaskedRow::from_pattern(&SparsityPattern::empty(1, 32), 0);
        let b = MaskedRow::from_pattern(&SparsityPattern::empty(1, 64), 0);
        let _ = a.total_matches(&b);
    }
}
