//! Bit matrices of non-zero positions.
//!
//! Timing in every architecture model depends only on *where* the non-zeros
//! are, not on their values, so the simulator works on [`SparsityPattern`]s
//! and leaves values to [`crate::Matrix`].

use crate::error::SparseError;

/// Zero-allocation iterator over the set-bit positions of a packed word
/// slice, ascending. Yielded values are absolute bit indices into the
/// slice (`word_index * 64 + bit`).
///
/// Produced by [`SparsityPattern::row_iter`] and
/// [`crate::TilePattern::row_iter`]; the canonical replacement for the
/// allocating `row_indices` methods in hot loops.
#[derive(Clone, Debug)]
pub struct SetBits<'a> {
    words: &'a [u64],
    /// Current word being drained (bits already consumed are cleared).
    current: u64,
    /// Bit offset of `current`'s bit 0.
    base: usize,
    /// Index of the next word to load into `current`.
    next_word: usize,
}

impl<'a> SetBits<'a> {
    /// Iterates the set bits of `words`, ascending.
    #[must_use]
    pub fn new(words: &'a [u64]) -> Self {
        SetBits {
            words,
            current: words.first().copied().unwrap_or(0),
            base: 0,
            next_word: 1,
        }
    }
}

impl Iterator for SetBits<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            let &w = self.words.get(self.next_word)?;
            self.current = w;
            self.base = self.next_word * 64;
            self.next_word += 1;
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(self.base + bit)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rest: usize = self.current.count_ones() as usize
            + self.words[self.next_word.min(self.words.len())..]
                .iter()
                .map(|w| w.count_ones() as usize)
                .sum::<usize>();
        (rest, Some(rest))
    }
}

impl ExactSizeIterator for SetBits<'_> {}

impl std::iter::FusedIterator for SetBits<'_> {}

/// A rows×cols bit matrix; bit set ⇒ non-zero at that position.
///
/// Rows are stored as packed 64-bit words.
///
/// # Examples
///
/// ```
/// use eureka_sparse::SparsityPattern;
///
/// let p = SparsityPattern::from_fn(2, 3, |r, c| (r + c) % 2 == 0);
/// assert_eq!(p.nnz(), 3);
/// assert_eq!(p.row_nnz(0), 2);
/// assert!((p.density() - 0.5).abs() < 1e-9);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SparsityPattern {
    rows: usize,
    cols: usize,
    words_per_row: usize,
    words: Vec<u64>,
}

impl SparsityPattern {
    /// Creates an all-zero pattern.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn empty(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "pattern dimensions must be positive");
        let words_per_row = cols.div_ceil(64);
        SparsityPattern {
            rows,
            cols,
            words_per_row,
            words: vec![0; rows * words_per_row],
        }
    }

    /// Creates a pattern by evaluating a predicate at every position.
    #[must_use]
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> bool) -> Self {
        let mut p = SparsityPattern::empty(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                if f(r, c) {
                    p.insert(r, c);
                }
            }
        }
        p
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Whether position `(row, col)` is non-zero.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[must_use]
    pub fn get(&self, row: usize, col: usize) -> bool {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        let w = self.words[row * self.words_per_row + col / 64];
        (w >> (col % 64)) & 1 == 1
    }

    /// Marks position `(row, col)` non-zero.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn insert(&mut self, row: usize, col: usize) {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.words[row * self.words_per_row + col / 64] |= 1 << (col % 64);
    }

    /// Clears position `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn remove(&mut self, row: usize, col: usize) {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.words[row * self.words_per_row + col / 64] &= !(1 << (col % 64));
    }

    /// Total number of non-zeros.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of non-zeros in `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    #[must_use]
    pub fn row_nnz(&self, row: usize) -> usize {
        assert!(row < self.rows, "row out of bounds");
        self.words[row * self.words_per_row..(row + 1) * self.words_per_row]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }

    /// Fraction of non-zero positions.
    #[must_use]
    pub fn density(&self) -> f64 {
        self.nnz() as f64 / (self.rows * self.cols) as f64
    }

    /// The packed 64-bit words of `row` (bit `c % 64` of word `c / 64` ⇒
    /// column `c` is non-zero). Bits at positions `>= cols` in the final
    /// word are always zero.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    #[must_use]
    pub fn row_words(&self, row: usize) -> &[u64] {
        assert!(row < self.rows, "row out of bounds");
        &self.words[row * self.words_per_row..(row + 1) * self.words_per_row]
    }

    /// Zero-allocation iterator over the column indices of the non-zeros
    /// in `row`, ascending.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    #[must_use]
    pub fn row_iter(&self, row: usize) -> SetBits<'_> {
        SetBits::new(self.row_words(row))
    }

    /// Calls `f` with each non-zero column of `row`, ascending, without
    /// allocating.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    pub fn for_each_set(&self, row: usize, mut f: impl FnMut(usize)) {
        for (wi, &word) in self.row_words(row).iter().enumerate() {
            let mut w = word;
            while w != 0 {
                f(wi * 64 + w.trailing_zeros() as usize);
                w &= w - 1;
            }
        }
    }

    /// Column indices of the non-zeros in `row`, ascending.
    ///
    /// Note: allocates a fresh `Vec` per call; prefer the zero-allocation
    /// [`row_iter`](Self::row_iter) / [`for_each_set`](Self::for_each_set)
    /// in hot loops. Retained as a convenience `collect` wrapper.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    #[must_use]
    pub fn row_indices(&self, row: usize) -> Vec<usize> {
        self.row_iter(row).collect()
    }

    /// A `row_count × col_count` window starting at `(row0, col0)`,
    /// zero-padded past the matrix edge (tiles at the boundary of a layer
    /// whose dimensions aren't tile multiples).
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::IndexOutOfBounds`] if the window origin is
    /// outside the matrix.
    pub fn window(
        &self,
        row0: usize,
        col0: usize,
        row_count: usize,
        col_count: usize,
    ) -> Result<SparsityPattern, SparseError> {
        if row0 >= self.rows {
            return Err(SparseError::IndexOutOfBounds {
                index: row0,
                bound: self.rows,
            });
        }
        if col0 >= self.cols {
            return Err(SparseError::IndexOutOfBounds {
                index: col0,
                bound: self.cols,
            });
        }
        let mut out = SparsityPattern::empty(row_count, col_count);
        let out_wpr = out.words_per_row;
        // Tail mask for the window's final word: bits past `col_count`
        // must stay zero (the word-tail masking invariant — see
        // DESIGN.md "Hot paths").
        let tail = col_count % 64;
        let tail_mask = if tail == 0 {
            u64::MAX
        } else {
            (1u64 << tail) - 1
        };
        for r in 0..row_count.min(self.rows - row0) {
            let src = self.row_words(row0 + r);
            let dst = &mut out.words[r * out_wpr..(r + 1) * out_wpr];
            let (skip, sh) = (col0 / 64, col0 % 64);
            for (wo, d) in dst.iter_mut().enumerate() {
                let wi = skip + wo;
                let lo = src.get(wi).copied().unwrap_or(0);
                // Funnel shift: bits [col0 + wo*64, col0 + wo*64 + 64) of
                // the source row. Source words past `cols` are zero, so
                // the window zero-pads past the matrix edge for free.
                *d = if sh == 0 {
                    lo
                } else {
                    (lo >> sh) | (src.get(wi + 1).copied().unwrap_or(0) << (64 - sh))
                };
            }
            if let Some(last) = dst.last_mut() {
                *last &= tail_mask;
            }
        }
        Ok(out)
    }

    /// Transposed copy.
    #[must_use]
    pub fn transpose(&self) -> SparsityPattern {
        let mut out = SparsityPattern::empty(self.cols, self.rows);
        for r in 0..self.rows {
            self.for_each_set(r, |c| out.insert(c, r));
        }
        out
    }

    /// Element-wise AND (the SparTen inner-product match set).
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] on shape mismatch.
    pub fn intersect(&self, other: &SparsityPattern) -> Result<SparsityPattern, SparseError> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(SparseError::DimensionMismatch {
                expected: format!("{}x{}", self.rows, self.cols),
                actual: format!("{}x{}", other.rows, other.cols),
            });
        }
        let mut out = self.clone();
        for (w, o) in out.words.iter_mut().zip(&other.words) {
            *w &= o;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove() {
        let mut p = SparsityPattern::empty(3, 70);
        assert!(!p.get(2, 69));
        p.insert(2, 69);
        assert!(p.get(2, 69));
        assert_eq!(p.nnz(), 1);
        p.remove(2, 69);
        assert_eq!(p.nnz(), 0);
    }

    #[test]
    fn row_statistics() {
        let p = SparsityPattern::from_fn(2, 130, |r, c| r == 0 && c % 3 == 0);
        assert_eq!(p.row_nnz(0), 44);
        assert_eq!(p.row_nnz(1), 0);
        assert_eq!(p.nnz(), 44);
        let idx = p.row_indices(0);
        assert_eq!(idx[0], 0);
        assert_eq!(idx[1], 3);
        assert_eq!(*idx.last().unwrap(), 129);
    }

    #[test]
    fn window_zero_pads() {
        let p = SparsityPattern::from_fn(4, 4, |r, c| r == c);
        let w = p.window(2, 2, 4, 4).unwrap();
        assert!(w.get(0, 0));
        assert!(w.get(1, 1));
        assert!(!w.get(2, 2)); // past the edge, zero-padded
        assert_eq!(w.nnz(), 2);
    }

    #[test]
    fn window_origin_validation() {
        let p = SparsityPattern::empty(4, 4);
        assert!(p.window(4, 0, 2, 2).is_err());
        assert!(p.window(0, 9, 2, 2).is_err());
    }

    #[test]
    fn intersect_counts_matches() {
        let a = SparsityPattern::from_fn(1, 8, |_, c| c % 2 == 0);
        let b = SparsityPattern::from_fn(1, 8, |_, c| c < 4);
        let m = a.intersect(&b).unwrap();
        assert_eq!(m.nnz(), 2); // columns 0 and 2
        let bad = SparsityPattern::empty(2, 8);
        assert!(a.intersect(&bad).is_err());
    }

    #[test]
    fn density() {
        let p = SparsityPattern::from_fn(10, 10, |r, _| r < 3);
        assert!((p.density() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn transpose_involution() {
        let p = SparsityPattern::from_fn(5, 70, |r, c| (r * 13 + c * 7) % 4 == 0);
        let t = p.transpose();
        assert_eq!(t.rows(), 70);
        assert_eq!(t.cols(), 5);
        assert_eq!(t.nnz(), p.nnz());
        assert_eq!(t.transpose(), p);
        assert_eq!(p.get(2, 64), t.get(64, 2));
    }
}
