//! Property tests for the left-alignment and tiling round trips: the
//! transformations the execution pipeline rests on must lose no structure.

use eureka_sparse::canon::{canonical_lens, lens_token, RowOrder};
use eureka_sparse::rng::DetRng;
use eureka_sparse::{gen, AlignedTile, SparsityPattern, TileGrid, TilePattern};
use proptest::prelude::*;

/// Strategy: a 4-row tile pattern of width `q` as raw masks.
fn tile_masks(q: usize) -> impl Strategy<Value = Vec<u64>> {
    let max = if q == 64 { u64::MAX } else { (1u64 << q) - 1 };
    prop::collection::vec(0..=max, 4)
}

/// A mask of `len` contiguous bits shifted to `pos` inside width `q`.
/// Varying `pos` moves the columns without changing the row length —
/// the degree of freedom canonical signatures must be blind to.
fn placed_row(len: usize, pos: usize, q: usize) -> u64 {
    if len == 0 {
        return 0;
    }
    let bits = if len == 64 {
        u64::MAX
    } else {
        (1u64 << len) - 1
    };
    bits << pos.min(q - len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn leftalign_round_trips(masks in tile_masks(16)) {
        let tile = TilePattern::from_rows(&masks, 16).unwrap();
        let aligned = AlignedTile::from_tile(&tile);
        prop_assert_eq!(aligned.to_tile(), tile);
    }

    #[test]
    fn leftalign_preserves_structure(masks in tile_masks(12)) {
        let tile = TilePattern::from_rows(&masks, 12).unwrap();
        let aligned = AlignedTile::from_tile(&tile);
        prop_assert_eq!(aligned.nnz(), tile.nnz());
        prop_assert_eq!(aligned.row_lens(), tile.row_lens());
        prop_assert_eq!(aligned.max_row_len(), tile.critical_path());
        // Each aligned row is the sorted column list of the source row.
        for r in 0..tile.p() {
            let cols: Vec<u16> =
                tile.row_indices(r).into_iter().map(|c| c as u16).collect();
            prop_assert_eq!(aligned.row(r), &cols[..]);
        }
    }

    #[test]
    fn tiling_reassembles_the_pattern(
        rows in 1usize..=21,
        cols in 1usize..=37,
        density_milli in 0u32..=1000,
        seed in 0u64..=u64::MAX,
    ) {
        let mut rng = DetRng::new(seed);
        let pattern = gen::uniform_pattern(
            rows,
            cols,
            f64::from(density_milli) / 1000.0,
            &mut rng,
        );
        let (p, q) = (4usize, 8usize);
        let grid = TileGrid::new(&pattern, p, q);
        prop_assert_eq!(grid.tile_rows(), rows.div_ceil(p));
        prop_assert_eq!(grid.tile_cols(), cols.div_ceil(q));
        prop_assert_eq!(grid.nnz(), pattern.nnz());

        // Rebuild the (padded) pattern from the tiles and compare: inside
        // the matrix every bit must match, outside every bit must be zero.
        let mut rebuilt = SparsityPattern::empty(rows, cols);
        for tr in 0..grid.tile_rows() {
            for tc in 0..grid.tile_cols() {
                let tile = grid.tile(tr, tc).unwrap();
                for r in 0..p {
                    for c in tile.row_indices(r) {
                        let (gr, gc) = (tr * p + r, tc * q + c);
                        prop_assert!(
                            gr < rows && gc < cols,
                            "tile ({},{}) has a bit at ({},{}) in the zero padding",
                            tr, tc, r, c
                        );
                        rebuilt.insert(gr, gc);
                    }
                }
            }
        }
        prop_assert_eq!(rebuilt, pattern);
    }

    #[test]
    fn tiling_then_leftalign_round_trips(
        seed in 0u64..=u64::MAX,
        density_milli in 0u32..=1000,
    ) {
        // The pipeline composition: pattern -> tiles -> aligned -> back.
        let mut rng = DetRng::new(seed);
        let pattern = gen::uniform_pattern(9, 19, f64::from(density_milli) / 1000.0, &mut rng);
        let grid = TileGrid::new(&pattern, 4, 16);
        for tile in grid.iter() {
            prop_assert_eq!(&AlignedTile::from_tile(tile).to_tile(), tile);
        }
    }

    // ------------------------------------------------------------------
    // Canonical signatures (the tile-store key substrate). The timers the
    // store memoizes are pure functions of a tile's row-length signature,
    // so these properties pin down exactly which tile mutations the
    // signature must collapse (column positions always; row order for
    // `Sorted`) and which it must preserve (the length multiset, `nnz`).
    // The full congruence against the real timers lives in the workspace
    // suite (`tests/store_congruence.rs`).
    // ------------------------------------------------------------------

    #[test]
    fn canonical_signature_ignores_column_positions(
        lens in prop::collection::vec(0usize..=16, 4),
        pos_a in prop::collection::vec(0usize..16, 4),
        pos_b in prop::collection::vec(0usize..16, 4),
    ) {
        let place = |pos: &[usize]| {
            let masks: Vec<u64> = lens
                .iter()
                .zip(pos)
                .map(|(&l, &p)| placed_row(l, p, 16))
                .collect();
            TilePattern::from_rows(&masks, 16).unwrap()
        };
        let (a, b) = (place(&pos_a), place(&pos_b));
        // Same row lengths, arbitrary placements: identical signatures
        // under both orders, and the signature is the row-lens vector.
        prop_assert_eq!(a.row_lens(), lens.clone());
        prop_assert_eq!(
            canonical_lens(&a, RowOrder::Exact),
            canonical_lens(&b, RowOrder::Exact)
        );
        prop_assert_eq!(
            canonical_lens(&a, RowOrder::Sorted),
            canonical_lens(&b, RowOrder::Sorted)
        );
        prop_assert_eq!(canonical_lens(&a, RowOrder::Exact), a.row_lens());
    }

    #[test]
    fn sorted_signature_collapses_row_permutations(
        masks in tile_masks(16),
        rot in 0usize..4,
        swap in any::<bool>(),
    ) {
        // Build a permutation of the rows (rotation plus optional swap
        // of the first pair reaches every coset we care about here).
        let mut perm: Vec<u64> =
            (0..4).map(|r| masks[(r + rot) % 4]).collect();
        if swap {
            perm.swap(0, 1);
        }
        let a = TilePattern::from_rows(&masks, 16).unwrap();
        let b = TilePattern::from_rows(&perm, 16).unwrap();
        prop_assert_eq!(
            canonical_lens(&a, RowOrder::Sorted),
            canonical_lens(&b, RowOrder::Sorted)
        );
        // The sorted signature is descending and preserves the nnz sum.
        let sorted = canonical_lens(&a, RowOrder::Sorted);
        prop_assert!(sorted.windows(2).all(|w| w[0] >= w[1]));
        prop_assert_eq!(sorted.iter().sum::<usize>(), a.nnz());
    }

    #[test]
    fn lens_token_equality_is_signature_equality(
        lens_a in prop::collection::vec(0usize..=64, 0..6),
        lens_b in prop::collection::vec(0usize..=64, 0..6),
    ) {
        // The on-disk token is injective: token equality exactly when the
        // signatures are equal, so distinct signatures can never collide
        // on one store record.
        prop_assert_eq!(
            lens_token(&lens_a) == lens_token(&lens_b),
            lens_a == lens_b
        );
    }
}
