//! Property tests for the left-alignment and tiling round trips: the
//! transformations the execution pipeline rests on must lose no structure.

use eureka_sparse::rng::DetRng;
use eureka_sparse::{gen, AlignedTile, SparsityPattern, TileGrid, TilePattern};
use proptest::prelude::*;

/// Strategy: a 4-row tile pattern of width `q` as raw masks.
fn tile_masks(q: usize) -> impl Strategy<Value = Vec<u64>> {
    let max = if q == 64 { u64::MAX } else { (1u64 << q) - 1 };
    prop::collection::vec(0..=max, 4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn leftalign_round_trips(masks in tile_masks(16)) {
        let tile = TilePattern::from_rows(&masks, 16).unwrap();
        let aligned = AlignedTile::from_tile(&tile);
        prop_assert_eq!(aligned.to_tile(), tile);
    }

    #[test]
    fn leftalign_preserves_structure(masks in tile_masks(12)) {
        let tile = TilePattern::from_rows(&masks, 12).unwrap();
        let aligned = AlignedTile::from_tile(&tile);
        prop_assert_eq!(aligned.nnz(), tile.nnz());
        prop_assert_eq!(aligned.row_lens(), tile.row_lens());
        prop_assert_eq!(aligned.max_row_len(), tile.critical_path());
        // Each aligned row is the sorted column list of the source row.
        for r in 0..tile.p() {
            let cols: Vec<u16> =
                tile.row_indices(r).into_iter().map(|c| c as u16).collect();
            prop_assert_eq!(aligned.row(r), &cols[..]);
        }
    }

    #[test]
    fn tiling_reassembles_the_pattern(
        rows in 1usize..=21,
        cols in 1usize..=37,
        density_milli in 0u32..=1000,
        seed in 0u64..=u64::MAX,
    ) {
        let mut rng = DetRng::new(seed);
        let pattern = gen::uniform_pattern(
            rows,
            cols,
            f64::from(density_milli) / 1000.0,
            &mut rng,
        );
        let (p, q) = (4usize, 8usize);
        let grid = TileGrid::new(&pattern, p, q);
        prop_assert_eq!(grid.tile_rows(), rows.div_ceil(p));
        prop_assert_eq!(grid.tile_cols(), cols.div_ceil(q));
        prop_assert_eq!(grid.nnz(), pattern.nnz());

        // Rebuild the (padded) pattern from the tiles and compare: inside
        // the matrix every bit must match, outside every bit must be zero.
        let mut rebuilt = SparsityPattern::empty(rows, cols);
        for tr in 0..grid.tile_rows() {
            for tc in 0..grid.tile_cols() {
                let tile = grid.tile(tr, tc).unwrap();
                for r in 0..p {
                    for c in tile.row_indices(r) {
                        let (gr, gc) = (tr * p + r, tc * q + c);
                        prop_assert!(
                            gr < rows && gc < cols,
                            "tile ({},{}) has a bit at ({},{}) in the zero padding",
                            tr, tc, r, c
                        );
                        rebuilt.insert(gr, gc);
                    }
                }
            }
        }
        prop_assert_eq!(rebuilt, pattern);
    }

    #[test]
    fn tiling_then_leftalign_round_trips(
        seed in 0u64..=u64::MAX,
        density_milli in 0u32..=1000,
    ) {
        // The pipeline composition: pattern -> tiles -> aligned -> back.
        let mut rng = DetRng::new(seed);
        let pattern = gen::uniform_pattern(9, 19, f64::from(density_milli) / 1000.0, &mut rng);
        let grid = TileGrid::new(&pattern, 4, 16);
        for tile in grid.iter() {
            prop_assert_eq!(&AlignedTile::from_tile(tile).to_tile(), tile);
        }
    }
}
