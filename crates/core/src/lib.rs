//! The Eureka primary contribution (MICRO 2023): efficient tensor cores for
//! one-sided unstructured sparsity.
//!
//! Eureka lets a near-Ampere tensor core exploit *unstructured* filter
//! sparsity through three offline software techniques plus a tiny hardware
//! delta (a wider operand multiplexer, two 2-1 multiplexers and a
//! three-input carry-save adder per MAC):
//!
//! 1. **Matrix compaction** ([`compact`]) — left-align a `p × (p·P)` sparse
//!    filter sub-matrix into a `p × p` footprint (compaction factor `P`).
//! 2. **SUDS** ([`suds`]) — *single-step uni-directional displacement*: a
//!    filter element may execute in the vacant MAC one row below while its
//!    partial product is routed back up, restoring output stationarity.
//!    Includes the paper's optimal polynomial-time work-assignment
//!    algorithm (Algorithm 1 + binary search) and the greedy strawman.
//! 3. **Systolic scheduling** ([`schedule`]) — group sub-matrices with
//!    matching critical paths along the systolic rows to avoid pipeline
//!    bubbles.
//!
//! The [`exec`] module provides a functional executor that runs a displaced
//! schedule on real FP16 values and proves it computes exactly the same
//! outputs as the undisplaced dense dataflow.
//!
//! # Examples
//!
//! ```
//! use eureka_core::suds;
//! use eureka_sparse::TilePattern;
//!
//! // A badly imbalanced tile: one row with 4 non-zeros, others near-empty.
//! let tile = TilePattern::from_rows(&[0b1111, 0b0001, 0b0000, 0b0010], 4).unwrap();
//! assert_eq!(tile.critical_path(), 4);
//! let plan = suds::optimize(&tile.row_lens());
//! assert_eq!(plan.k, 2); // perfectly balanced: ceil(6/4) = 2
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compact;
pub mod error;
pub mod exec;
pub mod format;
pub mod schedule;
pub mod suds;
pub mod twofour;

pub use compact::CompactedTile;
pub use error::CoreError;
pub use format::{CompiledLayer, TileBlob};
pub use suds::{DisplacedTile, DisplacementPlan};
