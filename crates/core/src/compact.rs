//! Offline matrix compaction (paper §3, Figure 6).
//!
//! A `p × (p·P)` sparse filter sub-matrix (P reduction slices of a `p × p`
//! dense footprint) is left-aligned row-wise into at most `max-row-nnz`
//! columns. The `p × p` MAC sub-array then processes one compacted column
//! per cycle; a `(p·P)`-to-1 multiplexer per MAC selects the matching
//! activation row from the per-value column metadata. The tile's cycle
//! count is its longest compacted row — which is exactly what SUDS then
//! shortens.

use crate::error::CoreError;
use eureka_sparse::{AlignedTile, TilePattern};

/// A compacted filter sub-matrix: a left-aligned `p × (p·P)` tile together
/// with its compaction factor.
///
/// # Examples
///
/// ```
/// use eureka_core::CompactedTile;
/// use eureka_sparse::TilePattern;
///
/// // 4x8 tile (factor 2): row 0 holds 3 non-zeros spread over both slices.
/// let t = TilePattern::from_rows(&[0b1001_0001, 0b0000_0010, 0, 0b1000_0000], 8).unwrap();
/// let c = CompactedTile::new(&t, 2).unwrap();
/// assert_eq!(c.cycles(), 3);            // longest compacted row
/// assert_eq!(c.metadata_bits_per_value(), 3); // 8 source columns
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompactedTile {
    aligned: AlignedTile,
    factor: usize,
}

impl CompactedTile {
    /// Compacts a `p × (p·factor)` tile.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadCompactionShape`] if the tile's width is not
    /// `p * factor` or `factor` is zero.
    pub fn new(tile: &TilePattern, factor: usize) -> Result<Self, CoreError> {
        if factor == 0 || tile.q() != tile.p() * factor {
            return Err(CoreError::BadCompactionShape {
                p: tile.p(),
                q: tile.q(),
                factor,
            });
        }
        Ok(CompactedTile {
            aligned: AlignedTile::from_tile(tile),
            factor,
        })
    }

    /// The underlying left-aligned tile (rows of original-column indices).
    #[must_use]
    pub fn aligned(&self) -> &AlignedTile {
        &self.aligned
    }

    /// Compaction factor `P`.
    #[must_use]
    pub fn factor(&self) -> usize {
        self.factor
    }

    /// Sub-array dimension `p`.
    #[must_use]
    pub fn p(&self) -> usize {
        self.aligned.p()
    }

    /// Source width `q = p·P` (the multiplexer fan-in).
    #[must_use]
    pub fn q(&self) -> usize {
        self.aligned.q()
    }

    /// Cycles the sub-array needs for this tile without SUDS: the longest
    /// compacted row (at least 1 — an all-zero tile still occupies the
    /// array for a cycle while the pipeline moves).
    #[must_use]
    pub fn cycles(&self) -> usize {
        self.aligned.max_row_len().max(1)
    }

    /// Per-row non-zero counts of the compacted tile — the input to SUDS.
    #[must_use]
    pub fn row_lens(&self) -> Vec<usize> {
        self.aligned.row_lens()
    }

    /// MAC utilization over the tile's cycles: busy MACs / (p × cycles).
    #[must_use]
    pub fn utilization(&self) -> f64 {
        self.aligned.nnz() as f64 / (self.p() * self.cycles()) as f64
    }

    /// Metadata bits per non-zero value (original-column index; 4 bits for
    /// P = 4 with p = 4, as in the paper §3).
    #[must_use]
    pub fn metadata_bits_per_value(&self) -> u32 {
        self.aligned.metadata_bits()
    }

    /// Equivalent dense cycles for the same `p × (p·P)` region: `p · P`.
    #[must_use]
    pub fn dense_cycles(&self) -> usize {
        self.p() * self.factor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_validation() {
        let t = TilePattern::from_rows(&[0; 4], 8).unwrap();
        assert!(CompactedTile::new(&t, 2).is_ok());
        assert!(matches!(
            CompactedTile::new(&t, 4),
            Err(CoreError::BadCompactionShape { .. })
        ));
        assert!(CompactedTile::new(&t, 0).is_err());
    }

    #[test]
    fn figure6_style_compaction() {
        // Two sparse 4x4 tiles compacted along rows (factor 2): the cycle
        // count is the longest combined row, less than the 4+4 of two
        // uncompacted tiles processed back to back.
        let t = TilePattern::from_rows(&[0b0001_0010, 0b0100_0100, 0b0000_1001, 0b0010_0000], 8)
            .unwrap();
        let c = CompactedTile::new(&t, 2).unwrap();
        assert_eq!(c.cycles(), 2);
        assert_eq!(c.dense_cycles(), 8);
        assert!(c.utilization() > 0.8);
    }

    #[test]
    fn empty_tile_takes_one_cycle() {
        let t = TilePattern::from_rows(&[0; 4], 16).unwrap();
        let c = CompactedTile::new(&t, 4).unwrap();
        assert_eq!(c.cycles(), 1);
        assert_eq!(c.utilization(), 0.0);
    }

    #[test]
    fn metadata_widths_match_paper() {
        let t4 = TilePattern::from_rows(&[0; 4], 16).unwrap();
        assert_eq!(
            CompactedTile::new(&t4, 4)
                .unwrap()
                .metadata_bits_per_value(),
            4
        );
        let t2 = TilePattern::from_rows(&[0; 4], 8).unwrap();
        assert_eq!(
            CompactedTile::new(&t2, 2)
                .unwrap()
                .metadata_bits_per_value(),
            3
        );
    }

    #[test]
    fn row_lens_match_tile() {
        let t = TilePattern::from_rows(&[0b1111_1111, 0b1, 0, 0b11], 8).unwrap();
        let c = CompactedTile::new(&t, 2).unwrap();
        assert_eq!(c.row_lens(), vec![8, 1, 0, 2]);
        assert_eq!(c.cycles(), 8);
    }
}
