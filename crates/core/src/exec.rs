//! Functional executor: runs a displaced schedule on real FP16 values.
//!
//! This is the correctness half of the paper's §3.1 argument: "in the outer
//! product method, the partial products for all the elements in a row `i`
//! of a filter matrix are accumulated at the same row `i` of the output
//! matrix; consequently a displaced value's partial products can be
//! accumulated at the partial products of the row above, irrespective of
//! the column to which the value is displaced." The executor walks the
//! schedule cycle by cycle, routing each displaced product one hop up into
//! the three-input adder, and the tests check the result equals the plain
//! (undisplaced) matrix product.

use crate::error::CoreError;
use crate::suds::DisplacedTile;
use eureka_fp16::arith::{mul_prepared, Prepared};
use eureka_fp16::{csa, mac, F16};
use eureka_sparse::Matrix;

/// Executes a scheduled tile against an activation block.
///
/// * `weights` — the `p × q` source window of the filter matrix, in
///   *logical* (unrotated) row order;
/// * `activations` — the `q × m` activation block whose rows correspond to
///   the window's columns.
///
/// Returns the `p × m` partial-output block, in logical row order (the
/// rotation is unapplied on the way out, modelling the software index
/// adjustment of §3.2).
///
/// # Errors
///
/// Returns [`CoreError::ShapeMismatch`] if operand shapes disagree with the
/// schedule.
#[allow(clippy::needless_range_loop)] // row/column indices mirror the MAC grid
pub fn execute(
    schedule: &DisplacedTile,
    weights: &Matrix,
    activations: &Matrix,
) -> Result<Matrix, CoreError> {
    let (p, q) = (schedule.p(), schedule.q());
    if weights.rows() != p || weights.cols() != q {
        return Err(CoreError::ShapeMismatch {
            expected: format!("{p}x{q} weights"),
            actual: format!("{}x{}", weights.rows(), weights.cols()),
        });
    }
    if activations.rows() != q {
        return Err(CoreError::ShapeMismatch {
            expected: format!("activations with {q} rows"),
            actual: format!("{}x{}", activations.rows(), activations.cols()),
        });
    }
    let m = activations.cols();
    // Bit-decompose every operand exactly once: an activation is reused by
    // every cycle and weight slot that reads its column, a weight by every
    // output column, so hoisting `classify` out of the cycle × p × m loop
    // removes the dominant redundant work while keeping each product the
    // same `mul_hw` rounding.
    let mut act_prep = Vec::with_capacity(q * m);
    for col in 0..q {
        for j in 0..m {
            act_prep.push(Prepared::new(activations.get(col, j)));
        }
    }
    let mut w_prep = Vec::with_capacity(p * q);
    for row in 0..p {
        for col in 0..q {
            w_prep.push(Prepared::new(weights.get(row, col)));
        }
    }

    // acc[physical_row][output_col]
    let mut acc = vec![vec![F16::ZERO; m]; p];
    // Per-cycle product rows, stored flat and reused across cycles:
    // physical MAC row r's products live at prod[r*m..(r+1)*m] when
    // prod_dst[r] is Some(accumulator row).
    let mut prod = vec![F16::ZERO; p * m];
    let mut prod_dst: Vec<Option<usize>> = vec![None; p];
    let zeros = vec![F16::ZERO; m];

    for cycle in 0..schedule.cycles() {
        prod_dst.iter_mut().for_each(|d| *d = None);
        for mac_row in 0..p {
            if let Some(slot) = schedule.slot(mac_row, cycle) {
                let col = usize::from(slot.col);
                let wp = w_prep[schedule.logical_row(slot.acc_row) * q + col];
                let arow = &act_prep[col * m..(col + 1) * m];
                for (o, &ap) in prod[mac_row * m..(mac_row + 1) * m].iter_mut().zip(arow) {
                    *o = mul_prepared(wp, ap);
                }
                prod_dst[mac_row] = Some(slot.acc_row);
            }
        }
        // Accumulate: each physical row's adder takes (acc, local product,
        // product routed up from the row below) in a single 3-input add
        // across all m lanes at once.
        for row in 0..p {
            let local = (prod_dst[row] == Some(row)).then(|| &prod[row * m..(row + 1) * m]);
            let from_below = (row + 1 < p && prod_dst[row + 1] == Some(row))
                .then(|| &prod[(row + 1) * m..(row + 2) * m]);
            if local.is_none() && from_below.is_none() {
                continue;
            }
            mac::fma_slice(
                &mut acc[row],
                local.unwrap_or(&zeros),
                from_below.unwrap_or(&zeros),
            );
        }
    }

    // Un-rotate: physical row -> logical row.
    let mut out = Matrix::zeros(p, m);
    for phys in 0..p {
        let logical = schedule.logical_row(phys);
        for j in 0..m {
            out.set(logical, j, acc[phys][j]);
        }
    }
    Ok(out)
}

/// The undisplaced reference for the same window: `weights × activations`
/// computed with the hardware FP16 dataflow (products accumulated in
/// `k` order per output element).
///
/// # Errors
///
/// Returns [`CoreError::ShapeMismatch`] on operand shape mismatch.
pub fn reference(weights: &Matrix, activations: &Matrix) -> Result<Matrix, CoreError> {
    weights
        .matmul_hw(activations)
        .map_err(|e| CoreError::ShapeMismatch {
            expected: "conforming operands".into(),
            actual: e.to_string(),
        })
}

/// Sums a slice of FP16 values through a balanced binary reduction tree —
/// the spatial-reduction alternative of the *input-stationary* dataflow
/// (paper §2.1, Figure 2(a): "the four marked MACs are interconnected
/// using a reduction tree").
#[must_use]
pub fn reduction_tree_sum(values: &[F16]) -> F16 {
    match values {
        [] => F16::ZERO,
        [v] => *v,
        _ => {
            let mid = values.len() / 2;
            csa::add3(
                reduction_tree_sum(&values[..mid]),
                reduction_tree_sum(&values[mid..]),
                F16::ZERO,
            )
        }
    }
}

/// The *input-stationary* dataflow (paper §2.1, Figure 2(a)): each MAC
/// holds a weight element; per output, the matching activations broadcast
/// in and the partial products reduce spatially through a tree. Contrast
/// with the output-stationary accumulation the sparse tensor core uses —
/// both compute the same product, with different rounding orders.
///
/// # Errors
///
/// Returns [`CoreError::ShapeMismatch`] on operand shape mismatch.
pub fn input_stationary(weights: &Matrix, activations: &Matrix) -> Result<Matrix, CoreError> {
    if weights.cols() != activations.rows() {
        return Err(CoreError::ShapeMismatch {
            expected: format!("activations with {} rows", weights.cols()),
            actual: format!("{}x{}", activations.rows(), activations.cols()),
        });
    }
    let (n, k, m) = (weights.rows(), weights.cols(), activations.cols());
    let mut out = Matrix::zeros(n, m);
    let mut products = vec![F16::ZERO; k];
    for i in 0..n {
        for j in 0..m {
            for (kk, p) in products.iter_mut().enumerate() {
                *p = weights.get(i, kk).mul_hw(activations.get(kk, j));
            }
            out.set(i, j, reduction_tree_sum(&products));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suds::{self, DisplacedTile};
    use eureka_sparse::{gen, rng::DetRng, AlignedTile, TilePattern};

    /// Builds weights for a tile pattern with small integer values, the
    /// schedule for it, and a small integer activation block.
    fn setup(rows: &[u64], q: usize, m: usize, seed: u64) -> (DisplacedTile, Matrix, Matrix) {
        let tile = TilePattern::from_rows(rows, q).unwrap();
        let plan = suds::optimize(&tile.row_lens());
        let schedule = DisplacedTile::from_plan(&AlignedTile::from_tile(&tile), &plan).unwrap();
        let mut rng = DetRng::new(seed);
        let pattern = eureka_sparse::SparsityPattern::from_fn(tile.p(), q, |r, c| {
            tile.row_mask(r) >> c & 1 == 1
        });
        let weights = gen::integer_values_for_pattern(&pattern, &mut rng);
        let act_pattern = eureka_sparse::SparsityPattern::from_fn(q, m, |_, _| true);
        let activations = gen::integer_values_for_pattern(&act_pattern, &mut rng);
        (schedule, weights, activations)
    }

    #[test]
    fn displaced_equals_reference_worst_case() {
        let (schedule, w, a) = setup(&[0b1111, 0, 0, 0], 4, 3, 1);
        assert_eq!(schedule.displaced_work(), 2);
        let got = execute(&schedule, &w, &a).unwrap();
        let want = reference(&w, &a).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn displaced_equals_reference_compacted() {
        let (schedule, w, a) = setup(&[0b1011_0110, 0b0000_0001, 0, 0b1000_1000], 8, 4, 2);
        let got = execute(&schedule, &w, &a).unwrap();
        let want = reference(&w, &a).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn rotation_is_transparent() {
        // A pattern whose base row is not the last row forces a non-zero
        // rotation; the output must still come back in logical order.
        let rows = [0b0001u64, 0b1111, 0b0011, 0b0111];
        let (schedule, w, a) = setup(&rows, 4, 2, 3);
        let got = execute(&schedule, &w, &a).unwrap();
        let want = reference(&w, &a).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn many_random_tiles_match() {
        let mut rng = DetRng::new(99);
        for trial in 0..50 {
            let q = if trial % 2 == 0 { 8 } else { 16 };
            let density = 0.1 + 0.05 * (trial % 10) as f64;
            let masks: Vec<u64> = (0..4)
                .map(|_| {
                    let mut m = 0u64;
                    for c in 0..q {
                        if rng.bernoulli(density) {
                            m |= 1 << c;
                        }
                    }
                    m
                })
                .collect();
            let (schedule, w, a) = setup(&masks, q, 4, 1000 + trial as u64);
            schedule.validate().unwrap();
            let got = execute(&schedule, &w, &a).unwrap();
            let want = reference(&w, &a).unwrap();
            assert_eq!(got, want, "trial {trial} masks {masks:?}");
        }
    }

    #[test]
    fn reduction_tree_basics() {
        assert_eq!(reduction_tree_sum(&[]), F16::ZERO);
        assert_eq!(reduction_tree_sum(&[F16::from_f32(2.5)]).to_f32(), 2.5);
        let vals: Vec<F16> = (1..=7).map(|i| F16::from_f32(i as f32)).collect();
        assert_eq!(reduction_tree_sum(&vals).to_f32(), 28.0);
    }

    #[test]
    fn input_stationary_matches_output_stationary_exactly_on_integers() {
        // §2.1: "the approaches are similar in terms of overall cost" —
        // and on exactly-representable data, identical in result.
        let mut rng = DetRng::new(77);
        let wp = eureka_sparse::gen::uniform_pattern(6, 24, 0.4, &mut rng);
        let w = gen::integer_values_for_pattern(&wp, &mut rng);
        let ap = eureka_sparse::gen::uniform_pattern(24, 5, 1.0, &mut rng);
        let a = gen::integer_values_for_pattern(&ap, &mut rng);
        let inp = input_stationary(&w, &a).unwrap();
        let outp = reference(&w, &a).unwrap();
        assert_eq!(inp, outp);
        // And both match the displaced schedule over the same data (tiled).
        assert!(input_stationary(&w, &Matrix::zeros(5, 2)).is_err());
    }

    #[test]
    fn shape_validation() {
        let (schedule, w, a) = setup(&[0b1, 0, 0, 0], 4, 2, 4);
        let bad_w = Matrix::zeros(4, 5);
        assert!(matches!(
            execute(&schedule, &bad_w, &a),
            Err(CoreError::ShapeMismatch { .. })
        ));
        let bad_a = Matrix::zeros(5, 2);
        assert!(execute(&schedule, &w, &bad_a).is_err());
    }

    #[test]
    fn empty_tile_yields_zero_block() {
        let (schedule, w, a) = setup(&[0, 0, 0, 0], 4, 3, 5);
        let got = execute(&schedule, &w, &a).unwrap();
        assert!(got.pattern().nnz() == 0);
    }
}
