//! Error types for compaction, SUDS and scheduling.

use core::fmt;

/// Errors produced by Eureka's offline transformations.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// A tile's width is not `p × factor` for the requested compaction
    /// factor.
    BadCompactionShape {
        /// Tile rows.
        p: usize,
        /// Tile columns.
        q: usize,
        /// Requested compaction factor.
        factor: usize,
    },
    /// A displacement plan does not fit the tile it is applied to.
    PlanMismatch {
        /// Explanation of the mismatch.
        detail: String,
    },
    /// A displaced schedule violates a hardware constraint (wrap-around
    /// displacement, more work than cycles in a row, displacement from a
    /// non-adjacent row).
    InvalidSchedule {
        /// Explanation of the violation.
        detail: String,
    },
    /// Operand shapes disagree in the functional executor.
    ShapeMismatch {
        /// Description of the expected shape.
        expected: String,
        /// Description of the actual shape.
        actual: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::BadCompactionShape { p, q, factor } => write!(
                f,
                "tile {p}x{q} cannot be compacted with factor {factor} (need q = p * factor)"
            ),
            CoreError::PlanMismatch { detail } => write!(f, "displacement plan mismatch: {detail}"),
            CoreError::InvalidSchedule { detail } => write!(f, "invalid schedule: {detail}"),
            CoreError::ShapeMismatch { expected, actual } => {
                write!(f, "shape mismatch: expected {expected}, got {actual}")
            }
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = CoreError::BadCompactionShape {
            p: 4,
            q: 15,
            factor: 4,
        };
        assert!(e.to_string().contains("4x15"));
        let e = CoreError::InvalidSchedule {
            detail: "wrap-around".into(),
        };
        assert!(e.to_string().contains("wrap-around"));
    }

    #[test]
    fn is_std_error_send_sync() {
        fn check<E: std::error::Error + Send + Sync>(_: &E) {}
        check(&CoreError::PlanMismatch {
            detail: String::new(),
        });
    }
}
