//! The serialized offline artifact: Eureka's compacted, displaced,
//! metadata-tagged weight format.
//!
//! "Because the filters do not change during inference, we compact the
//! filters and apply SUDS offline before inference" (§3.1). This module is
//! that offline step's output: a byte format a deployment would ship,
//! holding per tile the displacement schedule, the per-value column
//! metadata and displaced bit (§3.1's "one bit per value, in addition to
//! Eureka's 4-bit metadata"), and the 2-bit base-row rotation field
//! (§3.2) — plus the FP16 payloads. Decoding reconstructs a
//! [`DisplacedTile`] and its weights exactly, and [`CompiledLayer`] can
//! execute a full GEMM straight from the encoded bytes.
//!
//! Layout per tile (little-endian, byte-aligned for simplicity; the
//! idealized bit-packed size the paper's bandwidth accounting uses is
//! reported separately by [`TileBlob::ideal_bits`]):
//!
//! ```text
//! u8 p | u8 q | u8 cycles | u8 rotation
//! per MAC row r: u8 len_r, then len_r entries of
//!     u16 value (FP16 bits) | u8 meta (bit6 = displaced, bits 0..=5 col)
//! ```

use crate::error::CoreError;
use crate::suds::{self, DisplacedTile};
use eureka_fp16::F16;
use eureka_sparse::{AlignedTile, Matrix, SparsityPattern, TileGrid};

/// One encoded tile.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TileBlob {
    bytes: Vec<u8>,
}

impl TileBlob {
    /// Encodes a scheduled tile with its weight values.
    ///
    /// `weights` is the tile's `p × q` source window in logical row order.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ShapeMismatch`] if the weight window does not
    /// match the schedule.
    pub fn encode(schedule: &DisplacedTile, weights: &Matrix) -> Result<Self, CoreError> {
        let (p, q) = (schedule.p(), schedule.q());
        if weights.rows() != p || weights.cols() != q {
            return Err(CoreError::ShapeMismatch {
                expected: format!("{p}x{q} weights"),
                actual: format!("{}x{}", weights.rows(), weights.cols()),
            });
        }
        if p > 255 || q > 64 || schedule.cycles() > 255 {
            return Err(CoreError::ShapeMismatch {
                expected: "tile dims within the u8 header".into(),
                actual: format!("p={p} q={q} k={}", schedule.cycles()),
            });
        }
        let mut bytes = vec![
            p as u8,
            q as u8,
            schedule.cycles() as u8,
            schedule.rotation() as u8,
        ];
        for mac_row in 0..p {
            let slots: Vec<_> = (0..schedule.cycles())
                .filter_map(|c| schedule.slot(mac_row, c))
                .collect();
            bytes.push(slots.len() as u8);
            for slot in slots {
                let w = weights.get(schedule.logical_row(slot.acc_row), usize::from(slot.col));
                bytes.extend_from_slice(&w.to_bits().to_le_bytes());
                let meta = (u8::from(slot.displaced) << 6) | (slot.col as u8 & 0x3F);
                bytes.push(meta);
            }
        }
        Ok(TileBlob { bytes })
    }

    /// Wraps raw bytes as a blob; all validation happens at
    /// [`decode`](Self::decode) (corrupt bytes are rejected, never
    /// panicked on).
    #[must_use]
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        TileBlob { bytes }
    }

    /// The raw encoding.
    #[must_use]
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Encoded size in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the blob is empty (never true for a valid encoding).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// The idealized bit-packed size the paper's bandwidth accounting
    /// assumes: 16 payload bits plus `ceil(log2 q) + 1` metadata bits per
    /// value, plus the `ceil(log2 p)`-bit rotation field.
    #[must_use]
    pub fn ideal_bits(&self) -> usize {
        let p = usize::from(self.bytes[0]);
        let q = usize::from(self.bytes[1]);
        let col_bits = (usize::BITS - (q - 1).leading_zeros()) as usize;
        let rot_bits = (usize::BITS - (p - 1).leading_zeros()) as usize;
        let nnz = self.decode().map(|(s, _)| s.work()).unwrap_or(0);
        nnz * (16 + col_bits + 1) + rot_bits
    }

    /// Decodes back into the schedule and the `p × q` logical weight
    /// window.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidSchedule`] on truncated or inconsistent
    /// bytes.
    pub fn decode(&self) -> Result<(DisplacedTile, Matrix), CoreError> {
        let err = |detail: &str| CoreError::InvalidSchedule {
            detail: detail.to_string(),
        };
        if self.bytes.len() < 4 {
            return Err(err("truncated header"));
        }
        let p = usize::from(self.bytes[0]);
        let q = usize::from(self.bytes[1]);
        let cycles = usize::from(self.bytes[2]);
        let rotation = usize::from(self.bytes[3]);
        if p == 0 || q == 0 || q > 64 || cycles == 0 || rotation >= p {
            return Err(err("invalid header fields"));
        }
        let mut weights = Matrix::zeros(p, q);
        // Rebuild per-row slot lists, then re-derive the schedule through
        // the same plan machinery so invariants are revalidated.
        let mut cursor = 4usize;
        let mut aligned_rows: Vec<Vec<u16>> = vec![Vec::new(); p];
        let mut disp = vec![0usize; p];
        for mac_row in 0..p {
            let Some(&len) = self.bytes.get(cursor) else {
                return Err(err("truncated row header"));
            };
            cursor += 1;
            if usize::from(len) > cycles {
                return Err(err("row longer than the cycle budget"));
            }
            for _ in 0..len {
                let Some(entry) = self.bytes.get(cursor..cursor + 3) else {
                    return Err(err("truncated slot entry"));
                };
                cursor += 3;
                let value = F16::from_bits(u16::from_le_bytes([entry[0], entry[1]]));
                let displaced = entry[2] & 0x40 != 0;
                let col = usize::from(entry[2] & 0x3F);
                if col >= q {
                    return Err(err("column metadata out of range"));
                }
                let acc_mac = if displaced {
                    if mac_row == 0 {
                        return Err(err("displaced slot on MAC row 0 (wrap-around)"));
                    }
                    mac_row - 1
                } else {
                    mac_row
                };
                // Logical row = un-rotated accumulator row.
                let logical = (acc_mac + p - rotation) % p;
                weights.set(logical, col, value);
                if displaced {
                    aligned_rows[logical].push(col as u16);
                    disp[logical] += 1;
                } else {
                    // Kept elements precede displaced ones in the aligned
                    // row; insert before any displaced tail.
                    let tail = disp[logical];
                    let at = aligned_rows[logical].len() - tail;
                    aligned_rows[logical].insert(at, col as u16);
                }
            }
        }
        if cursor != self.bytes.len() {
            return Err(err("trailing bytes"));
        }
        let aligned = AlignedTile::from_rows(aligned_rows, q);
        let base_row = (p - 1 + p - rotation) % p;
        let plan = suds::DisplacementPlan {
            k: cycles,
            base_row,
            disp,
        };
        let schedule =
            DisplacedTile::from_plan(&aligned, &plan).map_err(|e| CoreError::InvalidSchedule {
                detail: format!("re-deriving schedule: {e}"),
            })?;
        schedule.validate()?;
        Ok((schedule, weights))
    }
}

/// Summary statistics of a compiled layer.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CompileStats {
    /// Non-zero weights.
    pub nnz: usize,
    /// Dense FP16 bytes of the uncompressed filter matrix.
    pub dense_bytes: usize,
    /// Byte-aligned encoded size.
    pub encoded_bytes: usize,
    /// Idealized bit-packed size in bits.
    pub ideal_bits: usize,
    /// Total tile cycles (the layer's critical-path sum).
    pub total_cycles: usize,
}

impl CompileStats {
    /// Compression ratio of the idealized format vs dense FP16 (>1 means
    /// smaller than dense — §2.3.1's "more than offset" claim).
    #[must_use]
    pub fn ideal_compression(&self) -> f64 {
        if self.ideal_bits == 0 {
            return f64::INFINITY;
        }
        (self.dense_bytes * 8) as f64 / self.ideal_bits as f64
    }
}

/// A whole filter matrix compiled to the Eureka offline format.
#[derive(Clone, Debug)]
pub struct CompiledLayer {
    p: usize,
    q: usize,
    tile_cols: usize,
    n: usize,
    k: usize,
    tiles: Vec<TileBlob>,
    stats: CompileStats,
}

impl CompiledLayer {
    /// Compiles a filter matrix: tile at `p × (p·factor)`, left-align,
    /// optimally displace, rotate and encode every tile.
    ///
    /// # Errors
    ///
    /// Propagates encoding errors (degenerate shapes).
    pub fn compile(weights: &Matrix, p: usize, factor: usize) -> Result<Self, CoreError> {
        let q = p * factor;
        let pattern: SparsityPattern = weights.pattern();
        let grid = TileGrid::new(&pattern, p, q);
        let mut tiles = Vec::with_capacity(grid.tile_rows() * grid.tile_cols());
        let mut stats = CompileStats {
            dense_bytes: 2 * weights.rows() * weights.cols(),
            ..CompileStats::default()
        };
        for tr in 0..grid.tile_rows() {
            for tc in 0..grid.tile_cols() {
                let tile = grid.tile(tr, tc).expect("grid position in range");
                let plan = suds::optimize(&tile.row_lens());
                let schedule = DisplacedTile::from_plan(&AlignedTile::from_tile(tile), &plan)?;
                let window = Matrix::from_fn(p, q, |r, c| {
                    let (rr, cc) = (tr * p + r, tc * q + c);
                    if rr < weights.rows() && cc < weights.cols() {
                        weights.get(rr, cc)
                    } else {
                        F16::ZERO
                    }
                });
                let blob = TileBlob::encode(&schedule, &window)?;
                stats.nnz += schedule.work();
                stats.encoded_bytes += blob.len();
                stats.ideal_bits += blob.ideal_bits();
                stats.total_cycles += schedule.cycles();
                tiles.push(blob);
            }
        }
        Ok(CompiledLayer {
            p,
            q,
            tile_cols: grid.tile_cols(),
            n: weights.rows(),
            k: weights.cols(),
            tiles,
            stats,
        })
    }

    /// Compile-time statistics.
    #[must_use]
    pub fn stats(&self) -> CompileStats {
        self.stats
    }

    /// Encoded tiles in row-major grid order.
    #[must_use]
    pub fn tiles(&self) -> &[TileBlob] {
        &self.tiles
    }

    /// Executes the compiled layer against an activation matrix, decoding
    /// each tile and running the displaced schedule functionally.
    ///
    /// # Errors
    ///
    /// Returns an error on corrupt blobs or a shape mismatch
    /// (`activations` must have `k` rows).
    pub fn execute(&self, activations: &Matrix) -> Result<Matrix, CoreError> {
        if activations.rows() != self.k {
            return Err(CoreError::ShapeMismatch {
                expected: format!("activations with {} rows", self.k),
                actual: format!("{}x{}", activations.rows(), activations.cols()),
            });
        }
        let m = activations.cols();
        let mut out = Matrix::zeros(self.n, m);
        for (idx, blob) in self.tiles.iter().enumerate() {
            let (tr, tc) = (idx / self.tile_cols, idx % self.tile_cols);
            let (schedule, weights) = blob.decode()?;
            let window = Matrix::from_fn(self.q, m, |r, c| {
                let rr = tc * self.q + r;
                if rr < self.k {
                    activations.get(rr, c)
                } else {
                    F16::ZERO
                }
            });
            let partial = crate::exec::execute(&schedule, &weights, &window)?;
            for r in 0..self.p {
                let rr = tr * self.p + r;
                if rr >= self.n {
                    continue;
                }
                for c in 0..m {
                    out.set(rr, c, out.get(rr, c) + partial.get(r, c));
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eureka_sparse::{gen, rng::DetRng};

    fn sample(n: usize, k: usize, density: f64, seed: u64) -> Matrix {
        let mut rng = DetRng::new(seed);
        let pattern = gen::uniform_pattern(n, k, density, &mut rng);
        gen::integer_values_for_pattern(&pattern, &mut rng)
    }

    #[test]
    fn tile_roundtrip() {
        let weights = sample(4, 16, 0.2, 1);
        let layer = CompiledLayer::compile(&weights, 4, 4).unwrap();
        assert_eq!(layer.tiles().len(), 1);
        let (schedule, decoded) = layer.tiles()[0].decode().unwrap();
        schedule.validate().unwrap();
        assert_eq!(decoded, weights);
    }

    #[test]
    fn compiled_execution_matches_reference() {
        let mut rng = DetRng::new(7);
        for (n, k, d) in [(8, 32, 0.13), (12, 48, 0.3), (4, 16, 0.05)] {
            let weights = sample(n, k, d, 100 + n as u64);
            let acts = gen::integer_values_for_pattern(
                &gen::uniform_pattern(k, 5, 1.0, &mut rng),
                &mut rng,
            );
            let layer = CompiledLayer::compile(&weights, 4, 4).unwrap();
            let got = layer.execute(&acts).unwrap();
            let want = weights.matmul_hw(&acts).unwrap();
            assert_eq!(got, want, "n={n} k={k} d={d}");
        }
    }

    #[test]
    fn compression_beats_dense_at_paper_densities() {
        // §2.3.1: metadata growth is "more than offset" by dropping zeros.
        let weights = sample(64, 256, 0.13, 3);
        let layer = CompiledLayer::compile(&weights, 4, 4).unwrap();
        let s = layer.stats();
        assert!(
            s.ideal_compression() > 3.0,
            "compression {}",
            s.ideal_compression()
        );
        assert!(s.encoded_bytes < s.dense_bytes);
        assert!(s.nnz > 0);
    }

    #[test]
    fn dense_matrix_compiles_but_does_not_compress() {
        let weights = sample(8, 32, 1.0, 4);
        let layer = CompiledLayer::compile(&weights, 4, 4).unwrap();
        assert!(layer.stats().ideal_compression() < 1.0);
        // Still executes correctly.
        let mut rng = DetRng::new(9);
        let acts =
            gen::integer_values_for_pattern(&gen::uniform_pattern(32, 2, 1.0, &mut rng), &mut rng);
        assert_eq!(
            layer.execute(&acts).unwrap(),
            weights.matmul_hw(&acts).unwrap()
        );
    }

    #[test]
    fn corrupt_blobs_are_rejected() {
        let weights = sample(4, 16, 0.3, 5);
        let layer = CompiledLayer::compile(&weights, 4, 4).unwrap();
        let good = layer.tiles()[0].clone();
        // Truncation.
        let mut cut = good.as_bytes().to_vec();
        cut.pop();
        assert!(TileBlob { bytes: cut }.decode().is_err());
        // Header corruption: rotation >= p.
        let mut bad = good.as_bytes().to_vec();
        bad[3] = 9;
        assert!(TileBlob { bytes: bad }.decode().is_err());
        // Column metadata out of range.
        let mut bad = good.as_bytes().to_vec();
        if bad.len() > 7 {
            bad[7] = 0x3F; // col 63 for q=16
            assert!(TileBlob { bytes: bad }.decode().is_err());
        }
    }

    #[test]
    fn execute_validates_activation_shape() {
        let weights = sample(4, 16, 0.3, 6);
        let layer = CompiledLayer::compile(&weights, 4, 4).unwrap();
        let bad = Matrix::zeros(8, 2);
        assert!(matches!(
            layer.execute(&bad),
            Err(CoreError::ShapeMismatch { .. })
        ));
    }
}
