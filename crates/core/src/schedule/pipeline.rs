//! The systolic macro-step timing model.
//!
//! The 2D compute array advances in lockstep: every macro-step, each
//! systolic row finishes its resident work and the operand wavefront shifts
//! one stage. The step's duration is the longest row's work; shorter rows
//! idle (bubbles). A sub-matrix marches through all `stages` stages (one
//! per macro-step), computing a different output tile at each stage as the
//! activation operands stream past.

/// Geometry of one tensor core's systolic array.
///
/// The paper's configuration (§4) is four 4×4 sub-arrays per tensor core,
/// i.e. a 2×2 grid: two systolic rows of two stages each.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SystolicConfig {
    /// Parallel systolic rows of sub-arrays.
    pub rows: usize,
    /// Pipeline stages per row.
    pub stages: usize,
    /// Maximum sub-matrices the scheduler may pack into one macro-step of
    /// one row (§3.3 limits this to a small number, e.g. 2, to bound
    /// register-file bandwidth).
    pub window: usize,
}

impl SystolicConfig {
    /// The paper's default tensor core: 2×2 grid of 4×4 sub-arrays,
    /// scheduling window of 2.
    #[must_use]
    pub fn paper_default() -> Self {
        SystolicConfig {
            rows: 2,
            stages: 2,
            window: 2,
        }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if any field is zero.
    pub fn assert_valid(&self) {
        assert!(
            self.rows > 0 && self.stages > 0 && self.window > 0,
            "systolic config fields must be positive: {self:?}"
        );
    }
}

impl Default for SystolicConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Timing outcome of streaming a set of tiles through the systolic array.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PipelineReport {
    /// End-to-end cycles, including pipeline fill.
    pub total_cycles: u64,
    /// Sum of all tiles' critical paths — the cycles a perfectly packed
    /// single row would need (per stage march).
    pub busy_cycles: u64,
    /// Idle row-cycles caused by macro-step mismatches.
    pub bubble_cycles: u64,
    /// Number of macro-steps executed.
    pub steps: u64,
}

impl PipelineReport {
    /// Fraction of row-cycles doing useful work (1.0 = bubble-free).
    #[must_use]
    pub fn row_utilization(&self) -> f64 {
        let denom = self.busy_cycles + self.bubble_cycles;
        if denom == 0 {
            return 1.0;
        }
        self.busy_cycles as f64 / denom as f64
    }
}

/// Computes the report for an explicit assignment of work to macro-steps.
///
/// `steps[k]` holds the per-row work sums of macro-step `k`. The step's
/// duration is the maximum row sum; rows below it accrue bubbles. Pipeline
/// fill adds `stages - 1` extra traversals of the first step's duration
/// (items entering stage by stage).
#[must_use]
pub fn run_steps(steps: &[Vec<u64>], cfg: &SystolicConfig) -> PipelineReport {
    run_steps_with_sink(steps, cfg, &mut super::profile::NullSink)
}

/// [`run_steps`] with a cycle-attribution hook: the sink observes every
/// macro-step (index, duration, per-row sums) and the trailing fill
/// cycles. Timing is byte-identical to [`run_steps`] — the sink is
/// called with values the accounting already computed, and with
/// [`super::profile::NullSink`] the generic compiles down to the plain
/// loop (profiling off costs nothing).
pub fn run_steps_with_sink<S: super::profile::ProfileSink>(
    steps: &[Vec<u64>],
    cfg: &SystolicConfig,
    sink: &mut S,
) -> PipelineReport {
    cfg.assert_valid();
    let mut report = PipelineReport::default();
    for (index, row_sums) in steps.iter().enumerate() {
        let duration = row_sums.iter().copied().max().unwrap_or(0);
        report.steps += 1;
        report.total_cycles += duration;
        for &sum in row_sums {
            report.busy_cycles += sum;
            report.bubble_cycles += duration - sum;
        }
        // Rows absent from this step (fewer entries than cfg.rows) are
        // fully idle.
        report.bubble_cycles += duration * (cfg.rows.saturating_sub(row_sums.len())) as u64;
        sink.step(index, duration, row_sums);
    }
    // Pipeline fill: the wavefront needs (stages - 1) extra steps to reach
    // the last stage; approximate with the first step's duration.
    if let Some(first) = steps.first() {
        let d = first.iter().copied().max().unwrap_or(0);
        let fill = d * (cfg.stages as u64 - 1);
        report.total_cycles += fill;
        sink.fill(fill);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_steps_have_no_bubbles() {
        let cfg = SystolicConfig::paper_default();
        let steps = vec![vec![2, 2]; 10];
        let r = run_steps(&steps, &cfg);
        assert_eq!(r.bubble_cycles, 0);
        assert_eq!(r.busy_cycles, 40);
        assert_eq!(r.total_cycles, 20 + 2); // + fill
        assert_eq!(r.row_utilization(), 1.0);
    }

    #[test]
    fn figure10a_bubble() {
        // Top row: A1 (2 cycles) then A3 (2). Bottom row: A2 (1) then A4
        // (1). Natural pairing wastes one cycle per step.
        let cfg = SystolicConfig::paper_default();
        let steps = vec![vec![2, 1], vec![2, 1]];
        let r = run_steps(&steps, &cfg);
        assert_eq!(r.bubble_cycles, 2);
        assert!((r.row_utilization() - 6.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn figure10b_scheduled() {
        // Scheduled: the bottom row packs A2+A4 (1+1) against A1's 2, then
        // A3 pairs with another 2-cycle step.
        let cfg = SystolicConfig::paper_default();
        let steps = vec![vec![2, 2], vec![2, 2]];
        let r = run_steps(&steps, &cfg);
        assert_eq!(r.bubble_cycles, 0);
    }

    #[test]
    fn missing_rows_idle() {
        let cfg = SystolicConfig {
            rows: 4,
            stages: 1,
            window: 1,
        };
        let steps = vec![vec![3]]; // only one of four rows fed
        let r = run_steps(&steps, &cfg);
        assert_eq!(r.bubble_cycles, 9);
        assert_eq!(r.total_cycles, 3);
    }

    #[test]
    fn empty_stream() {
        let r = run_steps(&[], &SystolicConfig::paper_default());
        assert_eq!(r.total_cycles, 0);
        assert_eq!(r.row_utilization(), 1.0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn invalid_config() {
        let cfg = SystolicConfig {
            rows: 0,
            stages: 2,
            window: 2,
        };
        let _ = run_steps(&[], &cfg);
    }

    #[test]
    fn empty_steps_produce_default_report() {
        // No steps at all: no cycles, no fill (there is no first step to
        // size the fill from), utilization degenerates to 1.0.
        let r = run_steps(&[], &SystolicConfig::paper_default());
        assert_eq!(r, PipelineReport::default());
        // A step that exists but carries no rows contributes nothing
        // except the step count (duration 0, no row entries).
        let r = run_steps(&[vec![]], &SystolicConfig::paper_default());
        assert_eq!(r.steps, 1);
        assert_eq!(r.total_cycles, 0);
        assert_eq!(r.busy_cycles, 0);
        assert_eq!(r.bubble_cycles, 0);
    }

    #[test]
    fn short_steps_bill_missing_rows_as_idle() {
        // Exercises the `saturating_sub` branch: row_sums.len() < cfg.rows
        // bills `duration * (rows - len)` idle row-cycles; len == rows
        // bills none; and the subtraction saturates (never underflows)
        // when a schedule feeds more entries than configured rows.
        let cfg = SystolicConfig {
            rows: 3,
            stages: 1,
            window: 1,
        };
        let short = run_steps(&[vec![5u64]], &cfg); // 2 rows missing
        assert_eq!(short.busy_cycles, 5);
        assert_eq!(short.bubble_cycles, 10);
        let exact = run_steps(&[vec![5u64, 5, 5]], &cfg);
        assert_eq!(exact.bubble_cycles, 0);
        let over = run_steps(&[vec![5u64, 5, 5, 2]], &cfg); // len > rows
        assert_eq!(over.busy_cycles, 17);
        assert_eq!(over.bubble_cycles, 3, "only the short extra entry idles");
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(128))]

        /// Permuting the rows within a step never changes what the step
        /// costs: duration is the max (order-free) and busy/bubble are
        /// per-entry sums. Rotation + transposition generate every
        /// permutation, so checking those suffices.
        #[test]
        fn busy_plus_bubble_invariant_under_row_permutation(
            step in proptest::collection::vec(0u64..64, 0..8),
            rot in 0usize..8,
            swap_a in 0usize..8,
            swap_b in 0usize..8,
        ) {
            let cfg = SystolicConfig {
                rows: 4,
                stages: 2,
                window: 2,
            };
            let base = run_steps(std::slice::from_ref(&step), &cfg);
            let mut permuted = step;
            if !permuted.is_empty() {
                let r = rot % permuted.len();
                permuted.rotate_left(r);
                let (a, b) = (swap_a % permuted.len(), swap_b % permuted.len());
                permuted.swap(a, b);
            }
            let p = run_steps(&[permuted], &cfg);
            proptest::prop_assert_eq!(
                base.busy_cycles + base.bubble_cycles,
                p.busy_cycles + p.bubble_cycles
            );
            proptest::prop_assert_eq!(base.busy_cycles, p.busy_cycles);
            proptest::prop_assert_eq!(base.total_cycles, p.total_cycles);
        }
    }
}
