//! Per-cycle discrete-event validation of the macro-step model.
//!
//! [`super::pipeline::run_steps`] computes makespans analytically. This
//! module re-derives them from first principles: a cycle-by-cycle
//! simulation of the systolic grid in which each row's stage holds its
//! resident work for its duration and the operand wavefront advances only
//! when every row's stage has drained — Figure 10's semantics, one cycle
//! at a time. The test suite checks both models agree exactly, so a bug
//! in either accounting is caught by the other.

use super::pipeline::{PipelineReport, SystolicConfig};

/// State of one systolic row during one wavefront.
#[derive(Clone, Copy, Debug)]
struct RowState {
    /// Cycles of work left in the row's current wavefront residency.
    remaining: u64,
    /// Work this wavefront carries (for busy accounting).
    work: u64,
}

/// Simulates the scheduled macro-steps cycle by cycle.
///
/// `steps[k]` holds the per-row work sums of wavefront `k`, exactly as
/// consumed by [`super::pipeline::run_steps`]. Returns the same report
/// fields, derived by counting cycles instead of summing maxima.
#[must_use]
pub fn simulate_steps(steps: &[Vec<u64>], cfg: &SystolicConfig) -> PipelineReport {
    simulate_steps_with_sink(steps, cfg, &mut super::profile::NullSink)
}

/// [`simulate_steps`] with a cycle-attribution hook, mirroring
/// [`super::pipeline::run_steps_with_sink`]: the sink observes each
/// wavefront after it drains (with the measured duration and the admitted
/// per-row work) and the trailing fill cycles, so a sink fed by either
/// timing model accumulates identical attribution.
pub fn simulate_steps_with_sink<S: super::profile::ProfileSink>(
    steps: &[Vec<u64>],
    cfg: &SystolicConfig,
    sink: &mut S,
) -> PipelineReport {
    cfg.assert_valid();
    let mut report = PipelineReport::default();
    let mut pending: std::collections::VecDeque<&Vec<u64>> = steps.iter().collect();
    // Rows currently resident in the array (one wavefront at a time in
    // this model; deeper stages replicate the wavefront, accounted via
    // the fill term below).
    let mut rows: Vec<RowState> = Vec::new();
    let mut row_work: Vec<u64> = Vec::new();
    let mut first_duration = 0u64;
    let mut index = 0usize;

    while let Some(step) = pending.pop_front() {
        // Admit the wavefront.
        rows.clear();
        for r in 0..cfg.rows {
            let work = step.get(r).copied().unwrap_or(0);
            rows.push(RowState {
                remaining: work,
                work,
            });
        }
        report.steps += 1;
        // Advance cycle by cycle until every row has drained.
        let mut cycles_this_step = 0u64;
        while rows.iter().any(|r| r.remaining > 0) {
            cycles_this_step += 1;
            for r in rows.iter_mut() {
                if r.remaining > 0 {
                    r.remaining -= 1;
                }
            }
        }
        // Zero-work wavefronts still advance one slot? No: run_steps gives
        // them zero duration; mirror that.
        report.total_cycles += cycles_this_step;
        if report.steps == 1 {
            first_duration = cycles_this_step;
        }
        for r in &rows {
            report.busy_cycles += r.work;
            report.bubble_cycles += cycles_this_step - r.work;
        }
        row_work.clear();
        row_work.extend(rows.iter().map(|r| r.work));
        sink.step(index, cycles_this_step, &row_work);
        index += 1;
    }
    // Pipeline fill, identical to the analytic model: the wavefront takes
    // stages-1 extra traversals at the first step's duration.
    let fill = first_duration * (cfg.stages as u64 - 1);
    report.total_cycles += fill;
    if !steps.is_empty() {
        sink.fill(fill);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::super::grouping::{schedule_grouped_steps, schedule_natural_steps};
    use super::super::pipeline::run_steps;
    use super::*;
    use eureka_sparse::rng::DetRng;

    fn cfg() -> SystolicConfig {
        SystolicConfig::paper_default()
    }

    #[test]
    fn agrees_with_analytic_on_figure10() {
        let steps = vec![vec![2u64, 1], vec![2, 1]];
        let a = run_steps(&steps, &cfg());
        let b = simulate_steps(&steps, &cfg());
        assert_eq!(a, b);
    }

    #[test]
    fn agrees_on_random_schedules() {
        let mut rng = DetRng::new(99);
        for trial in 0..200 {
            let rows = 1 + rng.next_below(4);
            let stages = 1 + rng.next_below(4);
            let c = SystolicConfig {
                rows,
                stages,
                window: 1 + rng.next_below(4),
            };
            let n_steps = rng.next_below(20);
            let steps: Vec<Vec<u64>> = (0..n_steps)
                .map(|_| {
                    (0..=rng.next_below(rows))
                        .map(|_| rng.next_below(9) as u64)
                        .collect()
                })
                .collect();
            let a = run_steps(&steps, &c);
            let b = simulate_steps(&steps, &c);
            assert_eq!(a, b, "trial {trial} cfg {c:?} steps {steps:?}");
        }
    }

    #[test]
    fn agrees_on_scheduler_output() {
        // Validate the whole path: scheduler -> steps -> both timing models.
        let mut rng = DetRng::new(4);
        let times: Vec<u64> = (0..500).map(|_| 1 + rng.next_below(5) as u64).collect();
        for window in [1usize, 2, 4] {
            let c = SystolicConfig {
                rows: 2,
                stages: 2,
                window,
            };
            for steps in [
                schedule_natural_steps(&times, &c),
                schedule_grouped_steps(&times, &c),
            ] {
                assert_eq!(run_steps(&steps, &c), simulate_steps(&steps, &c));
            }
        }
    }

    #[test]
    fn empty_schedule() {
        let r = simulate_steps(&[], &cfg());
        assert_eq!(r, PipelineReport::default());
    }

    #[test]
    fn sinks_agree_between_timing_models() {
        use super::super::pipeline::run_steps_with_sink;
        use super::super::profile::StepProfile;
        let mut rng = DetRng::new(7);
        for trial in 0..100 {
            let rows = 1 + rng.next_below(4);
            let c = SystolicConfig {
                rows,
                stages: 1 + rng.next_below(4),
                window: 1 + rng.next_below(4),
            };
            let steps: Vec<Vec<u64>> = (0..rng.next_below(16))
                .map(|_| {
                    (0..=rng.next_below(rows))
                        .map(|_| rng.next_below(9) as u64)
                        .collect()
                })
                .collect();
            let mut analytic = StepProfile::new(c.rows);
            let a = run_steps_with_sink(&steps, &c, &mut analytic);
            let mut cyclewise = StepProfile::new(c.rows);
            let b = simulate_steps_with_sink(&steps, &c, &mut cyclewise);
            assert_eq!(a, b, "trial {trial}");
            assert_eq!(analytic, cyclewise, "trial {trial} cfg {c:?}");
            assert_eq!(analytic.busy_cycles(), a.busy_cycles);
            assert_eq!(
                analytic.bubble_cycles() + analytic.drain_cycles(),
                a.bubble_cycles,
                "trial {trial}"
            );
        }
    }
}
