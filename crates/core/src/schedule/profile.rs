//! Cycle-attribution hooks for the macro-step timing model.
//!
//! [`super::pipeline::run_steps_with_sink`] and
//! [`super::cyclesim::simulate_steps_with_sink`] report, per macro-step,
//! which row-cycles did useful work and which were lost to macro-step
//! mismatch — the raw material for the simulator's stall taxonomy. The
//! hook is a trait so the non-profiled paths pay nothing: they pass
//! [`NullSink`], the generic monomorphizes to empty inlined calls, and
//! the emitted code is the pre-profiling loop.
//!
//! Attribution categories (all in *row-cycles*, i.e. one systolic row
//! for one cycle):
//!
//! * **busy** — the row was executing resident work;
//! * **bubble** — the row finished its work before the macro-step's
//!   longest row (Figure 10(a)'s idle slots);
//! * **drain** — the row had no work at all this macro-step (a row the
//!   scheduler left empty, or a step with fewer entries than rows);
//! * **fill** — cycles added for the operand wavefront to reach the last
//!   pipeline stage (`stages - 1` traversals of the first step), during
//!   which every row idles.

/// Receives per-step attribution from the timing models.
///
/// Implementations must not influence timing — the models call the sink
/// after their own accounting, with values derived from the same inputs.
pub trait ProfileSink {
    /// One macro-step: `index` in schedule order, the step's `duration`
    /// (its longest row sum), and the scheduled per-row work sums
    /// (`row_sums.len()` may be shorter than the configured row count;
    /// missing rows are fully idle).
    fn step(&mut self, index: usize, duration: u64, row_sums: &[u64]);

    /// Pipeline-fill cycles appended after the last macro-step.
    fn fill(&mut self, cycles: u64);
}

/// The no-op sink: profiling off. All calls inline to nothing.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl ProfileSink for NullSink {
    #[inline(always)]
    fn step(&mut self, _index: usize, _duration: u64, _row_sums: &[u64]) {}

    #[inline(always)]
    fn fill(&mut self, _cycles: u64) {}
}

/// The accumulating sink: per-row busy/bubble/drain totals plus fill.
///
/// Invariants against the [`super::pipeline::PipelineReport`] produced by
/// the same run (checked by unit tests):
///
/// * `busy_cycles() == report.busy_cycles`
/// * `bubble_cycles() + drain_cycles() == report.bubble_cycles`
/// * `steps() == report.steps`
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StepProfile {
    row_busy: Vec<u64>,
    row_bubble: Vec<u64>,
    row_drain: Vec<u64>,
    fill_cycles: u64,
    steps: u64,
}

impl StepProfile {
    /// An empty profile pre-sized for `rows` systolic rows. The vectors
    /// grow if a schedule feeds more entries than configured rows (the
    /// timing model bills those as busy rows too).
    #[must_use]
    pub fn new(rows: usize) -> Self {
        StepProfile {
            row_busy: vec![0; rows],
            row_bubble: vec![0; rows],
            row_drain: vec![0; rows],
            fill_cycles: 0,
            steps: 0,
        }
    }

    fn ensure_rows(&mut self, rows: usize) {
        if self.row_busy.len() < rows {
            self.row_busy.resize(rows, 0);
            self.row_bubble.resize(rows, 0);
            self.row_drain.resize(rows, 0);
        }
    }

    /// Per-row row-cycles spent executing work.
    #[must_use]
    pub fn row_busy(&self) -> &[u64] {
        &self.row_busy
    }

    /// Per-row row-cycles idled behind a longer row in the same step.
    #[must_use]
    pub fn row_bubble(&self) -> &[u64] {
        &self.row_bubble
    }

    /// Per-row row-cycles with no work scheduled at all.
    #[must_use]
    pub fn row_drain(&self) -> &[u64] {
        &self.row_drain
    }

    /// Total busy row-cycles.
    #[must_use]
    pub fn busy_cycles(&self) -> u64 {
        self.row_busy.iter().sum()
    }

    /// Total bubble row-cycles.
    #[must_use]
    pub fn bubble_cycles(&self) -> u64 {
        self.row_bubble.iter().sum()
    }

    /// Total drain row-cycles.
    #[must_use]
    pub fn drain_cycles(&self) -> u64 {
        self.row_drain.iter().sum()
    }

    /// Pipeline-fill cycles (wall-clock, not row-cycles).
    #[must_use]
    pub fn fill_cycles(&self) -> u64 {
        self.fill_cycles
    }

    /// Macro-steps observed.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Number of tracked rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.row_busy.len()
    }
}

impl ProfileSink for StepProfile {
    fn step(&mut self, _index: usize, duration: u64, row_sums: &[u64]) {
        self.steps += 1;
        self.ensure_rows(row_sums.len());
        for (r, slot) in self.row_busy.iter_mut().enumerate() {
            let work = row_sums.get(r).copied().unwrap_or(0);
            if work > 0 {
                *slot += work;
                self.row_bubble[r] += duration - work;
            } else {
                self.row_drain[r] += duration;
            }
        }
    }

    fn fill(&mut self, cycles: u64) {
        self.fill_cycles += cycles;
    }
}

#[cfg(test)]
mod tests {
    use super::super::pipeline::{run_steps, run_steps_with_sink, SystolicConfig};
    use super::*;

    #[test]
    fn null_sink_changes_nothing() {
        let steps = vec![vec![2u64, 1], vec![3, 3], vec![4]];
        let cfg = SystolicConfig::paper_default();
        let plain = run_steps(&steps, &cfg);
        let sunk = run_steps_with_sink(&steps, &cfg, &mut NullSink);
        assert_eq!(plain, sunk);
    }

    #[test]
    fn step_profile_reconciles_with_report() {
        let cfg = SystolicConfig {
            rows: 3,
            stages: 2,
            window: 2,
        };
        // Mixed shapes: full step, short step (missing rows), zero-work row.
        let steps = vec![vec![4u64, 2, 1], vec![5], vec![3, 0, 3], vec![]];
        let mut sink = StepProfile::new(cfg.rows);
        let report = run_steps_with_sink(&steps, &cfg, &mut sink);
        assert_eq!(sink.busy_cycles(), report.busy_cycles);
        assert_eq!(
            sink.bubble_cycles() + sink.drain_cycles(),
            report.bubble_cycles
        );
        assert_eq!(sink.steps(), report.steps);
        // Fill is the difference between wall-clock and step durations.
        let step_cycles: u64 = steps
            .iter()
            .map(|s| s.iter().copied().max().unwrap_or(0))
            .sum();
        assert_eq!(sink.fill_cycles(), report.total_cycles - step_cycles);
    }

    #[test]
    fn drain_separates_empty_rows_from_short_rows() {
        let cfg = SystolicConfig {
            rows: 2,
            stages: 1,
            window: 1,
        };
        // Row 0 works 4; row 1 absent entirely -> drain, not bubble.
        let mut sink = StepProfile::new(cfg.rows);
        run_steps_with_sink(&[vec![4u64]], &cfg, &mut sink);
        assert_eq!(sink.busy_cycles(), 4);
        assert_eq!(sink.bubble_cycles(), 0);
        assert_eq!(sink.drain_cycles(), 4);
        // Row 1 present but shorter -> bubble, not drain.
        let mut sink = StepProfile::new(cfg.rows);
        run_steps_with_sink(&[vec![4u64, 1]], &cfg, &mut sink);
        assert_eq!(sink.busy_cycles(), 5);
        assert_eq!(sink.bubble_cycles(), 3);
        assert_eq!(sink.drain_cycles(), 0);
    }

    #[test]
    fn grows_beyond_configured_rows() {
        let cfg = SystolicConfig {
            rows: 1,
            stages: 1,
            window: 1,
        };
        let mut sink = StepProfile::new(cfg.rows);
        let report = run_steps_with_sink(&[vec![2u64, 2, 2]], &cfg, &mut sink);
        assert_eq!(sink.rows(), 3);
        assert_eq!(sink.busy_cycles(), report.busy_cycles);
        assert_eq!(
            sink.bubble_cycles() + sink.drain_cycles(),
            report.bubble_cycles
        );
    }
}
