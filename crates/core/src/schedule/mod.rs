//! Systolic scheduling (paper §3.3, Figure 10).
//!
//! A tensor core is a grid of MAC sub-arrays: operands stream systolically,
//! so the whole array advances in *macro-steps* whose duration is set by the
//! slowest resident sub-matrix. With 2:4 sparsity every tile takes the same
//! time and the pipeline never bubbles; unstructured sparsity's uneven
//! critical paths leave faster rows idle.
//!
//! Offline systolic scheduling fixes this by feeding, along each systolic
//! row, sub-matrices with the same critical path — or several short ones
//! whose paths *add up* to the step length (Figure 10(b)). The critical
//! paths are statically known from the SUDS assignment.
//!
//! * [`pipeline`] — the macro-step timing model shared by all simulated
//!   architectures;
//! * [`grouping`] — the offline scheduler that packs tiles into steps.

pub mod cyclesim;
pub mod grouping;
pub mod pipeline;
pub mod profile;
pub mod trace;

pub use grouping::{
    makespan_lower_bound, schedule_grouped, schedule_grouped_steps, schedule_natural,
    schedule_natural_steps,
};
pub use pipeline::{PipelineReport, SystolicConfig};
pub use profile::{NullSink, ProfileSink, StepProfile};
