//! Chrome-tracing export of systolic schedules.
//!
//! Emits the macro-step assignment of [`super::grouping`] as a Trace Event
//! Format JSON array (load it in `chrome://tracing` or Perfetto): one
//! track per systolic row, one duration event per resident work chunk,
//! and an explicit `bubble` event wherever a row idles inside a step.
//! Handy for eyeballing why a schedule has the utilization it has.

use super::pipeline::SystolicConfig;
use eureka_obs::chrome::TraceBuilder;

/// Serializes macro-steps as Trace Event Format JSON.
///
/// `steps[k]` are the per-row work sums of step `k`, exactly as produced
/// by [`super::grouping::schedule_grouped_steps`]. Timestamps are in
/// cycles (reported as microseconds to the viewer). Event syntax and
/// JSON-string escaping are shared with the span exporter via
/// [`eureka_obs::chrome`].
#[must_use]
pub fn to_chrome_json(steps: &[Vec<u64>], cfg: &SystolicConfig) -> String {
    cfg.assert_valid();
    let mut trace = TraceBuilder::new();
    let mut t0 = 0u64;
    for (k, row_sums) in steps.iter().enumerate() {
        let duration = row_sums.iter().copied().max().unwrap_or(0);
        for row in 0..cfg.rows {
            let work = row_sums.get(row).copied().unwrap_or(0);
            if work > 0 {
                trace.complete(&format!("step {k}"), t0, work, 0, row as u64);
            }
            if duration > work {
                trace.complete_with(
                    "bubble",
                    t0 + work,
                    duration - work,
                    0,
                    row as u64,
                    Some("terrible"),
                    &[],
                );
            }
        }
        t0 += duration;
    }
    trace.build()
}

#[cfg(test)]
mod tests {
    use super::super::grouping::schedule_grouped_steps;
    use super::*;

    #[test]
    fn emits_work_and_bubble_events() {
        let cfg = SystolicConfig::paper_default();
        let steps = vec![vec![2u64, 1], vec![3, 3]];
        let json = to_chrome_json(&steps, &cfg);
        assert!(json.starts_with('[') && json.ends_with(']'));
        // One bubble: row 1 idles 1 cycle in step 0.
        assert_eq!(json.matches("\"bubble\"").count(), 1);
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 5);
        // Step 1 starts after step 0's 2-cycle duration.
        assert!(json.contains("\"name\":\"step 1\",\"ph\":\"X\",\"ts\":2"));
    }

    #[test]
    fn scheduler_output_round_trips() {
        let cfg = SystolicConfig::paper_default();
        let times = [4u64, 1, 1, 1, 1, 4];
        let steps = schedule_grouped_steps(&times, &cfg);
        let json = to_chrome_json(&steps, &cfg);
        // Valid bracketed JSON with balanced braces.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        // Total non-bubble duration equals the input work.
        let inner = &json[1..json.len() - 1];
        let work: u64 = inner
            .split("},{")
            .filter(|e| !e.contains("\"name\":\"bubble\""))
            .map(|e| {
                e.split("\"dur\":")
                    .nth(1)
                    .and_then(|s| s.split(&[',', '}'][..]).next())
                    .and_then(|s| s.parse::<u64>().ok())
                    .expect("every event has a dur")
            })
            .sum();
        assert_eq!(work, times.iter().sum::<u64>());
    }

    #[test]
    fn empty_schedule() {
        let cfg = SystolicConfig::paper_default();
        assert_eq!(to_chrome_json(&[], &cfg), "[]");
    }
}
