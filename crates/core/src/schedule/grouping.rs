//! The offline systolic scheduler: packing tiles into macro-steps.
//!
//! [`schedule_natural`] models an unscheduled stream (tiles dispatched
//! round-robin in arrival order, one per row per step) — the behaviour of
//! *Cnvlutin-like* and the "original" side of Figure 10. [`schedule_grouped`]
//! implements §3.3: tiles with the same critical path, or short tiles whose
//! paths sum to the step length, share a macro-step.

use super::pipeline::{run_steps, PipelineReport, SystolicConfig};
use std::collections::BTreeMap;

/// The macro-steps of an unscheduled stream: tiles in arrival order, one
/// per systolic row per step.
#[must_use]
pub fn schedule_natural_steps(times: &[u64], cfg: &SystolicConfig) -> Vec<Vec<u64>> {
    cfg.assert_valid();
    times.chunks(cfg.rows).map(<[u64]>::to_vec).collect()
}

/// Streams tiles in arrival order, one tile per systolic row per
/// macro-step. The step's duration is the longest tile in it.
#[must_use]
pub fn schedule_natural(times: &[u64], cfg: &SystolicConfig) -> PipelineReport {
    run_steps(&schedule_natural_steps(times, cfg), cfg)
}

/// Offline systolic scheduling: greedily builds macro-steps by taking the
/// longest remaining tile (which sets the step duration) and packing every
/// row — including the remainder of the first — with up to `cfg.window`
/// tiles whose critical paths fit the remaining step capacity,
/// largest-fit-first.
///
/// With uniform tile times this degenerates to the natural schedule (no
/// bubbles either way); with SUDS-shortened, low-variance paths it packs
/// most steps exactly (the §3.3 + §3.2 synergy).
#[must_use]
pub fn schedule_grouped(times: &[u64], cfg: &SystolicConfig) -> PipelineReport {
    run_steps(&schedule_grouped_steps(times, cfg), cfg)
}

/// The macro-steps the offline scheduler constructs (see
/// [`schedule_grouped`]), exposed for the cycle-accurate cross-validation
/// and for inspecting schedules.
#[must_use]
pub fn schedule_grouped_steps(times: &[u64], cfg: &SystolicConfig) -> Vec<Vec<u64>> {
    cfg.assert_valid();
    // Multiset of remaining tile times.
    let mut pool: BTreeMap<u64, u64> = BTreeMap::new();
    for &t in times {
        *pool.entry(t).or_insert(0) += 1;
    }
    let take = |pool: &mut BTreeMap<u64, u64>, at_most: u64| -> Option<u64> {
        let (&t, _) = pool.range(..=at_most).next_back()?;
        let cnt = pool.get_mut(&t).expect("key just observed");
        *cnt -= 1;
        if *cnt == 0 {
            pool.remove(&t);
        }
        Some(t)
    };

    let mut steps: Vec<Vec<u64>> = Vec::new();
    while let Some((&t_max, _)) = pool.iter().next_back() {
        let lead = take(&mut pool, t_max).expect("nonempty pool");
        let mut row_sums = Vec::with_capacity(cfg.rows);
        for row in 0..cfg.rows {
            let mut sum = if row == 0 { lead } else { 0 };
            let mut count = usize::from(row == 0);
            while count < cfg.window {
                match take(&mut pool, t_max - sum) {
                    Some(t) => {
                        sum += t;
                        count += 1;
                    }
                    None => break,
                }
            }
            row_sums.push(sum);
        }
        steps.push(row_sums);
    }
    steps
}

/// Information-theoretic makespan lower bound for a tile stream on the
/// given geometry: the work spread perfectly over the rows, but never
/// below the longest single tile. (Pipeline fill is not lower-bounded —
/// a lucky schedule leads with a short step.)
#[must_use]
pub fn makespan_lower_bound(times: &[u64], cfg: &SystolicConfig) -> u64 {
    cfg.assert_valid();
    let total: u64 = times.iter().sum();
    let max_t = times.iter().copied().max().unwrap_or(0);
    total.div_ceil(cfg.rows as u64).max(max_t)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SystolicConfig {
        SystolicConfig::paper_default()
    }

    #[test]
    fn grouped_is_near_the_lower_bound_on_suds_distributions() {
        // Post-SUDS critical paths are short and low-variance; the
        // scheduler should land within a few percent of the bound.
        let times: Vec<u64> = (0..2000)
            .map(|i| match i % 10 {
                0..=4 => 2,
                5..=7 => 1,
                8 => 3,
                _ => 2,
            })
            .collect();
        let lb = makespan_lower_bound(&times, &cfg());
        let got = schedule_grouped(&times, &cfg()).total_cycles;
        assert!(got >= lb);
        assert!(
            (got as f64) < lb as f64 * 1.03,
            "grouped {got} vs lower bound {lb}"
        );
    }

    #[test]
    fn lower_bound_edge_cases() {
        assert_eq!(makespan_lower_bound(&[], &cfg()), 0);
        assert_eq!(makespan_lower_bound(&[5], &cfg()), 5);
        // Dominated by the single longest tile, not the average.
        assert_eq!(makespan_lower_bound(&[9, 1], &cfg()), 9);
        assert_eq!(makespan_lower_bound(&[2, 2, 2, 2], &cfg()), 4);
    }

    #[test]
    fn figure10_end_to_end() {
        // A1=2, A2=1, A3=2, A4=1 in arrival order.
        let times = [2u64, 1, 2, 1];
        let natural = schedule_natural(&times, &cfg());
        let grouped = schedule_grouped(&times, &cfg());
        // Natural: steps (2,1) and (2,1): 2 bubbles.
        assert_eq!(natural.bubble_cycles, 2);
        // Scheduled: (2 | 1+1) then (2 | -): the last step has an unfilled
        // row, but total bubbles must not exceed natural's.
        assert!(grouped.bubble_cycles <= natural.bubble_cycles);
        assert!(grouped.total_cycles <= natural.total_cycles);
        assert_eq!(grouped.busy_cycles, 6);
    }

    #[test]
    fn uniform_times_no_bubbles_either_way() {
        let times = vec![3u64; 64];
        let natural = schedule_natural(&times, &cfg());
        let grouped = schedule_grouped(&times, &cfg());
        assert_eq!(natural.bubble_cycles, 0);
        assert_eq!(grouped.bubble_cycles, 0);
        assert_eq!(natural.total_cycles, grouped.total_cycles);
    }

    #[test]
    fn grouped_never_loses_work() {
        let times: Vec<u64> = (0..100).map(|i| 1 + (i * 7) % 4).collect();
        let natural = schedule_natural(&times, &cfg());
        let grouped = schedule_grouped(&times, &cfg());
        assert_eq!(natural.busy_cycles, grouped.busy_cycles);
        assert_eq!(natural.busy_cycles, times.iter().sum::<u64>());
    }

    #[test]
    fn grouped_improves_mixed_stream() {
        // Alternating 4s and 1s: natural pairs (4,1) every step; grouped
        // pairs 4 against 1+1+1+1 when the window allows.
        let times: Vec<u64> = (0..200).map(|i| if i % 2 == 0 { 4 } else { 1 }).collect();
        let wide = SystolicConfig {
            rows: 2,
            stages: 2,
            window: 4,
        };
        let natural = schedule_natural(&times, &wide);
        let grouped = schedule_grouped(&times, &wide);
        assert!(
            grouped.total_cycles < natural.total_cycles,
            "grouped {} vs natural {}",
            grouped.total_cycles,
            natural.total_cycles
        );
        assert!(grouped.row_utilization() > natural.row_utilization());
    }

    #[test]
    fn window_limits_packing() {
        // With window 1, grouping can only reorder, not pack.
        let times = [4u64, 1, 1, 1, 1, 4];
        let w1 = SystolicConfig {
            rows: 2,
            stages: 2,
            window: 1,
        };
        let grouped = schedule_grouped(&times, &w1);
        // Reordering pairs the two 4s together and the 1s together.
        assert_eq!(grouped.bubble_cycles, 0);
        let w1_natural = schedule_natural(&times, &w1);
        assert!(w1_natural.bubble_cycles > 0);
    }

    #[test]
    fn empty_input() {
        let r = schedule_grouped(&[], &cfg());
        assert_eq!(r.total_cycles, 0);
        let r = schedule_natural(&[], &cfg());
        assert_eq!(r.steps, 0);
    }

    #[test]
    fn single_tile() {
        let r = schedule_grouped(&[5], &cfg());
        assert_eq!(r.busy_cycles, 5);
        // One step of 5 plus one fill step of 5 (stages = 2).
        assert_eq!(r.total_cycles, 10);
    }
}
