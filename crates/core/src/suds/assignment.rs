//! Concrete displaced schedules: which element executes on which MAC row in
//! which cycle, plus the base-row rotation and hardware metadata.
//!
//! A [`DisplacementPlan`] only fixes *how many* elements each row sheds;
//! this module picks the elements (the tail of each left-aligned row),
//! rotates the tile so the base row lands on the last MAC row — removing
//! the wrap-around return wire (paper §3.2) — and packs everything into a
//! `p × K` cycle grid that the functional executor and the simulator share.

use super::decision::DisplacementPlan;
use crate::error::CoreError;
use eureka_sparse::AlignedTile;

/// One scheduled multiplication.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Slot {
    /// Physical MAC row whose accumulator receives the product. Equals the
    /// executing row for local work, or the row above for displaced work.
    pub acc_row: usize,
    /// Original column of the filter element within the `q`-wide source
    /// window (the compaction metadata driving the wide multiplexer).
    pub col: u16,
    /// Whether this element was displaced from the row above.
    pub displaced: bool,
}

/// A fully scheduled tile: `p` MAC rows × `cycles` cycles of optional work.
///
/// # Examples
///
/// ```
/// use eureka_core::{suds, DisplacedTile};
/// use eureka_sparse::{AlignedTile, TilePattern};
///
/// let tile = TilePattern::from_rows(&[0b1111, 0b0001, 0, 0], 4).unwrap();
/// let plan = suds::optimize(&tile.row_lens());
/// let aligned = AlignedTile::from_tile(&tile);
/// let d = DisplacedTile::from_plan(&aligned, &plan).unwrap();
/// assert_eq!(d.cycles(), 2);
/// d.validate().unwrap();
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DisplacedTile {
    p: usize,
    q: usize,
    cycles: usize,
    /// Logical row `r` of the source tile maps to physical MAC row
    /// `(r + rotation) % p`; stored per tile as a small field the loader
    /// uses to adjust indices (2 bits for p = 4).
    rotation: usize,
    /// `slots[mac_row][cycle]`.
    slots: Vec<Vec<Option<Slot>>>,
}

impl DisplacedTile {
    /// Schedules a left-aligned tile under a displacement plan.
    ///
    /// The displaced elements of each row are its rightmost `disp[r]`
    /// left-aligned entries; the rotation places the plan's base row on
    /// physical row `p - 1`, so no displacement ever wraps.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::PlanMismatch`] if the plan's length or
    /// displacement counts don't fit the tile, or the plan's `k` is
    /// exceeded by any row's scheduled work.
    pub fn from_plan(aligned: &AlignedTile, plan: &DisplacementPlan) -> Result<Self, CoreError> {
        let p = aligned.p();
        if plan.disp.len() != p {
            return Err(CoreError::PlanMismatch {
                detail: format!("plan for {} rows applied to {p}-row tile", plan.disp.len()),
            });
        }
        for r in 0..p {
            if plan.disp[r] > aligned.row(r).len() {
                return Err(CoreError::PlanMismatch {
                    detail: format!(
                        "row {r} displaces {} of {} elements",
                        plan.disp[r],
                        aligned.row(r).len()
                    ),
                });
            }
        }
        if plan.disp[plan.base_row] != 0 {
            return Err(CoreError::PlanMismatch {
                detail: format!("base row {} displaces work", plan.base_row),
            });
        }
        let cycles = plan.k.max(1);
        let rotation = (p - 1 - plan.base_row % p) % p;
        let phys = |logical: usize| (logical + rotation) % p;

        // Work list per physical MAC row: local (kept) elements first, then
        // the elements received from the logical row above.
        let mut slots: Vec<Vec<Option<Slot>>> = vec![vec![None; cycles]; p];
        for r in 0..p {
            let row = aligned.row(r);
            let kept = row.len() - plan.disp[r];
            if kept > cycles {
                return Err(CoreError::PlanMismatch {
                    detail: format!("row {r} kept work exceeds k = {}", plan.k),
                });
            }
            let mac = phys(r);
            for (cycle, &col) in row[..kept].iter().enumerate() {
                slots[mac][cycle] = Some(Slot {
                    acc_row: mac,
                    col,
                    displaced: false,
                });
            }
        }
        for r in 0..p {
            let row = aligned.row(r);
            let kept = row.len() - plan.disp[r];
            let exec_mac = phys((r + 1) % p);
            let acc_mac = phys(r);
            debug_assert!(
                plan.disp[r] == 0 || exec_mac == acc_mac + 1,
                "rotation places displacement downward"
            );
            // Fill the executing row's free cycles with the displaced tail.
            let mut cycle = 0;
            for &col in &row[kept..] {
                while cycle < cycles && slots[exec_mac][cycle].is_some() {
                    cycle += 1;
                }
                if cycle >= cycles {
                    return Err(CoreError::PlanMismatch {
                        detail: format!(
                            "row {} receives more work than k = {}",
                            (r + 1) % p,
                            plan.k
                        ),
                    });
                }
                slots[exec_mac][cycle] = Some(Slot {
                    acc_row: acc_mac,
                    col,
                    displaced: true,
                });
                cycle += 1;
            }
        }
        Ok(DisplacedTile {
            p,
            q: aligned.q(),
            cycles,
            rotation,
            slots,
        })
    }

    /// Schedules a tile with no displacement at all (compaction only) —
    /// the *Cnvlutin-like* and *Eureka-no-SUDS* configurations.
    ///
    /// # Errors
    ///
    /// Propagates [`CoreError::PlanMismatch`] (cannot occur for the
    /// identity plan).
    pub fn undisplaced(aligned: &AlignedTile) -> Result<Self, CoreError> {
        let plan = DisplacementPlan::identity(&aligned.row_lens());
        Self::from_plan(aligned, &plan)
    }

    /// Number of MAC rows.
    #[must_use]
    pub fn p(&self) -> usize {
        self.p
    }

    /// Source window width (multiplexer fan-in).
    #[must_use]
    pub fn q(&self) -> usize {
        self.q
    }

    /// Cycles this tile occupies a sub-array stage.
    #[must_use]
    pub fn cycles(&self) -> usize {
        self.cycles
    }

    /// Rotation applied so the base row sits on the last MAC row.
    #[must_use]
    pub fn rotation(&self) -> usize {
        self.rotation
    }

    /// The scheduled work at `(mac_row, cycle)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[must_use]
    pub fn slot(&self, mac_row: usize, cycle: usize) -> Option<Slot> {
        self.slots[mac_row][cycle]
    }

    /// Total scheduled multiplications.
    #[must_use]
    pub fn work(&self) -> usize {
        self.slots
            .iter()
            .flat_map(|row| row.iter())
            .filter(|s| s.is_some())
            .count()
    }

    /// Number of displaced multiplications.
    #[must_use]
    pub fn displaced_work(&self) -> usize {
        self.slots
            .iter()
            .flat_map(|row| row.iter())
            .filter(|s| {
                matches!(
                    s,
                    Some(Slot {
                        displaced: true,
                        ..
                    })
                )
            })
            .count()
    }

    /// MAC utilization: busy slots / (p × cycles).
    #[must_use]
    pub fn utilization(&self) -> f64 {
        self.work() as f64 / (self.p * self.cycles) as f64
    }

    /// Metadata bits per value: the compaction column index plus the
    /// displaced flag (paper §3.1: "one bit per value, in addition to
    /// Eureka's 4-bit metadata").
    #[must_use]
    pub fn metadata_bits_per_value(&self) -> u32 {
        (usize::BITS - (self.q - 1).leading_zeros()) + 1
    }

    /// Per-tile metadata bits: the rotation field (2 bits for p = 4,
    /// generally `ceil(log2 p)`).
    #[must_use]
    pub fn rotation_bits(&self) -> u32 {
        usize::BITS - (self.p - 1).leading_zeros()
    }

    /// Checks the hardware invariants of the SUDS datapath:
    ///
    /// * a displaced slot executes exactly one row below its accumulator
    ///   row (single-step, uni-directional);
    /// * the last MAC row never displaces (no wrap-around wire), i.e. no
    ///   displaced slot executes on row 0;
    /// * every non-displaced slot accumulates locally.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidSchedule`] describing the first
    /// violation found.
    pub fn validate(&self) -> Result<(), CoreError> {
        for (mac_row, row) in self.slots.iter().enumerate() {
            for (cycle, slot) in row.iter().enumerate() {
                let Some(s) = slot else { continue };
                if usize::from(s.col) >= self.q {
                    return Err(CoreError::InvalidSchedule {
                        detail: format!("slot ({mac_row},{cycle}) column {} out of range", s.col),
                    });
                }
                if s.displaced {
                    if mac_row == 0 {
                        return Err(CoreError::InvalidSchedule {
                            detail: format!(
                                "slot (0,{cycle}) displaced onto row 0 implies wrap-around"
                            ),
                        });
                    }
                    if s.acc_row != mac_row - 1 {
                        return Err(CoreError::InvalidSchedule {
                            detail: format!(
                                "slot ({mac_row},{cycle}) accumulates at {}, not the row above",
                                s.acc_row
                            ),
                        });
                    }
                } else if s.acc_row != mac_row {
                    return Err(CoreError::InvalidSchedule {
                        detail: format!(
                            "local slot ({mac_row},{cycle}) accumulates at {}",
                            s.acc_row
                        ),
                    });
                }
            }
        }
        Ok(())
    }

    /// Maps a physical MAC row back to the logical source-tile row.
    #[must_use]
    pub fn logical_row(&self, mac_row: usize) -> usize {
        (mac_row + self.p - self.rotation) % self.p
    }
}

#[cfg(test)]
mod tests {
    use super::super::optimal::optimize;
    use super::*;
    use eureka_sparse::TilePattern;

    fn schedule(rows: &[u64], q: usize) -> DisplacedTile {
        let tile = TilePattern::from_rows(rows, q).unwrap();
        let aligned = AlignedTile::from_tile(&tile);
        let plan = optimize(&tile.row_lens());
        DisplacedTile::from_plan(&aligned, &plan).unwrap()
    }

    #[test]
    fn worst_case_halves_and_validates() {
        let d = schedule(&[0b1111, 0, 0, 0], 4);
        assert_eq!(d.cycles(), 2);
        assert_eq!(d.work(), 4);
        assert_eq!(d.displaced_work(), 2);
        d.validate().unwrap();
    }

    #[test]
    fn rotation_places_base_on_last_row() {
        let tile = TilePattern::from_rows(&[0b1111, 0b1, 0, 0b11], 4).unwrap();
        let plan = optimize(&tile.row_lens());
        let d = DisplacedTile::from_plan(&AlignedTile::from_tile(&tile), &plan).unwrap();
        assert_eq!((plan.base_row + d.rotation()) % 4, 3);
        d.validate().unwrap();
        // Logical mapping is consistent.
        for mac in 0..4 {
            assert_eq!((d.logical_row(mac) + d.rotation()) % 4, mac);
        }
    }

    #[test]
    fn undisplaced_schedule_matches_compaction_cycles() {
        let tile = TilePattern::from_rows(&[0b1111_0000, 0b1, 0, 0b11], 8).unwrap();
        let aligned = AlignedTile::from_tile(&tile);
        let d = DisplacedTile::undisplaced(&aligned).unwrap();
        assert_eq!(d.cycles(), 4);
        assert_eq!(d.displaced_work(), 0);
        d.validate().unwrap();
    }

    #[test]
    fn work_is_conserved() {
        for rows in [
            [0b1111u64, 0b0110, 0b1000, 0b0001],
            [0b1010, 0, 0b1111, 0b0010],
            [0, 0, 0, 0],
        ] {
            let tile = TilePattern::from_rows(&rows, 4).unwrap();
            let d = schedule(&rows, 4);
            assert_eq!(d.work(), tile.nnz());
            d.validate().unwrap();
        }
    }

    #[test]
    fn metadata_widths() {
        let d = schedule(&[0b1, 0, 0, 0], 4);
        assert_eq!(d.metadata_bits_per_value(), 3); // 2-bit column + displaced bit
        assert_eq!(d.rotation_bits(), 2);
        let tile16 = TilePattern::from_rows(&[0b1, 0, 0, 0], 16).unwrap();
        let plan = optimize(&tile16.row_lens());
        let d16 = DisplacedTile::from_plan(&AlignedTile::from_tile(&tile16), &plan).unwrap();
        assert_eq!(d16.metadata_bits_per_value(), 5); // 4-bit column + displaced bit
    }

    #[test]
    fn plan_mismatch_detected() {
        let tile = TilePattern::from_rows(&[0b1, 0, 0, 0], 4).unwrap();
        let aligned = AlignedTile::from_tile(&tile);
        let bad = DisplacementPlan {
            k: 1,
            base_row: 0,
            disp: vec![0, 0, 0], // wrong length
        };
        assert!(matches!(
            DisplacedTile::from_plan(&aligned, &bad),
            Err(CoreError::PlanMismatch { .. })
        ));
        let bad = DisplacementPlan {
            k: 1,
            base_row: 1,
            disp: vec![2, 0, 0, 0], // row 0 has only 1 element
        };
        assert!(DisplacedTile::from_plan(&aligned, &bad).is_err());
    }

    #[test]
    fn empty_tile_occupies_one_cycle() {
        let d = schedule(&[0, 0, 0, 0], 4);
        assert_eq!(d.cycles(), 1);
        assert_eq!(d.work(), 0);
        assert_eq!(d.utilization(), 0.0);
    }

    use super::super::decision::DisplacementPlan;
}
