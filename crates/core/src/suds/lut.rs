//! Memoized optimal-K lookup for small tiles.
//!
//! Paper §3.2: "although the cases for small 4×4, 4×8 matrices can be
//! enumerated exhaustively, especially if offline, the above algorithm is
//! scalable to larger sizes." This module does the enumeration: for
//! `p = 4` tiles with rows up to 16 non-zeros (compaction factor ≤ 4), the
//! optimal critical path depends only on the row-length 4-tuple, so a
//! 17⁴-entry table answers in O(1). The table is built lazily on first
//! use from the exact optimizer and shared process-wide.

use super::optimal::optimize;
use std::sync::OnceLock;

/// Maximum row length covered by the table (compaction factor 4 on a
/// 4-wide sub-array).
pub const MAX_LEN: usize = 16;
const DIM: usize = MAX_LEN + 1;

fn table() -> &'static [u8] {
    static TABLE: OnceLock<Vec<u8>> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = vec![0u8; DIM * DIM * DIM * DIM];
        for a in 0..DIM {
            for b in 0..DIM {
                for c in 0..DIM {
                    for d in 0..DIM {
                        let k = optimize(&[a, b, c, d]).k;
                        debug_assert!(k <= MAX_LEN);
                        t[((a * DIM + b) * DIM + c) * DIM + d] = k as u8;
                    }
                }
            }
        }
        t
    })
}

/// Optimal critical path for a 4-row tile, via the lookup table.
///
/// Falls back to the polynomial algorithm when any row exceeds
/// [`MAX_LEN`] or the tile is not 4 rows tall.
///
/// # Examples
///
/// ```
/// use eureka_core::suds::lut::optimal_k;
/// assert_eq!(optimal_k(&[4, 1, 0, 1]), 2); // Figure 7's optimum
/// ```
#[must_use]
pub fn optimal_k(lens: &[usize]) -> usize {
    if lens.len() == 4 && lens.iter().all(|&l| l <= MAX_LEN) {
        table()[((lens[0] * DIM + lens[1]) * DIM + lens[2]) * DIM + lens[3]] as usize
    } else {
        optimize(lens).k
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_optimizer_exhaustively_small() {
        for a in 0..=6usize {
            for b in 0..=6usize {
                for c in 0..=6usize {
                    for d in 0..=6usize {
                        assert_eq!(
                            optimal_k(&[a, b, c, d]),
                            optimize(&[a, b, c, d]).k,
                            "lens [{a},{b},{c},{d}]"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn matches_optimizer_on_extremes() {
        for lens in [
            [16usize, 16, 16, 16],
            [16, 0, 0, 0],
            [0, 0, 0, 16],
            [16, 0, 16, 0],
        ] {
            assert_eq!(optimal_k(&lens), optimize(&lens).k, "{lens:?}");
        }
    }

    #[test]
    fn falls_back_outside_table_domain() {
        // Too-long rows and non-4-row tiles use the algorithm directly.
        assert_eq!(optimal_k(&[17, 0, 0, 0]), optimize(&[17, 0, 0, 0]).k);
        assert_eq!(optimal_k(&[3, 3, 3]), optimize(&[3, 3, 3]).k);
        assert_eq!(optimal_k(&[2; 8]), optimize(&[2; 8]).k);
    }
}
