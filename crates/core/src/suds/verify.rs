//! Brute-force reference for the SUDS optimum, plus the structured plan
//! checker the differential oracle reports with.
//!
//! [`brute_force_optimum`] enumerates every single-step downward
//! displacement vector (with wraparound) and reports the best achievable
//! longest row. Exponential in `p` — usable only for small tiles — but
//! exact, so the test suite uses it to certify that Algorithm 1 + binary
//! search is optimal (the paper's correctness claim in §3.2).
//!
//! [`check_plan`] validates a concrete [`DisplacementPlan`] against its row
//! lengths and returns *every* violation it finds — which row overflowed
//! `K`, by how much, which row displaced more than it owns — rather than a
//! bare pass/fail, so oracle failure messages can say exactly what broke.

use super::decision::DisplacementPlan;
use core::fmt;

/// One way a [`DisplacementPlan`] can violate the SUDS constraints for a
/// given row-length vector (paper Definition 1).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlanViolation {
    /// The plan's displacement vector is sized for a different tile.
    SizeMismatch {
        /// Rows the plan covers.
        plan_rows: usize,
        /// Rows the tile has.
        tile_rows: usize,
    },
    /// A row displaces more elements than it owns.
    OverDisplaced {
        /// The offending row.
        row: usize,
        /// Elements the row tried to displace.
        disp: usize,
        /// Elements the row actually holds.
        len: usize,
    },
    /// The base row — by definition a row that displaces nothing — sends
    /// work downward.
    BaseRowDisplaces {
        /// The plan's base row.
        base_row: usize,
        /// Elements it displaces.
        disp: usize,
    },
    /// The base-row index is outside the tile.
    BaseRowOutOfRange {
        /// The plan's base row.
        base_row: usize,
        /// Rows the tile has.
        tile_rows: usize,
    },
    /// A row's post-displacement length exceeds the plan's claimed bound
    /// `K` (the row would overflow its cycle budget in hardware).
    RowOverflowsK {
        /// The overflowing row.
        row: usize,
        /// Its length after displacement.
        resulting_len: usize,
        /// The plan's claimed bound.
        k: usize,
    },
}

impl fmt::Display for PlanViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanViolation::SizeMismatch {
                plan_rows,
                tile_rows,
            } => write!(f, "plan covers {plan_rows} rows but tile has {tile_rows}"),
            PlanViolation::OverDisplaced { row, disp, len } => {
                write!(f, "row {row} displaces {disp} of only {len} elements")
            }
            PlanViolation::BaseRowDisplaces { base_row, disp } => {
                write!(f, "base row {base_row} displaces {disp} elements")
            }
            PlanViolation::BaseRowOutOfRange {
                base_row,
                tile_rows,
            } => write!(f, "base row {base_row} outside {tile_rows}-row tile"),
            PlanViolation::RowOverflowsK {
                row,
                resulting_len,
                k,
            } => write!(
                f,
                "row {row} ends at {resulting_len} elements, over the K = {k} bound"
            ),
        }
    }
}

/// Checks a displacement plan against the row lengths it claims to
/// balance, reporting **all** violations (empty = valid).
///
/// # Examples
///
/// ```
/// use eureka_core::suds::{self, verify::check_plan};
///
/// let lens = [4usize, 1, 0, 1];
/// let plan = suds::optimize(&lens);
/// assert!(check_plan(&lens, &plan).is_empty());
///
/// let mut bad = plan.clone();
/// bad.disp[0] += 2; // off-by-two: row 0 now sheds 4 of its 4 elements
/// let violations = check_plan(&lens, &bad);
/// assert!(!violations.is_empty());
/// ```
#[must_use]
pub fn check_plan(lens: &[usize], plan: &DisplacementPlan) -> Vec<PlanViolation> {
    let p = lens.len();
    let mut out = Vec::new();
    if plan.disp.len() != p {
        out.push(PlanViolation::SizeMismatch {
            plan_rows: plan.disp.len(),
            tile_rows: p,
        });
        return out; // nothing below is well-defined
    }
    if p == 0 {
        return out;
    }
    if plan.base_row >= p {
        out.push(PlanViolation::BaseRowOutOfRange {
            base_row: plan.base_row,
            tile_rows: p,
        });
    } else if plan.disp[plan.base_row] != 0 {
        out.push(PlanViolation::BaseRowDisplaces {
            base_row: plan.base_row,
            disp: plan.disp[plan.base_row],
        });
    }
    for (row, (&len, &disp)) in lens.iter().zip(&plan.disp).enumerate() {
        if disp > len {
            out.push(PlanViolation::OverDisplaced { row, disp, len });
        }
    }
    // Resulting lengths are only meaningful when no row over-displaces
    // (otherwise the subtraction underflows).
    if out
        .iter()
        .all(|v| !matches!(v, PlanViolation::OverDisplaced { .. }))
    {
        for (row, &len) in lens.iter().enumerate() {
            let resulting_len = len - plan.disp[row] + plan.disp[(row + p - 1) % p];
            if resulting_len > plan.k {
                out.push(PlanViolation::RowOverflowsK {
                    row,
                    resulting_len,
                    k: plan.k,
                });
            }
        }
    }
    out
}

/// Renders a violation list as one human-readable line per violation, for
/// oracle failure messages.
#[must_use]
pub fn explain(violations: &[PlanViolation]) -> String {
    violations
        .iter()
        .map(|v| format!("  - {v}"))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Exhaustively computes the minimum achievable longest row for the given
/// row lengths under single-step downward displacement.
///
/// Cost is `Π (len[i] + 1)`; intended for `p <= 6`, lengths `<= 16`.
///
/// # Examples
///
/// ```
/// use eureka_core::suds::verify::brute_force_optimum;
/// assert_eq!(brute_force_optimum(&[4, 1, 0, 1]), 2);
/// ```
#[must_use]
pub fn brute_force_optimum(lens: &[usize]) -> usize {
    let p = lens.len();
    if p == 0 {
        return 0;
    }
    if p == 1 {
        return lens[0];
    }
    let mut disp = vec![0usize; p];
    let mut best = lens.iter().copied().max().unwrap_or(0);
    loop {
        let worst = (0..p)
            .map(|i| lens[i] - disp[i] + disp[(i + p - 1) % p])
            .max()
            .unwrap_or(0);
        best = best.min(worst);
        // Odometer increment over 0..=len[i] per digit.
        let mut i = 0;
        loop {
            if i == p {
                return best;
            }
            if disp[i] < lens[i] {
                disp[i] += 1;
                break;
            }
            disp[i] = 0;
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::optimal::optimize;
    use super::*;

    #[test]
    fn matches_known_cases() {
        assert_eq!(brute_force_optimum(&[4, 0, 0, 0]), 2);
        assert_eq!(brute_force_optimum(&[0, 4, 4, 0]), 3);
        assert_eq!(brute_force_optimum(&[2, 2, 2, 2]), 2);
        assert_eq!(brute_force_optimum(&[]), 0);
        assert_eq!(brute_force_optimum(&[5]), 5);
    }

    #[test]
    fn algorithm1_is_optimal_exhaustive_4x4() {
        // Every 4-row tile with rows up to 4 non-zeros (the 4x4 compaction
        // case can be enumerated exhaustively, §3.2).
        for a in 0..=4usize {
            for b in 0..=4usize {
                for c in 0..=4usize {
                    for d in 0..=4usize {
                        let lens = [a, b, c, d];
                        let alg = optimize(&lens).k;
                        let brute = brute_force_optimum(&lens);
                        assert_eq!(alg, brute, "mismatch on {lens:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn algorithm1_is_optimal_sampled_4x16() {
        // Factor-4 compaction: rows up to 16; sample deterministically.
        let mut x = 12345u64;
        for _ in 0..400 {
            let mut lens = [0usize; 4];
            for l in &mut lens {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                *l = (x >> 59) as usize; // 0..=31 -> clamp
                *l = (*l).min(16);
            }
            let alg = optimize(&lens).k;
            let brute = brute_force_optimum(&lens);
            assert_eq!(alg, brute, "mismatch on {lens:?}");
        }
    }

    #[test]
    fn check_plan_accepts_every_optimal_plan() {
        for a in 0..=4usize {
            for b in 0..=4usize {
                for c in 0..=4usize {
                    for d in 0..=4usize {
                        let lens = [a, b, c, d];
                        let plan = optimize(&lens);
                        let v = check_plan(&lens, &plan);
                        assert!(v.is_empty(), "{lens:?}: {}", explain(&v));
                    }
                }
            }
        }
    }

    #[test]
    fn check_plan_reports_each_violation_kind() {
        let lens = [4usize, 1, 0, 1];
        let good = optimize(&lens);

        let mut over = good.clone();
        over.disp[2] = 1; // row 2 owns nothing
        assert!(check_plan(&lens, &over)
            .iter()
            .any(|v| matches!(v, PlanViolation::OverDisplaced { row: 2, .. })));

        let mut base = good.clone();
        base.disp[base.base_row] = 1;
        // Row 2 is the optimal base here (it owns 0 elements), so force a
        // displace from a row that owns work to isolate the base check.
        if lens[base.base_row] == 0 {
            base.base_row = 0;
            base.disp = vec![1, 0, 0, 0];
        }
        assert!(check_plan(&lens, &base)
            .iter()
            .any(|v| matches!(v, PlanViolation::BaseRowDisplaces { .. })));

        let mut short_k = good.clone();
        short_k.k = 1; // total 6 elements cannot fit 4 rows x 1
        let v = check_plan(&lens, &short_k);
        assert!(
            v.iter()
                .any(|v| matches!(v, PlanViolation::RowOverflowsK { .. })),
            "{}",
            explain(&v)
        );

        let wrong_size = DisplacementPlan {
            k: 2,
            base_row: 0,
            disp: vec![0; 3],
        };
        assert_eq!(
            check_plan(&lens, &wrong_size),
            vec![PlanViolation::SizeMismatch {
                plan_rows: 3,
                tile_rows: 4
            }]
        );

        let oob_base = DisplacementPlan {
            k: 4,
            base_row: 9,
            disp: vec![0; 4],
        };
        assert!(check_plan(&lens, &oob_base)
            .iter()
            .any(|v| matches!(v, PlanViolation::BaseRowOutOfRange { .. })));
    }

    #[test]
    fn violations_render_row_and_bound() {
        let lens = [3usize, 3, 3, 3];
        let mut plan = optimize(&lens);
        plan.k = 2;
        let v = check_plan(&lens, &plan);
        let text = explain(&v);
        assert!(text.contains("over the K = 2 bound"), "{text}");
        // Every violation names the offending row.
        assert!(v
            .iter()
            .all(|v| matches!(v, PlanViolation::RowOverflowsK { .. })));
    }

    #[test]
    fn algorithm1_is_optimal_p8() {
        // Larger sub-arrays (Figure 14's 8x8) with small rows.
        let mut x = 777u64;
        for _ in 0..60 {
            let mut lens = [0usize; 8];
            for l in &mut lens {
                x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
                *l = ((x >> 61) & 0x3) as usize + usize::from(x & 1 == 0);
            }
            let alg = optimize(&lens).k;
            let brute = brute_force_optimum(&lens);
            assert_eq!(alg, brute, "mismatch on {lens:?}");
        }
    }
}
