//! Brute-force reference for the SUDS optimum.
//!
//! Enumerates every single-step downward displacement vector (with
//! wraparound) and reports the best achievable longest row. Exponential in
//! `p` — usable only for small tiles — but exact, so the test suite uses it
//! to certify that Algorithm 1 + binary search is optimal (the paper's
//! correctness claim in §3.2).

/// Exhaustively computes the minimum achievable longest row for the given
/// row lengths under single-step downward displacement.
///
/// Cost is `Π (len[i] + 1)`; intended for `p <= 6`, lengths `<= 16`.
///
/// # Examples
///
/// ```
/// use eureka_core::suds::verify::brute_force_optimum;
/// assert_eq!(brute_force_optimum(&[4, 1, 0, 1]), 2);
/// ```
#[must_use]
pub fn brute_force_optimum(lens: &[usize]) -> usize {
    let p = lens.len();
    if p == 0 {
        return 0;
    }
    if p == 1 {
        return lens[0];
    }
    let mut disp = vec![0usize; p];
    let mut best = lens.iter().copied().max().unwrap_or(0);
    loop {
        let worst = (0..p)
            .map(|i| lens[i] - disp[i] + disp[(i + p - 1) % p])
            .max()
            .unwrap_or(0);
        best = best.min(worst);
        // Odometer increment over 0..=len[i] per digit.
        let mut i = 0;
        loop {
            if i == p {
                return best;
            }
            if disp[i] < lens[i] {
                disp[i] += 1;
                break;
            }
            disp[i] = 0;
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::optimal::optimize;
    use super::*;

    #[test]
    fn matches_known_cases() {
        assert_eq!(brute_force_optimum(&[4, 0, 0, 0]), 2);
        assert_eq!(brute_force_optimum(&[0, 4, 4, 0]), 3);
        assert_eq!(brute_force_optimum(&[2, 2, 2, 2]), 2);
        assert_eq!(brute_force_optimum(&[]), 0);
        assert_eq!(brute_force_optimum(&[5]), 5);
    }

    #[test]
    fn algorithm1_is_optimal_exhaustive_4x4() {
        // Every 4-row tile with rows up to 4 non-zeros (the 4x4 compaction
        // case can be enumerated exhaustively, §3.2).
        for a in 0..=4usize {
            for b in 0..=4usize {
                for c in 0..=4usize {
                    for d in 0..=4usize {
                        let lens = [a, b, c, d];
                        let alg = optimize(&lens).k;
                        let brute = brute_force_optimum(&lens);
                        assert_eq!(alg, brute, "mismatch on {lens:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn algorithm1_is_optimal_sampled_4x16() {
        // Factor-4 compaction: rows up to 16; sample deterministically.
        let mut x = 12345u64;
        for _ in 0..400 {
            let mut lens = [0usize; 4];
            for l in &mut lens {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                *l = (x >> 59) as usize; // 0..=31 -> clamp
                *l = (*l).min(16);
            }
            let alg = optimize(&lens).k;
            let brute = brute_force_optimum(&lens);
            assert_eq!(alg, brute, "mismatch on {lens:?}");
        }
    }

    #[test]
    fn algorithm1_is_optimal_p8() {
        // Larger sub-arrays (Figure 14's 8x8) with small rows.
        let mut x = 777u64;
        for _ in 0..60 {
            let mut lens = [0usize; 8];
            for l in &mut lens {
                x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
                *l = ((x >> 61) & 0x3) as usize + usize::from(x & 1 == 0);
            }
            let alg = optimize(&lens).k;
            let brute = brute_force_optimum(&lens);
            assert_eq!(alg, brute, "mismatch on {lens:?}");
        }
    }
}
