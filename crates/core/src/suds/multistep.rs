//! Multi-step displacement: the design-space ablation behind "single-step".
//!
//! SUDS restricts displacement to the adjacent row below. A natural
//! question — answered by the `ablations` experiment in `eureka-bench` —
//! is how much more a *reach-R* displacement (execute anywhere in rows
//! `i..=i+R`, accumulate at row `i`) would buy, at the cost of R return
//! wires and an (R+2)-input adder per MAC. This module computes the
//! optimal critical path under reach-R displacement.
//!
//! With every element of row `i` assignable to any of the rows
//! `i..=i+R (mod p)` and per-row capacity `K`, feasibility is a cyclic
//! interval-assignment problem; by Hall's theorem it suffices that every
//! cyclic window of rows can absorb the elements *forced* into it (the
//! rows whose whole reach interval lies inside the window).

/// Whether row lengths `lens` fit within `k` cycles under reach-`reach`
/// downward displacement (with wrap-around).
///
/// # Panics
///
/// Panics if `reach >= lens.len()` for a non-empty input (a reach of
/// `p - 1` already allows any row to feed every other row).
#[must_use]
pub fn feasible(lens: &[usize], k: usize, reach: usize) -> bool {
    let p = lens.len();
    if p == 0 {
        return false;
    }
    if p == 1 {
        return lens[0] <= k;
    }
    assert!(reach < p, "reach {reach} must be below the row count {p}");
    let total: usize = lens.iter().sum();
    if total > k * p {
        return false;
    }
    let interval = reach + 1; // rows an element may land on
                              // Hall's condition over cyclic windows of length `interval..=p-1`
                              // (the full circle is the `total` check above): the supply forced
                              // entirely inside a window must not exceed its capacity.
    for start in 0..p {
        for len in interval..p {
            // Window of rows [start, start+len). Row i's interval is
            // [i, i+interval); it is forced inside iff i >= start and
            // i + interval <= start + len (cyclically: i in
            // [start, start+len-interval]).
            let forced: usize = (0..=(len - interval))
                .map(|off| lens[(start + off) % p])
                .sum();
            if forced > k * len {
                return false;
            }
        }
    }
    true
}

/// The optimal critical path under reach-`reach` displacement.
///
/// `reach = 1` is SUDS; `reach = p - 1` reaches the perfect-balance bound
/// `ceil(nnz / p)`.
///
/// # Panics
///
/// Panics if `reach >= lens.len()` for a non-empty input.
#[must_use]
pub fn optimal_k(lens: &[usize], reach: usize) -> usize {
    let p = lens.len();
    assert!(
        p == 0 || p == 1 || reach < p,
        "reach {reach} must be below the row count {p}"
    );
    let upper = lens.iter().copied().max().unwrap_or(0);
    if p == 0 || upper == 0 {
        return 0;
    }
    let total: usize = lens.iter().sum();
    let mut lo = total.div_ceil(p);
    let mut hi = upper;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if feasible(lens, mid, reach) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suds::optimize;

    /// Brute-force reference: enumerate all distributions of each row's
    /// elements over its reach interval.
    fn brute(lens: &[usize], reach: usize) -> usize {
        let p = lens.len();
        fn go(lens: &[usize], reach: usize, row: usize, fill: &mut Vec<usize>, best: &mut usize) {
            let p = lens.len();
            if row == p {
                *best = (*best).min(fill.iter().copied().max().unwrap_or(0));
                return;
            }
            // Distribute lens[row] over rows row..=row+reach.
            fn parts(
                remaining: usize,
                slot: usize,
                reach: usize,
                row: usize,
                lens: &[usize],
                fill: &mut Vec<usize>,
                best: &mut usize,
            ) {
                let p = lens.len();
                if slot == reach {
                    fill[(row + slot) % p] += remaining;
                    go(lens, reach, row + 1, fill, best);
                    fill[(row + slot) % p] -= remaining;
                    return;
                }
                for take in 0..=remaining {
                    fill[(row + slot) % p] += take;
                    parts(remaining - take, slot + 1, reach, row, lens, fill, best);
                    fill[(row + slot) % p] -= take;
                }
            }
            parts(lens[row], 0, reach, row, lens, fill, best);
        }
        let mut fill = vec![0usize; p];
        let mut best = usize::MAX;
        go(lens, reach, 0, &mut fill, &mut best);
        best
    }

    #[test]
    fn reach1_matches_suds_optimal() {
        // Two independent implementations of the same problem.
        for a in 0..=5usize {
            for b in 0..=5usize {
                for c in 0..=5usize {
                    for d in 0..=5usize {
                        let lens = [a, b, c, d];
                        assert_eq!(optimal_k(&lens, 1), optimize(&lens).k, "lens {lens:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn matches_brute_force_reach2() {
        let cases = [
            [4usize, 1, 0, 1],
            [6, 0, 0, 0],
            [3, 3, 0, 0],
            [5, 0, 4, 0],
            [2, 2, 2, 2],
            [4, 4, 1, 1],
        ];
        for lens in cases {
            assert_eq!(optimal_k(&lens, 2), brute(&lens, 2), "{lens:?}");
        }
    }

    #[test]
    fn full_reach_hits_perfect_balance() {
        for lens in [[7usize, 0, 0, 0], [4, 3, 2, 1], [9, 9, 0, 0]] {
            let total: usize = lens.iter().sum();
            assert_eq!(optimal_k(&lens, 3), total.div_ceil(4), "{lens:?}");
        }
    }

    #[test]
    fn monotone_in_reach() {
        let lens = [8usize, 1, 0, 2];
        let ks: Vec<usize> = (1..4).map(|r| optimal_k(&lens, r)).collect();
        assert!(ks.windows(2).all(|w| w[1] <= w[0]), "{ks:?}");
    }

    #[test]
    fn zero_and_single_rows() {
        assert_eq!(optimal_k(&[], 0), 0);
        assert_eq!(optimal_k(&[0, 0], 1), 0);
        assert_eq!(optimal_k(&[5], 0), 5);
    }

    #[test]
    #[should_panic(expected = "reach")]
    fn reach_validation() {
        let _ = optimal_k(&[1, 1], 2);
    }
}
