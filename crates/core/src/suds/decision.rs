//! Algorithm 1: the SUDS decision problem.
//!
//! *Given a sparse matrix `M` of dimension `p × q` and a number `K`, is
//! there an assignment such that each value of row `i` either stays in the
//! `i`-th row or is displaced to the `(i+1) mod p`-th row and the final
//! matrix's longest row is at most `K`?* (paper Definition 1.)
//!
//! The paper proves any *minimal* satisfying assignment contains a **base
//! row** — a slack row (`len ≤ K`) that displaces nothing. The algorithm
//! therefore tries each slack row as the base: starting there it walks
//! upward, greedily filling each row's slack with elements displaced from
//! the row above. Only a true base row survives the walk.

/// A satisfying (or optimal) work assignment over row lengths.
///
/// `disp[i]` is the number of elements row `i` sends down to row
/// `(i+1) mod p`; the base row sends none. The resulting length of row `i`
/// is `len[i] - disp[i] + disp[(i-1) mod p]`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DisplacementPlan {
    /// The achieved longest-row bound.
    pub k: usize,
    /// Index of the base row (displaces nothing).
    pub base_row: usize,
    /// Elements each row displaces to the adjacent row below.
    pub disp: Vec<usize>,
}

impl DisplacementPlan {
    /// The identity plan (no displacement) for the given row lengths.
    #[must_use]
    pub fn identity(lens: &[usize]) -> Self {
        DisplacementPlan {
            k: lens.iter().copied().max().unwrap_or(0),
            base_row: lens.len().saturating_sub(1),
            disp: vec![0; lens.len()],
        }
    }

    /// Row lengths after applying this plan to `lens`.
    ///
    /// # Panics
    ///
    /// Panics if `lens.len() != self.disp.len()`.
    #[must_use]
    pub fn resulting_lens(&self, lens: &[usize]) -> Vec<usize> {
        assert_eq!(lens.len(), self.disp.len(), "plan size mismatch");
        let p = lens.len();
        (0..p)
            .map(|i| lens[i] - self.disp[i] + self.disp[(i + p - 1) % p])
            .collect()
    }

    /// Total number of displaced elements.
    #[must_use]
    pub fn displaced_count(&self) -> usize {
        self.disp.iter().sum()
    }

    /// Removes redundant displacements (paper §3.2's *minimal* solutions):
    /// keeping the same base row and bound `k`, each row displaces only
    /// what its inflow forces, computed in flow order from the base.
    ///
    /// # Panics
    ///
    /// Panics if `lens` does not match the plan or the plan was not
    /// feasible for `lens` (a programming error — plans come from
    /// [`feasible`]).
    #[must_use]
    pub fn minimized(&self, lens: &[usize]) -> DisplacementPlan {
        assert_eq!(lens.len(), self.disp.len(), "plan size mismatch");
        let p = lens.len();
        let mut disp = vec![0usize; p];
        // Flow order: base+1 receives disp[base] = 0, then each row sheds
        // only its overflow.
        let mut prev = 0usize; // disp of the row above in flow order
        for step in 1..p {
            let i = (self.base_row + step) % p;
            let need = (lens[i] + prev).saturating_sub(self.k);
            assert!(
                need <= lens[i],
                "minimization requires a feasible source plan"
            );
            disp[i] = need;
            prev = need;
        }
        let out = DisplacementPlan {
            k: self.k,
            base_row: self.base_row,
            disp,
        };
        debug_assert!(out.resulting_lens(lens).iter().all(|&l| l <= self.k));
        out
    }
}

/// Algorithm 1: finds a displacement plan with longest row `<= k`, if one
/// exists.
///
/// Runs in `O(p²)` over the row-length vector. Returns `None` when no
/// single-step downward displacement can satisfy `k`.
///
/// # Examples
///
/// ```
/// use eureka_core::suds::{feasible, DisplacementPlan};
///
/// let plan = feasible(&[4, 1, 0, 1], 2).unwrap();
/// assert_eq!(plan.resulting_lens(&[4, 1, 0, 1]), vec![2, 2, 1, 1]);
/// assert!(feasible(&[4, 1, 0, 1], 1).is_none()); // 6 values on 4 rows
/// ```
#[must_use]
pub fn feasible(lens: &[usize], k: usize) -> Option<DisplacementPlan> {
    let p = lens.len();
    if p == 0 {
        return None;
    }
    if p == 1 {
        // A single row has nowhere to displace.
        return (lens[0] <= k).then(|| DisplacementPlan {
            k,
            base_row: 0,
            disp: vec![0],
        });
    }
    // Quick reject: the total work cannot fit at all.
    let total: usize = lens.iter().sum();
    if total > k * p {
        return None;
    }
    // Try every slack row as the candidate base row.
    'base: for base in (0..p).filter(|&r| lens[r] <= k) {
        let mut disp = vec![0usize; p];
        let mut row = base;
        // Walk upward p-1 times; the base row itself never displaces.
        for _ in 0..p - 1 {
            let above = (row + p - 1) % p;
            // Receiving row's current length: what it kept (its own elements
            // minus what it already displaced; disp[row] was fixed when
            // `row` played "above" in the previous iteration).
            let current = lens[row] - disp[row];
            let slack = k.saturating_sub(current);
            let n_disp = lens[above].min(slack);
            disp[above] = n_disp;
            if lens[above] - n_disp > k {
                // The row above still overflows: `base` is not a true base.
                continue 'base;
            }
            row = above;
        }
        debug_assert_eq!(disp[base], 0);
        let plan = DisplacementPlan {
            k,
            base_row: base,
            disp,
        };
        debug_assert!(plan.resulting_lens(lens).iter().all(|&l| l <= k));
        return Some(plan);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_plan() {
        let lens = [3, 1, 2];
        let plan = DisplacementPlan::identity(&lens);
        assert_eq!(plan.k, 3);
        assert_eq!(plan.resulting_lens(&lens), vec![3, 1, 2]);
        assert_eq!(plan.displaced_count(), 0);
    }

    #[test]
    fn figure7_example() {
        // Figure 7(a): rows [4, 1, 0, 1]; the optimum is K = 2 via two
        // displacements out of row 0... except single-step only reaches the
        // row below, so row 0 sheds 2 into row 1, which sheds 1 into row 2.
        let lens = [4usize, 1, 0, 1];
        let plan = feasible(&lens, 2).expect("K=2 feasible");
        let result = plan.resulting_lens(&lens);
        assert!(result.iter().all(|&l| l <= 2), "{result:?}");
        assert_eq!(plan.disp[plan.base_row], 0);
    }

    #[test]
    fn infeasible_when_total_exceeds_capacity() {
        assert!(feasible(&[3, 3, 3, 3], 2).is_none());
        assert!(feasible(&[4, 4, 4, 4], 3).is_none());
    }

    #[test]
    fn infeasible_when_adjacent_rows_both_full() {
        // Rows 0 and 1 hold 4 each; row 0 can only shed into row 1 which is
        // already at capacity, and row 1's shedding into row 2 can't help
        // row 0 enough for K = 3? Total = 8+2 = 10 <= 12 but the chain
        // constraint binds: row0 needs to shed 1 into row1, row1 must shed 2.
        let lens = [4usize, 4, 1, 1];
        // K=3: row1 sheds 2 -> row2 has 3, row0 sheds 1 -> row1 has 3. Works!
        let plan = feasible(&lens, 3).expect("K=3 feasible via chain");
        assert!(plan.resulting_lens(&lens).iter().all(|&l| l <= 3));
        // K=2: total 10 > 8, infeasible.
        assert!(feasible(&lens, 2).is_none());
    }

    #[test]
    fn wraparound_base_selection() {
        // Row 3 overflows and can only shed into row 0 (wraparound), so the
        // base row must sit elsewhere.
        let lens = [0usize, 4, 2, 4];
        let plan = feasible(&lens, 3).expect("feasible with wraparound");
        let result = plan.resulting_lens(&lens);
        assert!(result.iter().all(|&l| l <= 3), "{result:?}");
        assert!(plan.disp[3] > 0, "row 3 must wrap into row 0: {plan:?}");
        assert_ne!(plan.base_row, 3);
    }

    #[test]
    fn single_row_cannot_displace() {
        assert!(feasible(&[3], 3).is_some());
        assert!(feasible(&[3], 2).is_none());
    }

    #[test]
    fn empty_input() {
        assert!(feasible(&[], 1).is_none());
    }

    #[test]
    fn no_displacement_needed_when_already_balanced() {
        let lens = [2usize, 2, 2, 2];
        let plan = feasible(&lens, 2).expect("already satisfies");
        assert_eq!(plan.displaced_count(), 0);
    }

    #[test]
    fn resulting_lens_conserves_work() {
        let lens = [5usize, 0, 2, 1];
        if let Some(plan) = feasible(&lens, 3) {
            let result = plan.resulting_lens(&lens);
            assert_eq!(result.iter().sum::<usize>(), lens.iter().sum::<usize>());
        } else {
            panic!("K=3 should be feasible for {lens:?}");
        }
    }
}
