//! Single-step uni-directional displacement (SUDS, paper §3.1–3.2).
//!
//! After compaction, a tile's cycle count is its longest row. SUDS lets each
//! filter element's *multiplication* run either in its own MAC row or in the
//! vacant MAC one row below, while the *accumulation* stays in the original
//! row (the product is routed one hop back up into the three-input adder).
//! Work assignment — which elements move — is computed offline:
//!
//! * [`decision`] — Algorithm 1: can all rows fit in `K` cycles?
//! * [`optimize`] — the optimal `K` via binary search over the decision
//!   procedure (`O(p² log q)`);
//! * [`greedy`] — the single-pass greedy strawman of Figure 7(b);
//! * [`DisplacedTile`] — the concrete per-cycle schedule with base-row
//!   rotation and hardware-constraint validation;
//! * [`verify`] — brute-force optimum for small tiles plus the structured
//!   plan checker ([`check_plan`]) the differential oracle reports with.

mod assignment;
pub mod decision;
mod greedy;
pub mod lut;
pub mod multistep;
mod optimal;
pub mod verify;

pub use assignment::{DisplacedTile, Slot};
pub use decision::{feasible, DisplacementPlan};
pub use greedy::greedy;
pub use optimal::optimize;
pub use verify::{check_plan, PlanViolation};

use eureka_sparse::TilePattern;

/// Convenience: optimal SUDS directly from a tile pattern.
///
/// # Examples
///
/// ```
/// use eureka_core::suds;
/// use eureka_sparse::TilePattern;
///
/// let t = TilePattern::from_rows(&[0b1111, 0, 0, 0], 4).unwrap();
/// // Worst case of §3.1: a single full row halves via displacement.
/// assert_eq!(suds::optimize_tile(&t).k, 2);
/// ```
#[must_use]
pub fn optimize_tile(tile: &TilePattern) -> DisplacementPlan {
    optimize(&tile.row_lens())
}

/// Cycle count of an optimally displaced tile (min 1, like an empty tile
/// still occupying its pipeline slot).
#[must_use]
pub fn optimal_cycles(tile: &TilePattern) -> usize {
    optimize_tile(tile).k.max(1)
}
