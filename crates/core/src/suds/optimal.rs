//! Optimal SUDS work assignment (paper §3.2).
//!
//! Binary-searches the smallest `K` for which the decision procedure
//! (Algorithm 1) succeeds, between the information-theoretic lower bound
//! `ceil(nnz / p)` and the no-displacement upper bound (the longest row).
//! Feasibility is monotone in `K` — any plan satisfying `K` also satisfies
//! `K + 1` — so binary search is sound, giving `O(p² log q)` total.

use super::decision::{feasible, DisplacementPlan};

/// Computes the optimal displacement plan for the given compacted row
/// lengths: the minimal achievable longest row, with a minimal (no
/// redundant movement) assignment achieving it.
///
/// # Examples
///
/// ```
/// use eureka_core::suds::optimize;
///
/// // Figure 7: the greedy anti-diagonal approach got stuck at 3 columns;
/// // the optimum is 2.
/// let plan = optimize(&[4, 1, 0, 1]);
/// assert_eq!(plan.k, 2);
/// assert_eq!(plan.resulting_lens(&[4, 1, 0, 1]).iter().max(), Some(&2));
/// ```
#[must_use]
pub fn optimize(lens: &[usize]) -> DisplacementPlan {
    let p = lens.len();
    let upper = lens.iter().copied().max().unwrap_or(0);
    if p == 0 || upper == 0 {
        return DisplacementPlan::identity(lens);
    }
    let total: usize = lens.iter().sum();
    let mut lo = total.div_ceil(p); // cannot beat perfect balance
    let mut hi = upper; // identity plan always satisfies the longest row
    let mut best = DisplacementPlan::identity(lens);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        match feasible(lens, mid) {
            Some(plan) => {
                best = plan;
                hi = mid;
            }
            None => lo = mid + 1,
        }
    }
    if best.k != lo {
        // The final bound was proven feasible only implicitly (lo == hi);
        // materialize the plan at exactly k = lo.
        best = feasible(lens, lo).expect("lo is feasible by search invariant");
    }
    best.minimized(lens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn already_balanced_is_identity() {
        let plan = optimize(&[2, 2, 2, 2]);
        assert_eq!(plan.k, 2);
        assert_eq!(plan.displaced_count(), 0);
    }

    #[test]
    fn worst_case_single_full_row_halves() {
        // §3.1: "SUDS can cut the critical path by 50% even for the worst
        // case" — a single row with four values displaces two below.
        let plan = optimize(&[4, 0, 0, 0]);
        assert_eq!(plan.k, 2);
        assert_eq!(plan.resulting_lens(&[4, 0, 0, 0]), vec![2, 2, 0, 0]);
    }

    #[test]
    fn zero_tile() {
        let plan = optimize(&[0, 0, 0, 0]);
        assert_eq!(plan.k, 0);
        assert_eq!(plan.displaced_count(), 0);
    }

    #[test]
    fn reaches_lower_bound_when_chain_allows() {
        // 8 values on 4 rows: lower bound 2, reachable by shedding down the
        // chain.
        let lens = [4usize, 2, 1, 1];
        let plan = optimize(&lens);
        assert_eq!(plan.k, 2);
        assert!(plan.resulting_lens(&lens).iter().all(|&l| l <= 2));
    }

    #[test]
    fn chain_constraint_can_exceed_lower_bound() {
        // Two adjacent heavy rows can exceed ceil(nnz/p): rows [0, 4, 4, 0]
        // have nnz 8, bound 2, but row 1 can only shed into row 2 which is
        // itself full. K=3: row1 sheds 1 -> row2 has 5? No: row2 also sheds.
        // row1=4 sheds 1 (-> 3), row2 receives 1 (5) sheds 2 -> 3, row3
        // receives 2 -> 2. Feasible at 3. At K=2: row1 must shed 2, row2
        // gets 6 must shed 4 > its own 4? disp limited to own elements (4):
        // row2 = 4-4+2 = 2, row3 = 0+4 = 4 > 2. Infeasible.
        let lens = [0usize, 4, 4, 0];
        let plan = optimize(&lens);
        assert_eq!(plan.k, 3);
    }

    #[test]
    fn minimality_no_redundant_moves() {
        // All rows already at k; nothing should move.
        let lens = [1usize, 1, 1, 1];
        let plan = optimize(&lens);
        assert_eq!(plan.k, 1);
        assert_eq!(plan.displaced_count(), 0, "{plan:?}");
    }

    #[test]
    fn displacement_count_bound() {
        // The proof observation: at most p-1 rows displace (the base row
        // does not), so disp has at most p-1 non-zero entries.
        let lens = [7usize, 5, 3, 1];
        let plan = optimize(&lens);
        let nonzero = plan.disp.iter().filter(|&&d| d > 0).count();
        assert!(nonzero < lens.len());
        assert_eq!(plan.disp[plan.base_row], 0);
    }

    #[test]
    fn large_p_scales() {
        let lens: Vec<usize> = (0..64).map(|i| (i * 7) % 13).collect();
        let plan = optimize(&lens);
        let result = plan.resulting_lens(&lens);
        assert!(result.iter().all(|&l| l <= plan.k));
        let total: usize = lens.iter().sum();
        assert!(plan.k >= total.div_ceil(lens.len()));
    }
}
