//! The greedy SUDS strawman (paper §3.2, Figure 7(b)).
//!
//! A single top-to-bottom pass: each row may push elements into vacant
//! slots of the row directly below, judged only on the pair's current
//! lengths — no look-ahead, no wraparound, no base-row search. As the paper
//! shows, this misses the optimum (Figure 7(b) ends at 3 columns where the
//! optimum is 2), which is why the evaluation isolates *Greedy SUDS* from
//! *Optimal SUDS* (Figure 12).

use super::decision::DisplacementPlan;

/// Runs the greedy single-pass displacement on compacted row lengths.
///
/// Each row `i` (top to bottom) displaces `floor((len_i - len_below) / 2)`
/// of its own elements into row `i + 1` when it is longer — pairwise
/// balancing with the neighbour. Elements received from above are never
/// re-displaced (single-step).
///
/// # Examples
///
/// ```
/// use eureka_core::suds::{greedy, optimize};
///
/// let lens = [4usize, 1, 0, 1];
/// let g = greedy(&lens);
/// let o = optimize(&lens);
/// assert!(g.k >= o.k); // greedy never beats optimal
/// assert_eq!(g.k, 3);  // Figure 7(b)
/// assert_eq!(o.k, 2);  // Figure 7(c)
/// ```
#[must_use]
pub fn greedy(lens: &[usize]) -> DisplacementPlan {
    let p = lens.len();
    if p <= 1 {
        return DisplacementPlan::identity(lens);
    }
    let mut disp = vec![0usize; p];
    // received[i]: elements pushed into row i from above (not re-movable).
    let mut received = vec![0usize; p];
    for i in 0..p - 1 {
        let cur = lens[i] - disp[i] + received[i];
        let below = lens[i + 1] + received[i + 1]; // its own displacement not yet decided
        if cur > below {
            let want = (cur - below) / 2;
            // Only the row's own (non-received) elements can move.
            let movable = lens[i] - disp[i];
            let d = want.min(movable);
            disp[i] += d;
            received[i + 1] += d;
        }
    }
    let k = (0..p)
        .map(|i| lens[i] - disp[i] + received[i])
        .max()
        .unwrap_or(0);
    // Greedy never wraps, so the last row is always a valid base.
    DisplacementPlan {
        k,
        base_row: p - 1,
        disp,
    }
}

#[cfg(test)]
mod tests {
    use super::super::optimal::optimize;
    use super::*;

    #[test]
    fn figure7_greedy_vs_optimal() {
        let lens = [4usize, 1, 0, 1];
        let g = greedy(&lens);
        assert_eq!(g.k, 3);
        assert_eq!(optimize(&lens).k, 2);
    }

    #[test]
    fn greedy_result_is_consistent() {
        let lens = [5usize, 2, 4, 0];
        let g = greedy(&lens);
        let result = g.resulting_lens(&lens);
        assert_eq!(result.iter().copied().max().unwrap(), g.k);
        assert_eq!(
            result.iter().sum::<usize>(),
            lens.iter().sum::<usize>(),
            "work conserved"
        );
    }

    #[test]
    fn greedy_never_moves_more_than_owned() {
        let lens = [6usize, 0, 0, 0];
        let g = greedy(&lens);
        for (i, &d) in g.disp.iter().enumerate() {
            assert!(d <= lens[i]);
        }
        // 6 -> pushes 3 down; row1 (3 received) can't re-push them.
        assert_eq!(g.resulting_lens(&lens), vec![3, 3, 0, 0]);
        // Optimal also gets 3 here? ceil(6/4)=2 but single-step can't move
        // row 0's elements past row 1: optimal is also 3.
        assert_eq!(optimize(&lens).k, 3);
    }

    #[test]
    fn greedy_on_balanced_input_is_identity() {
        let lens = [2usize, 2, 2, 2];
        let g = greedy(&lens);
        assert_eq!(g.displaced_count(), 0);
        assert_eq!(g.k, 2);
    }

    #[test]
    fn greedy_dominated_by_optimal_on_sweep() {
        // Deterministic sweep of length-4 tiles.
        for a in 0..6usize {
            for b in 0..6usize {
                for c in 0..6usize {
                    for d in 0..6usize {
                        let lens = [a, b, c, d];
                        let g = greedy(&lens);
                        let o = optimize(&lens);
                        assert!(g.k >= o.k, "greedy {g:?} beat optimal {o:?} on {lens:?}");
                        assert!(g.resulting_lens(&lens).iter().all(|&l| l <= g.k));
                    }
                }
            }
        }
    }

    #[test]
    fn single_row() {
        let g = greedy(&[4]);
        assert_eq!(g.k, 4);
        assert_eq!(g.displaced_count(), 0);
    }
}
