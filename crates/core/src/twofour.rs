//! Functional 2:4 structured-sparse execution (the Ampere baseline's
//! datapath, §2.3.1).
//!
//! A 2:4 tile left-aligns each filter row's (at most) two non-zeros and
//! keeps 2-bit metadata naming their original columns; the tensor core
//! broadcasts the two compacted columns over two cycles while a 4-1
//! multiplexer per MAC selects the matching activation row (Figure 5).
//! This module builds that format from a pruned matrix and executes it,
//! proving the two-cycle claim functionally.

use crate::error::CoreError;
use eureka_fp16::{MacUnit, F16};
use eureka_sparse::structured;
use eureka_sparse::Matrix;

/// One filter row-group in the 2:4 format: per row and per group-of-four
/// reduction steps, up to two `(value, 2-bit position)` pairs.
#[derive(Clone, Debug, PartialEq)]
pub struct TwoFourLayer {
    n: usize,
    k: usize,
    /// `entries[row][group]` = the kept pairs of that 4-wide group.
    entries: Vec<Vec<Vec<(F16, u8)>>>,
}

impl TwoFourLayer {
    /// Builds the format from a matrix, re-pruning to 2:4 (top-2
    /// magnitudes per group of four) exactly as the Ampere baseline runs
    /// unstructured-pruned models.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ShapeMismatch`] if `k` is not a multiple of 4
    /// (the format's group width).
    pub fn from_matrix(weights: &Matrix) -> Result<Self, CoreError> {
        let (n, k) = (weights.rows(), weights.cols());
        if k % 4 != 0 {
            return Err(CoreError::ShapeMismatch {
                expected: "reduction dimension divisible by 4".into(),
                actual: format!("k = {k}"),
            });
        }
        let pruned = structured::prune_2_4(weights).matrix;
        let mut entries = Vec::with_capacity(n);
        for r in 0..n {
            let mut row = Vec::with_capacity(k / 4);
            for g in 0..k / 4 {
                let mut pairs = Vec::with_capacity(2);
                for off in 0..4 {
                    let v = pruned.get(r, g * 4 + off);
                    if !v.is_zero() {
                        pairs.push((v, off as u8));
                    }
                }
                debug_assert!(pairs.len() <= 2, "2:4 invariant");
                row.push(pairs);
            }
            entries.push(row);
        }
        Ok(TwoFourLayer { n, k, entries })
    }

    /// Filter count.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Reduction dimension.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Stored non-zero values.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.entries
            .iter()
            .flat_map(|row| row.iter())
            .map(Vec::len)
            .sum()
    }

    /// Cycles the tensor core needs per 4-wide group: always 2 (groups
    /// with fewer than two non-zeros are "treated as two non-zeros for
    /// regularity", §1).
    #[must_use]
    pub fn cycles(&self) -> usize {
        2 * (self.k / 4) * self.n.div_ceil(4)
    }

    /// Executes `self × activations` through the 4-1-mux datapath: per
    /// group, each kept value's metadata selects its activation row.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ShapeMismatch`] if `activations` does not have
    /// `k` rows.
    pub fn execute(&self, activations: &Matrix) -> Result<Matrix, CoreError> {
        if activations.rows() != self.k {
            return Err(CoreError::ShapeMismatch {
                expected: format!("activations with {} rows", self.k),
                actual: format!("{}x{}", activations.rows(), activations.cols()),
            });
        }
        let m = activations.cols();
        let mut out = Matrix::zeros(self.n, m);
        for r in 0..self.n {
            for j in 0..m {
                let mut mac = MacUnit::new();
                for (g, pairs) in self.entries[r].iter().enumerate() {
                    // Two broadcast cycles; absent pairs are the padded
                    // zeros of sub-2 groups.
                    for cycle in 0..2 {
                        let product = pairs.get(cycle).map_or(F16::ZERO, |&(v, pos)| {
                            // The 4-1 mux: metadata selects the activation
                            // row within the group.
                            v.mul_hw(activations.get(g * 4 + usize::from(pos), j))
                        });
                        mac.accumulate(product, F16::ZERO);
                    }
                }
                out.set(r, j, mac.value());
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eureka_sparse::{gen, rng::DetRng};

    fn sample(n: usize, k: usize, density: f64, seed: u64) -> Matrix {
        let mut rng = DetRng::new(seed);
        let pattern = gen::uniform_pattern(n, k, density, &mut rng);
        gen::integer_values_for_pattern(&pattern, &mut rng)
    }

    #[test]
    fn executes_pruned_matrix_exactly() {
        let mut rng = DetRng::new(2);
        for (n, k, d) in [(8, 32, 0.4), (4, 16, 1.0), (12, 48, 0.1)] {
            let weights = sample(n, k, d, 50 + n as u64);
            let layer = TwoFourLayer::from_matrix(&weights).unwrap();
            let acts = gen::integer_values_for_pattern(
                &gen::uniform_pattern(k, 4, 1.0, &mut rng),
                &mut rng,
            );
            let got = layer.execute(&acts).unwrap();
            // Reference: the pruned matrix's product (2:4 loses values).
            let pruned = structured::prune_2_4(&weights).matrix;
            let want = pruned.matmul_hw(&acts).unwrap();
            assert_eq!(got, want, "n={n} k={k} d={d}");
        }
    }

    #[test]
    fn sparse_input_loses_nothing() {
        // An input that already satisfies 2:4 executes losslessly.
        let mut rng = DetRng::new(3);
        let weights = Matrix::from_fn(4, 16, |r, c| {
            // Two non-zeros per group: positions r%3 and 3.
            if c % 4 == r % 3 || c % 4 == 3 {
                F16::from_f32(((r + c) % 5 + 1) as f32)
            } else {
                F16::ZERO
            }
        });
        let layer = TwoFourLayer::from_matrix(&weights).unwrap();
        assert_eq!(layer.nnz(), weights.pattern().nnz());
        let acts =
            gen::integer_values_for_pattern(&gen::uniform_pattern(16, 3, 1.0, &mut rng), &mut rng);
        assert_eq!(
            layer.execute(&acts).unwrap(),
            weights.matmul_hw(&acts).unwrap()
        );
    }

    #[test]
    fn cycle_count_is_half_dense() {
        let weights = sample(8, 32, 0.5, 9);
        let layer = TwoFourLayer::from_matrix(&weights).unwrap();
        // Dense: 4 cycles per group per row-group; 2:4: always 2.
        let dense_cycles = 4 * (32 / 4) * (8usize).div_ceil(4);
        assert_eq!(layer.cycles() * 2, dense_cycles);
    }

    #[test]
    fn shape_validation() {
        let weights = sample(4, 18, 0.5, 11);
        assert!(TwoFourLayer::from_matrix(&weights).is_err());
        let weights = sample(4, 16, 0.5, 11);
        let layer = TwoFourLayer::from_matrix(&weights).unwrap();
        assert!(layer.execute(&Matrix::zeros(8, 2)).is_err());
    }
}
