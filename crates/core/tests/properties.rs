//! Property tests for compaction, SUDS and scheduling invariants.

use eureka_core::schedule::{schedule_grouped, schedule_natural, SystolicConfig};
use eureka_core::suds::{self, verify::brute_force_optimum, DisplacedTile};
use eureka_core::{exec, CompactedTile, CompiledLayer, TileBlob};
use eureka_sparse::{gen, rng::DetRng, AlignedTile, SparsityPattern, TilePattern};
use proptest::prelude::*;

/// Strategy: row-length vectors for a p-row tile with q columns.
fn row_lens(p: usize, q: usize) -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(0..=q, p)
}

/// Strategy: a 4-row tile pattern of width `q` as raw masks.
fn tile_masks(q: usize) -> impl Strategy<Value = Vec<u64>> {
    let max = if q == 64 { u64::MAX } else { (1u64 << q) - 1 };
    prop::collection::vec(0..=max, 4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn optimal_matches_brute_force(lens in row_lens(4, 8)) {
        let plan = suds::optimize(&lens);
        prop_assert_eq!(plan.k, brute_force_optimum(&lens));
    }

    #[test]
    fn optimal_matches_brute_force_p5(lens in row_lens(5, 5)) {
        let plan = suds::optimize(&lens);
        prop_assert_eq!(plan.k, brute_force_optimum(&lens));
    }

    #[test]
    fn optimal_bounds(lens in row_lens(4, 16)) {
        let plan = suds::optimize(&lens);
        let total: usize = lens.iter().sum();
        let max = lens.iter().copied().max().unwrap_or(0);
        // Lower bound: perfect balance; upper bound: no displacement.
        prop_assert!(plan.k >= total.div_ceil(4).min(max));
        prop_assert!(plan.k <= max);
        // The plan actually achieves k and conserves work.
        let result = plan.resulting_lens(&lens);
        prop_assert!(result.iter().all(|&l| l <= plan.k));
        prop_assert_eq!(result.iter().sum::<usize>(), total);
        // Base row never displaces.
        prop_assert_eq!(plan.disp[plan.base_row], 0);
    }

    #[test]
    fn greedy_dominated_by_optimal(lens in row_lens(4, 16)) {
        let g = suds::greedy(&lens);
        let o = suds::optimize(&lens);
        prop_assert!(g.k >= o.k);
        // Greedy is itself consistent.
        let result = g.resulting_lens(&lens);
        prop_assert_eq!(result.iter().copied().max().unwrap_or(0), g.k);
    }

    #[test]
    fn displaced_schedule_validates_and_conserves(masks in tile_masks(16)) {
        let tile = TilePattern::from_rows(&masks, 16).unwrap();
        let plan = suds::optimize(&tile.row_lens());
        let aligned = AlignedTile::from_tile(&tile);
        let d = DisplacedTile::from_plan(&aligned, &plan).unwrap();
        d.validate().unwrap();
        prop_assert_eq!(d.work(), tile.nnz());
        prop_assert_eq!(d.cycles(), plan.k.max(1));
        prop_assert_eq!(d.displaced_work(), plan.displaced_count());
    }

    #[test]
    fn compaction_preserves_row_multisets(masks in tile_masks(8)) {
        let tile = TilePattern::from_rows(&masks, 8).unwrap();
        let c = CompactedTile::new(&tile, 2).unwrap();
        // Each aligned row holds exactly the original row's column indices.
        for r in 0..4 {
            let aligned: Vec<usize> =
                c.aligned().row(r).iter().map(|&x| usize::from(x)).collect();
            prop_assert_eq!(aligned, tile.row_indices(r));
        }
        // Cycle count: longest row, floored at 1.
        prop_assert_eq!(c.cycles(), tile.critical_path().max(1));
    }

    #[test]
    fn executor_matches_reference(masks in tile_masks(8), seed in 0u64..1000) {
        let tile = TilePattern::from_rows(&masks, 8).unwrap();
        let plan = suds::optimize(&tile.row_lens());
        let schedule = DisplacedTile::from_plan(&AlignedTile::from_tile(&tile), &plan).unwrap();
        let mut rng = DetRng::new(seed);
        let wp = SparsityPattern::from_fn(4, 8, |r, c| tile.row_mask(r) >> c & 1 == 1);
        let weights = gen::integer_values_for_pattern(&wp, &mut rng);
        let ap = SparsityPattern::from_fn(8, 3, |_, _| true);
        let activations = gen::integer_values_for_pattern(&ap, &mut rng);
        let got = exec::execute(&schedule, &weights, &activations).unwrap();
        let want = exec::reference(&weights, &activations).unwrap();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn format_roundtrip(masks in prop::collection::vec(0u64..(1 << 16), 4), seed in 0u64..500) {
        let tile = TilePattern::from_rows(&masks, 16).unwrap();
        let plan = suds::optimize(&tile.row_lens());
        let schedule = DisplacedTile::from_plan(&AlignedTile::from_tile(&tile), &plan).unwrap();
        let mut rng = DetRng::new(seed);
        let pattern = SparsityPattern::from_fn(4, 16, |r, c| tile.row_mask(r) >> c & 1 == 1);
        let weights = gen::values_for_pattern(&pattern, &mut rng);
        let blob = TileBlob::encode(&schedule, &weights).unwrap();
        let (decoded_schedule, decoded_weights) = blob.decode().unwrap();
        decoded_schedule.validate().unwrap();
        prop_assert_eq!(decoded_weights, weights);
        prop_assert_eq!(decoded_schedule.cycles(), schedule.cycles());
        prop_assert_eq!(decoded_schedule.work(), schedule.work());
        // Idealized size: 17 + metadata bits per value, plus rotation.
        prop_assert_eq!(blob.ideal_bits(), tile.nnz() * (16 + 5) + 2);
    }

    #[test]
    fn compiled_layer_executes_exactly(
        n_tiles in 1usize..=3,
        k_tiles in 1usize..=3,
        density in 1u32..=9,
        seed in 0u64..500,
    ) {
        let (n, k) = (n_tiles * 4, k_tiles * 16);
        let mut rng = DetRng::new(seed);
        let pattern = gen::uniform_pattern(n, k, f64::from(density) * 0.1, &mut rng);
        let weights = gen::integer_values_for_pattern(&pattern, &mut rng);
        let acts = gen::integer_values_for_pattern(
            &SparsityPattern::from_fn(k, 3, |_, _| true),
            &mut rng,
        );
        let compiled = CompiledLayer::compile(&weights, 4, 4).unwrap();
        let got = compiled.execute(&acts).unwrap();
        let want = weights.matmul_hw(&acts).unwrap();
        prop_assert_eq!(got, want);
        // Conservation: encoded nnz matches the pattern.
        prop_assert_eq!(compiled.stats().nnz, pattern.nnz());
    }

    #[test]
    fn scheduling_never_hurts(times in prop::collection::vec(1u64..=16, 0..200)) {
        let cfg = SystolicConfig::paper_default();
        let natural = schedule_natural(&times, &cfg);
        let grouped = schedule_grouped(&times, &cfg);
        prop_assert_eq!(natural.busy_cycles, grouped.busy_cycles);
        // Makespan lower bound: work spread perfectly over the rows.
        let total: u64 = times.iter().sum();
        prop_assert!(grouped.total_cycles + 1 >= total.div_ceil(cfg.rows as u64));
        // Grouped scheduling never produces more bubbles than natural order
        // in aggregate... it may in pathological small cases pay fill costs,
        // so compare busy-relative utilization instead.
        prop_assert!(grouped.row_utilization() + 1e-9 >= natural.row_utilization() - 0.25);
    }

    #[test]
    fn grouped_respects_lower_bound(times in prop::collection::vec(1u64..=16, 0..300)) {
        use eureka_core::schedule::makespan_lower_bound;
        let cfg = SystolicConfig::paper_default();
        let lb = makespan_lower_bound(&times, &cfg);
        prop_assert!(schedule_grouped(&times, &cfg).total_cycles >= lb);
        prop_assert!(schedule_natural(&times, &cfg).total_cycles >= lb);
    }

    #[test]
    fn blob_decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        // Arbitrary bytes must be rejected gracefully, never panic.
        let blob = eureka_core::format::TileBlob::from_bytes(bytes);
        let _ = blob.decode();
    }

    #[test]
    fn pipeline_fill_is_bounded(times in prop::collection::vec(1u64..=8, 1..50)) {
        let cfg = SystolicConfig { rows: 2, stages: 4, window: 2 };
        let r = schedule_grouped(&times, &cfg);
        let max_t = *times.iter().max().unwrap();
        // Fill adds at most (stages-1) * longest step.
        let steps_only = r.total_cycles - (r.total_cycles.min(max_t * (cfg.stages as u64 - 1)));
        prop_assert!(steps_only <= r.total_cycles);
        prop_assert!(r.total_cycles >= times.iter().sum::<u64>() / cfg.rows as u64);
    }
}

#[test]
fn grouped_utilization_improves_on_real_distribution() {
    // Critical-path distribution after SUDS on a realistic 13%-dense layer:
    // mostly 1s and 2s with occasional 3s — grouping should pack steps
    // nearly perfectly.
    let mut rng = DetRng::new(2024);
    let mut times = Vec::new();
    for _ in 0..2000 {
        let masks: Vec<u64> = (0..4)
            .map(|_| {
                let mut m = 0u64;
                for c in 0..16 {
                    if rng.bernoulli(0.13) {
                        m |= 1 << c;
                    }
                }
                m
            })
            .collect();
        let tile = TilePattern::from_rows(&masks, 16).unwrap();
        times.push(suds::optimal_cycles(&tile) as u64);
    }
    let cfg = SystolicConfig::paper_default();
    let natural = schedule_natural(&times, &cfg);
    let grouped = schedule_grouped(&times, &cfg);
    assert!(grouped.total_cycles <= natural.total_cycles);
    assert!(
        grouped.row_utilization() > 0.95,
        "grouped utilization {}",
        grouped.row_utilization()
    );
}
