//! The `eureka` command-line tool. See `eureka_cli` for the command set.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match eureka_cli::parse(args).and_then(|cmd| eureka_cli::run(&cmd)) {
        Ok(out) => {
            println!("{out}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eureka_obs::error!("{msg}\n{}", eureka_cli::USAGE);
            ExitCode::FAILURE
        }
    }
}
