//! The `eureka` command-line tool. See `eureka_cli` for the command set.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Usage text accompanies parse errors only: a *run* failure (a
    // refused arch/workload combination, a `bench diff` regression
    // gate) is an outcome of a well-formed command, not a syntax slip.
    let cmd = match eureka_cli::parse(args) {
        Ok(cmd) => cmd,
        Err(msg) => {
            eureka_obs::error!("{msg}\n{}", eureka_cli::USAGE);
            return ExitCode::FAILURE;
        }
    };
    match eureka_cli::run_with_code(&cmd) {
        Ok(out) => {
            // Empty output means the command already streamed its
            // payload to stdout (e.g. `--events-out -`).
            if !out.is_empty() {
                println!("{out}");
            }
            ExitCode::SUCCESS
        }
        // Exit 1 for failures and regressions; exit 2 when the command
        // could not do its job at all (e.g. `bench diff` on a missing
        // snapshot) so CI can tell broken wiring from a fired gate.
        Err(e) => {
            eureka_obs::error!("{}", e.message);
            ExitCode::from(e.code)
        }
    }
}
