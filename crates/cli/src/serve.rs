//! The `eureka serve` / `submit` / `drain` front ends: a Unix-socket
//! transport around [`eureka_sim::service`].
//!
//! The service itself is transport-free (`handle_request` maps one
//! JSON request line to one response line); this module owns the
//! socket listener, the SIGTERM/SIGINT drain loop, and the client
//! side. Everything socket-shaped is Unix-only; on other targets the
//! commands fail with a clear message instead of failing to compile.

use eureka_sim::JobSpec;

/// Parsed `eureka serve` configuration.
#[derive(Clone, Debug)]
pub struct ServeOpts {
    /// Unix socket path to listen on.
    pub socket: String,
    /// Write-ahead job journal directory.
    pub journal_dir: String,
    /// Unit checkpoint directory (resume across restarts).
    pub checkpoint_dir: Option<String>,
    /// Tile result store directory.
    pub store_dir: Option<String>,
    /// Admission queue bound.
    pub capacity: usize,
    /// Default per-job deadline in ms (0 = none).
    pub deadline_ms: u64,
    /// Simulation worker threads per job.
    pub jobs: usize,
    /// Reduced sampling for served jobs.
    pub fast: bool,
}

#[cfg(unix)]
mod imp {
    use super::ServeOpts;
    use eureka_sim::service::{handle_request, service_stats, ServiceConfig};
    use eureka_sim::{JobService, JobSpec, SimConfig};
    use std::io::{BufRead, BufReader, Write};
    use std::os::unix::net::{UnixListener, UnixStream};
    use std::path::{Path, PathBuf};
    use std::time::Duration;

    pub fn run_serve(opts: &ServeOpts) -> Result<String, String> {
        let cfg = service_config(opts);
        let service = JobService::start(cfg);
        eureka_signal::install_termination_latch();

        // A stale socket from a SIGKILL'd predecessor would refuse the
        // bind; the journal (not the socket) is the durable state.
        let socket = Path::new(&opts.socket);
        if socket.exists() {
            std::fs::remove_file(socket)
                .map_err(|e| format!("cannot remove stale socket {}: {e}", socket.display()))?;
        }
        let listener = UnixListener::bind(socket)
            .map_err(|e| format!("cannot bind {}: {e}", socket.display()))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("cannot set the listener non-blocking: {e}"))?;
        eureka_obs::info!("serve: listening on {}", socket.display());

        let mut shutdown_requested = false;
        while !shutdown_requested && !eureka_signal::termination_requested() {
            match listener.accept() {
                Ok((stream, _)) => {
                    shutdown_requested = serve_connection(&service, stream);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    // Idle: poll the termination latch at a human-scale
                    // cadence without burning a core.
                    std::thread::sleep(Duration::from_millis(25));
                }
                Err(e) => return Err(format!("accept failed: {e}")),
            }
        }

        // SIGTERM/SIGINT or a `shutdown` request: finish in-flight
        // work, shed everything new, then leave. Journal records and
        // store tiles are already durable (written in-line), so the
        // drain needs no extra flush.
        let drained = service.drain();
        service.shutdown();
        std::fs::remove_file(socket).ok();
        let stats = service_stats();
        Ok(format!(
            "serve: {}; served={} completed={} shed={} cancelled={} \
             deadline_exceeded={} failed={} recovered={}\n",
            if drained {
                "drained"
            } else {
                "drain timed out"
            },
            stats.served,
            stats.completed,
            stats.shed,
            stats.cancelled,
            stats.deadline_exceeded,
            stats.failed,
            stats.recovered,
        ))
    }

    /// One client connection: JSON lines in, JSON lines out. Returns
    /// `true` when the client asked the whole service to shut down.
    fn serve_connection(service: &JobService, stream: UnixStream) -> bool {
        // Blocking I/O per connection; the accept loop's non-blocking
        // mode is inherited and must be undone.
        if stream.set_nonblocking(false).is_err() {
            return false;
        }
        stream.set_read_timeout(Some(Duration::from_secs(30))).ok();
        let mut writer = match stream.try_clone() {
            Ok(w) => w,
            Err(_) => return false,
        };
        let reader = BufReader::new(stream);
        for line in reader.lines() {
            let Ok(line) = line else { break };
            if line.trim().is_empty() {
                continue;
            }
            let (response, shutdown) = handle_request(service, &line);
            if writer.write_all(response.as_bytes()).is_err()
                || writer.write_all(b"\n").is_err()
                || writer.flush().is_err()
            {
                break;
            }
            if shutdown {
                return true;
            }
        }
        false
    }

    fn service_config(opts: &ServeOpts) -> ServiceConfig {
        let mut cfg = ServiceConfig::new(PathBuf::from(&opts.journal_dir));
        cfg.queue_capacity = opts.capacity;
        cfg.default_deadline_ms = opts.deadline_ms;
        cfg.jobs = opts.jobs;
        cfg.sim = if opts.fast {
            SimConfig::fast()
        } else {
            SimConfig::paper_default()
        };
        cfg.checkpoint_dir = opts.checkpoint_dir.as_ref().map(PathBuf::from);
        cfg.store_dir = opts.store_dir.as_ref().map(PathBuf::from);
        cfg
    }

    /// Sends one request line and reads one response line.
    pub fn request(socket: &str, line: &str) -> Result<String, String> {
        let stream = UnixStream::connect(socket)
            .map_err(|e| format!("cannot connect to {socket}: {e} (is the service running?)"))?;
        stream.set_read_timeout(Some(Duration::from_secs(300))).ok();
        let mut writer = stream
            .try_clone()
            .map_err(|e| format!("socket error: {e}"))?;
        writer
            .write_all(line.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush())
            .map_err(|e| format!("cannot send request: {e}"))?;
        let mut response = String::new();
        BufReader::new(stream)
            .read_line(&mut response)
            .map_err(|e| format!("cannot read response: {e}"))?;
        if response.is_empty() {
            return Err("the service closed the connection without responding".into());
        }
        Ok(response.trim_end().to_string())
    }

    pub fn run_submit(socket: &str, spec: &JobSpec, wait: bool) -> Result<String, String> {
        use eureka_obs::json::{self, Value};
        let request_line = format!(
            "{{\"cmd\":\"submit\",\"spec\":\"{}\"}}",
            json::escape(&spec.canonical())
        );
        let response = request(socket, &request_line)?;
        let v = json::parse(&response).map_err(|e| format!("malformed response: {e}"))?;
        if v.get("ok").and_then(Value::as_bool) != Some(true) {
            return Err(format!("submit rejected: {response}"));
        }
        if !wait {
            return Ok(response);
        }
        let id = v
            .get("job")
            .and_then(Value::as_f64)
            .ok_or("malformed response: missing job id")? as u64;
        loop {
            std::thread::sleep(Duration::from_millis(50));
            let status_line = request(socket, &format!("{{\"cmd\":\"status\",\"job\":{id}}}"))?;
            let sv = json::parse(&status_line).map_err(|e| format!("malformed response: {e}"))?;
            match sv.get("status").and_then(Value::as_str) {
                Some("queued" | "running") => {}
                Some("completed") => return Ok(status_line),
                Some(_) => return Err(format!("job did not complete: {status_line}")),
                None => return Err(format!("malformed status response: {status_line}")),
            }
        }
    }

    pub fn run_drain(socket: &str, shutdown: bool) -> Result<String, String> {
        let response = request(socket, "{\"cmd\":\"drain\"}")?;
        if shutdown {
            // The shutdown response may not arrive if the server exits
            // promptly after draining; the drain response above is the
            // acknowledgement that matters.
            let _ = request(socket, "{\"cmd\":\"shutdown\"}");
        }
        Ok(response)
    }
}

#[cfg(not(unix))]
mod imp {
    use super::ServeOpts;
    use eureka_sim::JobSpec;

    const UNSUPPORTED: &str = "the job service requires Unix domain sockets";

    pub fn run_serve(_opts: &ServeOpts) -> Result<String, String> {
        Err(UNSUPPORTED.into())
    }

    pub fn run_submit(_socket: &str, _spec: &JobSpec, _wait: bool) -> Result<String, String> {
        Err(UNSUPPORTED.into())
    }

    pub fn run_drain(_socket: &str, _shutdown: bool) -> Result<String, String> {
        Err(UNSUPPORTED.into())
    }
}

/// Runs the resident service until SIGTERM/SIGINT or a client
/// `shutdown`, then drains and reports the final ledger counts.
///
/// # Errors
///
/// Socket bind/IO failures, or any platform without Unix sockets.
pub fn run_serve(opts: &ServeOpts) -> Result<String, String> {
    imp::run_serve(opts)
}

/// Submits one job to a running service; with `wait`, polls until the
/// job is terminal and fails unless it completed.
///
/// # Errors
///
/// Connection failures, rejections (overloaded/draining/invalid), or a
/// waited-on job that ended cancelled, deadline-exceeded, or failed.
pub fn run_submit(socket: &str, spec: &JobSpec, wait: bool) -> Result<String, String> {
    imp::run_submit(socket, spec, wait)
}

/// Asks a running service to drain (and optionally shut down).
///
/// # Errors
///
/// Connection failures.
pub fn run_drain(socket: &str, shutdown: bool) -> Result<String, String> {
    imp::run_drain(socket, shutdown)
}
