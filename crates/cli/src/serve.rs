//! The `eureka serve` / `submit` / `drain` / `stats` front ends: a
//! Unix-socket transport around [`eureka_sim::service`].
//!
//! The service itself is transport-free (`handle_request` maps one
//! JSON request line to one response line); this module owns the
//! socket listener, the SIGTERM/SIGINT drain loop, and the client
//! side. The server additionally owns the observability exhaust: a
//! Prometheus text exposition rewritten after every connection
//! (`--metrics-out`), the always-armed flight recorder dumped on
//! drain, panic, and after every connection, and the exit-time SLA
//! summary appended to the run ledger (`--sla-budget-us`) so `bench
//! diff` gates service-latency regressions. Everything socket-shaped
//! is Unix-only; on other targets the commands fail with a clear
//! message instead of failing to compile.

use eureka_sim::JobSpec;

/// Parsed `eureka serve` configuration.
#[derive(Clone, Debug)]
pub struct ServeOpts {
    /// Unix socket path to listen on.
    pub socket: String,
    /// Write-ahead job journal directory.
    pub journal_dir: String,
    /// Unit checkpoint directory (resume across restarts).
    pub checkpoint_dir: Option<String>,
    /// Tile result store directory.
    pub store_dir: Option<String>,
    /// Admission queue bound.
    pub capacity: usize,
    /// Default per-job deadline in ms (0 = none).
    pub deadline_ms: u64,
    /// Simulation worker threads per job.
    pub jobs: usize,
    /// Reduced sampling for served jobs.
    pub fast: bool,
    /// Rewrite a Prometheus text exposition here after every
    /// connection and on exit.
    pub metrics_out: Option<String>,
    /// End-to-end latency budget in µs; arms the exit SLA summary and
    /// its run-ledger record.
    pub sla_budget_us: Option<u64>,
    /// Flight-recorder dump directory.
    pub flightrec_dir: String,
    /// Run-ledger directory for the SLA record.
    pub ledger_dir: Option<String>,
    /// Skip the SLA ledger append.
    pub no_ledger: bool,
}

#[cfg(unix)]
mod imp {
    use super::ServeOpts;
    use eureka_sim::service::{self, handle_request, service_stats, ServiceConfig};
    use eureka_sim::{JobService, JobSpec, SimConfig};
    use std::io::{BufRead, BufReader, Write};
    use std::os::unix::net::{UnixListener, UnixStream};
    use std::path::{Path, PathBuf};
    use std::time::{Duration, Instant};

    pub fn run_serve(opts: &ServeOpts) -> Result<String, String> {
        let started = Instant::now();
        let cfg = service_config(opts);
        eureka_obs::flightrec::reset();
        install_panic_dump(PathBuf::from(&opts.flightrec_dir));
        let service = JobService::start(cfg);
        eureka_signal::install_termination_latch();

        // A stale socket from a SIGKILL'd predecessor would refuse the
        // bind; the journal (not the socket) is the durable state.
        let socket = Path::new(&opts.socket);
        if socket.exists() {
            std::fs::remove_file(socket)
                .map_err(|e| format!("cannot remove stale socket {}: {e}", socket.display()))?;
        }
        let listener = UnixListener::bind(socket)
            .map_err(|e| format!("cannot bind {}: {e}", socket.display()))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("cannot set the listener non-blocking: {e}"))?;
        eureka_obs::info!("serve: listening on {}", socket.display());

        let mut shutdown_requested = false;
        while !shutdown_requested && !eureka_signal::termination_requested() {
            match listener.accept() {
                Ok((stream, _)) => {
                    shutdown_requested = serve_connection(&service, stream);
                    // Refresh the on-disk exhaust while the daemon is
                    // alive, so a later SIGKILL still leaves a recent
                    // scrape and a replayable recorder dump behind.
                    export_observability(opts, &service);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    // Idle: poll the termination latch at a human-scale
                    // cadence without burning a core.
                    std::thread::sleep(Duration::from_millis(25));
                }
                Err(e) => return Err(format!("accept failed: {e}")),
            }
        }

        // SIGTERM/SIGINT or a `shutdown` request: finish in-flight
        // work, shed everything new, then leave. Journal records and
        // store tiles are already durable (written in-line), so the
        // drain needs no extra flush.
        let drained = service.drain();
        export_observability(opts, &service);
        service.shutdown();
        std::fs::remove_file(socket).ok();
        let stats = service_stats();
        let mut out = format!(
            "serve: {}; served={} completed={} shed={} cancelled={} \
             deadline_exceeded={} failed={} recovered={}\n",
            if drained {
                "drained"
            } else {
                "drain timed out"
            },
            stats.served,
            stats.completed,
            stats.shed,
            stats.cancelled,
            stats.deadline_exceeded,
            stats.failed,
            stats.recovered,
        );
        if let Some(budget) = opts.sla_budget_us {
            let sla = service::sla_report(budget, started.elapsed());
            out.push_str(&format!(
                "sla: budget={}us p99_e2e={}us jobs_per_sec={:.2} shed_rate={:.3} saturated={}\n",
                sla.budget_us, sla.p99_e2e_us, sla.jobs_per_sec, sla.shed_rate, sla.saturated
            ));
            append_sla_ledger(opts, sla, started)?;
        }
        Ok(out)
    }

    /// Chains a flight-recorder dump in front of the default panic
    /// hook, so even an aborting daemon leaves its last-moments record
    /// on disk before the backtrace prints.
    fn install_panic_dump(dir: PathBuf) {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let _ = eureka_obs::flightrec::dump_to(&dir);
            previous(info);
        }));
    }

    /// Best-effort refresh of the observability exhaust: the
    /// Prometheus exposition (tmp + rename, so scrapers never read a
    /// torn file) and the flight-recorder dump. Failures degrade to a
    /// log line — the daemon's job is serving, not exporting.
    fn export_observability(opts: &ServeOpts, service: &JobService) {
        if let Some(path) = &opts.metrics_out {
            let text = eureka_obs::metrics::prometheus_text();
            let tmp = format!("{path}.tmp");
            let failed = std::fs::write(&tmp, &text)
                .and_then(|()| std::fs::rename(&tmp, path))
                .is_err();
            if failed {
                eureka_obs::info!("serve: cannot write metrics to {path}");
            }
        }
        if eureka_obs::flightrec::recorded_count() > 0 {
            if let Err(e) = service.dump_flightrec() {
                eureka_obs::info!("serve: flight recorder dump failed: {e}");
            }
        }
    }

    /// Appends the exit-time SLA record (kind `serve`) to the run
    /// ledger, so `bench diff` can gate p99/throughput/shed-rate
    /// regressions between service runs.
    fn append_sla_ledger(
        opts: &ServeOpts,
        sla: eureka_sim::SlaReport,
        started: Instant,
    ) -> Result<(), String> {
        let Some(dir) = crate::resolve_ledger_dir(opts.ledger_dir.as_deref(), opts.no_ledger)
        else {
            return Ok(());
        };
        let record = eureka_sim::LedgerRecord {
            kind: "serve".to_string(),
            label: format!(
                "serve|capacity{}|deadline{}ms|{}",
                opts.capacity,
                opts.deadline_ms,
                if opts.fast { "fast" } else { "paper" },
            ),
            total_cycles: None,
            speedup_vs_dense: None,
            wall_ms: started.elapsed().as_secs_f64() * 1e3,
            events: eureka_obs::events::emitted_count(),
            sla: Some(sla),
        };
        let path = eureka_sim::ledger::append(&dir, &record)?;
        eureka_obs::info!("ledger: appended {}", path.display());
        Ok(())
    }

    /// One client connection: JSON lines in, JSON lines out. Returns
    /// `true` when the client asked the whole service to shut down.
    fn serve_connection(service: &JobService, stream: UnixStream) -> bool {
        // Blocking I/O per connection; the accept loop's non-blocking
        // mode is inherited and must be undone.
        if stream.set_nonblocking(false).is_err() {
            return false;
        }
        stream.set_read_timeout(Some(Duration::from_secs(30))).ok();
        let mut writer = match stream.try_clone() {
            Ok(w) => w,
            Err(_) => return false,
        };
        let reader = BufReader::new(stream);
        for line in reader.lines() {
            let Ok(line) = line else { break };
            if line.trim().is_empty() {
                continue;
            }
            let (response, shutdown) = handle_request(service, &line);
            if writer.write_all(response.as_bytes()).is_err()
                || writer.write_all(b"\n").is_err()
                || writer.flush().is_err()
            {
                break;
            }
            if shutdown {
                return true;
            }
        }
        false
    }

    fn service_config(opts: &ServeOpts) -> ServiceConfig {
        let mut cfg = ServiceConfig::new(PathBuf::from(&opts.journal_dir));
        cfg.queue_capacity = opts.capacity;
        cfg.default_deadline_ms = opts.deadline_ms;
        cfg.jobs = opts.jobs;
        cfg.sim = if opts.fast {
            SimConfig::fast()
        } else {
            SimConfig::paper_default()
        };
        cfg.checkpoint_dir = opts.checkpoint_dir.as_ref().map(PathBuf::from);
        cfg.store_dir = opts.store_dir.as_ref().map(PathBuf::from);
        cfg.flightrec_dir = PathBuf::from(&opts.flightrec_dir);
        cfg
    }

    /// Sends one request line and reads one response line.
    pub fn request(socket: &str, line: &str) -> Result<String, String> {
        let stream = UnixStream::connect(socket)
            .map_err(|e| format!("cannot connect to {socket}: {e} (is the service running?)"))?;
        stream.set_read_timeout(Some(Duration::from_secs(300))).ok();
        let mut writer = stream
            .try_clone()
            .map_err(|e| format!("socket error: {e}"))?;
        writer
            .write_all(line.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush())
            .map_err(|e| format!("cannot send request: {e}"))?;
        let mut response = String::new();
        BufReader::new(stream)
            .read_line(&mut response)
            .map_err(|e| format!("cannot read response: {e}"))?;
        if response.is_empty() {
            return Err("the service closed the connection without responding".into());
        }
        Ok(response.trim_end().to_string())
    }

    pub fn run_submit(socket: &str, spec: &JobSpec, wait: bool) -> Result<String, String> {
        use eureka_obs::json::{self, Value};
        let request_line = format!(
            "{{\"cmd\":\"submit\",\"spec\":\"{}\"}}",
            json::escape(&spec.canonical())
        );
        let response = request(socket, &request_line)?;
        let v = json::parse(&response).map_err(|e| format!("malformed response: {e}"))?;
        if v.get("ok").and_then(Value::as_bool) != Some(true) {
            return Err(format!("submit rejected: {response}"));
        }
        if !wait {
            return Ok(response);
        }
        let id = v
            .get("job")
            .and_then(Value::as_f64)
            .ok_or("malformed response: missing job id")? as u64;
        loop {
            std::thread::sleep(Duration::from_millis(50));
            let status_line = request(socket, &format!("{{\"cmd\":\"status\",\"job\":{id}}}"))?;
            let sv = json::parse(&status_line).map_err(|e| format!("malformed response: {e}"))?;
            match sv.get("status").and_then(Value::as_str) {
                Some("queued" | "running") => {}
                Some("completed") => return Ok(status_line),
                Some(_) => return Err(format!("job did not complete: {status_line}")),
                None => return Err(format!("malformed status response: {status_line}")),
            }
        }
    }

    pub fn run_drain(socket: &str, shutdown: bool) -> Result<String, String> {
        let response = request(socket, "{\"cmd\":\"drain\"}")?;
        if shutdown {
            // The shutdown response may not arrive if the server exits
            // promptly after draining; the drain response above is the
            // acknowledgement that matters.
            let _ = request(socket, "{\"cmd\":\"shutdown\"}");
        }
        Ok(response)
    }

    pub fn run_stats(socket: &str, json: bool) -> Result<String, String> {
        let response = request(socket, "{\"cmd\":\"stats\"}")?;
        if json {
            return Ok(response);
        }
        render_stats(&response)
    }

    /// Renders the `stats` response for humans: the ledger counters,
    /// then per-outcome-class latency quantiles. Histograms that never
    /// fired are omitted — a healthy quiet service prints a short
    /// report, not a wall of zeros.
    fn render_stats(response: &str) -> Result<String, String> {
        use eureka_obs::json::{self, Value};
        let v = json::parse(response).map_err(|e| format!("malformed response: {e}"))?;
        if v.get("ok").and_then(Value::as_bool) != Some(true) {
            return Err(format!("stats rejected: {response}"));
        }
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let num = |key: &str| v.get(key).and_then(Value::as_f64).unwrap_or(0.0) as u64;
        let flag = |key: &str| v.get(key).and_then(Value::as_bool).unwrap_or(false);
        let mut out = format!(
            "service  : queued={} running={} draining={}\n\
             outcomes : served={} completed={} shed={} cancelled={} \
             deadline_exceeded={} failed={}\n\
             recovery : recovered={} retried={}\n",
            num("queued"),
            flag("running"),
            flag("draining"),
            num("served"),
            num("completed"),
            num("shed"),
            num("cancelled"),
            num("deadline_exceeded"),
            num("failed"),
            num("recovered"),
            num("retried"),
        );
        out.push_str(
            "latency (us):      class phase             count      p50      p90      p99\n",
        );
        let Some(latency) = v.get("latency") else {
            return Ok(out);
        };
        for class in service::OUTCOME_CLASSES {
            let Some(phases) = latency.get(class) else {
                continue;
            };
            for phase in ["queue_wait_us", "exec_us", "e2e_us"] {
                let Some(h) = phases.get(phase) else { continue };
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                let field = |key: &str| h.get(key).and_then(Value::as_f64).unwrap_or(0.0) as u64;
                if field("count") == 0 {
                    continue;
                }
                out.push_str(&format!(
                    "  {class:<18} {phase:<14} {:>8} {:>8} {:>8} {:>8}\n",
                    field("count"),
                    field("p50"),
                    field("p90"),
                    field("p99"),
                ));
            }
        }
        Ok(out)
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn render_stats_skips_silent_histograms_and_rejects_errors() {
            let response = concat!(
                "{\"ok\":true,\"queued\":1,\"running\":true,\"draining\":false,",
                "\"served\":3,\"completed\":2,\"shed\":1,\"cancelled\":0,",
                "\"deadline_exceeded\":0,\"failed\":0,\"recovered\":0,\"retried\":0,",
                "\"latency\":{",
                "\"completed\":{\"queue_wait_us\":{\"count\":2,\"p50\":10,\"p90\":50,\"p99\":50},",
                "\"exec_us\":{\"count\":2,\"p50\":100,\"p90\":500,\"p99\":500},",
                "\"e2e_us\":{\"count\":2,\"p50\":100,\"p90\":500,\"p99\":500}},",
                "\"failed\":{\"e2e_us\":{\"count\":0,\"p50\":0,\"p90\":0,\"p99\":0}}}}"
            );
            let out = super::render_stats(response).expect("well-formed stats render");
            assert!(out.contains("served=3 completed=2 shed=1"), "{out}");
            assert!(
                out.lines()
                    .any(|l| l.trim_start().starts_with("completed") && l.contains("e2e_us")),
                "{out}"
            );
            assert!(
                !out.lines().any(|l| l.trim_start().starts_with("failed")),
                "zero-count histograms are omitted: {out}"
            );

            let err = super::render_stats("{\"ok\":false,\"error\":\"nope\"}").unwrap_err();
            assert!(err.contains("stats rejected"), "{err}");
            assert!(super::render_stats("not json").is_err());
        }
    }
}

#[cfg(not(unix))]
mod imp {
    use super::ServeOpts;
    use eureka_sim::JobSpec;

    const UNSUPPORTED: &str = "the job service requires Unix domain sockets";

    pub fn run_serve(_opts: &ServeOpts) -> Result<String, String> {
        Err(UNSUPPORTED.into())
    }

    pub fn run_submit(_socket: &str, _spec: &JobSpec, _wait: bool) -> Result<String, String> {
        Err(UNSUPPORTED.into())
    }

    pub fn run_drain(_socket: &str, _shutdown: bool) -> Result<String, String> {
        Err(UNSUPPORTED.into())
    }

    pub fn run_stats(_socket: &str, _json: bool) -> Result<String, String> {
        Err(UNSUPPORTED.into())
    }
}

/// Runs the resident service until SIGTERM/SIGINT or a client
/// `shutdown`, then drains and reports the final ledger counts (plus
/// the SLA summary when `--sla-budget-us` is set).
///
/// # Errors
///
/// Socket bind/IO failures, or any platform without Unix sockets.
pub fn run_serve(opts: &ServeOpts) -> Result<String, String> {
    imp::run_serve(opts)
}

/// Submits one job to a running service; with `wait`, polls until the
/// job is terminal and fails unless it completed.
///
/// # Errors
///
/// Connection failures, rejections (overloaded/draining/invalid), or a
/// waited-on job that ended cancelled, deadline-exceeded, or failed.
pub fn run_submit(socket: &str, spec: &JobSpec, wait: bool) -> Result<String, String> {
    imp::run_submit(socket, spec, wait)
}

/// Asks a running service to drain (and optionally shut down).
///
/// # Errors
///
/// Connection failures.
pub fn run_drain(socket: &str, shutdown: bool) -> Result<String, String> {
    imp::run_drain(socket, shutdown)
}

/// Fetches a running service's live counters and per-outcome-class
/// latency quantiles; `json` returns the raw response line, otherwise
/// a human-readable table.
///
/// # Errors
///
/// Connection failures or a malformed/rejected response.
pub fn run_stats(socket: &str, json: bool) -> Result<String, String> {
    imp::run_stats(socket, json)
}
