//! Command parsing and execution for the `eureka` CLI.
//!
//! The binary in `src/main.rs` is a thin wrapper; everything here is
//! testable as a library:
//!
//! ```
//! use eureka_cli::{parse, Command};
//!
//! let cmd = parse(["simulate", "--benchmark", "resnet50", "--arch", "eureka-p4"])?;
//! assert!(matches!(cmd, Command::Simulate { .. }));
//! # Ok::<(), String>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use eureka_models::{Benchmark, PruningLevel, Workload};
use eureka_sim::{arch, engine, SimConfig};

pub mod serve;

/// A parsed CLI invocation.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// Print usage.
    Help,
    /// List the architecture registry.
    Archs,
    /// Regenerate one of the paper's tables/figures.
    Figure {
        /// `table1`, `table2`, `fig09`, `fig11`, `fig12`, `fig13`,
        /// `fig14` or `ablations`.
        name: String,
        /// Emit CSV instead of the text table.
        csv: bool,
        /// Use reduced sampling.
        fast: bool,
        /// Simulation worker threads (`None` = all cores).
        jobs: Option<usize>,
        /// Write a Chrome-trace JSON of the run here.
        trace_out: Option<String>,
        /// Write a metrics-registry JSON snapshot here.
        metrics_out: Option<String>,
        /// Diagnostic verbosity (0, 1 = `-v`, 2 = `-vv`).
        verbose: u8,
        /// Extra attempts per failed work unit (0 = fail immediately).
        retries: u32,
        /// Persist completed unit results under this directory.
        checkpoint_dir: Option<String>,
        /// Replay completed units from `checkpoint_dir` before executing.
        resume: bool,
        /// Persist canonical tile results under this directory.
        store_dir: Option<String>,
        /// Disable the tile-result store (even the in-process hot tier).
        no_store: bool,
        /// Stream the run-event JSONL here (`-` = stdout).
        events_out: Option<String>,
        /// Progress-line policy (`None` = auto: on iff stderr is a tty).
        progress: Option<bool>,
        /// Append the run-ledger record under this directory.
        ledger_dir: Option<String>,
        /// Skip the run-ledger append entirely.
        no_ledger: bool,
    },
    /// Compile one layer's (synthetic) pruned weights to the offline
    /// format and report compression/cycle statistics.
    Compile {
        /// Benchmark name.
        benchmark: Benchmark,
        /// Layer name (e.g. `conv4_2/3x3`, `enc0/q`).
        layer: String,
        /// Compaction factor.
        factor: usize,
    },
    /// Emit a Chrome-tracing JSON of one layer's systolic schedule.
    Trace {
        /// Benchmark name.
        benchmark: Benchmark,
        /// Layer name.
        layer: String,
    },
    /// Simulate one workload on one architecture.
    Simulate {
        /// Benchmark name.
        benchmark: Benchmark,
        /// Pruning level.
        pruning: PruningLevel,
        /// Architecture registry name.
        arch: String,
        /// Batch size.
        batch: usize,
        /// Use reduced sampling.
        fast: bool,
        /// Emit the per-layer CSV.
        csv: bool,
        /// Simulation worker threads (`None` = all cores).
        jobs: Option<usize>,
        /// Write a Chrome-trace JSON of the run here.
        trace_out: Option<String>,
        /// Write a metrics-registry JSON snapshot here.
        metrics_out: Option<String>,
        /// Diagnostic verbosity (0, 1 = `-v`, 2 = `-vv`).
        verbose: u8,
        /// Keep going past failed layers: emit the surviving layers plus
        /// a structured failure report instead of aborting.
        keep_going: bool,
        /// With `keep_going`, fail anyway once more than this many layers
        /// failed.
        max_failures: Option<u64>,
        /// Extra attempts per failed work unit (0 = fail immediately).
        retries: u32,
        /// Persist completed unit results under this directory.
        checkpoint_dir: Option<String>,
        /// Replay completed units from `checkpoint_dir` before executing.
        resume: bool,
        /// Persist canonical tile results under this directory.
        store_dir: Option<String>,
        /// Disable the tile-result store (even the in-process hot tier).
        no_store: bool,
        /// Stream the run-event JSONL here (`-` = stdout).
        events_out: Option<String>,
        /// Progress-line policy (`None` = auto: on iff stderr is a tty).
        progress: Option<bool>,
        /// Append the run-ledger record under this directory.
        ledger_dir: Option<String>,
        /// Skip the run-ledger append entirely.
        no_ledger: bool,
    },
    /// Profile one workload on one architecture: cycle attribution
    /// (stall taxonomy, per-row heatmap, worst tiles, SUDS displacement)
    /// plus optional machine-readable exports.
    Profile {
        /// Benchmark name.
        benchmark: Benchmark,
        /// Pruning level.
        pruning: PruningLevel,
        /// Architecture registry name.
        arch: String,
        /// Batch size.
        batch: usize,
        /// Use reduced sampling.
        fast: bool,
        /// Simulation worker threads (`None` = all cores).
        jobs: Option<usize>,
        /// Write the profile JSON here (`-` = stdout).
        json_out: Option<String>,
        /// Write the per-row utilization heatmap CSV here (`-` = stdout).
        heatmap_out: Option<String>,
        /// Write the Chrome-trace occupancy tracks here (`-` = stdout).
        trace_out: Option<String>,
        /// Write the versioned BENCH snapshot JSON here (`-` = stdout).
        bench_json: Option<String>,
        /// How many worst tiles to keep per layer.
        top_tiles: usize,
        /// Diagnostic verbosity (0, 1 = `-v`, 2 = `-vv`).
        verbose: u8,
        /// Persist canonical tile results under this directory.
        store_dir: Option<String>,
        /// Disable the tile-result store (even the in-process hot tier).
        no_store: bool,
        /// Stream the run-event JSONL here (`-` = stdout).
        events_out: Option<String>,
        /// Progress-line policy (`None` = auto: on iff stderr is a tty).
        progress: Option<bool>,
        /// Append the run-ledger record under this directory.
        ledger_dir: Option<String>,
        /// Skip the run-ledger append entirely.
        no_ledger: bool,
    },
    /// List the recorded run-ledger trajectory.
    BenchList {
        /// Ledger directory (default `results/ledger`).
        ledger_dir: Option<String>,
    },
    /// Compare two snapshots (`eureka-bench-v1` or `eureka-ledger-v1`)
    /// field-by-field under a regression threshold; the run errors (exit
    /// non-zero) when any gated field regressed — the CI perf gate.
    BenchDiff {
        /// Baseline snapshot path.
        baseline: String,
        /// Candidate snapshot path.
        candidate: String,
        /// Regression threshold in percent.
        max_regress: f64,
    },
    /// Run the differential verification suite (dense-GEMM oracle,
    /// brute-force SUDS checker, metamorphic invariants) over seeded
    /// random cases.
    Verify {
        /// Seeded cases per architecture.
        cases: u32,
        /// Master seed for the case stream.
        seed: u64,
        /// Restrict to one registry architecture (`None` = all).
        arch: Option<String>,
        /// Persist shrunk failing cases under this directory.
        corpus_dir: Option<String>,
        /// Replay this corpus directory instead of fuzzing.
        replay: Option<String>,
        /// Run the seeded fault-injection matrix (panic, error, stall ×
        /// serial, parallel) instead of fuzzing.
        fault_matrix: bool,
        /// Run the service chaos harness (panics, stalls crossing
        /// deadlines, mid-job crash + journal replay, shard corruption,
        /// overload shedding) instead of fuzzing.
        chaos: bool,
    },
    /// Run the resident job service on a Unix socket (JSON-lines
    /// protocol: submit/status/cancel/drain/health/shutdown).
    Serve {
        /// Unix socket path to listen on.
        socket: String,
        /// Write-ahead job journal directory (crash recovery).
        journal_dir: String,
        /// Persist completed unit results here (resume across restarts).
        checkpoint_dir: Option<String>,
        /// Persist canonical tile results here.
        store_dir: Option<String>,
        /// Admission queue bound; beyond it submissions shed.
        capacity: usize,
        /// Default per-job deadline in ms (0 = none).
        deadline_ms: u64,
        /// Simulation worker threads per job (`None` = 1).
        jobs: Option<usize>,
        /// Use reduced sampling for served jobs.
        fast: bool,
        /// Rewrite a Prometheus text exposition here after every
        /// connection and on exit.
        metrics_out: Option<String>,
        /// End-to-end latency budget in µs; arms the exit SLA summary
        /// and its run-ledger record.
        sla_budget_us: Option<u64>,
        /// Flight-recorder dump directory (`None` = `results`).
        flightrec_dir: Option<String>,
        /// Run-ledger directory for the SLA record.
        ledger_dir: Option<String>,
        /// Skip the SLA ledger append.
        no_ledger: bool,
    },
    /// Submit one job to a running service and print the response.
    Submit {
        /// Unix socket path of the service.
        socket: String,
        /// Benchmark name.
        benchmark: Benchmark,
        /// Pruning level.
        pruning: PruningLevel,
        /// Architecture registry name.
        arch: String,
        /// Batch size.
        batch: usize,
        /// Per-job deadline in ms (0 = the service default).
        deadline_ms: u64,
        /// Extra attempts per failed work unit.
        retries: u32,
        /// Poll until the job reaches a terminal state.
        wait: bool,
    },
    /// Ask a running service to drain: finish in-flight work, admit
    /// nothing new.
    Drain {
        /// Unix socket path of the service.
        socket: String,
        /// Also shut the service down after the drain.
        shutdown: bool,
    },
    /// Print a running service's live counters and per-outcome-class
    /// latency quantiles (p50/p90/p99).
    Stats {
        /// Unix socket path of the service.
        socket: String,
        /// Print the raw JSON response line instead of the table.
        json: bool,
    },
}

/// Usage text.
pub const USAGE: &str = "\
eureka — reproduction of the Eureka sparse tensor core (MICRO 2023)

USAGE:
  eureka help
  eureka archs
  eureka figure <table1|table2|fig09|fig11|fig12|fig13|fig14|ablations>
                  [--csv] [--fast] [--jobs <N>]
                  [--retries <N>] [--checkpoint-dir <dir>] [--resume]
                  [--store-dir <dir>] [--no-store]
                  [--events-out <file|->] [--progress|--no-progress]
                  [--ledger-dir <dir>|--no-ledger]
                  [--trace-out <file>] [--metrics-out <file>] [-v|-vv]
  eureka simulate --benchmark <mobilenetv1|inceptionv3|resnet50|bert>
                  [--pruning <dense|cons|mod>] [--arch <name>]
                  [--batch <N>] [--csv] [--fast] [--jobs <N>]
                  [--keep-going] [--max-failures <N>] [--retries <N>]
                  [--checkpoint-dir <dir>] [--resume]
                  [--store-dir <dir>] [--no-store]
                  [--events-out <file|->] [--progress|--no-progress]
                  [--ledger-dir <dir>|--no-ledger]
                  [--trace-out <file>] [--metrics-out <file>] [-v|-vv]
  eureka profile  --benchmark <name> [--pruning <level>] [--arch <name>]
                  [--batch <N>] [--fast] [--jobs <N>] [--top-tiles <N>]
                  [--store-dir <dir>] [--no-store]
                  [--events-out <file|->] [--progress|--no-progress]
                  [--ledger-dir <dir>|--no-ledger]
                  [--json <file|->] [--heatmap <file|->]
                  [--trace-out <file|->] [--bench-json <file|->] [-v|-vv]
  eureka bench    list [--ledger-dir <dir>]
  eureka bench    diff <baseline.json> <candidate.json> [--max-regress <pct>]
  eureka compile  --benchmark <name> --layer <layer-name> [--factor <P>]
  eureka trace    --benchmark <name> --layer <layer-name>   (Chrome-trace JSON)
  eureka verify   [--cases <N>] [--seed <S>] [--arch <name>]
                  [--corpus-dir <dir>] [--replay <dir>] [--fault-matrix]
                  [--chaos]
  eureka serve    [--socket <path>] [--journal-dir <dir>]
                  [--checkpoint-dir <dir>] [--store-dir <dir>]
                  [--capacity <N>] [--deadline-ms <N>] [--jobs <N>] [--fast]
                  [--metrics-out <file>] [--flightrec-dir <dir>]
                  [--sla-budget-us <N>] [--ledger-dir <dir>|--no-ledger]
  eureka submit   --benchmark <name> [--pruning <level>] [--arch <name>]
                  [--batch <N>] [--deadline-ms <N>] [--retries <N>]
                  [--socket <path>] [--wait]
  eureka drain    [--socket <path>] [--shutdown]
  eureka stats    [--socket <path>] [--json]

FAULT TOLERANCE:
  --keep-going          don't abort on a failed layer: print the surviving
                        layers plus a structured failure report naming every
                        (job, layer, kind, seed) site (CSV mode keeps stdout
                        machine-readable; the report goes to stderr)
  --max-failures <N>    with --keep-going, still fail once more than N
                        layers failed
  --retries <N>         re-execute a failed unit up to N extra times
                        (deterministic; unsupported combinations are never
                        retried)
  --checkpoint-dir <dir> persist each completed unit result, keyed by its
                        content hash, for crash recovery
  --resume              replay completed units from --checkpoint-dir
                        bit-identically instead of recomputing them

RESULT STORE:
  --store-dir <dir>     persist canonical tile results (content-addressed by
                        row-length signature) across runs: a warmed store
                        replays every tile of a repeated sweep with zero
                        re-simulation and byte-identical reports
  --no-store            disable the tile-result store entirely, including
                        the in-process hot tier (output is identical either
                        way; the store only removes redundant work)

TELEMETRY:
  --trace-out <file>    Chrome Trace Event JSON of the run (one track per
                        worker thread; open in chrome://tracing or Perfetto)
  --metrics-out <file>  JSON snapshot of the metrics registry (unit/cache/
                        store/failure/checkpoint counters, exec-time
                        histograms)
  -v / -vv              telemetry summary / per-layer breakdown on stderr

OBSERVABILITY:
  --events-out <file|-> stream the run-event JSONL (schema eureka-events-v1)
                        to a file or stdout ('-' suppresses the human report
                        to keep stdout machine-readable). Each line splits
                        deterministic fields (`det`: byte-identical across
                        reruns and --jobs settings) from wall-clock fields
                        (`wall`: seq, t_us, jobs). Compare streams with the
                        deterministic projection (scripts/check_events.py)
  --progress            force the throttled stderr progress line on
  --no-progress         force it off (default: on only when stderr is a
                        terminal; the line never touches stdout, reports,
                        or the metrics registry)
  --ledger-dir <dir>    append a one-line run summary (schema
                        eureka-ledger-v1: config key, git revision, metrics
                        digest, cycles, wall time, event count) here; when
                        omitted, defaults to results/ledger iff that
                        directory exists
  --no-ledger           skip the ledger append
  bench list            print the recorded ledger trajectory
  bench diff <a> <b>    field-by-field snapshot comparison (BENCH or ledger
                        records): cycle counts gate lower-is-better,
                        speedups higher-is-better, wall-clock fields are
                        informational only; exits non-zero when any gated
                        field moves beyond --max-regress percent (default 2)

PROFILING (`eureka profile`):
  prints a ranked bottleneck report (stall taxonomy: compute / memory /
  pipeline-bubble / tail-drain; MAC utilization; heaviest layers with their
  worst tiles). The report is bit-identical to an unprofiled simulation.
  --json <file|->       byte-stable profile JSON (schema eureka-profile-v1)
  --heatmap <file|->    per-(layer,row) utilization heatmap CSV
  --trace-out <file|->  Chrome-trace occupancy tracks (one per systolic row)
  --bench-json <file|-> versioned BENCH snapshot (schema eureka-bench-v1):
                        cycles, MAC utilization and speedup-vs-dense for the
                        standard arch matrix plus the requested arch
  --top-tiles <N>       worst tiles kept per layer (default 5)
  at most one export may write to stdout ('-'); with a stdout export the
  human report is suppressed to keep stdout machine-readable

JOB SERVICE (`eureka serve`):
  a resident service on a Unix socket speaking a JSON-lines protocol
  (submit/status/cancel/drain/health/shutdown). Admission is bounded:
  beyond --capacity queued jobs, submissions shed with a typed
  'overloaded' rejection. Every accepted job is journaled write-ahead
  (schema eureka-journal v1) before it can run, so a SIGKILL'd server
  replays accepted-but-unfinished jobs on restart — with
  --checkpoint-dir, without recomputing units the previous life
  completed. SIGTERM/SIGINT drain gracefully: in-flight work finishes,
  new work sheds, then the process exits. Failed units retry under
  seeded exponential backoff with jitter (deterministic per unit).
  --deadline-ms sets the default per-job deadline, enforced by
  cooperative cancellation at unit boundaries.
  submit --wait        poll until the job is terminal; exits non-zero
                       unless the job completed
  drain [--shutdown]   finish in-flight work and stop admitting; with
                       --shutdown the server process exits afterwards
  stats [--json]       live counters plus per-outcome-class latency
                       quantiles (queue-wait / exec / end-to-end p50,
                       p90, p99) over the `stats` wire verb
  --metrics-out <file> rewrite a Prometheus text exposition after every
                       connection and on exit (tmp + rename, so
                       scrapers never read a torn file); the `metrics`
                       wire verb returns the same text over the socket
  --flightrec-dir <dir> where the always-armed flight recorder (a
                       fixed-capacity in-memory ring of job lifecycle
                       records, schema eureka-flightrec-v1) dumps its
                       contents: after every connection, on SIGTERM
                       drain, on panic, and on the `dump` wire verb —
                       a SIGKILL'd daemon leaves a replayable
                       flightrec-<pid>.jsonl behind (default: results)
  --sla-budget-us <N>  print an exit SLA summary (completed-job p99
                       end-to-end latency vs the budget, jobs/sec,
                       shed rate, saturation flag) and append it to
                       the run ledger so `bench diff` gates
                       service-latency regressions
  verify --chaos       seeded service-layer fault schedules (worker
                       panics, stalls crossing deadlines, mid-job crash
                       + journal replay, journal/checkpoint corruption,
                       overload): the service must recover to a
                       consistent ledger with surviving results
                       bit-identical to a fault-free run

Run `eureka archs` for the architecture registry.";

fn parse_benchmark(s: &str) -> Result<Benchmark, String> {
    match s.to_ascii_lowercase().as_str() {
        "mobilenetv1" | "mobilenet" => Ok(Benchmark::MobileNetV1),
        "inceptionv3" | "inception" => Ok(Benchmark::InceptionV3),
        "resnet50" | "resnet" => Ok(Benchmark::ResNet50),
        "bert" | "bert-squad" | "bertsquad" => Ok(Benchmark::BertSquad),
        other => Err(format!("unknown benchmark '{other}'")),
    }
}

fn parse_jobs(s: &str) -> Result<usize, String> {
    let n: usize = s.parse().map_err(|e| format!("bad --jobs: {e}"))?;
    if n == 0 {
        return Err("--jobs must be positive".into());
    }
    Ok(n)
}

fn parse_retries(s: &str) -> Result<u32, String> {
    s.parse().map_err(|e| format!("bad --retries: {e}"))
}

fn parse_pruning(s: &str) -> Result<PruningLevel, String> {
    match s.to_ascii_lowercase().as_str() {
        "dense" => Ok(PruningLevel::Dense),
        "cons" | "conservative" => Ok(PruningLevel::Conservative),
        "mod" | "moderate" => Ok(PruningLevel::Moderate),
        other => Err(format!("unknown pruning level '{other}'")),
    }
}

/// Parses an argument list (without the program name).
///
/// # Errors
///
/// Returns a human-readable message for unknown commands, flags, or
/// malformed values.
pub fn parse<I, S>(args: I) -> Result<Command, String>
where
    I: IntoIterator<Item = S>,
    S: Into<String>,
{
    let args: Vec<String> = args.into_iter().map(Into::into).collect();
    let Some(cmd) = args.first() else {
        return Ok(Command::Help);
    };
    match cmd.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "archs" => Ok(Command::Archs),
        "figure" => {
            let name = args
                .get(1)
                .filter(|a| !a.starts_with("--"))
                .ok_or("figure requires a name, e.g. `eureka figure fig11`")?
                .clone();
            let known = [
                "table1",
                "table2",
                "fig09",
                "fig11",
                "fig12",
                "fig13",
                "fig14",
                "ablations",
            ];
            if !known.contains(&name.as_str()) {
                return Err(format!(
                    "unknown figure '{name}' (expected one of {known:?})"
                ));
            }
            let mut csv = false;
            let mut fast = false;
            let mut jobs = None;
            let mut trace_out = None;
            let mut metrics_out = None;
            let mut verbose = 0u8;
            let mut retries = 0u32;
            let mut checkpoint_dir = None;
            let mut resume = false;
            let mut store_dir = None;
            let mut no_store = false;
            let mut events_out = None;
            let mut progress = None;
            let mut ledger_dir = None;
            let mut no_ledger = false;
            let mut it = args[2..].iter();
            while let Some(a) = it.next() {
                let mut value = |flag: &str| {
                    it.next()
                        .cloned()
                        .ok_or_else(|| format!("{flag} requires a value"))
                };
                match a.as_str() {
                    "--csv" => csv = true,
                    "--fast" => fast = true,
                    "--jobs" => jobs = Some(parse_jobs(&value("--jobs")?)?),
                    "--trace-out" => trace_out = Some(value("--trace-out")?),
                    "--metrics-out" => metrics_out = Some(value("--metrics-out")?),
                    "-v" | "--verbose" => verbose = verbose.saturating_add(1),
                    "-vv" => verbose = verbose.saturating_add(2),
                    "--retries" => retries = parse_retries(&value("--retries")?)?,
                    "--checkpoint-dir" => checkpoint_dir = Some(value("--checkpoint-dir")?),
                    "--resume" => resume = true,
                    "--store-dir" => store_dir = Some(value("--store-dir")?),
                    "--no-store" => no_store = true,
                    "--events-out" => events_out = Some(value("--events-out")?),
                    "--progress" => progress = Some(true),
                    "--no-progress" => progress = Some(false),
                    "--ledger-dir" => ledger_dir = Some(value("--ledger-dir")?),
                    "--no-ledger" => no_ledger = true,
                    other => return Err(format!("unknown flag '{other}' for figure")),
                }
            }
            if resume && checkpoint_dir.is_none() {
                return Err("--resume requires --checkpoint-dir".into());
            }
            if no_store && store_dir.is_some() {
                return Err("--no-store conflicts with --store-dir".into());
            }
            if no_ledger && ledger_dir.is_some() {
                return Err("--no-ledger conflicts with --ledger-dir".into());
            }
            if csv && events_out.as_deref() == Some("-") {
                return Err("--events-out - conflicts with --csv (both claim stdout)".into());
            }
            Ok(Command::Figure {
                name,
                csv,
                fast,
                jobs,
                trace_out,
                metrics_out,
                verbose,
                retries,
                checkpoint_dir,
                resume,
                store_dir,
                no_store,
                events_out,
                progress,
                ledger_dir,
                no_ledger,
            })
        }
        "compile" => {
            let mut benchmark = None;
            let mut layer = None;
            let mut factor = 4usize;
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                let mut value = |flag: &str| {
                    it.next()
                        .cloned()
                        .ok_or_else(|| format!("{flag} requires a value"))
                };
                match a.as_str() {
                    "--benchmark" => benchmark = Some(parse_benchmark(&value("--benchmark")?)?),
                    "--layer" => layer = Some(value("--layer")?),
                    "--factor" => {
                        factor = value("--factor")?
                            .parse()
                            .map_err(|e| format!("bad --factor: {e}"))?;
                    }
                    other => return Err(format!("unknown flag '{other}' for compile")),
                }
            }
            if !(1..=16).contains(&factor) {
                return Err("--factor must be in 1..=16".into());
            }
            Ok(Command::Compile {
                benchmark: benchmark.ok_or("compile requires --benchmark")?,
                layer: layer.ok_or("compile requires --layer")?,
                factor,
            })
        }
        "trace" => {
            let mut benchmark = None;
            let mut layer = None;
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                let mut value = |flag: &str| {
                    it.next()
                        .cloned()
                        .ok_or_else(|| format!("{flag} requires a value"))
                };
                match a.as_str() {
                    "--benchmark" => benchmark = Some(parse_benchmark(&value("--benchmark")?)?),
                    "--layer" => layer = Some(value("--layer")?),
                    other => return Err(format!("unknown flag '{other}' for trace")),
                }
            }
            Ok(Command::Trace {
                benchmark: benchmark.ok_or("trace requires --benchmark")?,
                layer: layer.ok_or("trace requires --layer")?,
            })
        }
        "simulate" => {
            let mut benchmark = None;
            let mut pruning = PruningLevel::Moderate;
            let mut arch_name = "eureka-p4".to_string();
            let mut batch = 32usize;
            let mut fast = false;
            let mut csv = false;
            let mut jobs = None;
            let mut trace_out = None;
            let mut metrics_out = None;
            let mut verbose = 0u8;
            let mut keep_going = false;
            let mut max_failures = None;
            let mut retries = 0u32;
            let mut checkpoint_dir = None;
            let mut resume = false;
            let mut store_dir = None;
            let mut no_store = false;
            let mut events_out = None;
            let mut progress = None;
            let mut ledger_dir = None;
            let mut no_ledger = false;
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                let mut value = |flag: &str| {
                    it.next()
                        .cloned()
                        .ok_or_else(|| format!("{flag} requires a value"))
                };
                match a.as_str() {
                    "--benchmark" => benchmark = Some(parse_benchmark(&value("--benchmark")?)?),
                    "--pruning" => pruning = parse_pruning(&value("--pruning")?)?,
                    "--arch" => arch_name = value("--arch")?,
                    "--batch" => {
                        batch = value("--batch")?
                            .parse()
                            .map_err(|e| format!("bad --batch: {e}"))?;
                    }
                    "--fast" => fast = true,
                    "--csv" => csv = true,
                    "--jobs" => jobs = Some(parse_jobs(&value("--jobs")?)?),
                    "--trace-out" => trace_out = Some(value("--trace-out")?),
                    "--metrics-out" => metrics_out = Some(value("--metrics-out")?),
                    "-v" | "--verbose" => verbose = verbose.saturating_add(1),
                    "-vv" => verbose = verbose.saturating_add(2),
                    "--keep-going" => keep_going = true,
                    "--max-failures" => {
                        max_failures = Some(
                            value("--max-failures")?
                                .parse()
                                .map_err(|e| format!("bad --max-failures: {e}"))?,
                        );
                    }
                    "--retries" => retries = parse_retries(&value("--retries")?)?,
                    "--checkpoint-dir" => checkpoint_dir = Some(value("--checkpoint-dir")?),
                    "--resume" => resume = true,
                    "--store-dir" => store_dir = Some(value("--store-dir")?),
                    "--no-store" => no_store = true,
                    "--events-out" => events_out = Some(value("--events-out")?),
                    "--progress" => progress = Some(true),
                    "--no-progress" => progress = Some(false),
                    "--ledger-dir" => ledger_dir = Some(value("--ledger-dir")?),
                    "--no-ledger" => no_ledger = true,
                    other => return Err(format!("unknown flag '{other}' for simulate")),
                }
            }
            let benchmark = benchmark.ok_or("simulate requires --benchmark")?;
            if arch::by_name(&arch_name).is_none() {
                return Err(format!(
                    "unknown architecture '{arch_name}'; run `eureka archs`"
                ));
            }
            if batch == 0 {
                return Err("--batch must be positive".into());
            }
            if max_failures.is_some() && !keep_going {
                return Err("--max-failures requires --keep-going".into());
            }
            if resume && checkpoint_dir.is_none() {
                return Err("--resume requires --checkpoint-dir".into());
            }
            if no_store && store_dir.is_some() {
                return Err("--no-store conflicts with --store-dir".into());
            }
            if no_ledger && ledger_dir.is_some() {
                return Err("--no-ledger conflicts with --ledger-dir".into());
            }
            if csv && events_out.as_deref() == Some("-") {
                return Err("--events-out - conflicts with --csv (both claim stdout)".into());
            }
            Ok(Command::Simulate {
                benchmark,
                pruning,
                arch: arch_name,
                batch,
                fast,
                csv,
                jobs,
                trace_out,
                metrics_out,
                verbose,
                keep_going,
                max_failures,
                retries,
                checkpoint_dir,
                resume,
                store_dir,
                no_store,
                events_out,
                progress,
                ledger_dir,
                no_ledger,
            })
        }
        "profile" => {
            let mut benchmark = None;
            let mut pruning = PruningLevel::Moderate;
            let mut arch_name = "eureka-p4".to_string();
            let mut batch = 32usize;
            let mut fast = false;
            let mut jobs = None;
            let mut json_out = None;
            let mut heatmap_out = None;
            let mut trace_out = None;
            let mut bench_json = None;
            let mut top_tiles = 5usize;
            let mut verbose = 0u8;
            let mut store_dir = None;
            let mut no_store = false;
            let mut events_out = None;
            let mut progress = None;
            let mut ledger_dir = None;
            let mut no_ledger = false;
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                let mut value = |flag: &str| {
                    it.next()
                        .cloned()
                        .ok_or_else(|| format!("{flag} requires a value"))
                };
                match a.as_str() {
                    "--benchmark" => benchmark = Some(parse_benchmark(&value("--benchmark")?)?),
                    "--pruning" => pruning = parse_pruning(&value("--pruning")?)?,
                    "--arch" => arch_name = value("--arch")?,
                    "--batch" => {
                        batch = value("--batch")?
                            .parse()
                            .map_err(|e| format!("bad --batch: {e}"))?;
                    }
                    "--fast" => fast = true,
                    "--jobs" => jobs = Some(parse_jobs(&value("--jobs")?)?),
                    "--json" => json_out = Some(value("--json")?),
                    "--heatmap" => heatmap_out = Some(value("--heatmap")?),
                    "--trace-out" => trace_out = Some(value("--trace-out")?),
                    "--bench-json" => bench_json = Some(value("--bench-json")?),
                    "--top-tiles" => {
                        top_tiles = value("--top-tiles")?
                            .parse()
                            .map_err(|e| format!("bad --top-tiles: {e}"))?;
                    }
                    "-v" | "--verbose" => verbose = verbose.saturating_add(1),
                    "-vv" => verbose = verbose.saturating_add(2),
                    "--store-dir" => store_dir = Some(value("--store-dir")?),
                    "--no-store" => no_store = true,
                    "--events-out" => events_out = Some(value("--events-out")?),
                    "--progress" => progress = Some(true),
                    "--no-progress" => progress = Some(false),
                    "--ledger-dir" => ledger_dir = Some(value("--ledger-dir")?),
                    "--no-ledger" => no_ledger = true,
                    other => return Err(format!("unknown flag '{other}' for profile")),
                }
            }
            let benchmark = benchmark.ok_or("profile requires --benchmark")?;
            if arch::by_name(&arch_name).is_none() {
                return Err(format!(
                    "unknown architecture '{arch_name}'; run `eureka archs`"
                ));
            }
            if batch == 0 {
                return Err("--batch must be positive".into());
            }
            let stdout_exports = [
                &json_out,
                &heatmap_out,
                &trace_out,
                &bench_json,
                &events_out,
            ]
            .iter()
            .filter(|o| o.as_deref() == Some("-"))
            .count();
            if stdout_exports > 1 {
                return Err("at most one profile export may write to stdout ('-')".into());
            }
            if no_store && store_dir.is_some() {
                return Err("--no-store conflicts with --store-dir".into());
            }
            if no_ledger && ledger_dir.is_some() {
                return Err("--no-ledger conflicts with --ledger-dir".into());
            }
            Ok(Command::Profile {
                benchmark,
                pruning,
                arch: arch_name,
                batch,
                fast,
                jobs,
                json_out,
                heatmap_out,
                trace_out,
                bench_json,
                top_tiles,
                verbose,
                store_dir,
                no_store,
                events_out,
                progress,
                ledger_dir,
                no_ledger,
            })
        }
        "bench" => match args.get(1).map(String::as_str) {
            Some("list") => {
                let mut ledger_dir = None;
                let mut it = args[2..].iter();
                while let Some(a) = it.next() {
                    let mut value = |flag: &str| {
                        it.next()
                            .cloned()
                            .ok_or_else(|| format!("{flag} requires a value"))
                    };
                    match a.as_str() {
                        "--ledger-dir" => ledger_dir = Some(value("--ledger-dir")?),
                        other => return Err(format!("unknown flag '{other}' for bench list")),
                    }
                }
                Ok(Command::BenchList { ledger_dir })
            }
            Some("diff") => {
                let mut paths = Vec::new();
                let mut max_regress = 2.0f64;
                let mut it = args[2..].iter();
                while let Some(a) = it.next() {
                    let mut value = |flag: &str| {
                        it.next()
                            .cloned()
                            .ok_or_else(|| format!("{flag} requires a value"))
                    };
                    match a.as_str() {
                        "--max-regress" => {
                            max_regress = value("--max-regress")?
                                .parse()
                                .map_err(|e| format!("bad --max-regress: {e}"))?;
                            if !max_regress.is_finite() || max_regress < 0.0 {
                                return Err("--max-regress must be a non-negative percent".into());
                            }
                        }
                        flag if flag.starts_with("--") => {
                            return Err(format!("unknown flag '{flag}' for bench diff"));
                        }
                        path => paths.push(path.to_string()),
                    }
                }
                let [baseline, candidate] = <[String; 2]>::try_from(paths).map_err(|_| {
                    "bench diff requires exactly two snapshot paths: \
                     `eureka bench diff <baseline.json> <candidate.json>`"
                        .to_string()
                })?;
                Ok(Command::BenchDiff {
                    baseline,
                    candidate,
                    max_regress,
                })
            }
            _ => Err("bench requires a subcommand: `list` or `diff <a> <b>`".into()),
        },
        "verify" => {
            let mut cases = 200u32;
            let mut seed = 42u64;
            let mut arch_name = None;
            let mut corpus_dir = None;
            let mut replay = None;
            let mut fault_matrix = false;
            let mut chaos = false;
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                let mut value = |flag: &str| {
                    it.next()
                        .cloned()
                        .ok_or_else(|| format!("{flag} requires a value"))
                };
                match a.as_str() {
                    "--cases" => {
                        cases = value("--cases")?
                            .parse()
                            .map_err(|e| format!("bad --cases: {e}"))?;
                    }
                    "--seed" => {
                        seed = value("--seed")?
                            .parse()
                            .map_err(|e| format!("bad --seed: {e}"))?;
                    }
                    "--arch" => arch_name = Some(value("--arch")?),
                    "--corpus-dir" => corpus_dir = Some(value("--corpus-dir")?),
                    "--replay" => replay = Some(value("--replay")?),
                    "--fault-matrix" => fault_matrix = true,
                    "--chaos" => chaos = true,
                    other => return Err(format!("unknown flag '{other}' for verify")),
                }
            }
            if cases == 0 && replay.is_none() && !fault_matrix {
                return Err("--cases must be positive".into());
            }
            if let Some(name) = &arch_name {
                if arch::by_name(name).is_none() {
                    return Err(format!("unknown architecture '{name}'; run `eureka archs`"));
                }
            }
            Ok(Command::Verify {
                cases,
                seed,
                arch: arch_name,
                corpus_dir,
                replay,
                fault_matrix,
                chaos,
            })
        }
        "serve" => {
            let mut socket = "eureka.sock".to_string();
            let mut journal_dir = "eureka-journal".to_string();
            let mut checkpoint_dir = None;
            let mut store_dir = None;
            let mut capacity = 8usize;
            let mut deadline_ms = 0u64;
            let mut jobs = None;
            let mut fast = false;
            let mut metrics_out = None;
            let mut sla_budget_us = None;
            let mut flightrec_dir = None;
            let mut ledger_dir = None;
            let mut no_ledger = false;
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                let mut value = |flag: &str| {
                    it.next()
                        .cloned()
                        .ok_or_else(|| format!("{flag} requires a value"))
                };
                match a.as_str() {
                    "--socket" => socket = value("--socket")?,
                    "--journal-dir" => journal_dir = value("--journal-dir")?,
                    "--checkpoint-dir" => checkpoint_dir = Some(value("--checkpoint-dir")?),
                    "--store-dir" => store_dir = Some(value("--store-dir")?),
                    "--capacity" => {
                        capacity = value("--capacity")?
                            .parse()
                            .map_err(|e| format!("bad --capacity: {e}"))?;
                        if capacity == 0 {
                            return Err("--capacity must be positive".into());
                        }
                    }
                    "--deadline-ms" => {
                        deadline_ms = value("--deadline-ms")?
                            .parse()
                            .map_err(|e| format!("bad --deadline-ms: {e}"))?;
                    }
                    "--jobs" => jobs = Some(parse_jobs(&value("--jobs")?)?),
                    "--fast" => fast = true,
                    "--metrics-out" => metrics_out = Some(value("--metrics-out")?),
                    "--sla-budget-us" => {
                        let budget: u64 = value("--sla-budget-us")?
                            .parse()
                            .map_err(|e| format!("bad --sla-budget-us: {e}"))?;
                        if budget == 0 {
                            return Err("--sla-budget-us must be positive".into());
                        }
                        sla_budget_us = Some(budget);
                    }
                    "--flightrec-dir" => flightrec_dir = Some(value("--flightrec-dir")?),
                    "--ledger-dir" => ledger_dir = Some(value("--ledger-dir")?),
                    "--no-ledger" => no_ledger = true,
                    other => return Err(format!("unknown flag '{other}' for serve")),
                }
            }
            Ok(Command::Serve {
                socket,
                journal_dir,
                checkpoint_dir,
                store_dir,
                capacity,
                deadline_ms,
                jobs,
                fast,
                metrics_out,
                sla_budget_us,
                flightrec_dir,
                ledger_dir,
                no_ledger,
            })
        }
        "submit" => {
            let mut socket = "eureka.sock".to_string();
            let mut benchmark = None;
            let mut pruning = PruningLevel::Moderate;
            let mut arch_name = "eureka-p4".to_string();
            let mut batch = 32usize;
            let mut deadline_ms = 0u64;
            let mut retries = 0u32;
            let mut wait = false;
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                let mut value = |flag: &str| {
                    it.next()
                        .cloned()
                        .ok_or_else(|| format!("{flag} requires a value"))
                };
                match a.as_str() {
                    "--socket" => socket = value("--socket")?,
                    "--benchmark" => benchmark = Some(parse_benchmark(&value("--benchmark")?)?),
                    "--pruning" => pruning = parse_pruning(&value("--pruning")?)?,
                    "--arch" => arch_name = value("--arch")?,
                    "--batch" => {
                        batch = value("--batch")?
                            .parse()
                            .map_err(|e| format!("bad --batch: {e}"))?;
                    }
                    "--deadline-ms" => {
                        deadline_ms = value("--deadline-ms")?
                            .parse()
                            .map_err(|e| format!("bad --deadline-ms: {e}"))?;
                    }
                    "--retries" => retries = parse_retries(&value("--retries")?)?,
                    "--wait" => wait = true,
                    other => return Err(format!("unknown flag '{other}' for submit")),
                }
            }
            let benchmark = benchmark.ok_or("submit requires --benchmark")?;
            Ok(Command::Submit {
                socket,
                benchmark,
                pruning,
                arch: arch_name,
                batch,
                deadline_ms,
                retries,
                wait,
            })
        }
        "drain" => {
            let mut socket = "eureka.sock".to_string();
            let mut shutdown = false;
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                let mut value = |flag: &str| {
                    it.next()
                        .cloned()
                        .ok_or_else(|| format!("{flag} requires a value"))
                };
                match a.as_str() {
                    "--socket" => socket = value("--socket")?,
                    "--shutdown" => shutdown = true,
                    other => return Err(format!("unknown flag '{other}' for drain")),
                }
            }
            Ok(Command::Drain { socket, shutdown })
        }
        "stats" => {
            let mut socket = "eureka.sock".to_string();
            let mut json = false;
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                let mut value = |flag: &str| {
                    it.next()
                        .cloned()
                        .ok_or_else(|| format!("{flag} requires a value"))
                };
                match a.as_str() {
                    "--socket" => socket = value("--socket")?,
                    "--json" => json = true,
                    other => return Err(format!("unknown flag '{other}' for stats")),
                }
            }
            Ok(Command::Stats { socket, json })
        }
        other => Err(format!("unknown command '{other}'; try `eureka help`")),
    }
}

/// Telemetry wiring shared by `figure` and `simulate`: sets the
/// process verbosity, arms span recording when a trace is requested,
/// and writes the `--trace-out` / `--metrics-out` exports afterwards.
struct Telemetry<'a> {
    trace_out: Option<&'a str>,
    metrics_out: Option<&'a str>,
    verbose: u8,
}

impl<'a> Telemetry<'a> {
    fn begin(trace_out: Option<&'a str>, metrics_out: Option<&'a str>, verbose: u8) -> Self {
        eureka_obs::log::set_verbosity(verbose);
        eureka_obs::metrics::reset();
        if trace_out.is_some() {
            eureka_obs::span::clear();
            eureka_obs::span::set_enabled(true);
        }
        Telemetry {
            trace_out,
            metrics_out,
            verbose,
        }
    }

    fn finish(self) -> Result<(), String> {
        if let Some(path) = self.trace_out {
            eureka_obs::span::set_enabled(false);
            let json = eureka_obs::chrome::export_trace_json();
            std::fs::write(path, &json)
                .map_err(|e| format!("cannot write trace to {path}: {e}"))?;
            eureka_obs::info!("trace: {} bytes to {path}", json.len());
        }
        if let Some(path) = self.metrics_out {
            let json = eureka_obs::metrics::snapshot_json(true);
            std::fs::write(path, &json)
                .map_err(|e| format!("cannot write metrics to {path}: {e}"))?;
            eureka_obs::info!("metrics: {} bytes to {path}", json.len());
        }
        if self.verbose >= 1 {
            eureka_obs::info!("{}", eureka_obs::metrics::human_summary());
        }
        Ok(())
    }
}

/// RAII guard for the process-wide retry/checkpoint/store settings
/// consumed by `Runner::default()`. Armed only when the user asked for
/// fault tolerance or a non-default store configuration; resets every
/// setting on drop so one command's flags never leak into library
/// callers or tests running in the same process.
struct RunnerGlobals {
    armed: bool,
}

impl RunnerGlobals {
    fn apply(
        retries: u32,
        checkpoint_dir: Option<&str>,
        resume: bool,
        store_dir: Option<&str>,
        no_store: bool,
    ) -> Self {
        let armed = retries > 0 || checkpoint_dir.is_some() || store_dir.is_some() || no_store;
        if retries > 0 {
            eureka_sim::runner::set_global_retry(eureka_sim::RetryPolicy::transient(retries + 1));
        }
        if let Some(dir) = checkpoint_dir {
            eureka_sim::runner::set_global_checkpoint(Some((
                std::path::PathBuf::from(dir),
                resume,
            )));
        }
        if store_dir.is_some() || no_store {
            eureka_sim::runner::set_global_store(
                store_dir.map(std::path::PathBuf::from),
                !no_store,
            );
        }
        Self { armed }
    }
}

impl Drop for RunnerGlobals {
    fn drop(&mut self) {
        if self.armed {
            eureka_sim::runner::set_global_retry(eureka_sim::RetryPolicy::NONE);
            eureka_sim::runner::set_global_checkpoint(None);
            eureka_sim::runner::set_global_store(None, true);
        }
    }
}

/// RAII guard for the run-event bus and the progress reporter: arms the
/// JSONL writer (file or stdout for `-`) and applies the progress
/// policy on construction, then finalizes the progress line and
/// flushes/detaches the writer on drop — including every early-return
/// error path. The emitted-event count survives the drop (until the
/// next arm), so the ledger append can read it afterwards.
struct EventsGuard;

impl EventsGuard {
    fn begin(events_out: Option<&str>, progress: Option<bool>) -> Result<Self, String> {
        let writer: Option<Box<dyn std::io::Write + Send>> = match events_out {
            None => None,
            Some("-") => Some(Box::new(std::io::stdout())),
            Some(path) => {
                let file = std::fs::File::create(path)
                    .map_err(|e| format!("cannot open events file {path}: {e}"))?;
                Some(Box::new(std::io::BufWriter::new(file)))
            }
        };
        eureka_obs::events::arm(writer);
        eureka_obs::progress::set_mode(match progress {
            None => eureka_obs::progress::Mode::Auto,
            Some(true) => eureka_obs::progress::Mode::On,
            Some(false) => eureka_obs::progress::Mode::Off,
        });
        Ok(EventsGuard)
    }
}

impl Drop for EventsGuard {
    fn drop(&mut self) {
        eureka_obs::progress::set_mode(eureka_obs::progress::Mode::Off);
        eureka_obs::events::disarm();
    }
}

/// Where to append the run ledger: an explicit `--ledger-dir` always
/// wins, `--no-ledger` always disables, and the `results/ledger`
/// default applies only when that directory already exists — so library
/// tests and checkouts without the results tree never grow one as a
/// side effect.
fn resolve_ledger_dir(ledger_dir: Option<&str>, no_ledger: bool) -> Option<std::path::PathBuf> {
    if no_ledger {
        return None;
    }
    match ledger_dir {
        Some(dir) => Some(std::path::PathBuf::from(dir)),
        None => {
            let default = std::path::Path::new("results/ledger");
            default.is_dir().then(|| default.to_path_buf())
        }
    }
}

/// Appends one run-ledger record (a no-op when [`resolve_ledger_dir`]
/// yields nothing). Reads the event count off the bus, so call it after
/// the run finished but within the same command.
fn append_ledger(
    ledger_dir: Option<&str>,
    no_ledger: bool,
    kind: &str,
    label: String,
    total_cycles: Option<u64>,
    speedup_vs_dense: Option<f64>,
    started: std::time::Instant,
) -> Result<(), String> {
    let Some(dir) = resolve_ledger_dir(ledger_dir, no_ledger) else {
        return Ok(());
    };
    let record = eureka_sim::LedgerRecord {
        kind: kind.to_string(),
        label,
        total_cycles,
        speedup_vs_dense,
        wall_ms: started.elapsed().as_secs_f64() * 1e3,
        events: eureka_obs::events::emitted_count(),
        sla: None,
    };
    let path = eureka_sim::ledger::append(&dir, &record)?;
    eureka_obs::info!("ledger: appended {}", path.display());
    Ok(())
}

/// Canonical ledger label for a simulate/profile-shaped run.
fn run_label(
    benchmark: Benchmark,
    pruning: PruningLevel,
    batch: usize,
    fast: bool,
    arch_name: &str,
) -> String {
    format!(
        "{}|{}|batch{batch}|{}|arch={arch_name}",
        benchmark.name(),
        pruning.label(),
        if fast { "fast" } else { "paper" },
    )
}

/// A failed run: the message plus the process exit code. `bench diff`
/// distinguishes a missing/unreadable snapshot (code 2: an environment
/// or usage problem CI should treat as broken wiring) from a genuine
/// perf regression (code 1: the gate fired); everything else exits 1.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunError {
    /// Human-readable description, printed to stderr.
    pub message: String,
    /// Process exit code (1 = failure/regression, 2 = unusable input).
    pub code: u8,
}

impl RunError {
    fn failure(message: String) -> Self {
        RunError { message, code: 1 }
    }
}

/// Executes a parsed command, returning the text to print; errors carry
/// the exit code the process should use.
///
/// # Errors
///
/// See [`RunError`].
pub fn run_with_code(cmd: &Command) -> Result<String, RunError> {
    if let Command::BenchDiff {
        baseline,
        candidate,
        max_regress,
    } = cmd
    {
        return run_bench_diff(baseline, candidate, *max_regress);
    }
    run(cmd).map_err(RunError::failure)
}

/// Compares two snapshots under the regression gate. Load/parse
/// problems (missing file, malformed JSON, unknown schema, incomparable
/// snapshots) exit 2; a regression past the threshold exits 1.
fn run_bench_diff(baseline: &str, candidate: &str, max_regress: f64) -> Result<String, RunError> {
    let load = |path: &str| {
        eureka_sim::ledger::load_snapshot(std::path::Path::new(path)).map_err(|e| RunError {
            message: format!("bench diff: unusable snapshot: {e}"),
            code: 2,
        })
    };
    let a = load(baseline)?;
    let b = load(candidate)?;
    let report = eureka_sim::ledger::diff(&a, &b, max_regress).map_err(|e| RunError {
        message: format!("bench diff: {e}"),
        code: 2,
    })?;
    let rendered = format!(
        "baseline : {baseline}\ncandidate: {candidate}\nthreshold: {max_regress}%\n{}",
        report.render()
    );
    // The regression gate: a failing diff is a failing command.
    if report.ok() {
        Ok(rendered)
    } else {
        Err(RunError::failure(rendered))
    }
}

/// Surfaces degradation counters in the human-readable end-of-run
/// report: unit failures by kind, store shard errors, checkpoint
/// decode errors, retry-backoff sleep time, journal decode errors.
/// Healthy runs (all zero) add nothing.
fn health_warning_lines() -> String {
    let c = |name: &str| eureka_obs::metrics::counter_value(name).unwrap_or(0);
    let mut out = String::new();
    let (panics, sims, cancelled) = (
        c("runner.failures.panic"),
        c("runner.failures.sim_error"),
        c("runner.failures.cancelled"),
    );
    if panics + sims + cancelled > 0 {
        out.push_str(&format!(
            "  unit failures  : {panics} panic, {sims} sim-error, {cancelled} cancelled\n"
        ));
    }
    let store_errors = c("store.errors");
    if store_errors > 0 {
        out.push_str(&format!(
            "  store errors   : {store_errors} (unreadable/unwritable shards; tiles recomputed)\n"
        ));
    }
    let ckpt_errors = c("checkpoint.errors");
    if ckpt_errors > 0 {
        out.push_str(&format!(
            "  ckpt errors    : {ckpt_errors} (corrupt entries skipped; units recomputed)\n"
        ));
    }
    let backoff_slept = c("runner.backoff.slept_us");
    if backoff_slept > 0 {
        out.push_str(&format!(
            "  backoff        : {backoff_slept} us slept across unit retries\n"
        ));
    }
    let journal_errors = c("journal.errors");
    if journal_errors > 0 {
        out.push_str(&format!(
            "  journal errors : {journal_errors} (corrupt entries skipped; jobs replayed or resubmitted)\n"
        ));
    }
    out
}

/// Executes a parsed command, returning the text to print.
///
/// # Errors
///
/// Returns a message for unsupported combinations (e.g. S2TA on
/// InceptionV3).
pub fn run(cmd: &Command) -> Result<String, String> {
    match cmd {
        Command::Help => Ok(USAGE.to_string()),
        Command::Archs => {
            let mut out = String::from("architectures:\n");
            for name in arch::registry_names() {
                let a = arch::by_name(name)
                    .expect("invariant: every registry name resolves to its architecture");
                out.push_str(&format!("  {name:<18} {}\n", a.name()));
            }
            Ok(out)
        }
        Command::Figure {
            name,
            csv,
            fast,
            jobs,
            trace_out,
            metrics_out,
            verbose,
            retries,
            checkpoint_dir,
            resume,
            store_dir,
            no_store,
            events_out,
            progress,
            ledger_dir,
            no_ledger,
        } => {
            if let Some(n) = jobs {
                eureka_sim::runner::set_global_jobs(*n);
            }
            let _globals = RunnerGlobals::apply(
                *retries,
                checkpoint_dir.as_deref(),
                *resume,
                store_dir.as_deref(),
                *no_store,
            );
            let wall_start = std::time::Instant::now();
            let _events = EventsGuard::begin(events_out.as_deref(), *progress)?;
            let tel = Telemetry::begin(trace_out.as_deref(), metrics_out.as_deref(), *verbose);
            let cfg = if *fast {
                SimConfig::fast()
            } else {
                SimConfig::paper_default()
            };
            let out = match name.as_str() {
                "table1" => eureka_bench::table1(),
                "table2" => eureka_bench::table2(),
                "ablations" => {
                    let mut out = String::new();
                    for t in [
                        eureka_bench::ablations::reach_sweep(&cfg),
                        eureka_bench::ablations::window_sweep(&cfg),
                        eureka_bench::ablations::compaction_sweep(&cfg),
                        eureka_bench::ablations::sigma_sweep(&cfg),
                        eureka_bench::ablations::two_sided_energy(&cfg),
                    ] {
                        out.push_str(&if *csv { t.to_csv() } else { t.render() });
                        out.push('\n');
                    }
                    out
                }
                fig => {
                    let table = match fig {
                        "fig09" => eureka_bench::figure9(&cfg),
                        "fig11" => eureka_bench::figure11(&cfg),
                        "fig12" => eureka_bench::figure12(&cfg),
                        "fig13" => eureka_bench::figure13(&cfg),
                        "fig14" => eureka_bench::figure14(&cfg),
                        other => return Err(format!("unknown figure '{other}'")),
                    };
                    if *csv {
                        table.to_csv()
                    } else {
                        table.render()
                    }
                }
            };
            tel.finish()?;
            append_ledger(
                ledger_dir.as_deref(),
                *no_ledger,
                "figure",
                format!("{name}|{}", if *fast { "fast" } else { "paper" }),
                None,
                None,
                wall_start,
            )?;
            // With events streaming to stdout, the human output is
            // suppressed to keep stdout machine-readable.
            if events_out.as_deref() == Some("-") {
                return Ok(String::new());
            }
            Ok(out)
        }
        Command::Compile {
            benchmark,
            layer,
            factor,
        } => {
            use eureka_core::CompiledLayer;
            use eureka_sparse::{gen, rng::DetRng};
            let w = Workload::new(*benchmark, PruningLevel::Moderate, 1);
            let Some((idx, gemm)) = w
                .gemms()
                .into_iter()
                .enumerate()
                .find(|(_, g)| g.name == *layer)
            else {
                return Err(format!("{} has no layer named '{layer}'", benchmark.name()));
            };
            let mut rng = DetRng::new(w.seed() ^ idx as u64);
            // Bound the materialized matrix so big layers stay instant.
            let (n, k) = (gemm.shape.n.min(512), gemm.shape.k.min(4096));
            let pattern = if gemm.clustered {
                gen::clustered_pattern(n, k, gemm.weight_density, 16, 32, 0.2, &mut rng)
            } else {
                gen::uniform_pattern(n, k, gemm.weight_density, &mut rng)
            };
            let weights = gen::values_for_pattern(&pattern, &mut rng);
            let compiled =
                CompiledLayer::compile(&weights, 4, *factor).map_err(|e| e.to_string())?;
            let s = compiled.stats();
            let mut out = format!(
                "{} {layer} at {:.0}% density, compaction P={factor} \
                 (materialized {n}x{k}):\n",
                benchmark.name(),
                100.0 * gemm.weight_density
            );
            out.push_str(&format!(
                "  tiles            : {}\n",
                compiled.tiles().len()
            ));
            out.push_str(&format!("  non-zeros        : {}\n", s.nnz));
            out.push_str(&format!("  dense FP16 size  : {} bytes\n", s.dense_bytes));
            out.push_str(&format!("  encoded size     : {} bytes\n", s.encoded_bytes));
            out.push_str(&format!(
                "  ideal bit-packed : {} bytes ({:.1}x smaller than dense)\n",
                s.ideal_bits / 8,
                s.ideal_compression()
            ));
            out.push_str(&format!("  total tile cycles: {}\n", s.total_cycles));
            Ok(out)
        }
        Command::Trace { benchmark, layer } => {
            use eureka_core::schedule::{schedule_grouped_steps, trace, SystolicConfig};
            use eureka_core::suds;
            use eureka_sim::arch::tile_samples_for_layer;
            let cfg = SimConfig::paper_default();
            let w = Workload::new(*benchmark, PruningLevel::Moderate, 32);
            let Some(gemm) = w.gemms().into_iter().find(|g| g.name == *layer) else {
                return Err(format!("{} has no layer named '{layer}'", benchmark.name()));
            };
            let times: Vec<u64> = tile_samples_for_layer(&gemm, &cfg, 0)
                .iter()
                .map(|t| suds::optimal_cycles(t) as u64)
                .collect();
            let sys = SystolicConfig::paper_default();
            let steps = schedule_grouped_steps(&times, &sys);
            Ok(trace::to_chrome_json(&steps, &sys))
        }
        Command::Simulate {
            benchmark,
            pruning,
            arch: arch_name,
            batch,
            fast,
            csv,
            jobs,
            trace_out,
            metrics_out,
            verbose,
            keep_going,
            max_failures,
            retries,
            checkpoint_dir,
            resume,
            store_dir,
            no_store,
            events_out,
            progress,
            ledger_dir,
            no_ledger,
        } => {
            use eureka_sim::{render_failure_report, JobOutcome};
            if let Some(n) = jobs {
                eureka_sim::runner::set_global_jobs(*n);
            }
            let _globals = RunnerGlobals::apply(
                *retries,
                checkpoint_dir.as_deref(),
                *resume,
                store_dir.as_deref(),
                *no_store,
            );
            let wall_start = std::time::Instant::now();
            let _events = EventsGuard::begin(events_out.as_deref(), *progress)?;
            let tel = Telemetry::begin(trace_out.as_deref(), metrics_out.as_deref(), *verbose);
            let cfg = if *fast {
                SimConfig::fast()
            } else {
                SimConfig::paper_default()
            };
            let workload = Workload::new(*benchmark, *pruning, *batch);
            let a = arch::by_name(arch_name)
                .ok_or_else(|| format!("unknown architecture '{arch_name}'; run `eureka archs`"))?;
            let (report, failures) = match engine::simulate_outcome(a.as_ref(), &workload, &cfg) {
                JobOutcome::Complete(report) => (report, Vec::new()),
                JobOutcome::Degraded {
                    report,
                    failed_layers,
                } => {
                    if !*keep_going {
                        return Err(format!(
                            "{}(re-run with --keep-going to accept a partial report)\n",
                            render_failure_report(&failed_layers)
                        ));
                    }
                    let budget = max_failures.unwrap_or(u64::MAX);
                    if failed_layers.len() as u64 > budget {
                        return Err(format!(
                            "{}failure budget exceeded: {} failure(s) > --max-failures {budget}\n",
                            render_failure_report(&failed_layers),
                            failed_layers.len()
                        ));
                    }
                    (report, failed_layers)
                }
                JobOutcome::Failed { failures } => {
                    // A single uniform refusal (e.g. S2TA on InceptionV3)
                    // reads better as the plain SimError than as a
                    // per-layer failure report.
                    return Err(if failures.len() == 1 {
                        failures[0].to_sim_error().to_string()
                    } else {
                        render_failure_report(&failures)
                    });
                }
            };
            report.log_layers();
            let label = run_label(*benchmark, *pruning, *batch, *fast, arch_name);
            if *csv {
                // Keep stdout machine-readable: survivors go to the CSV,
                // the failure report goes to stderr.
                if !failures.is_empty() {
                    eureka_obs::error!("{}", render_failure_report(&failures));
                }
                tel.finish()?;
                append_ledger(
                    ledger_dir.as_deref(),
                    *no_ledger,
                    "simulate",
                    label,
                    Some(report.total_cycles()),
                    None,
                    wall_start,
                )?;
                return Ok(report.to_csv());
            }
            let mut out = format!("{} on {}\n", report.arch, report.workload);
            out.push_str(&format!(
                "  total cycles   : {} ({:.3} ms at 1 GHz)\n",
                report.total_cycles(),
                report.runtime_ms(1.0)
            ));
            let mut speedup_vs_dense = None;
            if failures.is_empty() {
                let dense = engine::simulate(&arch::dense(), &workload, &cfg);
                let speedup = engine::speedup(&dense, &report);
                speedup_vs_dense = Some(speedup);
                out.push_str(&format!("  speedup vs Dense: {speedup:.2}x\n"));
            }
            out.push_str(&format!(
                "  throughput     : {:.0} inputs/s\n",
                report.throughput_per_s(*batch, 1.0)
            ));
            out.push_str(&format!(
                "  memory share   : {:.1}%\n",
                100.0 * report.mem_share()
            ));
            out.push_str(&format!(
                "  MAC utilization: {:.1}%\n",
                100.0 * report.mac_utilization()
            ));
            out.push_str(&health_warning_lines());
            if !failures.is_empty() {
                out.push_str(&format!(
                    "degraded run: {} of {} layer(s) missing\n{}",
                    failures.len(),
                    failures.len() + report.layers.len(),
                    render_failure_report(&failures)
                ));
            }
            tel.finish()?;
            append_ledger(
                ledger_dir.as_deref(),
                *no_ledger,
                "simulate",
                label,
                Some(report.total_cycles()),
                speedup_vs_dense,
                wall_start,
            )?;
            if events_out.as_deref() == Some("-") {
                return Ok(String::new());
            }
            Ok(out)
        }
        Command::Profile {
            benchmark,
            pruning,
            arch: arch_name,
            batch,
            fast,
            jobs,
            json_out,
            heatmap_out,
            trace_out,
            bench_json,
            top_tiles,
            verbose,
            store_dir,
            no_store,
            events_out,
            progress,
            ledger_dir,
            no_ledger,
        } => {
            if let Some(n) = jobs {
                eureka_sim::runner::set_global_jobs(*n);
            }
            let _globals = RunnerGlobals::apply(0, None, false, store_dir.as_deref(), *no_store);
            let wall_start = std::time::Instant::now();
            let _events = EventsGuard::begin(events_out.as_deref(), *progress)?;
            eureka_obs::log::set_verbosity(*verbose);
            let cfg = if *fast {
                SimConfig::fast()
            } else {
                SimConfig::paper_default()
            };
            let workload = Workload::new(*benchmark, *pruning, *batch);
            let a = arch::by_name(arch_name)
                .ok_or_else(|| format!("unknown architecture '{arch_name}'; run `eureka archs`"))?;
            let pcfg = eureka_sim::ProfileConfig {
                top_tiles: *top_tiles,
            };
            let (report, profile) = engine::try_profile(a.as_ref(), &workload, &cfg, &pcfg)
                .map_err(|e| e.to_string())?;
            debug_assert_eq!(profile.total_attributed_cycles(), report.total_cycles());
            let mut stdout_payload: Option<String> = None;
            let mut emit = |path: &str, payload: String, what: &str| -> Result<(), String> {
                if path == "-" {
                    stdout_payload = Some(payload);
                    Ok(())
                } else {
                    std::fs::write(path, &payload)
                        .map_err(|e| format!("cannot write {what} to {path}: {e}"))?;
                    eureka_obs::info!("{what}: {} bytes to {path}", payload.len());
                    Ok(())
                }
            };
            if let Some(path) = json_out {
                emit(path, profile.to_json(), "profile JSON")?;
            }
            if let Some(path) = heatmap_out {
                emit(path, profile.heatmap_csv(), "heatmap CSV")?;
            }
            if let Some(path) = trace_out {
                emit(path, profile.to_chrome_json(), "occupancy trace")?;
            }
            if let Some(path) = bench_json {
                // The standard snapshot matrix, plus the requested arch.
                let mut names = vec!["dense", "ampere", "cnvlutin", "eureka-p2", "eureka-p4"];
                if !names.contains(&arch_name.as_str()) {
                    names.push(arch_name);
                }
                let mut reports = Vec::with_capacity(names.len());
                for name in &names {
                    let a = arch::by_name(name)
                        .expect("invariant: the snapshot matrix only names registry entries");
                    let r = engine::try_simulate(a.as_ref(), &workload, &cfg)
                        .map_err(|e| e.to_string())?;
                    reports.push(r);
                }
                let entries: Vec<(&str, &eureka_sim::SimReport)> =
                    names.iter().zip(&reports).map(|(n, r)| (*n, r)).collect();
                let json = eureka_sim::profile::bench_snapshot_json(
                    benchmark.name(),
                    pruning.label(),
                    *batch,
                    if *fast { "fast" } else { "paper" },
                    &entries,
                );
                emit(path, json, "BENCH snapshot")?;
            }
            append_ledger(
                ledger_dir.as_deref(),
                *no_ledger,
                "profile",
                run_label(*benchmark, *pruning, *batch, *fast, arch_name),
                Some(report.total_cycles()),
                None,
                wall_start,
            )?;
            Ok(match stdout_payload {
                Some(payload) => payload,
                // Events streamed to stdout: the human report is
                // suppressed, same as any other stdout export.
                None if events_out.as_deref() == Some("-") => String::new(),
                None => profile.bottleneck_report(5),
            })
        }
        Command::BenchList { ledger_dir } => {
            use eureka_obs::json::Value;
            let dir = std::path::PathBuf::from(ledger_dir.as_deref().unwrap_or("results/ledger"));
            let records = eureka_sim::ledger::read_dir(&dir)?;
            if records.is_empty() {
                return Ok(format!("no ledger records under {}\n", dir.display()));
            }
            let mut out = format!(
                "{:<17} {:<9} {:<44} {:<14} {:>12} {:>8} {:>10} {:>7}\n",
                "key", "kind", "label", "git", "cycles", "speedup", "wall_ms", "events"
            );
            for (_, v) in &records {
                let s = |k: &str| v.get(k).and_then(Value::as_str).unwrap_or("?").to_string();
                let opt_num = |k: &str, fmt: fn(f64) -> String| {
                    v.get(k)
                        .and_then(Value::as_f64)
                        .map_or_else(|| "-".to_string(), fmt)
                };
                out.push_str(&format!(
                    "{:<17} {:<9} {:<44} {:<14} {:>12} {:>8} {:>10} {:>7}\n",
                    s("key"),
                    s("kind"),
                    s("label"),
                    s("git"),
                    opt_num("total_cycles", |c| format!("{c:.0}")),
                    opt_num("speedup_vs_dense", |sp| format!("{sp:.2}x")),
                    opt_num("wall_ms", |w| format!("{w:.1}")),
                    opt_num("events", |e| format!("{e:.0}")),
                ));
            }
            out.push_str(&format!("{} record(s)\n", records.len()));
            Ok(out)
        }
        Command::BenchDiff {
            baseline,
            candidate,
            max_regress,
        } => run_bench_diff(baseline, candidate, *max_regress).map_err(|e| e.message),
        Command::Verify {
            cases,
            seed,
            arch,
            corpus_dir,
            replay,
            fault_matrix,
            chaos,
        } => {
            if *chaos {
                return eureka_verify::run_chaos(*cases, *seed);
            }
            if *fault_matrix {
                return eureka_verify::run_fault_matrix(*seed);
            }
            if let Some(dir) = replay {
                return eureka_verify::replay_corpus(std::path::Path::new(dir));
            }
            eureka_verify::run(&eureka_verify::VerifyOptions {
                cases: *cases,
                seed: *seed,
                arch: arch.clone(),
                corpus_dir: corpus_dir.as_ref().map(std::path::PathBuf::from),
            })
        }
        Command::Serve {
            socket,
            journal_dir,
            checkpoint_dir,
            store_dir,
            capacity,
            deadline_ms,
            jobs,
            fast,
            metrics_out,
            sla_budget_us,
            flightrec_dir,
            ledger_dir,
            no_ledger,
        } => serve::run_serve(&serve::ServeOpts {
            socket: socket.clone(),
            journal_dir: journal_dir.clone(),
            checkpoint_dir: checkpoint_dir.clone(),
            store_dir: store_dir.clone(),
            capacity: *capacity,
            deadline_ms: *deadline_ms,
            jobs: jobs.unwrap_or(1),
            fast: *fast,
            metrics_out: metrics_out.clone(),
            sla_budget_us: *sla_budget_us,
            flightrec_dir: flightrec_dir.clone().unwrap_or_else(|| "results".into()),
            ledger_dir: ledger_dir.clone(),
            no_ledger: *no_ledger,
        }),
        Command::Submit {
            socket,
            benchmark,
            pruning,
            arch,
            batch,
            deadline_ms,
            retries,
            wait,
        } => {
            let spec = eureka_sim::JobSpec {
                benchmark: *benchmark,
                pruning: *pruning,
                batch: *batch,
                arch: arch.clone(),
                deadline_ms: *deadline_ms,
                retries: *retries,
            };
            serve::run_submit(socket, &spec, *wait)
        }
        Command::Drain { socket, shutdown } => serve::run_drain(socket, *shutdown),
        Command::Stats { socket, json } => serve::run_stats(socket, *json),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_help_variants() {
        assert_eq!(parse(Vec::<String>::new()).unwrap(), Command::Help);
        assert_eq!(parse(["help"]).unwrap(), Command::Help);
        assert_eq!(parse(["--help"]).unwrap(), Command::Help);
    }

    #[test]
    fn parse_figure() {
        let cmd = parse(["figure", "fig11", "--csv"]).unwrap();
        assert_eq!(
            cmd,
            Command::Figure {
                name: "fig11".into(),
                csv: true,
                fast: false,
                jobs: None,
                trace_out: None,
                metrics_out: None,
                verbose: 0,
                retries: 0,
                checkpoint_dir: None,
                resume: false,
                store_dir: None,
                no_store: false,
                events_out: None,
                progress: None,
                ledger_dir: None,
                no_ledger: false,
            }
        );
        assert!(parse(["figure", "fig99"]).is_err());
        assert!(parse(["figure"]).is_err());
        assert!(parse(["figure", "fig11", "--bogus"]).is_err());
    }

    #[test]
    fn parse_jobs_flag() {
        let cmd = parse(["figure", "fig11", "--jobs", "4"]).unwrap();
        assert_eq!(
            cmd,
            Command::Figure {
                name: "fig11".into(),
                csv: false,
                fast: false,
                jobs: Some(4),
                trace_out: None,
                metrics_out: None,
                verbose: 0,
                retries: 0,
                checkpoint_dir: None,
                resume: false,
                store_dir: None,
                no_store: false,
                events_out: None,
                progress: None,
                ledger_dir: None,
                no_ledger: false,
            }
        );
        let cmd = parse(["simulate", "--benchmark", "bert", "--jobs", "2"]).unwrap();
        assert!(matches!(cmd, Command::Simulate { jobs: Some(2), .. }));
        assert!(parse(["figure", "fig11", "--jobs"]).is_err());
        assert!(parse(["figure", "fig11", "--jobs", "0"]).is_err());
        assert!(parse(["simulate", "--benchmark", "bert", "--jobs", "x"]).is_err());
    }

    #[test]
    fn parse_simulate_defaults_and_flags() {
        let cmd = parse(["simulate", "--benchmark", "bert"]).unwrap();
        match cmd {
            Command::Simulate {
                benchmark,
                pruning,
                arch,
                batch,
                fast,
                csv,
                jobs,
                trace_out,
                metrics_out,
                verbose,
                keep_going,
                max_failures,
                retries,
                checkpoint_dir,
                resume,
                store_dir,
                no_store,
                events_out,
                progress,
                ledger_dir,
                no_ledger,
            } => {
                assert_eq!(benchmark, Benchmark::BertSquad);
                assert_eq!(pruning, PruningLevel::Moderate);
                assert_eq!(arch, "eureka-p4");
                assert_eq!(batch, 32);
                assert!(!fast && !csv);
                assert_eq!(jobs, None);
                assert_eq!(trace_out, None);
                assert_eq!(metrics_out, None);
                assert_eq!(verbose, 0);
                assert!(!keep_going && !resume);
                assert_eq!(max_failures, None);
                assert_eq!(retries, 0);
                assert_eq!(checkpoint_dir, None);
                assert_eq!(store_dir, None);
                assert!(!no_store);
                assert_eq!(events_out, None);
                assert_eq!(progress, None);
                assert_eq!(ledger_dir, None);
                assert!(!no_ledger);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse(["simulate"]).is_err());
        assert!(parse(["simulate", "--benchmark", "vgg"]).is_err());
        assert!(parse(["simulate", "--benchmark", "bert", "--arch", "nope"]).is_err());
        assert!(parse(["simulate", "--benchmark", "bert", "--batch", "0"]).is_err());
        assert!(parse(["simulate", "--benchmark", "bert", "--batch"]).is_err());
    }

    #[test]
    fn parse_and_run_compile() {
        let cmd = parse([
            "compile",
            "--benchmark",
            "resnet50",
            "--layer",
            "conv2_0/3x3",
        ])
        .unwrap();
        assert!(matches!(cmd, Command::Compile { factor: 4, .. }));
        let out = run(&cmd).unwrap();
        assert!(out.contains("ideal bit-packed"), "{out}");
        assert!(out.contains("smaller than dense"));
        // Unknown layer is a clean error.
        let bad = parse(["compile", "--benchmark", "resnet50", "--layer", "nope"]).unwrap();
        assert!(run(&bad).is_err());
        // Factor validation.
        assert!(parse([
            "compile",
            "--benchmark",
            "resnet50",
            "--layer",
            "conv1",
            "--factor",
            "0"
        ])
        .is_err());
    }

    #[test]
    fn parse_and_run_trace() {
        let cmd = parse(["trace", "--benchmark", "resnet50", "--layer", "conv4_2/3x3"]).unwrap();
        let out = run(&cmd).unwrap();
        assert!(out.starts_with('['));
        assert!(out.contains("\"ph\":\"X\""));
        let bad = parse(["trace", "--benchmark", "resnet50", "--layer", "zzz"]).unwrap();
        assert!(run(&bad).is_err());
        assert!(parse(["trace", "--benchmark", "resnet50"]).is_err());
    }

    #[test]
    fn run_archs_lists_registry() {
        let out = run(&Command::Archs).unwrap();
        for name in arch::registry_names() {
            assert!(out.contains(name), "missing {name}");
        }
    }

    #[test]
    fn run_simulate_fast() {
        let cmd = parse([
            "simulate",
            "--benchmark",
            "resnet50",
            "--arch",
            "ampere",
            "--fast",
        ])
        .unwrap();
        let out = run(&cmd).unwrap();
        assert!(out.contains("speedup vs Dense"));
        assert!(out.contains("Ampere/STC"));
    }

    #[test]
    fn run_simulate_unsupported_combination() {
        let cmd = parse([
            "simulate",
            "--benchmark",
            "inception",
            "--arch",
            "s2ta",
            "--fast",
        ])
        .unwrap();
        let err = run(&cmd).unwrap_err();
        assert!(err.contains("S2TA"), "{err}");
    }

    #[test]
    fn parse_telemetry_flags() {
        let cmd = parse([
            "simulate",
            "--benchmark",
            "bert",
            "--trace-out",
            "t.json",
            "--metrics-out",
            "m.json",
            "-v",
        ])
        .unwrap();
        match cmd {
            Command::Simulate {
                trace_out,
                metrics_out,
                verbose,
                ..
            } => {
                assert_eq!(trace_out.as_deref(), Some("t.json"));
                assert_eq!(metrics_out.as_deref(), Some("m.json"));
                assert_eq!(verbose, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
        let cmd = parse(["figure", "fig11", "-vv", "--metrics-out", "m.json"]).unwrap();
        assert!(matches!(
            cmd,
            Command::Figure {
                verbose: 2,
                metrics_out: Some(_),
                ..
            }
        ));
        assert!(parse(["simulate", "--benchmark", "bert", "--trace-out"]).is_err());
        assert!(parse(["figure", "fig11", "--metrics-out"]).is_err());
    }

    #[test]
    fn run_simulate_writes_trace_and_metrics() {
        // Span recording is process-global; one test drives it.
        let dir = std::env::temp_dir().join(format!("eureka-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("trace.json");
        let metrics = dir.join("metrics.json");
        let cmd = parse([
            "simulate",
            "--benchmark",
            "mobilenet",
            "--arch",
            "eureka-p4",
            "--fast",
            "--trace-out",
            trace.to_str().unwrap(),
            "--metrics-out",
            metrics.to_str().unwrap(),
        ])
        .unwrap();
        run(&cmd).unwrap();
        let t = std::fs::read_to_string(&trace).unwrap();
        assert!(t.starts_with('[') && t.trim_end().ends_with(']'));
        assert!(t.contains("\"name\":\"unit.exec\""), "unit spans present");
        assert!(t.contains("\"ph\":\"M\""), "thread_name metadata present");
        let m = std::fs::read_to_string(&metrics).unwrap();
        assert!(m.contains("\"cache.hits\""), "{m}");
        assert!(m.contains("\"runner.units_planned\""), "{m}");
        assert!(m.contains("\"unit.exec_micros\""), "{m}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_simulate_csv() {
        let cmd = parse([
            "simulate",
            "--benchmark",
            "mobilenet",
            "--arch",
            "dense",
            "--fast",
            "--csv",
        ])
        .unwrap();
        let out = run(&cmd).unwrap();
        assert!(out.starts_with("layer,compute_cycles"));
        assert_eq!(out.lines().count(), 28); // header + 27 layers
    }

    #[test]
    fn parse_profile_defaults_and_flags() {
        let cmd = parse(["profile", "--benchmark", "mobilenetv1"]).unwrap();
        match cmd {
            Command::Profile {
                benchmark,
                pruning,
                arch,
                batch,
                fast,
                jobs,
                json_out,
                heatmap_out,
                trace_out,
                bench_json,
                top_tiles,
                verbose,
                store_dir,
                no_store,
                events_out,
                progress,
                ledger_dir,
                no_ledger,
            } => {
                assert_eq!(benchmark, Benchmark::MobileNetV1);
                assert_eq!(pruning, PruningLevel::Moderate);
                assert_eq!(arch, "eureka-p4");
                assert_eq!(batch, 32);
                assert!(!fast);
                assert_eq!(jobs, None);
                assert_eq!(json_out, None);
                assert_eq!(heatmap_out, None);
                assert_eq!(trace_out, None);
                assert_eq!(bench_json, None);
                assert_eq!(top_tiles, 5);
                assert_eq!(verbose, 0);
                assert_eq!(store_dir, None);
                assert!(!no_store);
                assert_eq!(events_out, None);
                assert_eq!(progress, None);
                assert_eq!(ledger_dir, None);
                assert!(!no_ledger);
            }
            other => panic!("unexpected {other:?}"),
        }
        let cmd = parse([
            "profile",
            "--benchmark",
            "resnet50",
            "--arch",
            "eureka-p2",
            "--fast",
            "--jobs",
            "2",
            "--top-tiles",
            "3",
            "--json",
            "p.json",
            "--heatmap",
            "-",
            "--bench-json",
            "b.json",
        ])
        .unwrap();
        assert!(matches!(
            cmd,
            Command::Profile {
                fast: true,
                jobs: Some(2),
                top_tiles: 3,
                ..
            }
        ));
        assert!(parse(["profile"]).is_err());
        assert!(parse(["profile", "--benchmark", "bert", "--arch", "nope"]).is_err());
        assert!(parse(["profile", "--benchmark", "bert", "--batch", "0"]).is_err());
        assert!(parse(["profile", "--benchmark", "bert", "--bogus"]).is_err());
        // At most one stdout export.
        assert!(parse([
            "profile",
            "--benchmark",
            "bert",
            "--json",
            "-",
            "--heatmap",
            "-"
        ])
        .is_err());
    }

    #[test]
    fn run_profile_human_report() {
        let cmd = parse([
            "profile",
            "--benchmark",
            "mobilenet",
            "--arch",
            "eureka-p4",
            "--fast",
        ])
        .unwrap();
        let out = run(&cmd).unwrap();
        assert!(out.contains("where the cycles go"), "{out}");
        assert!(out.contains("MAC utilization"), "{out}");
        assert!(out.contains("heaviest layers"), "{out}");
        assert!(out.contains("worst tile"), "{out}");
    }

    #[test]
    fn run_profile_json_stdout_is_deterministic() {
        let args = [
            "profile",
            "--benchmark",
            "mobilenet",
            "--arch",
            "eureka-p4",
            "--fast",
            "--json",
            "-",
        ];
        let a = run(&parse(args).unwrap()).unwrap();
        let b = run(&parse(args).unwrap()).unwrap();
        assert_eq!(a, b, "profile JSON must be byte-identical across runs");
        assert!(a.starts_with("{\"schema\":\"eureka-profile-v1\""));
        // And across worker counts.
        let mut serial: Vec<String> = args.iter().map(ToString::to_string).collect();
        serial.extend(["--jobs".to_string(), "1".to_string()]);
        let s = run(&parse(serial).unwrap()).unwrap();
        eureka_sim::runner::set_global_jobs(0);
        assert_eq!(a, s, "profile JSON must not depend on --jobs");
    }

    #[test]
    fn run_profile_writes_exports() {
        let dir = std::env::temp_dir().join(format!("eureka-cli-prof-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let json = dir.join("p.json");
        let heatmap = dir.join("h.csv");
        let trace = dir.join("t.json");
        let bench = dir.join("b.json");
        let cmd = parse([
            "profile",
            "--benchmark",
            "mobilenet",
            "--arch",
            "eureka-p4",
            "--fast",
            "--json",
            json.to_str().unwrap(),
            "--heatmap",
            heatmap.to_str().unwrap(),
            "--trace-out",
            trace.to_str().unwrap(),
            "--bench-json",
            bench.to_str().unwrap(),
        ])
        .unwrap();
        let out = run(&cmd).unwrap();
        assert!(out.contains("where the cycles go"), "{out}");
        let p = std::fs::read_to_string(&json).unwrap();
        assert!(p.starts_with("{\"schema\":\"eureka-profile-v1\""));
        let h = std::fs::read_to_string(&heatmap).unwrap();
        assert!(h.starts_with("layer,row,busy,bubble,drain,utilization"));
        let t = std::fs::read_to_string(&trace).unwrap();
        assert!(t.contains("systolic row 0"), "{t}");
        let b = std::fs::read_to_string(&bench).unwrap();
        assert!(b.starts_with("{\"schema\":\"eureka-bench-v1\""));
        assert!(b.contains("\"speedup_vs_dense\""), "{b}");
        for name in ["dense", "ampere", "cnvlutin", "eureka-p2", "eureka-p4"] {
            assert!(b.contains(&format!("\"name\":\"{name}\"")), "{b}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parse_verify_defaults_and_flags() {
        assert_eq!(
            parse(["verify"]).unwrap(),
            Command::Verify {
                cases: 200,
                seed: 42,
                arch: None,
                corpus_dir: None,
                replay: None,
                fault_matrix: false,
                chaos: false,
            }
        );
        assert_eq!(
            parse([
                "verify",
                "--cases",
                "17",
                "--seed",
                "9",
                "--arch",
                "eureka-p2",
                "--corpus-dir",
                "corpus",
            ])
            .unwrap(),
            Command::Verify {
                cases: 17,
                seed: 9,
                arch: Some("eureka-p2".into()),
                corpus_dir: Some("corpus".into()),
                replay: None,
                fault_matrix: false,
                chaos: false,
            }
        );
        assert!(parse(["verify", "--cases", "0"]).is_err());
        assert!(parse(["verify", "--arch", "nope"]).is_err());
        assert!(parse(["verify", "--bogus"]).is_err());
        // Replaying needs no cases.
        assert!(matches!(
            parse(["verify", "--cases", "0", "--replay", "tests/corpus"]).unwrap(),
            Command::Verify { cases: 0, .. }
        ));
    }

    #[test]
    fn parse_fault_tolerance_flags() {
        let cmd = parse([
            "simulate",
            "--benchmark",
            "bert",
            "--keep-going",
            "--max-failures",
            "3",
            "--retries",
            "2",
            "--checkpoint-dir",
            "ckpt",
            "--resume",
        ])
        .unwrap();
        match cmd {
            Command::Simulate {
                keep_going,
                max_failures,
                retries,
                checkpoint_dir,
                resume,
                ..
            } => {
                assert!(keep_going && resume);
                assert_eq!(max_failures, Some(3));
                assert_eq!(retries, 2);
                assert_eq!(checkpoint_dir.as_deref(), Some("ckpt"));
            }
            other => panic!("unexpected {other:?}"),
        }
        // Validation: each dependent flag needs its anchor.
        assert!(parse(["simulate", "--benchmark", "bert", "--max-failures", "1"]).is_err());
        assert!(parse(["simulate", "--benchmark", "bert", "--resume"]).is_err());
        assert!(parse(["figure", "fig11", "--resume"]).is_err());
        assert!(parse(["simulate", "--benchmark", "bert", "--retries", "x"]).is_err());
        // Figures accept retry/checkpoint flags (no keep-going: figures
        // aggregate, a missing layer would corrupt the table).
        let cmd = parse(["figure", "fig11", "--retries", "1", "--checkpoint-dir", "d"]).unwrap();
        assert!(matches!(
            cmd,
            Command::Figure {
                retries: 1,
                checkpoint_dir: Some(_),
                ..
            }
        ));
        assert!(parse(["figure", "fig11", "--keep-going"]).is_err());
        // Verify gains --fault-matrix, which needs no case budget.
        assert!(matches!(
            parse(["verify", "--fault-matrix"]).unwrap(),
            Command::Verify {
                fault_matrix: true,
                ..
            }
        ));
        assert!(matches!(
            parse(["verify", "--cases", "0", "--fault-matrix"]).unwrap(),
            Command::Verify { cases: 0, .. }
        ));
    }

    #[test]
    fn run_simulate_checkpoint_resume_is_identical() {
        let dir = std::env::temp_dir().join(format!("eureka-cli-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let args = |resume: bool| {
            let mut v: Vec<String> = [
                "simulate",
                "--benchmark",
                "mobilenet",
                "--arch",
                "eureka-p4",
                "--fast",
                "--csv",
                "--checkpoint-dir",
                dir.to_str().unwrap(),
            ]
            .iter()
            .map(ToString::to_string)
            .collect();
            if resume {
                v.push("--resume".into());
            }
            v
        };
        let first = run(&parse(args(false)).unwrap()).unwrap();
        let units = std::fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .path()
                    .extension()
                    .is_some_and(|x| x == "unit")
            })
            .count();
        assert!(units > 0, "checkpoint files written");
        let resumed = run(&parse(args(true)).unwrap()).unwrap();
        assert_eq!(first, resumed, "resume must be bit-identical");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parse_store_flags_and_conflicts() {
        let cmd = parse(["simulate", "--benchmark", "bert", "--store-dir", "tiles"]).unwrap();
        assert!(
            matches!(cmd, Command::Simulate { ref store_dir, no_store: false, .. }
                if store_dir.as_deref() == Some("tiles"))
        );
        let cmd = parse(["profile", "--benchmark", "bert", "--no-store"]).unwrap();
        assert!(matches!(
            cmd,
            Command::Profile {
                store_dir: None,
                no_store: true,
                ..
            }
        ));
        let cmd = parse(["figure", "fig11", "--store-dir", "t"]).unwrap();
        assert!(matches!(cmd, Command::Figure { ref store_dir, .. }
                if store_dir.as_deref() == Some("t")));
        for sub in [
            &["simulate", "--benchmark", "bert"][..],
            &["figure", "fig11"][..],
        ] {
            let mut v: Vec<String> = sub.iter().map(ToString::to_string).collect();
            v.extend(["--store-dir", "t", "--no-store"].map(String::from));
            assert!(parse(v).is_err(), "--no-store conflicts with --store-dir");
        }
    }

    #[test]
    fn run_simulate_store_dir_persists_tiles_and_warm_run_is_identical() {
        let dir = std::env::temp_dir().join(format!("eureka-cli-store-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let args: Vec<String> = [
            "simulate",
            "--benchmark",
            "inception",
            "--arch",
            "eureka-p2",
            "--batch",
            "7",
            "--fast",
            "--csv",
            "--store-dir",
            dir.to_str().unwrap(),
        ]
        .iter()
        .map(ToString::to_string)
        .collect();
        let cold = run(&parse(args.clone()).unwrap()).unwrap();
        // Drop every in-process tier (flushing dirty records to `dir`
        // first), so the warm run below can only be served from disk.
        eureka_sim::runner::cache_reset();
        let shards = std::fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .path()
                    .extension()
                    .is_some_and(|x| x == "tiles")
            })
            .count();
        assert!(shards > 0, "tile shard files written under --store-dir");
        let warm = run(&parse(args).unwrap()).unwrap();
        assert_eq!(cold, warm, "a store-warmed run must be bit-identical");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parse_observability_flags() {
        let cmd = parse([
            "simulate",
            "--benchmark",
            "bert",
            "--events-out",
            "ev.jsonl",
            "--no-progress",
            "--ledger-dir",
            "ld",
        ])
        .unwrap();
        assert!(matches!(
            cmd,
            Command::Simulate {
                ref events_out,
                progress: Some(false),
                ref ledger_dir,
                no_ledger: false,
                ..
            } if events_out.as_deref() == Some("ev.jsonl") && ledger_dir.as_deref() == Some("ld")
        ));
        let cmd = parse(["figure", "fig11", "--progress", "--no-ledger"]).unwrap();
        assert!(matches!(
            cmd,
            Command::Figure {
                progress: Some(true),
                no_ledger: true,
                ..
            }
        ));
        // Conflicts.
        assert!(parse(["figure", "fig11", "--ledger-dir", "d", "--no-ledger"]).is_err());
        assert!(parse([
            "simulate",
            "--benchmark",
            "bert",
            "--csv",
            "--events-out",
            "-"
        ])
        .is_err());
        // Events to stdout count toward profile's one-stdout-export rule.
        assert!(parse([
            "profile",
            "--benchmark",
            "bert",
            "--json",
            "-",
            "--events-out",
            "-"
        ])
        .is_err());
        assert!(parse(["profile", "--benchmark", "bert", "--events-out", "-"]).is_ok());
    }

    #[test]
    fn parse_bench_subcommands() {
        assert_eq!(
            parse(["bench", "list"]).unwrap(),
            Command::BenchList { ledger_dir: None }
        );
        assert_eq!(
            parse(["bench", "list", "--ledger-dir", "d"]).unwrap(),
            Command::BenchList {
                ledger_dir: Some("d".into())
            }
        );
        assert_eq!(
            parse(["bench", "diff", "a.json", "b.json"]).unwrap(),
            Command::BenchDiff {
                baseline: "a.json".into(),
                candidate: "b.json".into(),
                max_regress: 2.0,
            }
        );
        assert_eq!(
            parse(["bench", "diff", "a.json", "b.json", "--max-regress", "5"]).unwrap(),
            Command::BenchDiff {
                baseline: "a.json".into(),
                candidate: "b.json".into(),
                max_regress: 5.0,
            }
        );
        assert!(parse(["bench"]).is_err());
        assert!(parse(["bench", "frobnicate"]).is_err());
        assert!(parse(["bench", "diff", "a.json"]).is_err());
        assert!(parse(["bench", "diff", "a", "b", "c"]).is_err());
        assert!(parse(["bench", "diff", "a", "b", "--max-regress", "-1"]).is_err());
        assert!(parse(["bench", "list", "--bogus"]).is_err());
    }

    #[test]
    fn run_bench_list_empty_and_diff_gate() {
        let dir = std::env::temp_dir().join(format!("eureka-cli-bench-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        // Empty ledger lists cleanly.
        let out = run(&Command::BenchList {
            ledger_dir: Some(dir.join("ledger").to_str().unwrap().into()),
        })
        .unwrap();
        assert!(out.contains("no ledger records"), "{out}");
        // Identical snapshots pass the gate; an injected regression fails
        // it with a run error (non-zero exit), not a usage error.
        let good = dir.join("good.json");
        let bad = dir.join("bad.json");
        std::fs::write(
            &good,
            r#"{"schema":"eureka-bench-v1","benchmark":"m","pruning":"mod","batch":32,"sampling":"fast","archs":[{"name":"eureka-p4","total_cycles":250000,"speedup_vs_dense":3.5}]}"#,
        )
        .unwrap();
        std::fs::write(
            &bad,
            r#"{"schema":"eureka-bench-v1","benchmark":"m","pruning":"mod","batch":32,"sampling":"fast","archs":[{"name":"eureka-p4","total_cycles":300000,"speedup_vs_dense":3.5}]}"#,
        )
        .unwrap();
        let ok = run(&Command::BenchDiff {
            baseline: good.to_str().unwrap().into(),
            candidate: good.to_str().unwrap().into(),
            max_regress: 2.0,
        })
        .unwrap();
        assert!(ok.contains("OK: no regressions"), "{ok}");
        let err = run(&Command::BenchDiff {
            baseline: good.to_str().unwrap().into(),
            candidate: bad.to_str().unwrap().into(),
            max_regress: 2.0,
        })
        .unwrap_err();
        assert!(err.contains("REGRESSION"), "{err}");
        assert!(err.contains("total_cycles"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_simulate_with_events_and_ledger() {
        let dir = std::env::temp_dir().join(format!("eureka-cli-events-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let events_path = dir.join("run.jsonl");
        let ledger_path = dir.join("ledger");
        let cmd = parse([
            "simulate",
            "--benchmark",
            "mobilenet",
            "--arch",
            "eureka-p4",
            "--batch",
            "4",
            "--fast",
            "--no-progress",
            "--events-out",
            events_path.to_str().unwrap(),
            "--ledger-dir",
            ledger_path.to_str().unwrap(),
        ])
        .unwrap();
        let out = run(&cmd).unwrap();
        assert!(out.contains("total cycles"), "{out}");
        // Every emitted line is schema-valid, and the stream brackets the
        // run with run-started/run-finished.
        let stream = std::fs::read_to_string(&events_path).unwrap();
        assert!(stream.lines().count() > 2, "events were streamed");
        for line in stream.lines() {
            eureka_obs::events::validate_line(line).unwrap_or_else(|e| panic!("{e}\n{line}"));
        }
        assert!(stream.contains("\"event\":\"run-started\""));
        assert!(stream.contains("\"event\":\"run-finished\""));
        // The ledger recorded the run with the emitted-event count.
        let records = eureka_sim::ledger::read_dir(&ledger_path).unwrap();
        assert_eq!(records.len(), 1);
        let v = &records[0].1;
        use eureka_obs::json::Value;
        assert_eq!(v.get("kind").and_then(Value::as_str), Some("simulate"));
        assert_eq!(
            v.get("events").and_then(Value::as_f64),
            Some(stream.lines().count() as f64)
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_verify_single_arch() {
        let cmd = parse([
            "verify",
            "--cases",
            "3",
            "--seed",
            "7",
            "--arch",
            "eureka-p4",
        ])
        .unwrap();
        let out = run(&cmd).unwrap();
        assert!(out.contains("eureka-p4"), "{out}");
        assert!(out.contains("all architectures verified"), "{out}");
    }

    #[test]
    fn run_verify_replays_committed_corpus() {
        let cmd = parse(["verify", "--replay", "../../tests/corpus"]).unwrap();
        let out = run(&cmd).unwrap();
        assert!(out.contains("all pass"), "{out}");
    }

    #[test]
    fn parse_service_commands() {
        assert_eq!(
            parse(["serve"]).unwrap(),
            Command::Serve {
                socket: "eureka.sock".into(),
                journal_dir: "eureka-journal".into(),
                checkpoint_dir: None,
                store_dir: None,
                capacity: 8,
                deadline_ms: 0,
                jobs: None,
                fast: false,
                metrics_out: None,
                sla_budget_us: None,
                flightrec_dir: None,
                ledger_dir: None,
                no_ledger: false,
            }
        );
        assert_eq!(
            parse([
                "serve",
                "--socket",
                "/tmp/e.sock",
                "--journal-dir",
                "j",
                "--checkpoint-dir",
                "c",
                "--store-dir",
                "s",
                "--capacity",
                "3",
                "--deadline-ms",
                "500",
                "--jobs",
                "2",
                "--fast",
                "--metrics-out",
                "m.prom",
                "--sla-budget-us",
                "250000",
                "--flightrec-dir",
                "fr",
                "--ledger-dir",
                "l",
                "--no-ledger",
            ])
            .unwrap(),
            Command::Serve {
                socket: "/tmp/e.sock".into(),
                journal_dir: "j".into(),
                checkpoint_dir: Some("c".into()),
                store_dir: Some("s".into()),
                capacity: 3,
                deadline_ms: 500,
                jobs: Some(2),
                fast: true,
                metrics_out: Some("m.prom".into()),
                sla_budget_us: Some(250_000),
                flightrec_dir: Some("fr".into()),
                ledger_dir: Some("l".into()),
                no_ledger: true,
            }
        );
        assert!(parse(["serve", "--capacity", "0"]).is_err());
        assert!(parse(["serve", "--sla-budget-us", "0"]).is_err());
        assert!(parse(["serve", "--bogus"]).is_err());

        assert_eq!(
            parse([
                "submit",
                "--benchmark",
                "mobilenetv1",
                "--deadline-ms",
                "250",
                "--retries",
                "2",
                "--wait",
            ])
            .unwrap(),
            Command::Submit {
                socket: "eureka.sock".into(),
                benchmark: Benchmark::MobileNetV1,
                pruning: PruningLevel::Moderate,
                arch: "eureka-p4".into(),
                batch: 32,
                deadline_ms: 250,
                retries: 2,
                wait: true,
            }
        );
        assert!(parse(["submit"]).is_err(), "submit requires --benchmark");

        assert_eq!(
            parse(["drain", "--socket", "/tmp/e.sock", "--shutdown"]).unwrap(),
            Command::Drain {
                socket: "/tmp/e.sock".into(),
                shutdown: true,
            }
        );
        assert_eq!(
            parse(["stats", "--socket", "/tmp/e.sock", "--json"]).unwrap(),
            Command::Stats {
                socket: "/tmp/e.sock".into(),
                json: true,
            }
        );
        assert_eq!(
            parse(["stats"]).unwrap(),
            Command::Stats {
                socket: "eureka.sock".into(),
                json: false,
            }
        );
        assert!(parse(["stats", "--bogus"]).is_err());
        // Chaos rides the verify umbrella.
        assert!(matches!(
            parse(["verify", "--chaos", "--cases", "7"]).unwrap(),
            Command::Verify {
                chaos: true,
                cases: 7,
                ..
            }
        ));
    }

    #[test]
    fn bench_diff_exit_codes_distinguish_bad_input_from_regression() {
        let dir = std::env::temp_dir().join(format!("eureka-cli-diff-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let snapshot = |cycles: u64| {
            format!(
                "{{\"schema\":\"eureka-bench-v1\",\"benchmark\":\"mobilenet_v1\",\
                 \"pruning\":\"mod\",\"sampling\":\"fast\",\"archs\":[{{\"name\":\"a\",\
                 \"total_cycles\":{cycles}}}]}}"
            )
        };
        let base = dir.join("base.json");
        let worse = dir.join("worse.json");
        std::fs::write(&base, snapshot(100)).unwrap();
        std::fs::write(&worse, snapshot(200)).unwrap();

        let diff = |a: &std::path::Path, b: &std::path::Path| {
            run_with_code(&Command::BenchDiff {
                baseline: a.display().to_string(),
                candidate: b.display().to_string(),
                max_regress: 2.0,
            })
        };

        // A missing snapshot is broken wiring, not a regression: exit 2.
        let err = diff(&dir.join("nope.json"), &base).unwrap_err();
        assert_eq!(err.code, 2, "{}", err.message);
        assert!(err.message.contains("unusable snapshot"), "{}", err.message);
        // Malformed JSON too.
        let garbage = dir.join("garbage.json");
        std::fs::write(&garbage, "not json").unwrap();
        let err = diff(&garbage, &base).unwrap_err();
        assert_eq!(err.code, 2, "{}", err.message);

        // A genuine regression fires the gate: exit 1.
        let err = diff(&base, &worse).unwrap_err();
        assert_eq!(err.code, 1, "{}", err.message);
        assert!(err.message.contains("total_cycles"), "{}", err.message);

        // The unregressed direction passes.
        assert!(diff(&base, &base).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn report_surfaces_failure_and_store_counters_only_when_nonzero() {
        use eureka_obs::metrics::{counter, Class};
        // No cli test drives a failing or store-degraded run, so these
        // counters are ours alone to set here.
        let names = [
            "runner.failures.panic",
            "runner.failures.sim_error",
            "runner.failures.cancelled",
            "store.errors",
            "checkpoint.errors",
            "runner.backoff.slept_us",
            "journal.errors",
        ];
        for name in names {
            counter(name, Class::Deterministic).reset();
        }
        assert_eq!(health_warning_lines(), "", "healthy runs stay silent");

        counter("runner.failures.panic", Class::Deterministic).add(2);
        counter("store.errors", Class::Deterministic).add(3);
        counter("checkpoint.errors", Class::Deterministic).inc();
        counter("runner.backoff.slept_us", Class::Deterministic).add(1_500);
        counter("journal.errors", Class::Deterministic).add(4);
        let warnings = health_warning_lines();
        for name in names {
            counter(name, Class::Deterministic).reset();
        }
        assert!(warnings.contains("unit failures  : 2 panic"), "{warnings}");
        assert!(warnings.contains("store errors   : 3"), "{warnings}");
        assert!(warnings.contains("ckpt errors    : 1"), "{warnings}");
        assert!(
            warnings.contains("backoff        : 1500 us slept"),
            "{warnings}"
        );
        assert!(warnings.contains("journal errors : 4"), "{warnings}");
    }
}
