//! Test-runner support types: configuration, case outcomes, and the
//! deterministic generator behind every strategy.

/// Per-`proptest!` block configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` accepted cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a test case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case's `prop_assume!` precondition failed; generate another.
    Reject,
    /// An assertion failed; the test fails with this message.
    Fail(String),
}

/// Deterministic SplitMix64 generator seeding all strategies.
///
/// Seeded from the test's module path and name so every test owns an
/// independent, stable stream: failures reproduce exactly on re-run, and
/// adding a test never perturbs its neighbours.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A stream derived from a test identifier (FNV-1a over the bytes).
    #[must_use]
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// A stream derived directly from a numeric seed.
    ///
    /// Used by external fuzz drivers (e.g. `eureka-verify`) that want the
    /// same generator the `proptest!` macro uses, but keyed on a
    /// user-supplied `--seed` instead of a test name, so failing cases can
    /// be replayed from the command line.
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit output (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound]` (inclusive), `bound < u64::MAX`.
    pub fn below_inclusive(&mut self, bound: u64) -> u64 {
        // Multiply-shift; bias is negligible at test scales.
        ((u128::from(self.next_u64()) * (u128::from(bound) + 1)) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        let mut c = TestRng::for_test("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn from_seed_is_deterministic_and_distinct() {
        let mut a = TestRng::from_seed(42);
        let mut b = TestRng::from_seed(42);
        let mut c = TestRng::from_seed(43);
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_inclusive_respects_bound() {
        let mut rng = TestRng::for_test("bounds");
        for _ in 0..1000 {
            assert!(rng.below_inclusive(7) <= 7);
        }
        assert_eq!(rng.below_inclusive(0), 0);
    }
}
