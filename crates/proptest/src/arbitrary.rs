//! `any::<T>()` — whole-domain strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use core::marker::PhantomData;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, isize);

impl Arbitrary for f32 {
    /// Uniformly random *bit patterns*: NaNs, infinities and subnormals
    /// all occur, which the FP16 conversion tests depend on.
    fn arbitrary(rng: &mut TestRng) -> Self {
        f32::from_bits(rng.next_u64() as u32)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f64::from_bits(rng.next_u64())
    }
}

/// Strategy returned by [`any`].
pub struct Any<T> {
    _marker: PhantomData<T>,
}

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any {
            _marker: PhantomData,
        }
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: PhantomData,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bool_takes_both_values() {
        let mut rng = TestRng::for_test("bools");
        let vals: Vec<bool> = (0..64).map(|_| bool::arbitrary(&mut rng)).collect();
        assert!(vals.iter().any(|&b| b) && vals.iter().any(|&b| !b));
    }

    #[test]
    fn f32_bits_cover_special_values_eventually() {
        let mut rng = TestRng::for_test("f32");
        let mut saw_negative = false;
        for _ in 0..1000 {
            let x = f32::arbitrary(&mut rng);
            saw_negative |= x.is_sign_negative();
        }
        assert!(saw_negative);
    }
}
