//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! this vendored shim implements exactly the API subset the workspace's
//! property tests use: the [`proptest!`] macro (with the
//! `#![proptest_config(...)]` header), range / tuple / `any` / `prop_map` /
//! `collection::vec` strategies, and the `prop_assert!` /
//! `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * **No shrinking.** A failing case panics with the assertion message and
//!   the case's RNG seed context; re-running reproduces it exactly because
//!   generation is deterministic per test name.
//! * **Simple distributions.** Integer ranges are uniform; `any::<f32>()`
//!   draws uniformly random *bit patterns* (so NaNs, infinities and
//!   subnormals all occur), which is what the FP16 datapath tests rely on.
//! * **Deterministic seeding.** Each test derives its RNG stream from its
//!   own (module path, name), so failures are stable across runs and
//!   machines and adding one test never perturbs another.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Everything the tests import via `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// The `prop::` namespace (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Declares property tests.
///
/// Supports the form used across this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn holds(x in 0u64..100, v in prop::collection::vec(any::<u8>(), 0..10)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { [$cfg] $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            [$crate::test_runner::ProptestConfig::default()] $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ([$cfg:expr]) => {};
    ([$cfg:expr]
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[allow(unreachable_code)]
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(), "::", stringify!($name)
            ));
            let mut accepted: u32 = 0;
            let mut attempts: u64 = 0;
            let max_attempts = u64::from(config.cases) * 32 + 256;
            while accepted < config.cases {
                attempts += 1;
                assert!(
                    attempts <= max_attempts,
                    "test {} rejected too many generated cases ({} accepted of {} wanted)",
                    stringify!($name),
                    accepted,
                    config.cases
                );
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome = (move || -> ::core::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > {
                    $body
                    ::core::result::Result::Ok(())
                })();
                match outcome {
                    ::core::result::Result::Ok(()) => accepted += 1,
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject,
                    ) => continue,
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(msg),
                    ) => panic!(
                        "proptest case #{} of {} failed: {}",
                        accepted,
                        stringify!($name),
                        msg
                    ),
                }
            }
        }
        $crate::__proptest_items! { [$cfg] $($rest)* }
    };
}

/// Skips the current case when the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Fails the current case when the condition does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)*)),
            ));
        }
    };
}

/// Fails the current case when the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(format!(
                            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
                            l, r
                        )),
                    );
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(format!(
                            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
                            l, r, format!($($fmt)*)
                        )),
                    );
                }
            }
        }
    };
}

/// Fails the current case when the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                        format!(
                            "assertion failed: `(left != right)`\n  left: `{:?}`\n right: `{:?}`",
                            l, r
                        ),
                    ));
                }
            }
        }
    };
}
