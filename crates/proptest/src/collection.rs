//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Anything usable as a vector-length specification: an exact `usize`, a
/// half-open `Range<usize>`, or an inclusive `RangeInclusive<usize>`.
pub trait IntoSizeRange {
    /// `(min, max)` inclusive bounds.
    fn bounds(&self) -> (usize, usize);
}

impl IntoSizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self)
    }
}

impl IntoSizeRange for core::ops::Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start < self.end, "empty size range");
        (self.start, self.end - 1)
    }
}

impl IntoSizeRange for core::ops::RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        (*self.start(), *self.end())
    }
}

/// Strategy returned by [`vec`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    min: usize,
    max: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.min + rng.below_inclusive((self.max - self.min) as u64) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A vector of values drawn from `element`, with length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
    let (min, max) = size.bounds();
    VecStrategy { element, min, max }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_and_ranged_lengths() {
        let mut rng = TestRng::for_test("vec");
        for _ in 0..200 {
            assert_eq!(vec(0u8..10, 4usize).generate(&mut rng).len(), 4);
            let l = vec(0u8..10, 2..5).generate(&mut rng).len();
            assert!((2..5).contains(&l));
            let l = vec(0u8..10, 0..=3).generate(&mut rng).len();
            assert!(l <= 3);
        }
    }
}
