//! The [`Strategy`] trait and its combinators: integer ranges, tuples and
//! `prop_map`.

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value from the deterministic stream.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_unsigned_range {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = u64::from(self.end as u64 - self.start as u64);
                self.start + (rng.below_inclusive(span - 1) as $t)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = hi as u64 - lo as u64;
                lo + (rng.below_inclusive(span) as $t)
            }
        }
    )*};
}

impl_unsigned_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (i128::from(self.end) - i128::from(self.start)) as u64;
                (i128::from(self.start) + i128::from(rng.below_inclusive(span - 1))) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (i128::from(hi) - i128::from(lo)) as u64;
                (i128::from(lo) + i128::from(rng.below_inclusive(span))) as $t
            }
        }
    )*};
}

impl_signed_range!(i8, i16, i32, i64);

macro_rules! impl_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple!(A: 0);
impl_tuple!(A: 0, B: 1);
impl_tuple!(A: 0, B: 1, C: 2);
impl_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_test("ranges");
        for _ in 0..2000 {
            let v = (3usize..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let v = (5u64..=5).generate(&mut rng);
            assert_eq!(v, 5);
            let v = (-45i32..=45).generate(&mut rng);
            assert!((-45..=45).contains(&v));
        }
    }

    #[test]
    fn range_covers_extremes() {
        let mut rng = TestRng::for_test("extremes");
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[(0usize..4).generate(&mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn prop_map_and_tuples_compose() {
        let mut rng = TestRng::for_test("compose");
        let s = (0u16..10, 0u16..10).prop_map(|(a, b)| u32::from(a) + u32::from(b));
        for _ in 0..100 {
            assert!(s.generate(&mut rng) < 19);
        }
    }
}
