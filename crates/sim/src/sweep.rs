//! MAC-array size sensitivity (Figure 14).
//!
//! Compares plainly-scaled monolithic arrays against systolic compositions
//! of 4×4 blocks at a constant device MAC budget. Larger plain arrays
//! suffer: a `p`-row tile is harder to balance (SUDS or not) and an
//! unbalanced row idles `p` MACs instead of 4. Systolic scale-up keeps
//! `p = 4` and pays only modest pipeline-bubble costs.

use crate::arch::onesided;
use crate::config::{SimConfig, TensorCoreConfig};
use crate::engine;
use crate::runner::{Runner, SimJob};
use eureka_models::Workload;

/// One Figure 14 configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ArrayVariant {
    /// Display label ("8x8-plain", "16x16-systolic", ...).
    pub label: &'static str,
    /// Core geometry.
    pub core: TensorCoreConfig,
}

/// The five Figure 14 geometries.
#[must_use]
pub fn figure14_variants() -> Vec<ArrayVariant> {
    vec![
        ArrayVariant {
            label: "4x4",
            core: TensorCoreConfig::plain(4),
        },
        ArrayVariant {
            label: "8x8-plain",
            core: TensorCoreConfig::plain(8),
        },
        ArrayVariant {
            label: "8x8-systolic",
            core: TensorCoreConfig::systolic(8),
        },
        ArrayVariant {
            label: "16x16-plain",
            core: TensorCoreConfig::plain(16),
        },
        ArrayVariant {
            label: "16x16-systolic",
            core: TensorCoreConfig::systolic(16),
        },
    ]
}

/// The Eureka configuration matched to one geometry: the compaction
/// factor is capped so the tile width fits the 64-bit masks (16x16 plain
/// with P=4 is exactly 64).
#[must_use]
pub fn variant_arch(variant: &ArrayVariant) -> onesided::OneSided {
    let p = variant.core.sub_array_dim;
    let factor = (64 / p).min(4);
    onesided::OneSided::new(
        format!("Eureka P={factor}"),
        factor,
        onesided::TileTimer::OptimalSuds,
        onesided::ScheduleMode::Grouped,
    )
}

/// Eureka-P=4-over-Dense speedup for one workload under one geometry
/// (device MAC budget held constant).
#[must_use]
pub fn speedup_at(variant: &ArrayVariant, workload: &Workload, base_cfg: &SimConfig) -> f64 {
    let _span = eureka_obs::span!("sweep.speedup_at", "{}", variant.label);
    let cfg = base_cfg.with_core(variant.core);
    let dense = onesided::dense();
    let eureka = variant_arch(variant);
    let jobs = [
        SimJob::new(&dense, workload, cfg),
        SimJob::new(&eureka, workload, cfg),
    ];
    let mut out = Runner::default().run_all(&jobs).into_iter();
    let dense = out
        .next()
        .expect("invariant: run_all returns one result per submitted job")
        .expect("invariant: Dense supports every workload");
    let report = out
        .next()
        .expect("invariant: run_all returns one result per submitted job")
        .expect("invariant: one-sided Eureka supports every workload");
    engine::speedup(&dense, &report)
}

/// Runtime (total cycles) of a workload under Eureka P=4 across device
/// scales — compute-bound workloads scale near-linearly with core count
/// until the fixed memory traffic dominates (the regime boundary behind
/// the paper's "251 GB/s maximum demand vs 1.5 TB/s available").
#[must_use]
pub fn core_count_sweep(
    workload: &Workload,
    core_counts: &[usize],
    base_cfg: &SimConfig,
) -> Vec<(usize, u64)> {
    let _span = eureka_obs::span!("sweep.core_count", "{} point(s)", core_counts.len());
    let eureka = onesided::eureka_p4();
    let jobs: Vec<SimJob<'_>> = core_counts
        .iter()
        .map(|&cores| {
            SimJob::new(
                &eureka,
                workload,
                SimConfig {
                    tensor_cores: cores,
                    ..*base_cfg
                },
            )
        })
        .collect();
    core_counts
        .iter()
        .zip(Runner::default().run_all(&jobs))
        .map(|(&cores, r)| {
            (
                cores,
                r.expect("invariant: one-sided Eureka supports every workload")
                    .total_cycles(),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use eureka_models::{Benchmark, PruningLevel};

    #[test]
    fn systolic_scaleup_beats_plain_at_16() {
        let cfg = SimConfig::fast();
        let w = Workload::new(Benchmark::ResNet50, PruningLevel::Moderate, 32);
        let variants = figure14_variants();
        let get = |label: &str| {
            let v = variants.iter().find(|v| v.label == label).unwrap();
            speedup_at(v, &w, &cfg)
        };
        let base = get("4x4");
        let plain16 = get("16x16-plain");
        let sys16 = get("16x16-systolic");
        assert!(
            plain16 < base,
            "plain 16x16 ({plain16}) should lose vs 4x4 ({base})"
        );
        assert!(
            sys16 > plain16,
            "systolic 16x16 ({sys16}) should beat plain ({plain16})"
        );
        // Systolic scale-up costs only modest performance vs 4x4.
        assert!(sys16 > 0.6 * base, "sys16 {sys16} vs base {base}");
    }

    #[test]
    fn core_scaling_is_sublinear_but_monotone() {
        let cfg = SimConfig::fast();
        let w = Workload::new(Benchmark::ResNet50, PruningLevel::Moderate, 32);
        let pts = core_count_sweep(&w, &[108, 432, 1728], &cfg);
        // More cores never slows things down.
        assert!(pts.windows(2).all(|p| p[1].1 <= p[0].1), "{pts:?}");
        // 4x the cores from the baseline buys real speedup...
        let base = pts.iter().find(|p| p.0 == 432).unwrap().1 as f64;
        let big = pts.iter().find(|p| p.0 == 1728).unwrap().1 as f64;
        assert!(base / big > 2.0, "scaling {}", base / big);
        // ...but less than linear: the memory share grows.
        assert!(base / big < 4.0, "scaling {}", base / big);
    }

    #[test]
    fn variant_mac_budgets_match() {
        let cfg = SimConfig::paper_default();
        for v in figure14_variants() {
            let scaled = cfg.with_core(v.core);
            assert_eq!(scaled.total_macs(), cfg.total_macs(), "{}", v.label);
        }
    }
}
