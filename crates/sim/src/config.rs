//! Simulator configuration.

/// Geometry of one tensor core.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TensorCoreConfig {
    /// MAC sub-array dimension `p` (a `p × p` square).
    pub sub_array_dim: usize,
    /// Systolic rows of sub-arrays.
    pub grid_rows: usize,
    /// Systolic stages (columns of sub-arrays) per row.
    pub grid_cols: usize,
    /// Scheduling look-ahead: sub-matrices packable into one macro-step of
    /// one row (paper §3.3, "a small number, e.g. 2").
    pub window: usize,
}

impl TensorCoreConfig {
    /// The paper's tensor core: four 4×4 sub-arrays as a 2×2 systolic grid.
    #[must_use]
    pub fn paper_default() -> Self {
        TensorCoreConfig {
            sub_array_dim: 4,
            grid_rows: 2,
            grid_cols: 2,
            window: 2,
        }
    }

    /// A plainly-scaled `dim × dim` array: one monolithic sub-array
    /// (Figure 14's `-plain` variants).
    #[must_use]
    pub fn plain(dim: usize) -> Self {
        TensorCoreConfig {
            sub_array_dim: dim,
            grid_rows: 1,
            grid_cols: 1,
            window: 2,
        }
    }

    /// A systolically-scaled `dim × dim` array built from 4×4 blocks
    /// (Figure 14's `-systolic` variants).
    ///
    /// # Panics
    ///
    /// Panics if `dim` is not a positive multiple of 4.
    #[must_use]
    pub fn systolic(dim: usize) -> Self {
        assert!(
            dim >= 4 && dim.is_multiple_of(4),
            "dim must be a multiple of 4"
        );
        TensorCoreConfig {
            sub_array_dim: 4,
            grid_rows: dim / 4,
            grid_cols: dim / 4,
            window: 2,
        }
    }

    /// MACs in this tensor core.
    #[must_use]
    pub fn macs(&self) -> usize {
        self.sub_array_dim * self.sub_array_dim * self.grid_rows * self.grid_cols
    }
}

impl Default for TensorCoreConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Off-chip memory model parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MemoryConfig {
    /// DRAM bandwidth in bytes per core-clock cycle across the device
    /// (1.5 TB/s at 1 GHz ⇒ 1500 B/cycle).
    pub bytes_per_cycle: f64,
    /// Fraction of activation/output traffic that stays resident in the
    /// shared L2 between layers (§3.4) and never touches DRAM for timing
    /// purposes. Energy accounting still sees the full traffic.
    pub l2_act_residency: f64,
    /// Non-overlappable memory time as a fraction of compute time
    /// (per-tile cold misses, layer-boundary ramp). Calibrated so the
    /// compute-bound paper workloads expose 9–13% memory time in every
    /// architecture (§5.1).
    pub ramp_fraction: f64,
}

impl Default for MemoryConfig {
    fn default() -> Self {
        MemoryConfig {
            bytes_per_cycle: 1500.0,
            l2_act_residency: 0.7,
            ramp_fraction: 0.11,
        }
    }
}

/// Full simulation configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SimConfig {
    /// Number of tensor cores (Ampere-like: 432).
    pub tensor_cores: usize,
    /// Per-core geometry.
    pub core: TensorCoreConfig,
    /// Memory system.
    pub mem: MemoryConfig,
    /// Row-group samples per layer for the statistical timing model.
    pub rowgroup_samples: usize,
    /// Reduction-slice samples per sampled row-group.
    pub slice_samples: usize,
    /// Activation-column samples per layer (two-sided baselines).
    pub act_samples: usize,
    /// Log-normal sigma of per-filter-row density variation. Magnitude
    /// pruning keeps some filters far denser than others; a hot row idles
    /// `p - 1` rows of a `p×p` array, which is why plain array scale-up
    /// "loses more utilization for the same unbalanced row length than
    /// smaller arrays" (paper §5.5).
    pub row_density_sigma: f64,
    /// Minimum front-end cycles SparTen spends per non-skippable chunk
    /// pair (double-buffer refill; see DESIGN.md baseline models).
    pub sparten_chunk_min_cycles: f64,
    /// Partial products DSTC's crossbar can commit per cycle per core
    /// (paper §5.1: 16 of a maximum 64).
    pub dstc_crossbar_width: usize,
    /// Whether to account BERT's weight-free attention-score matmuls
    /// (`QKᵀ`, `attn × V`) as dense work appended to every architecture.
    /// Off by default: the paper's figures evaluate the pruned weight
    /// GEMMs; turning this on dampens every sparse scheme's BERT bar
    /// equally (~8% extra dense MACs).
    pub include_attention_aux: bool,
    /// Replace the analytic L2-residency constant with a per-layer
    /// measurement from the detailed cache substrate
    /// ([`crate::cachesim`]). Slower; used to validate the analytic
    /// memory model.
    pub detailed_memory: bool,
}

impl SimConfig {
    /// The paper's configuration.
    #[must_use]
    pub fn paper_default() -> Self {
        SimConfig {
            tensor_cores: 432,
            core: TensorCoreConfig::paper_default(),
            mem: MemoryConfig::default(),
            rowgroup_samples: 96,
            slice_samples: 96,
            act_samples: 64,
            row_density_sigma: 0.8,
            sparten_chunk_min_cycles: 4.0,
            dstc_crossbar_width: 16,
            include_attention_aux: false,
            detailed_memory: false,
        }
    }

    /// A reduced-sampling configuration for tests and doc examples
    /// (identical model, ~10× faster, a few percent noisier).
    #[must_use]
    pub fn fast() -> Self {
        SimConfig {
            rowgroup_samples: 24,
            slice_samples: 24,
            act_samples: 16,
            ..Self::paper_default()
        }
    }

    /// Total MACs in the device.
    #[must_use]
    pub fn total_macs(&self) -> usize {
        self.tensor_cores * self.core.macs()
    }

    /// Keeps total device MACs constant while switching core geometry
    /// (Figure 14 compares equal-MAC configurations).
    ///
    /// # Panics
    ///
    /// Panics if the new geometry doesn't divide the current MAC budget.
    #[must_use]
    pub fn with_core(&self, core: TensorCoreConfig) -> Self {
        let budget = self.total_macs();
        assert!(
            budget.is_multiple_of(core.macs()),
            "core geometry {core:?} does not divide the {budget}-MAC budget"
        );
        SimConfig {
            tensor_cores: budget / core.macs(),
            core,
            ..*self
        }
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_core_has_64_macs() {
        assert_eq!(TensorCoreConfig::paper_default().macs(), 64);
        assert_eq!(SimConfig::paper_default().total_macs(), 432 * 64);
    }

    #[test]
    fn figure14_geometries() {
        assert_eq!(TensorCoreConfig::plain(8).macs(), 64);
        assert_eq!(TensorCoreConfig::systolic(8).macs(), 64);
        assert_eq!(TensorCoreConfig::plain(16).macs(), 256);
        let sys16 = TensorCoreConfig::systolic(16);
        assert_eq!((sys16.grid_rows, sys16.grid_cols), (4, 4));
        assert_eq!(sys16.macs(), 256);
    }

    #[test]
    fn with_core_preserves_mac_budget() {
        let base = SimConfig::paper_default();
        for core in [
            TensorCoreConfig::plain(4),
            TensorCoreConfig::plain(16),
            TensorCoreConfig::systolic(16),
        ] {
            let cfg = base.with_core(core);
            assert_eq!(cfg.total_macs(), base.total_macs());
        }
    }

    #[test]
    #[should_panic(expected = "multiple of 4")]
    fn systolic_validates() {
        let _ = TensorCoreConfig::systolic(6);
    }
}
