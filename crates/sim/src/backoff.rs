//! Seeded exponential backoff with jitter for retry scheduling.
//!
//! PR 4's retry policy re-attempts a failed unit immediately; under a
//! resident service that turns a transient fault into a tight hot loop.
//! A [`BackoffPolicy`] spaces the attempts out exponentially (base ×
//! 2^(attempt−1), capped) with deterministic jitter: the delay for
//! `(seed, attempt)` is a pure function of those inputs, hashed through
//! FNV-1a, so two runs of the same plan sleep the same schedule and a
//! chaos replay is reproducible. Delays never feed into any simulated
//! result — they only reshape wall-clock time — so the runner's
//! bit-identical-output contract is untouched.

use crate::checkpoint::fnv1a64;

/// Deterministic exponential-backoff schedule for unit retries.
///
/// `delay(attempt) = min(cap_us, base_us << (attempt − 1))`, then, with
/// jitter enabled, mapped into `[delay/2, delay]` by a seeded hash —
/// the "equal jitter" scheme, keeping a floor of half the exponential
/// delay so retries never collapse back into a hot loop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BackoffPolicy {
    /// Delay before the second attempt, in microseconds (0 = no
    /// backoff: retries stay immediate).
    pub base_us: u64,
    /// Upper bound on any single delay, in microseconds.
    pub cap_us: u64,
    /// Spread each delay over `[delay/2, delay]` with a seeded hash.
    pub jitter: bool,
}

impl BackoffPolicy {
    /// No backoff: every retry is immediate (the PR 4 behaviour).
    pub const NONE: BackoffPolicy = BackoffPolicy {
        base_us: 0,
        cap_us: 0,
        jitter: false,
    };

    /// No backoff: every retry is immediate.
    #[must_use]
    pub fn none() -> Self {
        Self::NONE
    }

    /// Exponential backoff with jitter: `base_us` before the second
    /// attempt, doubling per attempt, capped at `cap_us`.
    #[must_use]
    pub fn exponential(base_us: u64, cap_us: u64) -> Self {
        BackoffPolicy {
            base_us,
            cap_us: cap_us.max(base_us),
            jitter: true,
        }
    }

    /// Whether this policy ever sleeps.
    #[must_use]
    pub fn is_none(&self) -> bool {
        self.base_us == 0
    }

    /// The delay, in microseconds, to sleep before re-attempting a unit
    /// whose previous attempt was number `attempt` (1-based: the delay
    /// slept between attempt 1 and attempt 2 is `delay_us(seed, 1)`).
    /// Deterministic in `(policy, seed, attempt)`.
    #[must_use]
    pub fn delay_us(&self, seed: u64, attempt: u32) -> u64 {
        if self.base_us == 0 {
            return 0;
        }
        let exp = attempt.saturating_sub(1).min(63);
        // `<<` discards overflowed bits, so saturate explicitly when the
        // doubling would overflow u64.
        let uncapped = if self.base_us > (u64::MAX >> exp) {
            u64::MAX
        } else {
            self.base_us << exp
        };
        let delay = uncapped.min(self.cap_us.max(self.base_us));
        if !self.jitter || delay < 2 {
            return delay;
        }
        // Equal jitter: hash (seed, attempt) into [delay/2, delay].
        let mut bytes = [0u8; 12];
        bytes[..8].copy_from_slice(&seed.to_le_bytes());
        bytes[8..].copy_from_slice(&attempt.to_le_bytes());
        let h = fnv1a64(&bytes);
        let half = delay / 2;
        half + h % (delay - half + 1)
    }
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        Self::NONE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_sleeps() {
        let p = BackoffPolicy::none();
        for attempt in 1..10 {
            assert_eq!(p.delay_us(42, attempt), 0);
        }
        assert!(p.is_none());
    }

    #[test]
    fn delays_grow_exponentially_and_cap() {
        let p = BackoffPolicy {
            base_us: 100,
            cap_us: 1000,
            jitter: false,
        };
        assert_eq!(p.delay_us(0, 1), 100);
        assert_eq!(p.delay_us(0, 2), 200);
        assert_eq!(p.delay_us(0, 3), 400);
        assert_eq!(p.delay_us(0, 4), 800);
        assert_eq!(p.delay_us(0, 5), 1000, "capped");
        assert_eq!(p.delay_us(0, 63), 1000, "huge attempts stay capped");
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let p = BackoffPolicy::exponential(100, 10_000);
        for attempt in 1..8 {
            let ceiling = (100u64 << (attempt - 1)).min(10_000);
            for seed in [0u64, 1, 42, u64::MAX] {
                let d = p.delay_us(seed, attempt);
                assert_eq!(d, p.delay_us(seed, attempt), "pure in (seed, attempt)");
                assert!(
                    d >= ceiling / 2,
                    "floor of half the delay: {d} < {ceiling}/2"
                );
                assert!(d <= ceiling, "never above the exponential ceiling");
            }
        }
        // Different seeds actually spread.
        let spread: std::collections::HashSet<u64> = (0..32).map(|s| p.delay_us(s, 4)).collect();
        assert!(spread.len() > 1, "jitter must vary by seed");
    }

    #[test]
    fn overflow_attempts_saturate() {
        let p = BackoffPolicy {
            base_us: u64::MAX / 2,
            cap_us: u64::MAX,
            jitter: false,
        };
        assert_eq!(p.delay_us(0, 40), u64::MAX, "shift overflow saturates");
    }
}
