//! Persistent run ledger (`eureka-ledger-v1`) and snapshot diffing —
//! the longitudinal half of observability.
//!
//! Every CLI run appends one content-keyed summary record to a ledger
//! directory (by default `results/ledger/` when run from the repo
//! root): what ran (`kind` + `label`, hashed into the record `key`),
//! at which source revision (`git describe`), with which deterministic
//! metrics outcome (`metrics_digest` — the FNV-1a digest of
//! [`eureka_obs::metrics::snapshot_json`]`(false)`), how long it took,
//! and how many run events the bus emitted. Records are single JSON
//! files written via the same tmp+rename idiom as
//! [`crate::checkpoint`], so a killed run never leaves a torn record.
//!
//! [`diff`] compares two snapshots field-by-field under a regression
//! threshold. It understands both record families:
//!
//! * `eureka-bench-v1` (`results/BENCH_<n>.json`, written by
//!   `eureka profile --bench-json`): per-arch `total_cycles` higher and
//!   `speedup_vs_dense` lower than the baseline by more than the
//!   threshold are **regressions**; utilization and wall-clock fields
//!   are reported informationally (wall time is machine noise, never a
//!   gate).
//! * `eureka-ledger-v1` (this module): top-level `total_cycles` /
//!   `speedup_vs_dense` gate the same way; a `metrics_digest` mismatch
//!   between records with equal keys is also a regression — the
//!   deterministic counters changed for identical work.
//!
//! The CLI's `eureka bench diff` exits non-zero when any regression is
//! found, which is exactly the CI perf gate.

use crate::checkpoint::fnv1a64;
use eureka_obs::json::{self, Value};
use std::path::{Path, PathBuf};

/// Schema marker for ledger records.
pub const SCHEMA: &str = "eureka-ledger-v1";

/// One run summary, as assembled by the caller before [`append`] stamps
/// the environment fields (key, git revision, metrics digest, creation
/// time).
#[derive(Clone, Debug)]
pub struct LedgerRecord {
    /// Which drive path ran: `simulate`, `figure`, or `profile`.
    pub kind: String,
    /// Canonical run label: benchmark, pruning, batch, sampling, archs —
    /// everything that identifies the configuration. Hashed (with
    /// `kind`) into the record key, so equal labels compare across time.
    pub label: String,
    /// Modeled total cycles of the run's primary architecture, when the
    /// run produced one.
    pub total_cycles: Option<u64>,
    /// Speedup vs the dense baseline, when the run computed one.
    pub speedup_vs_dense: Option<f64>,
    /// Wall-clock duration of the run in milliseconds.
    pub wall_ms: f64,
    /// Events emitted on the run-event bus (0 when the bus was off).
    pub events: u64,
    /// Service SLA summary (`eureka serve --sla-budget-us`); `None` for
    /// batch runs. Serialized as flat `sla_*` fields so `bench diff`
    /// gates p99 / throughput / shed-rate like any other metric.
    pub sla: Option<crate::service::SlaReport>,
}

/// The content key of a record: FNV-1a over `kind|label`, rendered as
/// 16 hex digits. Runs of the same configuration share a key, which is
/// what makes the ledger a *trajectory* (same key, advancing git
/// revisions) rather than a flat log.
#[must_use]
pub fn record_key(kind: &str, label: &str) -> String {
    format!("{:016x}", fnv1a64(format!("{kind}|{label}").as_bytes()))
}

/// Best-effort `git describe --always --dirty` of the working tree;
/// `"unknown"` outside a repository (or without git).
#[must_use]
pub fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map_or_else(
            || "unknown".to_string(),
            |o| String::from_utf8_lossy(&o.stdout).trim().to_string(),
        )
}

/// Appends one record to the ledger directory (created if missing) and
/// returns the path written. File names are `<key>-<n>.json` with `n`
/// the first free sequence number for that key; the write is
/// tmp+rename, so concurrent or killed runs never tear a record.
///
/// # Errors
///
/// Returns a description when the directory cannot be created or the
/// record cannot be written.
pub fn append(dir: &Path, record: &LedgerRecord) -> Result<PathBuf, String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    let key = record_key(&record.kind, &record.label);
    let metrics_digest = format!(
        "{:016x}",
        fnv1a64(eureka_obs::metrics::snapshot_json(false).as_bytes())
    );
    let created_ms = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| u128::min(d.as_millis(), u128::from(u64::MAX)) as u64);
    let sla_fields = record.sla.map_or_else(String::new, |s| {
        format!(
            ",\"sla_budget_us\":{},\"sla_p99_e2e_us\":{},\"sla_jobs_per_sec\":{},\"sla_shed_rate\":{},\"sla_saturated\":{}",
            s.budget_us,
            s.p99_e2e_us,
            json::fmt_f64(s.jobs_per_sec),
            json::fmt_f64(s.shed_rate),
            s.saturated,
        )
    });
    let body = format!(
        "{{\"schema\":\"{SCHEMA}\",\"key\":\"{key}\",\"kind\":\"{}\",\"label\":\"{}\",\"git\":\"{}\",\"metrics_digest\":\"{metrics_digest}\",\"total_cycles\":{},\"speedup_vs_dense\":{},\"wall_ms\":{},\"events\":{}{sla_fields},\"created_ms\":{created_ms}}}\n",
        json::escape(&record.kind),
        json::escape(&record.label),
        json::escape(&git_describe()),
        record
            .total_cycles
            .map_or_else(|| "null".to_string(), |v| v.to_string()),
        record
            .speedup_vs_dense
            .map_or_else(|| "null".to_string(), json::fmt_f64),
        json::fmt_f64(record.wall_ms),
        record.events,
    );
    let mut n = 1u32;
    let path = loop {
        let candidate = dir.join(format!("{key}-{n}.json"));
        if !candidate.exists() {
            break candidate;
        }
        n += 1;
        if n > 1_000_000 {
            return Err("ledger sequence exhausted".to_string());
        }
    };
    let tmp = dir.join(format!(".{key}-{n}.json.tmp-{}", std::process::id()));
    std::fs::write(&tmp, body).map_err(|e| format!("write {}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, &path).map_err(|e| {
        let _ = std::fs::remove_file(&tmp);
        format!("rename {}: {e}", path.display())
    })?;
    Ok(path)
}

/// Reads every `*.json` ledger record under `dir`, sorted by file name
/// (which groups by key and orders runs of a key by sequence number).
/// Malformed or foreign-schema files are skipped fail-soft, mirroring
/// the tile store's strict-reader policy: never wrong data, at worst a
/// shorter listing.
///
/// # Errors
///
/// Returns a description when the directory cannot be read (a missing
/// directory yields an empty listing instead — "no runs recorded yet").
pub fn read_dir(dir: &Path) -> Result<Vec<(PathBuf, Value)>, String> {
    if !dir.exists() {
        return Ok(Vec::new());
    }
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("read {}: {e}", dir.display()))?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .collect();
    paths.sort();
    let mut out = Vec::new();
    for path in paths {
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue;
        };
        let Ok(v) = json::parse(&text) else { continue };
        if v.get("schema").and_then(Value::as_str) == Some(SCHEMA) {
            out.push((path, v));
        }
    }
    Ok(out)
}

/// Loads one snapshot file (`eureka-bench-v1` or `eureka-ledger-v1`)
/// for [`diff`].
///
/// # Errors
///
/// Returns a description for unreadable files, malformed JSON, or an
/// unrecognized `schema` stamp.
pub fn load_snapshot(path: &Path) -> Result<Value, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    let v = json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    match v.get("schema").and_then(Value::as_str) {
        Some("eureka-bench-v1" | SCHEMA) => Ok(v),
        Some(other) => Err(format!("{}: unsupported schema {other:?}", path.display())),
        None => Err(format!("{}: missing schema stamp", path.display())),
    }
}

/// The outcome of a snapshot comparison: human-readable per-field lines
/// plus the subset that crossed the regression threshold.
#[derive(Clone, Debug, Default)]
pub struct DiffReport {
    /// One line per compared field, in snapshot order.
    pub lines: Vec<String>,
    /// The regression subset (empty ⇒ the gate passes).
    pub regressions: Vec<String>,
}

impl DiffReport {
    /// Whether the comparison found no regressions.
    #[must_use]
    pub fn ok(&self) -> bool {
        self.regressions.is_empty()
    }

    /// Renders the full report (all lines, then a verdict).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for line in &self.lines {
            out.push_str(line);
            out.push('\n');
        }
        if self.ok() {
            out.push_str("OK: no regressions\n");
        } else {
            out.push_str(&format!(
                "FAIL: {} regression(s) beyond threshold\n",
                self.regressions.len()
            ));
        }
        out
    }

    fn note(&mut self, line: String) {
        self.lines.push(line);
    }

    fn regress(&mut self, line: String) {
        self.lines.push(format!("REGRESSION: {line}"));
        self.regressions.push(line);
    }
}

fn pct_change(a: f64, b: f64) -> f64 {
    if a == 0.0 {
        if b == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (b - a) / a * 100.0
    }
}

/// A `lower-is-better` gated comparison (cycles): regression when `b`
/// exceeds `a` by more than `max_regress` percent.
fn gate_lower_is_better(report: &mut DiffReport, name: &str, a: f64, b: f64, max_regress: f64) {
    let delta = pct_change(a, b);
    let line = format!("{name}: {a} -> {b} ({delta:+.2}%)");
    if delta > max_regress {
        report.regress(line);
    } else {
        report.note(line);
    }
}

/// A `higher-is-better` gated comparison (speedups): regression when
/// `b` falls below `a` by more than `max_regress` percent.
fn gate_higher_is_better(report: &mut DiffReport, name: &str, a: f64, b: f64, max_regress: f64) {
    let delta = pct_change(a, b);
    let line = format!("{name}: {a} -> {b} ({delta:+.2}%)");
    if delta < -max_regress {
        report.regress(line);
    } else {
        report.note(line);
    }
}

fn info_field(report: &mut DiffReport, name: &str, a: Option<f64>, b: Option<f64>) {
    if let (Some(a), Some(b)) = (a, b) {
        report.note(format!(
            "{name}: {a} -> {b} ({:+.2}%) [informational]",
            pct_change(a, b)
        ));
    }
}

fn num(v: &Value, key: &str) -> Option<f64> {
    v.get(key).and_then(Value::as_f64)
}

/// Compares baseline `a` against candidate `b` under a symmetric
/// regression threshold of `max_regress` percent. Both snapshots must
/// carry the same schema (`eureka-bench-v1` or `eureka-ledger-v1`);
/// cycle counts gate lower-is-better, speedups higher-is-better, and
/// wall-clock / utilization fields are informational only.
///
/// # Errors
///
/// Returns a description when the schemas differ or are unsupported.
pub fn diff(a: &Value, b: &Value, max_regress: f64) -> Result<DiffReport, String> {
    let sa = a.get("schema").and_then(Value::as_str).unwrap_or("?");
    let sb = b.get("schema").and_then(Value::as_str).unwrap_or("?");
    if sa != sb {
        return Err(format!("schema mismatch: {sa:?} vs {sb:?}"));
    }
    match sa {
        "eureka-bench-v1" => Ok(diff_bench(a, b, max_regress)),
        SCHEMA => Ok(diff_ledger(a, b, max_regress)),
        other => Err(format!("unsupported schema {other:?}")),
    }
}

fn diff_bench(a: &Value, b: &Value, max_regress: f64) -> DiffReport {
    let mut report = DiffReport::default();
    for key in ["benchmark", "pruning", "sampling"] {
        let va = a.get(key).and_then(Value::as_str).unwrap_or("?");
        let vb = b.get(key).and_then(Value::as_str).unwrap_or("?");
        if va != vb {
            report.note(format!("{key}: {va:?} vs {vb:?} (different workloads)"));
        }
    }
    let empty: [Value; 0] = [];
    let archs_a = a.get("archs").and_then(Value::as_arr).unwrap_or(&empty);
    let archs_b = b.get("archs").and_then(Value::as_arr).unwrap_or(&empty);
    let by_name = |archs: &[Value], name: &str| -> Option<Value> {
        archs
            .iter()
            .find(|v| v.get("name").and_then(Value::as_str) == Some(name))
            .cloned()
    };
    for arch_a in archs_a {
        let Some(name) = arch_a.get("name").and_then(Value::as_str) else {
            continue;
        };
        let Some(arch_b) = by_name(archs_b, name) else {
            report.regress(format!("arch {name}: missing from candidate"));
            continue;
        };
        if let (Some(ca), Some(cb)) = (num(arch_a, "total_cycles"), num(&arch_b, "total_cycles")) {
            gate_lower_is_better(
                &mut report,
                &format!("{name}.total_cycles"),
                ca,
                cb,
                max_regress,
            );
        }
        if let (Some(ua), Some(ub)) = (
            num(arch_a, "speedup_vs_dense"),
            num(&arch_b, "speedup_vs_dense"),
        ) {
            gate_higher_is_better(
                &mut report,
                &format!("{name}.speedup_vs_dense"),
                ua,
                ub,
                max_regress,
            );
        }
        info_field(
            &mut report,
            &format!("{name}.mac_utilization"),
            num(arch_a, "mac_utilization"),
            num(&arch_b, "mac_utilization"),
        );
    }
    for arch_b in archs_b {
        if let Some(name) = arch_b.get("name").and_then(Value::as_str) {
            if by_name(archs_a, name).is_none() {
                report.note(format!("arch {name}: new in candidate [informational]"));
            }
        }
    }
    for key in ["cold_wall_ms", "warm_wall_ms", "warm_speedup"] {
        info_field(&mut report, key, num(a, key), num(b, key));
    }
    report
}

fn diff_ledger(a: &Value, b: &Value, max_regress: f64) -> DiffReport {
    let mut report = DiffReport::default();
    let key_a = a.get("key").and_then(Value::as_str).unwrap_or("?");
    let key_b = b.get("key").and_then(Value::as_str).unwrap_or("?");
    if key_a != key_b {
        report.note(format!(
            "key: {key_a} vs {key_b} (different configurations — comparing anyway)"
        ));
    }
    for key in ["git", "created_ms"] {
        let va = a.get(key).map_or_else(String::new, Value::to_json);
        let vb = b.get(key).map_or_else(String::new, Value::to_json);
        report.note(format!("{key}: {va} -> {vb} [informational]"));
    }
    if let (Some(ca), Some(cb)) = (num(a, "total_cycles"), num(b, "total_cycles")) {
        gate_lower_is_better(&mut report, "total_cycles", ca, cb, max_regress);
    }
    if let (Some(ua), Some(ub)) = (num(a, "speedup_vs_dense"), num(b, "speedup_vs_dense")) {
        gate_higher_is_better(&mut report, "speedup_vs_dense", ua, ub, max_regress);
    }
    // Service SLA fields (serve records): latency and shed-rate gate
    // like cycles, throughput like speedup, the budget is context.
    if let (Some(pa), Some(pb)) = (num(a, "sla_p99_e2e_us"), num(b, "sla_p99_e2e_us")) {
        gate_lower_is_better(&mut report, "sla_p99_e2e_us", pa, pb, max_regress);
    }
    if let (Some(ja), Some(jb)) = (num(a, "sla_jobs_per_sec"), num(b, "sla_jobs_per_sec")) {
        gate_higher_is_better(&mut report, "sla_jobs_per_sec", ja, jb, max_regress);
    }
    if let (Some(sa), Some(sb)) = (num(a, "sla_shed_rate"), num(b, "sla_shed_rate")) {
        gate_lower_is_better(&mut report, "sla_shed_rate", sa, sb, max_regress);
    }
    info_field(
        &mut report,
        "sla_budget_us",
        num(a, "sla_budget_us"),
        num(b, "sla_budget_us"),
    );
    if key_a == key_b {
        let da = a.get("metrics_digest").and_then(Value::as_str);
        let db = b.get("metrics_digest").and_then(Value::as_str);
        if let (Some(da), Some(db)) = (da, db) {
            if da == db {
                report.note(format!("metrics_digest: {da} (identical)"));
            } else {
                report.regress(format!(
                    "metrics_digest: {da} -> {db} (deterministic metrics changed for identical work)"
                ));
            }
        }
    }
    info_field(&mut report, "wall_ms", num(a, "wall_ms"), num(b, "wall_ms"));
    info_field(&mut report, "events", num(a, "events"), num(b, "events"));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_snapshot(cycles: u64, speedup: f64) -> Value {
        json::parse(&format!(
            r#"{{"schema":"eureka-bench-v1","benchmark":"m","pruning":"mod","batch":32,"sampling":"fast","archs":[{{"name":"dense","total_cycles":1000,"speedup_vs_dense":1,"mac_utilization":0.9}},{{"name":"eureka-p4","total_cycles":{cycles},"speedup_vs_dense":{speedup},"mac_utilization":0.8}}],"cold_wall_ms":10.0,"warm_wall_ms":5.0,"warm_speedup":2.0}}"#
        ))
        .unwrap()
    }

    #[test]
    fn identical_bench_snapshots_pass() {
        let a = bench_snapshot(250, 4.0);
        let report = diff(&a, &a, 2.0).unwrap();
        assert!(report.ok(), "{}", report.render());
        assert!(report.render().contains("OK: no regressions"));
    }

    #[test]
    fn cycle_regression_beyond_threshold_fails() {
        let a = bench_snapshot(250, 4.0);
        let b = bench_snapshot(275, 4.0); // +10% cycles
        let report = diff(&a, &b, 2.0).unwrap();
        assert!(!report.ok());
        assert!(
            report
                .regressions
                .iter()
                .any(|r| r.contains("eureka-p4.total_cycles")),
            "{:?}",
            report.regressions
        );
        // The same delta passes under a generous threshold.
        assert!(diff(&a, &b, 15.0).unwrap().ok());
    }

    #[test]
    fn speedup_drop_beyond_threshold_fails() {
        let a = bench_snapshot(250, 4.0);
        let b = bench_snapshot(250, 3.0); // -25% speedup
        let report = diff(&a, &b, 2.0).unwrap();
        assert!(!report.ok());
        assert!(report
            .regressions
            .iter()
            .any(|r| r.contains("eureka-p4.speedup_vs_dense")));
    }

    #[test]
    fn wall_clock_fields_never_gate() {
        let a = bench_snapshot(250, 4.0);
        let mut b = bench_snapshot(250, 4.0);
        // Quintuple the wall times: noisy machines must not fail CI.
        if let Value::Obj(pairs) = &mut b {
            for (k, v) in pairs.iter_mut() {
                if k == "cold_wall_ms" || k == "warm_wall_ms" {
                    *v = Value::Num(50.0);
                }
            }
        }
        let report = diff(&a, &b, 2.0).unwrap();
        assert!(report.ok(), "{}", report.render());
        assert!(report.render().contains("cold_wall_ms"));
    }

    #[test]
    fn missing_arch_is_a_regression() {
        let a = bench_snapshot(250, 4.0);
        let b = json::parse(
            r#"{"schema":"eureka-bench-v1","benchmark":"m","pruning":"mod","batch":32,"sampling":"fast","archs":[{"name":"dense","total_cycles":1000,"speedup_vs_dense":1}]}"#,
        )
        .unwrap();
        let report = diff(&a, &b, 2.0).unwrap();
        assert!(!report.ok());
        assert!(report.regressions[0].contains("eureka-p4"));
    }

    #[test]
    fn schema_mismatch_errors() {
        let a = bench_snapshot(250, 4.0);
        let b = json::parse(r#"{"schema":"eureka-ledger-v1","key":"00"}"#).unwrap();
        assert!(diff(&a, &b, 2.0).is_err());
    }

    #[test]
    fn ledger_records_roundtrip_and_gate() {
        let dir = std::env::temp_dir().join(format!("eureka-ledger-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let record = LedgerRecord {
            kind: "simulate".to_string(),
            label: "mobilenetv1|mod|batch32|fast|archs=eureka-p4".to_string(),
            total_cycles: Some(252_211),
            speedup_vs_dense: Some(3.07),
            wall_ms: 12.5,
            events: 42,
            sla: None,
        };
        let p1 = append(&dir, &record).unwrap();
        let p2 = append(&dir, &record).unwrap();
        assert_ne!(p1, p2, "sequence numbers advance");
        let records = read_dir(&dir).unwrap();
        assert_eq!(records.len(), 2);
        let (path, v) = &records[0];
        assert_eq!(*path, p1);
        assert_eq!(v.get("schema").and_then(Value::as_str), Some(SCHEMA));
        assert_eq!(
            v.get("key").and_then(Value::as_str),
            Some(record_key("simulate", &record.label).as_str())
        );
        assert_eq!(num(v, "total_cycles"), Some(252_211.0));
        assert_eq!(num(v, "events"), Some(42.0));
        // Same-process records share git revision and metrics digest, so
        // the self-diff passes.
        let report = diff(&records[0].1, &records[1].1, 2.0).unwrap();
        assert!(report.ok(), "{}", report.render());
        // An injected cycle regression fails the gate.
        let mut worse = records[1].1.clone();
        if let Value::Obj(pairs) = &mut worse {
            for (k, v) in pairs.iter_mut() {
                if k == "total_cycles" {
                    *v = Value::Num(300_000.0);
                }
            }
        }
        assert!(!diff(&records[0].1, &worse, 2.0).unwrap().ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sla_fields_roundtrip_and_gate_latency_regressions() {
        let dir = std::env::temp_dir().join(format!("eureka-ledger-sla-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let record = LedgerRecord {
            kind: "serve".to_string(),
            label: "serve|capacity=8|fast|sla_budget_us=1000000".to_string(),
            total_cycles: None,
            speedup_vs_dense: None,
            wall_ms: 500.0,
            events: 0,
            sla: Some(crate::service::SlaReport {
                budget_us: 1_000_000,
                p99_e2e_us: 45_000,
                jobs_per_sec: 4.0,
                shed_rate: 0.0,
                saturated: false,
            }),
        };
        append(&dir, &record).unwrap();
        append(&dir, &record).unwrap();
        let records = read_dir(&dir).unwrap();
        assert_eq!(records.len(), 2);
        let v = &records[0].1;
        assert_eq!(num(v, "sla_budget_us"), Some(1_000_000.0));
        assert_eq!(num(v, "sla_p99_e2e_us"), Some(45_000.0));
        assert_eq!(num(v, "sla_jobs_per_sec"), Some(4.0));
        assert_eq!(num(v, "sla_shed_rate"), Some(0.0));
        assert_eq!(v.get("sla_saturated"), Some(&Value::Bool(false)));
        let report = diff(&records[0].1, &records[1].1, 2.0).unwrap();
        assert!(report.ok(), "{}", report.render());
        // p99 blowing past the threshold is a regression; so is new shed.
        let bump = |v: &Value, key: &str, to: f64| {
            let mut out = v.clone();
            if let Value::Obj(pairs) = &mut out {
                for (k, val) in pairs.iter_mut() {
                    if k == key {
                        *val = Value::Num(to);
                    }
                }
            }
            out
        };
        let slow = bump(&records[1].1, "sla_p99_e2e_us", 90_000.0);
        let slow_report = diff(&records[0].1, &slow, 2.0).unwrap();
        assert!(!slow_report.ok(), "{}", slow_report.render());
        assert!(slow_report.render().contains("sla_p99_e2e_us"));
        let shedding = bump(&records[1].1, "sla_shed_rate", 0.25);
        assert!(
            !diff(&records[0].1, &shedding, 2.0).unwrap().ok(),
            "shed rate appearing from zero must gate as a regression"
        );
        let slower = bump(&records[1].1, "sla_jobs_per_sec", 2.0);
        assert!(
            !diff(&records[0].1, &slower, 2.0).unwrap().ok(),
            "halved throughput must gate as a regression"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn read_dir_skips_foreign_files_and_missing_dir() {
        let dir = std::env::temp_dir().join(format!("eureka-ledger-skip-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        assert!(read_dir(&dir).unwrap().is_empty(), "missing dir is empty");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("junk.json"), "not json").unwrap();
        std::fs::write(dir.join("other.json"), r#"{"schema":"eureka-bench-v1"}"#).unwrap();
        std::fs::write(dir.join("note.txt"), "ignored").unwrap();
        assert!(read_dir(&dir).unwrap().is_empty());
        let record = LedgerRecord {
            kind: "figure".to_string(),
            label: "fig9".to_string(),
            total_cycles: None,
            speedup_vs_dense: None,
            wall_ms: 1.0,
            events: 0,
            sla: None,
        };
        append(&dir, &record).unwrap();
        let records = read_dir(&dir).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].1.get("total_cycles"), Some(&Value::Null));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
