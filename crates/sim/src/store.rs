//! Tile-level content-addressed result store: the memoization layer
//! beneath the runner's unit cache.
//!
//! The paper's timing model is tile-granular, and identical sparsity
//! tiles recur constantly — across layers, across workloads, across
//! architectures that share a timer, and across *processes* in a sweep
//! campaign. This module caches one [`TileOutcome`] per canonical
//! [`TileKey`] in two tiers:
//!
//! * a **hot tier**: a process-wide striped hash map, always consulted
//!   first. Concurrent requests for the same missing key deduplicate —
//!   exactly one computes, the rest block on the entry — so hit/miss
//!   counts depend only on the multiset of keys, not on scheduling;
//! * a **disk tier** ([`DiskTier`]): 16 shard files under a store
//!   directory, keyed by the low nibble of the key's FNV-1a hash,
//!   following the checkpoint layer's durability discipline — versioned
//!   `eureka-tilestore v1` header, atomic tmp+rename creation with
//!   append-only growth (see [`DiskTier::flush`]), strict record
//!   verification on load (a malformed or misplaced record is a
//!   miss and a `store.errors` tick, never data and never a panic).
//!
//! Keys canonicalize via [`eureka_sparse::canon`]: permutation-invariant
//! timers collapse row orderings, order-sensitive timers keep them, and
//! uniform-latency timers (dense, 2:4) are not keyed at all. The store
//! returns bit-identical outcomes for equal keys by construction — every
//! timer is a pure integer function of the canonical signature — which is
//! what lets a warm store skip `suds::optimize` entirely without
//! perturbing any report.
//!
//! # Metrics
//!
//! `store.lookups/hits/misses/inserts/evictions/errors`, all
//! [`Class::Deterministic`]; `lookups == hits + misses` always, and on a
//! fully warmed store `hits == lookups` with `misses == 0`.

use eureka_obs::metrics::{self, Class, Counter};
use std::collections::{BTreeMap, HashMap};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};

use crate::checkpoint::fnv1a64;

/// Format marker for shard files; bump on incompatible record changes.
/// Readers treat any other header as an empty shard (recompute, never
/// wrong data), so mixed-version directories degrade gracefully.
const HEADER: &str = "eureka-tilestore v1";

/// Number of shard files a disk tier spreads records across.
///
/// Was 256 (low byte of the key hash); 16 keeps flush and load I/O
/// proportional to the data instead of the shard count — on the
/// benchmark workloads a few thousand records were spread
/// one-or-two-per-file across 256 files, making every flush and cold
/// load syscall-bound. The low *nibble* of the same FNV-1a hash picks
/// the shard, so files `00.tiles`..`0f.tiles` written by the 256-shard
/// scheme still hold only keys whose low nibble matches and remain
/// readable; files `10.tiles`..`ff.tiles` are simply never consulted
/// (their records recompute — degraded, never wrong).
const SHARDS: usize = 16;

/// Stripe count of the hot tier's hash map.
const STRIPES: usize = 16;

/// Canonical content key of one timed tile: timer discipline (including
/// any timer parameter, e.g. the multistep reach) plus the canonical
/// row-length signature. Whitespace-free, so it embeds directly in the
/// line-oriented shard format.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TileKey(String);

impl TileKey {
    /// Assembles a key from a timer discipline tag and a canonical
    /// row-length token (see [`eureka_sparse::canon::lens_token`]).
    ///
    /// # Panics
    ///
    /// Panics if either part contains whitespace — keys name records in
    /// a space-separated on-disk format.
    #[must_use]
    pub fn new(discipline: &str, lens_token: &str) -> Self {
        let mut text = String::with_capacity(4 + discipline.len() + lens_token.len());
        TileKey::encode_into(discipline, lens_token, &mut text);
        TileKey(text)
    }

    /// Writes the key text (`v1|discipline|lens_token`) into a reusable
    /// buffer — the zero-allocation form of [`TileKey::new`] for hot
    /// loops that resolve through [`TileBroker::resolve_str`]. The buffer
    /// is cleared first; the rendered text is byte-identical to
    /// `TileKey::new(discipline, lens_token).as_str()`.
    ///
    /// # Panics
    ///
    /// Panics if either part contains whitespace — keys name records in
    /// a space-separated on-disk format.
    pub fn encode_into(discipline: &str, lens_token: &str, out: &mut String) {
        assert!(
            !discipline.contains(char::is_whitespace) && !lens_token.contains(char::is_whitespace),
            "tile keys must be whitespace-free"
        );
        out.clear();
        out.push_str("v1|");
        out.push_str(discipline);
        out.push('|');
        out.push_str(lens_token);
    }

    /// The key's stable text form.
    #[must_use]
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Which of the [`SHARDS`] shard files holds this key.
    #[must_use]
    pub fn shard(&self) -> usize {
        shard_of(&self.0)
    }
}

/// `TileKey` hashes, compares and orders exactly like its text form, so
/// map lookups can run on a borrowed `&str` without materializing a key.
impl std::borrow::Borrow<str> for TileKey {
    fn borrow(&self) -> &str {
        &self.0
    }
}

/// Which of the [`SHARDS`] shard files holds the key with text `key`.
fn shard_of(key: &str) -> usize {
    (fnv1a64(key.as_bytes()) & (SHARDS as u64 - 1)) as usize
}

fn stripe_of(key: &str) -> usize {
    // Use different bits than `shard_of` so one shard's keys still
    // spread across hot-tier stripes.
    ((fnv1a64(key.as_bytes()) >> 8) as usize) % STRIPES
}

/// The result of timing one canonical tile: everything both the plain
/// and the profiled simulation paths consume.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TileOutcome {
    /// Sub-array cycles for the tile (the timer's `k`, floored at 1).
    pub cycles: u64,
    /// SUDS-displaced element count (0 for non-SUDS timers).
    pub displaced: u64,
    /// The SUDS plan's base row, when the timer produces one (feeds the
    /// profiler's crossbar-rotation histogram).
    pub base_row: Option<usize>,
    /// Non-zeros in the tile — determined by the canonical signature, so
    /// it is safe to carry in a content-addressed record.
    pub nnz: u64,
}

/// Where a lookup was satisfied.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Served {
    /// Present in the hot tier (or computed concurrently by another
    /// worker — the entry deduplicates).
    Hot,
    /// Loaded from a disk shard and promoted to the hot tier.
    Disk,
    /// Missing everywhere: the caller's closure simulated it.
    Computed,
}

/// `&'static` handles to the `store.*` counters.
struct StoreTelemetry {
    lookups: &'static Counter,
    hits: &'static Counter,
    misses: &'static Counter,
    inserts: &'static Counter,
    evictions: &'static Counter,
    errors: &'static Counter,
}

fn stel() -> &'static StoreTelemetry {
    static TEL: OnceLock<StoreTelemetry> = OnceLock::new();
    TEL.get_or_init(|| StoreTelemetry {
        lookups: metrics::counter("store.lookups", Class::Deterministic),
        hits: metrics::counter("store.hits", Class::Deterministic),
        misses: metrics::counter("store.misses", Class::Deterministic),
        inserts: metrics::counter("store.inserts", Class::Deterministic),
        evictions: metrics::counter("store.evictions", Class::Deterministic),
        errors: metrics::counter("store.errors", Class::Deterministic),
    })
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // Same poisoning policy as the runner: a caught unit panic must not
    // wedge the store for the rest of the process.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One hot-tier entry. The `OnceLock` is the deduplication point:
/// whichever caller reaches an unset entry first initializes it (from
/// disk or by computing); concurrent callers block and then read it.
type Cell = Arc<OnceLock<TileOutcome>>;

/// The process-wide hot tier plus the `store.*` counters' bookkeeping.
pub struct TileStore {
    stripes: Vec<Mutex<HashMap<TileKey, Cell>>>,
    entries: AtomicUsize,
    /// Hot-tier capacity in entries; 0 = unbounded (the default).
    capacity: AtomicUsize,
}

impl TileStore {
    fn new() -> Self {
        TileStore {
            stripes: (0..STRIPES).map(|_| Mutex::new(HashMap::new())).collect(),
            entries: AtomicUsize::new(0),
            capacity: AtomicUsize::new(0),
        }
    }

    /// Resolves `key`: hot tier first, then `disk` (promoting hits),
    /// then `compute` — which runs at most once per key process-wide,
    /// with concurrent requesters blocking on the in-flight entry.
    /// Updates the `store.*` counters; exactly one of hit/miss fires per
    /// call, and misses also count an insert.
    pub fn lookup_or_compute(
        &self,
        key: &TileKey,
        disk: Option<&DiskTier>,
        compute: impl FnOnce() -> TileOutcome,
    ) -> (TileOutcome, Served) {
        self.lookup_or_compute_str(key.as_str(), disk, compute)
    }

    /// [`lookup_or_compute`](Self::lookup_or_compute) over the key's text
    /// form. The hot path: an owned [`TileKey`] is only materialized when
    /// the key is genuinely new to the hot tier (first sight of a
    /// canonical tile), so steady-state resolution performs no
    /// allocation.
    pub fn lookup_or_compute_str(
        &self,
        key: &str,
        disk: Option<&DiskTier>,
        compute: impl FnOnce() -> TileOutcome,
    ) -> (TileOutcome, Served) {
        let t = stel();
        t.lookups.inc();
        let cell = {
            let mut map = lock(&self.stripes[stripe_of(key)]);
            match map.get(key) {
                Some(cell) => Arc::clone(cell),
                None => {
                    let cell = Cell::default();
                    map.insert(TileKey(key.to_string()), Arc::clone(&cell));
                    self.entries.fetch_add(1, Ordering::Relaxed);
                    cell
                }
            }
        };
        let mut served = Served::Hot;
        let out = *cell.get_or_init(|| {
            if let Some(d) = disk {
                if let Some(hit) = d.lookup_str(key) {
                    served = Served::Disk;
                    return hit;
                }
            }
            served = Served::Computed;
            let out = compute();
            if let Some(d) = disk {
                d.record_str(key, out);
            }
            out
        });
        match served {
            Served::Hot | Served::Disk => t.hits.inc(),
            Served::Computed => {
                t.misses.inc();
                t.inserts.inc();
                self.maybe_evict(key);
            }
        }
        (out, served)
    }

    /// Bounds the hot tier to `capacity` entries (0 = unbounded).
    /// Eviction only reclaims memory: evicted keys recompute (or reload
    /// from disk) with identical results, so correctness is unaffected.
    pub fn set_capacity(&self, capacity: usize) {
        self.capacity.store(capacity, Ordering::Relaxed);
    }

    /// Evicts settled entries (never `keep`) while over capacity.
    fn maybe_evict(&self, keep: &str) {
        let cap = self.capacity.load(Ordering::Relaxed);
        if cap == 0 || self.entries.load(Ordering::Relaxed) <= cap {
            return;
        }
        let t = stel();
        for stripe in &self.stripes {
            if self.entries.load(Ordering::Relaxed) <= cap {
                break;
            }
            let mut map = lock(stripe);
            let victims: Vec<TileKey> = map
                .iter()
                .filter(|(k, cell)| k.as_str() != keep && cell.get().is_some())
                .map(|(k, _)| k.clone())
                .collect();
            for victim in victims {
                if self.entries.load(Ordering::Relaxed) <= cap {
                    break;
                }
                map.remove(&victim);
                self.entries.fetch_sub(1, Ordering::Relaxed);
                t.evictions.inc();
            }
        }
    }

    /// Number of hot-tier entries (including in-flight ones).
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.load(Ordering::Relaxed)
    }

    /// Whether the hot tier is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every hot-tier entry (cold-start measurements).
    pub fn clear(&self) {
        for stripe in &self.stripes {
            let mut map = lock(stripe);
            let n = map.len();
            map.clear();
            self.entries.fetch_sub(n, Ordering::Relaxed);
        }
    }
}

/// The process-wide hot tier.
pub fn global() -> &'static TileStore {
    static STORE: OnceLock<TileStore> = OnceLock::new();
    STORE.get_or_init(TileStore::new)
}

/// `(lookups, hits, misses, inserts)` of the `store.*` counters.
#[must_use]
pub fn store_stats() -> (u64, u64, u64, u64) {
    let t = stel();
    (
        t.lookups.get(),
        t.hits.get(),
        t.misses.get(),
        t.inserts.get(),
    )
}

/// Zeroes every `store.*` counter, clears the hot tier, and resets all
/// registered disk tiers to their on-disk state (flushing dirty records
/// first, so nothing is lost). Called by [`crate::runner::cache_reset`].
pub fn store_reset() {
    let t = stel();
    for tier in disk_registry_snapshot() {
        tier.flush();
        tier.drop_loaded();
    }
    global().clear();
    t.lookups.reset();
    t.hits.reset();
    t.misses.reset();
    t.inserts.reset();
    t.evictions.reset();
    t.errors.reset();
}

/// One shard's in-memory state: records read from disk (lazily, once)
/// and records computed this run but not yet flushed.
#[derive(Default)]
struct Shard {
    loaded: Option<HashMap<TileKey, TileOutcome>>,
    dirty: BTreeMap<TileKey, TileOutcome>,
}

/// The persistent tier: a directory of up to [`SHARDS`] shard files.
pub struct DiskTier {
    dir: PathBuf,
    shards: Vec<Mutex<Shard>>,
}

impl std::fmt::Debug for DiskTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // 256 shards of record maps are noise; the directory identifies
        // the tier.
        f.debug_struct("DiskTier").field("dir", &self.dir).finish()
    }
}

impl DiskTier {
    /// A tier rooted at `dir` (created on first flush). Prefer
    /// [`disk_tier_for`], which shares loaded shards per directory.
    #[must_use]
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DiskTier {
            dir: dir.into(),
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
        }
    }

    /// The tier's directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn shard_path(&self, idx: usize) -> PathBuf {
        self.dir.join(format!("{idx:02x}.tiles"))
    }

    /// Looks `key` up in its shard, reading the shard file on first
    /// access. Dirty (not yet flushed) records are visible too.
    #[must_use]
    pub fn lookup(&self, key: &TileKey) -> Option<TileOutcome> {
        self.lookup_str(key.as_str())
    }

    /// [`lookup`](Self::lookup) over the key's text form (no owned key
    /// needed).
    #[must_use]
    pub fn lookup_str(&self, key: &str) -> Option<TileOutcome> {
        let idx = shard_of(key);
        let mut shard = lock(&self.shards[idx]);
        if let Some(out) = shard.dirty.get(key) {
            return Some(*out);
        }
        if shard.loaded.is_none() {
            shard.loaded = Some(self.read_shard(idx));
        }
        shard.loaded.as_ref().and_then(|m| m.get(key)).copied()
    }

    /// Stages a freshly computed record for the next [`DiskTier::flush`].
    pub fn record(&self, key: &TileKey, out: TileOutcome) {
        self.record_str(key.as_str(), out);
    }

    /// [`record`](Self::record) over the key's text form; the owned key
    /// is materialized here, once, on the cold path.
    pub fn record_str(&self, key: &str, out: TileOutcome) {
        lock(&self.shards[shard_of(key)])
            .dirty
            .insert(TileKey(key.to_string()), out);
    }

    /// Persists dirty records. A shard whose file is already readable
    /// (valid header on load) gets the new records *appended*, so flush
    /// cost is proportional to what this run computed, not to the store
    /// size — the profiler traced most of a cold benchmark run's wall
    /// clock to whole-shard rewrites here. A shard with no readable file
    /// yet (missing, empty, or a failed header check) is written whole
    /// via the atomic tmp+rename path, which also repairs a corrupt file
    /// on the next flush. Records already on disk are never rewritten —
    /// outcomes are pure functions of the key, so re-recording equal
    /// content leaves the shard bytes untouched. IO failures count as
    /// `store.errors` and leave the records dirty for a later flush.
    pub fn flush(&self) {
        static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
        for idx in 0..SHARDS {
            let mut shard = lock(&self.shards[idx]);
            if shard.dirty.is_empty() {
                continue;
            }
            if shard.loaded.is_none() {
                shard.loaded = Some(self.read_shard(idx));
            }
            let loaded = shard.loaded.as_ref().expect("loaded above");
            // Sorted (BTreeMap order), deduplicated against disk: the
            // appended bytes are deterministic per flush batch.
            let mut text = String::new();
            let mut fresh = 0usize;
            for (k, v) in shard
                .dirty
                .iter()
                .filter(|(k, v)| loaded.get(*k) != Some(*v))
            {
                text.push_str(&encode_record(k, *v));
                text.push('\n');
                fresh += 1;
            }
            let written = if fresh == 0 {
                true
            } else if loaded.is_empty() {
                // Nothing readable on disk: write the shard whole,
                // atomically (header first, then the records).
                let mut whole = String::from(HEADER);
                whole.push('\n');
                whole.push_str(&text);
                std::fs::create_dir_all(&self.dir).is_ok() && {
                    let tmp = self.dir.join(format!(
                        "{idx:02x}.tmp-{}-{}",
                        std::process::id(),
                        TMP_SEQ.fetch_add(1, Ordering::Relaxed)
                    ));
                    std::fs::write(&tmp, &whole).is_ok()
                        && std::fs::rename(&tmp, self.shard_path(idx)).is_ok()
                }
            } else {
                // Readable shard on disk: append only the new records.
                // A crash mid-append at worst truncates the final line,
                // which the strict record check skips on the next load.
                std::fs::OpenOptions::new()
                    .append(true)
                    .open(self.shard_path(idx))
                    .and_then(|mut f| std::io::Write::write_all(&mut f, text.as_bytes()))
                    .is_ok()
            };
            if written {
                let dirty = std::mem::take(&mut shard.dirty);
                let loaded = shard.loaded.as_mut().expect("loaded above");
                for (k, v) in dirty {
                    loaded.insert(k, v);
                }
            } else {
                stel().errors.inc();
            }
        }
    }

    /// Forgets all loaded (but not dirty) shard state, so the next
    /// lookup re-reads the files — the cold-start path [`store_reset`]
    /// uses after flushing.
    fn drop_loaded(&self) {
        for shard in &self.shards {
            lock(shard).loaded = None;
        }
    }

    /// Parses shard `idx` from disk. Never panics: a missing file is an
    /// empty shard; a bad header discards the shard; a malformed record,
    /// or one whose key does not belong in this shard (collision damage,
    /// manual tampering), is skipped with a `store.errors` tick.
    fn read_shard(&self, idx: usize) -> HashMap<TileKey, TileOutcome> {
        let mut map = HashMap::new();
        let Ok(text) = std::fs::read_to_string(self.shard_path(idx)) else {
            return map;
        };
        let mut lines = text.lines();
        if lines.next() != Some(HEADER) {
            stel().errors.inc();
            return map;
        }
        for line in lines {
            match decode_record(line) {
                Some((key, out)) if key.shard() == idx => {
                    // Duplicate keys: last record wins (append-crash
                    // recovery keeps the newest write).
                    map.insert(key, out);
                }
                _ => stel().errors.inc(),
            }
        }
        map
    }

    /// Total records across all shard files currently on disk (reads the
    /// files; intended for tests and tooling, not the hot path).
    #[must_use]
    pub fn records_on_disk(&self) -> usize {
        (0..SHARDS).map(|idx| self.read_shard(idx).len()).sum()
    }
}

/// `key cycles displaced base_row|- nnz` on one line.
fn encode_record(key: &TileKey, out: TileOutcome) -> String {
    let base = out
        .base_row
        .map_or_else(|| "-".to_string(), |b| b.to_string());
    format!(
        "{} {} {} {} {}",
        key.as_str(),
        out.cycles,
        out.displaced,
        base,
        out.nnz
    )
}

/// Strict inverse of [`encode_record`]: exactly five fields, all
/// numerics parse, the key carries the `v1|` version tag. `None` on any
/// deviation.
fn decode_record(line: &str) -> Option<(TileKey, TileOutcome)> {
    let mut parts = line.split(' ');
    let key = parts.next()?;
    if !key.starts_with("v1|") || key.is_empty() {
        return None;
    }
    let cycles = parts.next()?.parse().ok()?;
    let displaced = parts.next()?.parse().ok()?;
    let base = parts.next()?;
    let base_row = if base == "-" {
        None
    } else {
        Some(base.parse().ok()?)
    };
    let nnz = parts.next()?.parse().ok()?;
    if parts.next().is_some() {
        return None;
    }
    Some((
        TileKey(key.to_string()),
        TileOutcome {
            cycles,
            displaced,
            base_row,
            nnz,
        },
    ))
}

/// Per-directory registry of disk tiers, so every runner pointed at one
/// `--store-dir` shares loaded shards (and [`store_reset`] can reach
/// them all).
fn disk_registry() -> &'static Mutex<HashMap<PathBuf, Arc<DiskTier>>> {
    static REG: OnceLock<Mutex<HashMap<PathBuf, Arc<DiskTier>>>> = OnceLock::new();
    REG.get_or_init(|| Mutex::new(HashMap::new()))
}

fn disk_registry_snapshot() -> Vec<Arc<DiskTier>> {
    lock(disk_registry()).values().cloned().collect()
}

/// The shared [`DiskTier`] for `dir`, created on first use.
#[must_use]
pub fn disk_tier_for(dir: &Path) -> Arc<DiskTier> {
    let mut reg = lock(disk_registry());
    Arc::clone(
        reg.entry(dir.to_path_buf())
            .or_insert_with(|| Arc::new(DiskTier::new(dir))),
    )
}

/// The tile-resolution handle planted in each work unit's
/// [`crate::arch::LayerCtx`]. Disabled brokers compute directly (ad-hoc
/// simulation call sites); enabled brokers resolve through the global
/// hot tier (and the unit's disk tier, when configured) while tallying
/// per-unit lookup/compute counts so the runner can classify the unit.
#[derive(Clone, Debug, Default)]
pub struct TileBroker {
    inner: Option<Arc<BrokerInner>>,
}

#[derive(Debug)]
struct BrokerInner {
    disk: Option<Arc<DiskTier>>,
    lookups: AtomicU64,
    computes: AtomicU64,
}

impl TileBroker {
    /// A broker that always computes (no store participation).
    #[must_use]
    pub fn disabled() -> Self {
        TileBroker::default()
    }

    /// A store-backed broker with a fresh per-unit tally.
    #[must_use]
    pub fn enabled(disk: Option<Arc<DiskTier>>) -> Self {
        TileBroker {
            inner: Some(Arc::new(BrokerInner {
                disk,
                lookups: AtomicU64::new(0),
                computes: AtomicU64::new(0),
            })),
        }
    }

    /// Resolves one tile: through the store when enabled and the timer
    /// is content-addressable (`key` is `Some`), by calling `compute`
    /// otherwise.
    pub fn resolve(
        &self,
        key: Option<TileKey>,
        compute: impl FnOnce() -> TileOutcome,
    ) -> TileOutcome {
        self.resolve_str(key.as_ref().map(TileKey::as_str), compute)
    }

    /// [`resolve`](Self::resolve) over a borrowed key text (e.g. a
    /// scratch buffer filled by [`TileKey::encode_into`]) — the
    /// zero-allocation hot path: an owned key is only built when the
    /// store has never seen this canonical tile.
    pub fn resolve_str(
        &self,
        key: Option<&str>,
        compute: impl FnOnce() -> TileOutcome,
    ) -> TileOutcome {
        let (Some(inner), Some(key)) = (&self.inner, key) else {
            return compute();
        };
        inner.lookups.fetch_add(1, Ordering::Relaxed);
        let (out, served) = global().lookup_or_compute_str(key, inner.disk.as_deref(), compute);
        if served == Served::Computed {
            inner.computes.fetch_add(1, Ordering::Relaxed);
        }
        out
    }

    /// `(lookups, computes)` this broker has tallied.
    #[must_use]
    pub fn tally(&self) -> (u64, u64) {
        self.inner.as_ref().map_or((0, 0), |i| {
            (
                i.lookups.load(Ordering::Relaxed),
                i.computes.load(Ordering::Relaxed),
            )
        })
    }

    /// Zeroes the tally (the runner resets between retry attempts, so a
    /// unit's classification reflects its final attempt only).
    pub fn reset_tally(&self) {
        if let Some(i) = &self.inner {
            i.lookups.store(0, Ordering::Relaxed);
            i.computes.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn out(cycles: u64) -> TileOutcome {
        TileOutcome {
            cycles,
            displaced: cycles / 2,
            base_row: Some(3),
            nnz: cycles * 4,
        }
    }

    fn key(n: u64) -> TileKey {
        TileKey::new("test", &format!("{n},{},{},{}", n + 1, n + 2, n + 3))
    }

    fn tmp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("eureka-tilestore-{tag}-{}", std::process::id()))
    }

    #[test]
    fn record_round_trips_and_rejects_malformed_lines() {
        let k = key(9);
        for o in [
            out(7),
            TileOutcome {
                base_row: None,
                ..out(7)
            },
        ] {
            let line = encode_record(&k, o);
            assert_eq!(decode_record(&line), Some((k.clone(), o)));
        }
        for bad in [
            "",
            "v1|test|1,2,3,4 1 2",           // too few fields
            "v1|test|1,2,3,4 1 2 - 5 extra", // too many fields
            "v1|test|1,2,3,4 x 2 - 5",       // non-numeric
            "v0|test|1,2,3,4 1 2 - 5",       // version skew in the key
            "plain 1 2 - 5",                 // no version tag
        ] {
            assert_eq!(decode_record(bad), None, "{bad:?} must not parse");
        }
    }

    #[test]
    fn disk_tier_round_trips_through_flush() {
        let dir = tmp("roundtrip");
        std::fs::remove_dir_all(&dir).ok();
        let tier = DiskTier::new(&dir);
        assert_eq!(tier.lookup(&key(1)), None);
        tier.record(&key(1), out(5));
        tier.record(&key(2), out(6));
        assert_eq!(tier.lookup(&key(1)), Some(out(5)), "dirty records visible");
        tier.flush();
        // A fresh tier over the same directory sees the flushed records.
        let fresh = DiskTier::new(&dir);
        assert_eq!(fresh.lookup(&key(1)), Some(out(5)));
        assert_eq!(fresh.lookup(&key(2)), Some(out(6)));
        assert_eq!(fresh.records_on_disk(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn flush_is_idempotent_and_byte_stable() {
        let dir = tmp("stable");
        std::fs::remove_dir_all(&dir).ok();
        let tier = DiskTier::new(&dir);
        for i in 0..20 {
            tier.record(&key(i), out(i + 1));
        }
        tier.flush();
        let snapshot: Vec<(PathBuf, Vec<u8>)> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| {
                let p = e.unwrap().path();
                let bytes = std::fs::read(&p).unwrap();
                (p, bytes)
            })
            .collect();
        // Re-record identical content and flush again: identical bytes.
        let again = DiskTier::new(&dir);
        for i in 0..20 {
            again.record(&key(i), out(i + 1));
        }
        again.flush();
        for (p, bytes) in snapshot {
            assert_eq!(std::fs::read(&p).unwrap(), bytes, "{p:?} changed");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_and_misplaced_records_are_skipped_not_data() {
        let dir = tmp("corrupt");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let k = key(3);
        // Hand-write k's shard with one good record, one truncated line,
        // and one record whose key belongs in a different shard.
        let stray = (4..)
            .map(key)
            .find(|s| s.shard() != k.shard())
            .expect("a key hashing to another shard exists");
        let shard_file = dir.join(format!("{:02x}.tiles", k.shard()));
        let text = format!(
            "{HEADER}\n{}\ngarbage line\n{}\n",
            encode_record(&k, out(9)),
            encode_record(&stray, out(1)),
        );
        std::fs::write(&shard_file, text).unwrap();
        let tier = DiskTier::new(&dir);
        assert_eq!(tier.lookup(&k), Some(out(9)), "good record survives");
        assert_eq!(tier.lookup(&stray), None, "misplaced record is rejected");
        // A shard with a skewed header is entirely ignored.
        std::fs::write(&shard_file, "eureka-tilestore v9\nwhatever\n").unwrap();
        let tier = DiskTier::new(&dir);
        assert_eq!(tier.lookup(&k), None);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_shard_never_panics() {
        let dir = tmp("truncated");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let k = key(5);
        let full = format!("{HEADER}\n{}\n", encode_record(&k, out(2)));
        for cut in 0..full.len() {
            std::fs::write(dir.join(format!("{:02x}.tiles", k.shard())), &full[..cut]).unwrap();
            let tier = DiskTier::new(&dir);
            let _ = tier.lookup(&k); // any Option is fine; panicking is not
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn hot_tier_deduplicates_and_capacity_evicts() {
        let store = TileStore::new();
        let computes = AtomicUsize::new(0);
        let compute = || {
            computes.fetch_add(1, Ordering::Relaxed);
            out(1)
        };
        let (o1, s1) = store.lookup_or_compute(&key(1), None, compute);
        let (o2, s2) = store.lookup_or_compute(&key(1), None, compute);
        assert_eq!((o1, s1), (out(1), Served::Computed));
        assert_eq!((o2, s2), (out(1), Served::Hot));
        assert_eq!(computes.load(Ordering::Relaxed), 1, "one compute per key");
        store.set_capacity(4);
        for i in 10..40 {
            store.lookup_or_compute(&key(i), None, || out(i));
        }
        assert!(store.len() <= 5, "capacity bounds the hot tier");
        // Evicted keys recompute with identical results.
        let (o, _) = store.lookup_or_compute(&key(12), None, || out(12));
        assert_eq!(o, out(12));
    }

    #[test]
    fn broker_tallies_lookups_and_computes() {
        let broker = TileBroker::enabled(None);
        let k = TileKey::new("tally", "1,2,3");
        broker.resolve(Some(k.clone()), || out(8));
        broker.resolve(Some(k.clone()), || out(8));
        broker.resolve(None, || out(8)); // uniform timer: not tallied
        let (lookups, computes) = broker.tally();
        assert_eq!(lookups, 2);
        assert!(computes <= 1, "at most the first resolve computes");
        broker.reset_tally();
        assert_eq!(broker.tally(), (0, 0));
        assert_eq!(TileBroker::disabled().tally(), (0, 0));
    }
}
