//! Simulation reports.

/// Per-component activity counters consumed by the energy model
/// (`eureka-energy`). Counts are *operations*, not cycles.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// 2-1 multiplexer selections (the SUDS adder-input gates; two per
    /// displaced-capable MAC cycle).
    pub mux2: u64,
    /// 4-1 multiplexer selections (Ampere 2:4, S2TA).
    pub mux4: u64,
    /// 8-1 multiplexer selections (Eureka P=2).
    pub mux8: u64,
    /// 16-1 multiplexer selections (Eureka P=4, Cnvlutin-like).
    pub mux16: u64,
    /// Three-input carry-save adds (Eureka's SUDS adder; counted only for
    /// cycles where the third input is active).
    pub csa: u64,
    /// Crossbar partial-product transfers (DSTC).
    pub crossbar: u64,
    /// Prefix-sum / priority-encoder chunk-pair operations (SparTen).
    pub prefix: u64,
    /// Buffered values moved beyond the baseline register traffic
    /// (SparTen's 280 B/MAC chunk buffers, DSTC accumulation buffers).
    pub buffer: u64,
}

impl OpCounts {
    /// Element-wise sum.
    #[allow(clippy::should_implement_trait)] // counter merge, not arithmetic on values
    #[must_use]
    pub fn add(self, other: OpCounts) -> OpCounts {
        OpCounts {
            mux2: self.mux2 + other.mux2,
            mux4: self.mux4 + other.mux4,
            mux8: self.mux8 + other.mux8,
            mux16: self.mux16 + other.mux16,
            csa: self.csa + other.csa,
            crossbar: self.crossbar + other.crossbar,
            prefix: self.prefix + other.prefix,
            buffer: self.buffer + other.buffer,
        }
    }

    /// Total wide operand-multiplexer selections of any width.
    #[must_use]
    pub fn mux_total(&self) -> u64 {
        self.mux2 + self.mux4 + self.mux8 + self.mux16
    }
}

/// Timing and activity of one layer under one architecture.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LayerReport {
    /// Layer name.
    pub name: String,
    /// Device-level compute cycles (all tensor cores working in parallel).
    pub compute_cycles: u64,
    /// Exposed (non-overlapped) memory cycles.
    pub mem_cycles: u64,
    /// Multiplications actually executed.
    pub mac_ops: u64,
    /// MAC-cycles of idle capacity during the layer's compute time.
    pub idle_mac_cycles: u64,
    /// Device cycles lost to systolic macro-step mismatch (Figure 10's
    /// bubbles), scaled from the sampled pipeline's row-cycle accounting.
    /// Zero for architectures whose tiles all take the same time.
    pub bubble_cycles: u64,
    /// DRAM bytes: filter weights (including sparse-format payload).
    pub weight_bytes: u64,
    /// DRAM bytes: input activations.
    pub act_bytes: u64,
    /// DRAM bytes: outputs.
    pub out_bytes: u64,
    /// DRAM bytes: sparsity metadata.
    pub metadata_bytes: u64,
    /// Component activity for the energy model.
    pub ops: OpCounts,
}

impl LayerReport {
    /// Total cycles attributed to this layer.
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.compute_cycles + self.mem_cycles
    }

    /// All DRAM traffic.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.weight_bytes + self.act_bytes + self.out_bytes + self.metadata_bytes
    }

    /// This layer's MAC utilization: useful multiplies per MAC-cycle of
    /// compute (0.0 for a layer that did nothing).
    #[must_use]
    pub fn mac_utilization(&self) -> f64 {
        let denom = self.mac_ops + self.idle_mac_cycles;
        if denom == 0 {
            return 0.0;
        }
        self.mac_ops as f64 / denom as f64
    }
}

/// A full workload × architecture simulation result.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SimReport {
    /// Architecture name.
    pub arch: String,
    /// Workload description (benchmark + pruning + batch).
    pub workload: String,
    /// Per-layer results.
    pub layers: Vec<LayerReport>,
}

impl SimReport {
    /// Sum of per-layer total cycles.
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.layers.iter().map(LayerReport::total_cycles).sum()
    }

    /// Sum of compute cycles only.
    #[must_use]
    pub fn compute_cycles(&self) -> u64 {
        self.layers.iter().map(|l| l.compute_cycles).sum()
    }

    /// Sum of exposed memory cycles.
    #[must_use]
    pub fn mem_cycles(&self) -> u64 {
        self.layers.iter().map(|l| l.mem_cycles).sum()
    }

    /// Fraction of execution time spent in (exposed) memory.
    #[must_use]
    pub fn mem_share(&self) -> f64 {
        let t = self.total_cycles();
        if t == 0 {
            return 0.0;
        }
        self.mem_cycles() as f64 / t as f64
    }

    /// Total multiplications executed.
    #[must_use]
    pub fn mac_ops(&self) -> u64 {
        self.layers.iter().map(|l| l.mac_ops).sum()
    }

    /// Total idle MAC-cycles.
    #[must_use]
    pub fn idle_mac_cycles(&self) -> u64 {
        self.layers.iter().map(|l| l.idle_mac_cycles).sum()
    }

    /// Total systolic-bubble cycles across layers.
    #[must_use]
    pub fn bubble_cycles(&self) -> u64 {
        self.layers.iter().map(|l| l.bubble_cycles).sum()
    }

    /// Total DRAM traffic in bytes.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.layers.iter().map(LayerReport::total_bytes).sum()
    }

    /// Aggregated component activity.
    #[must_use]
    pub fn ops(&self) -> OpCounts {
        self.layers
            .iter()
            .fold(OpCounts::default(), |acc, l| acc.add(l.ops))
    }

    /// Device MAC utilization: useful multiplies per MAC-cycle of compute.
    #[must_use]
    pub fn mac_utilization(&self) -> f64 {
        let denom = self.mac_ops() + self.idle_mac_cycles();
        if denom == 0 {
            return 0.0;
        }
        self.mac_ops() as f64 / denom as f64
    }

    /// The layer with the given name, if present. Degraded runs drop
    /// failed layers from `layers`, so positional lookups no longer line
    /// up across runs — compare survivors by name instead.
    #[must_use]
    pub fn layer_by_name(&self, name: &str) -> Option<&LayerReport> {
        self.layers.iter().find(|l| l.name == name)
    }

    /// Wall-clock runtime in milliseconds at the given core clock.
    #[must_use]
    pub fn runtime_ms(&self, clock_ghz: f64) -> f64 {
        self.total_cycles() as f64 / (clock_ghz * 1e6)
    }

    /// Inference throughput in inputs per second for a batch of
    /// `batch` at the given clock.
    #[must_use]
    pub fn throughput_per_s(&self, batch: usize, clock_ghz: f64) -> f64 {
        if self.total_cycles() == 0 {
            return 0.0;
        }
        batch as f64 / (self.runtime_ms(clock_ghz) / 1e3)
    }

    /// Logs a per-layer cycle breakdown through the workspace logging
    /// helper at debug level (`-vv` on the CLI). One line per layer, on
    /// stderr, so machine-readable stdout stays clean.
    pub fn log_layers(&self) {
        if !eureka_obs::log::enabled(eureka_obs::log::Level::Debug) {
            return;
        }
        eureka_obs::debug!(
            "{} on {}: {} layer(s)",
            self.arch,
            self.workload,
            self.layers.len()
        );
        for l in &self.layers {
            eureka_obs::debug!(
                "  {:<24} compute {:>12} mem {:>10} macs {:>14} bytes {:>12}",
                l.name,
                l.compute_cycles,
                l.mem_cycles,
                l.mac_ops,
                l.total_bytes()
            );
        }
    }

    /// Serializes the per-layer results as CSV (header + one row per
    /// layer), for plotting outside the harness.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "layer,compute_cycles,mem_cycles,mac_ops,idle_mac_cycles,\
             bubble_cycles,mac_utilization,\
             weight_bytes,act_bytes,out_bytes,metadata_bytes\n",
        );
        for l in &self.layers {
            out.push_str(&format!(
                "{},{},{},{},{},{},{:.4},{},{},{},{}\n",
                l.name,
                l.compute_cycles,
                l.mem_cycles,
                l.mac_ops,
                l.idle_mac_cycles,
                l.bubble_cycles,
                l.mac_utilization(),
                l.weight_bytes,
                l.act_bytes,
                l.out_bytes,
                l.metadata_bytes
            ));
        }
        out
    }
}

impl core::fmt::Display for SimReport {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(f, "{} on {}", self.arch, self.workload)?;
        writeln!(
            f,
            "  cycles: {} (compute {}, memory {} = {:.1}%)",
            self.total_cycles(),
            self.compute_cycles(),
            self.mem_cycles(),
            100.0 * self.mem_share()
        )?;
        writeln!(
            f,
            "  MACs: {} useful ({:.1}% utilization), {} layers, {} DRAM bytes",
            self.mac_ops(),
            100.0 * self.mac_utilization(),
            self.layers.len(),
            self.total_bytes()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer(compute: u64, mem: u64, macs: u64) -> LayerReport {
        LayerReport {
            name: "l".into(),
            compute_cycles: compute,
            mem_cycles: mem,
            mac_ops: macs,
            idle_mac_cycles: 10,
            bubble_cycles: 7,
            weight_bytes: 100,
            act_bytes: 200,
            out_bytes: 50,
            metadata_bytes: 5,
            ops: OpCounts {
                mux4: macs,
                ..OpCounts::default()
            },
        }
    }

    #[test]
    fn totals_aggregate() {
        let r = SimReport {
            arch: "Dense".into(),
            workload: "test".into(),
            layers: vec![layer(100, 10, 1000), layer(200, 30, 3000)],
        };
        assert_eq!(r.total_cycles(), 340);
        assert_eq!(r.compute_cycles(), 300);
        assert_eq!(r.mem_cycles(), 40);
        assert!((r.mem_share() - 40.0 / 340.0).abs() < 1e-12);
        assert_eq!(r.mac_ops(), 4000);
        assert_eq!(r.bubble_cycles(), 14);
        assert_eq!(r.total_bytes(), 2 * 355);
        assert_eq!(r.ops().mux_total(), 4000);
        assert!((r.mac_utilization() - 4000.0 / 4020.0).abs() < 1e-12);
    }

    #[test]
    fn empty_report() {
        let r = SimReport::default();
        assert_eq!(r.total_cycles(), 0);
        assert_eq!(r.mem_share(), 0.0);
        assert_eq!(r.mac_utilization(), 0.0);
    }

    #[test]
    fn display_is_informative() {
        let r = SimReport {
            arch: "Dense".into(),
            workload: "ResNet50 (mod, batch 32)".into(),
            layers: vec![layer(100, 10, 1000)],
        };
        let s = r.to_string();
        assert!(s.contains("Dense on ResNet50"));
        assert!(s.contains("cycles: 110"));
        assert!(s.contains("1 layers"));
    }

    #[test]
    fn layer_lookup_by_name() {
        let mut named = layer(100, 10, 1000);
        named.name = "conv2".into();
        let r = SimReport {
            arch: "Dense".into(),
            workload: "t".into(),
            layers: vec![layer(1, 1, 1), named],
        };
        assert_eq!(r.layer_by_name("conv2").unwrap().compute_cycles, 100);
        assert!(r.layer_by_name("missing").is_none());
    }

    #[test]
    fn runtime_metrics() {
        let r = SimReport {
            arch: "Dense".into(),
            workload: "t".into(),
            layers: vec![layer(1_000_000, 0, 1)],
        };
        // 1M cycles at 1 GHz = 1 ms; batch 32 -> 32k inputs/s.
        assert!((r.runtime_ms(1.0) - 1.0).abs() < 1e-9);
        assert!((r.throughput_per_s(32, 1.0) - 32_000.0).abs() < 1e-6);
        assert_eq!(SimReport::default().throughput_per_s(32, 1.0), 0.0);
    }

    #[test]
    fn csv_round_data() {
        let r = SimReport {
            arch: "Dense".into(),
            workload: "t".into(),
            layers: vec![layer(100, 10, 1000)],
        };
        let csv = r.to_csv();
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        assert!(header.starts_with("layer,compute_cycles"));
        assert!(header.contains("bubble_cycles,mac_utilization"));
        // 1000 / (1000 + 10) = 0.990099... -> 0.9901 at 4 places.
        assert_eq!(
            lines.next().unwrap(),
            "l,100,10,1000,10,7,0.9901,100,200,50,5"
        );
        assert_eq!(lines.next(), None);
    }

    #[test]
    fn opcounts_add() {
        let a = OpCounts {
            mux2: 1,
            mux4: 1,
            mux8: 1,
            mux16: 1,
            csa: 2,
            crossbar: 3,
            prefix: 4,
            buffer: 5,
        };
        let b = a.add(a);
        assert_eq!(b.mux_total(), 8);
        assert_eq!(b.buffer, 10);
    }
}
