//! Reusable per-worker scratch buffers for the simulation hot loops.
//!
//! The one-sided engine touches tens of thousands of sampled tiles per
//! layer; before this module each tile allocated its mask vector, its
//! canonical row-length signature, the signature's text token, and the
//! store key string — five short-lived heap allocations per sample. A
//! [`Scratch`] bundles those buffers so a worker recycles one set across
//! every tile (and every layer) it simulates.
//!
//! Ownership rules:
//!
//! * The pool hands out whole [`Scratch`] values, never shares one —
//!   a checked-out scratch is exclusively owned by its [`ScratchGuard`]
//!   until dropped, so no synchronization guards the buffers themselves.
//! * Buffers carry no information between checkouts: every user must
//!   fill (or clear) a buffer before reading it. The `_into` helpers in
//!   `eureka_sparse::canon` and [`crate::store::TileKey::encode_into`]
//!   all clear their destination first, making stale content harmless.
//! * [`LayerCtx`](crate::arch::LayerCtx) carries a [`ScratchPool`]
//!   clone (cheap: one `Arc`). Architectures that don't opt in simply
//!   never touch it; the `Default` pool works standalone, so ad-hoc
//!   call sites constructing a `LayerCtx` by hand need no setup.

use eureka_sparse::TilePattern;
use std::ops::{Deref, DerefMut};
use std::sync::{Arc, Mutex, PoisonError};

/// Reusable buffers for one in-flight layer simulation.
#[derive(Debug)]
pub struct Scratch {
    /// Sampled tile row masks (`sample_tile_into`).
    pub masks: Vec<u64>,
    /// The sampled tile itself, rebuilt in place per sample.
    pub tile: TilePattern,
    /// Canonical row-length signature (`canonical_lens_into`).
    pub lens: Vec<usize>,
    /// Rendered signature token (`lens_token_into`).
    pub token: String,
    /// Full store-key text (`TileKey::encode_into`).
    pub key: String,
    /// Timer discipline tag (only parameterized timers render into it).
    pub tag: String,
    /// Per-sample resolved tile times feeding the systolic schedule.
    pub times: Vec<u64>,
}

impl Default for Scratch {
    fn default() -> Self {
        Scratch {
            masks: Vec::new(),
            // A 1x1 placeholder; every user rebuilds via reset_from_rows.
            tile: TilePattern::from_rows(&[0], 1).expect("trivial tile shape"),
            lens: Vec::new(),
            token: String::new(),
            key: String::new(),
            tag: String::new(),
            times: Vec::new(),
        }
    }
}

/// A shared pool of [`Scratch`] sets. Cloning shares the pool; each
/// [`acquire`](Self::acquire) checks one set out exclusively.
#[derive(Clone, Debug, Default)]
pub struct ScratchPool {
    free: Arc<Mutex<Vec<Scratch>>>,
}

impl ScratchPool {
    /// Checks a scratch set out of the pool (allocating a fresh one only
    /// when the pool is empty — at most once per concurrent worker).
    /// Dropping the guard returns the set for reuse.
    #[must_use]
    pub fn acquire(&self) -> ScratchGuard<'_> {
        let scratch = self
            .free
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop()
            .unwrap_or_default();
        ScratchGuard {
            pool: self,
            scratch: Some(scratch),
        }
    }
}

/// Exclusive ownership of one [`Scratch`] until drop.
#[derive(Debug)]
pub struct ScratchGuard<'a> {
    pool: &'a ScratchPool,
    scratch: Option<Scratch>,
}

impl Deref for ScratchGuard<'_> {
    type Target = Scratch;
    fn deref(&self) -> &Scratch {
        self.scratch.as_ref().expect("present until drop")
    }
}

impl DerefMut for ScratchGuard<'_> {
    fn deref_mut(&mut self) -> &mut Scratch {
        self.scratch.as_mut().expect("present until drop")
    }
}

impl Drop for ScratchGuard<'_> {
    fn drop(&mut self) {
        if let Some(s) = self.scratch.take() {
            self.pool
                .free
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_recycles_sets() {
        let pool = ScratchPool::default();
        {
            let mut g = pool.acquire();
            g.times.extend([1, 2, 3]);
            g.key.push_str("v1|x|1");
        }
        // The recycled set keeps its capacity; content is stale by
        // contract (users clear before reading).
        let g = pool.acquire();
        assert!(g.times.capacity() >= 3);
        drop(g);
        assert_eq!(pool.free.lock().unwrap().len(), 1);
    }

    #[test]
    fn concurrent_checkouts_get_distinct_sets() {
        let pool = ScratchPool::default();
        let a = pool.acquire();
        let b = pool.acquire();
        drop(a);
        drop(b);
        assert_eq!(pool.free.lock().unwrap().len(), 2);
    }
}
