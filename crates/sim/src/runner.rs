//! The unified simulation drive path: explicit jobs, a plan/execute split,
//! parallel execution and a content-keyed result cache.
//!
//! Every consumer of the simulator — [`crate::engine`], the figure drivers
//! in `eureka-bench`, the ablation sweeps and the CLI — submits
//! [`SimJob`]s to a [`Runner`] instead of hand-rolling a serial loop over
//! `(architecture × workload × layer)`. The runner
//!
//! 1. **plans** each job into independent per-layer [work units](`WorkUnit`)
//!    (every unit owns its forked [`DetRng`] stream, so units are
//!    order-independent by construction),
//! 2. **executes** the units — serially or fanned out across a scoped
//!    thread pool — consulting a process-wide content-keyed cache first,
//!    and
//! 3. **reduces** the results back into [`SimReport`]s in layer-index
//!    order.
//!
//! # Determinism contract
//!
//! [`Runner::parallel`] output is bit-identical to [`Runner::serial`]
//! output: units are pure functions of their content key, the reduction
//! assembles layers by index (never by completion order), and no
//! floating-point accumulation crosses unit boundaries. The workspace
//! test-suite asserts `SimReport` equality across both modes for every
//! registry architecture.
//!
//! # Caching
//!
//! Figure sweeps re-simulate identical dense baselines dozens of times
//! (every speedup column divides by the same dense run). Units are
//! memoized behind a hash of their full content: architecture name, GEMM
//! descriptor, per-layer RNG stream, and every timing-relevant
//! [`SimConfig`] field. Architecture display names must therefore uniquely
//! identify simulation behaviour — an invariant the registry upholds and
//! [`Architecture::name`] documents. Cached replays are bit-identical to
//! cold misses because unit execution is deterministic.
//!
//! # Telemetry
//!
//! The runner is fully instrumented through [`eureka_obs`]: every phase
//! opens a span (`runner.run_all`, `runner.plan`, `unit.exec`,
//! `runner.reduce`) and updates the process-wide metrics registry
//! (`runner.*`, `cache.*`, `unit.*` — see the table in `DESIGN.md`).
//! Telemetry never feeds back into simulation: spans cost one relaxed
//! atomic load while disabled, metric updates are plain atomics, and no
//! measured time influences any unit's result, so instrumented output
//! stays bit-identical to uninstrumented output.

use crate::arch::{Architecture, LayerCtx, SimError};
use crate::config::SimConfig;
use crate::report::{LayerReport, SimReport};
use eureka_models::{activation, workload::LayerGemm, Workload};
use eureka_obs::metrics::{self, Class, Counter, Gauge, Histogram};
use eureka_sparse::rng::DetRng;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// One simulation request: an architecture applied to a workload under a
/// configuration.
#[derive(Clone, Copy)]
pub struct SimJob<'a> {
    /// The architecture to simulate.
    pub arch: &'a dyn Architecture,
    /// The workload to run.
    pub workload: &'a Workload,
    /// The simulator configuration.
    pub cfg: SimConfig,
}

impl<'a> SimJob<'a> {
    /// A job simulating `workload` on `arch` under `cfg`.
    #[must_use]
    pub fn new(arch: &'a dyn Architecture, workload: &'a Workload, cfg: SimConfig) -> Self {
        SimJob {
            arch,
            workload,
            cfg,
        }
    }
}

/// The smallest schedulable piece of a job: one layer of one workload on
/// one architecture. Owns everything needed to execute independently.
struct WorkUnit<'a> {
    arch: &'a dyn Architecture,
    gemm: LayerGemm,
    ctx: LayerCtx,
    cfg: SimConfig,
    key: UnitKey,
}

/// Bit-exact content key of a work unit. Two units with equal keys are
/// guaranteed to produce equal [`LayerReport`]s, because unit execution is
/// a pure function of exactly these inputs.
#[derive(Clone, PartialEq, Eq, Hash)]
struct UnitKey {
    arch: String,
    gemm_name: String,
    n: usize,
    k: usize,
    m: usize,
    unique_act_bytes: u64,
    weight_density: u64,
    clustered: bool,
    depthwise: bool,
    act_density: u64,
    s2ta_act_density: Option<u64>,
    s2ta_fil_density: Option<u64>,
    rng_seed: u64,
    rng_stream: u64,
    cfg: CfgKey,
}

/// The timing-relevant [`SimConfig`] fields, with floats as raw bits.
/// `include_attention_aux` is deliberately excluded: it only affects the
/// reduce step, never a unit's result.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct CfgKey {
    tensor_cores: usize,
    sub_array_dim: usize,
    grid_rows: usize,
    grid_cols: usize,
    window: usize,
    bytes_per_cycle: u64,
    l2_act_residency: u64,
    ramp_fraction: u64,
    rowgroup_samples: usize,
    slice_samples: usize,
    act_samples: usize,
    row_density_sigma: u64,
    sparten_chunk_min_cycles: u64,
    dstc_crossbar_width: usize,
    detailed_memory: bool,
}

impl CfgKey {
    fn of(cfg: &SimConfig) -> Self {
        CfgKey {
            tensor_cores: cfg.tensor_cores,
            sub_array_dim: cfg.core.sub_array_dim,
            grid_rows: cfg.core.grid_rows,
            grid_cols: cfg.core.grid_cols,
            window: cfg.core.window,
            bytes_per_cycle: cfg.mem.bytes_per_cycle.to_bits(),
            l2_act_residency: cfg.mem.l2_act_residency.to_bits(),
            ramp_fraction: cfg.mem.ramp_fraction.to_bits(),
            rowgroup_samples: cfg.rowgroup_samples,
            slice_samples: cfg.slice_samples,
            act_samples: cfg.act_samples,
            row_density_sigma: cfg.row_density_sigma.to_bits(),
            sparten_chunk_min_cycles: cfg.sparten_chunk_min_cycles.to_bits(),
            dstc_crossbar_width: cfg.dstc_crossbar_width,
            detailed_memory: cfg.detailed_memory,
        }
    }
}

/// Requested worker count when the runner should use every available core.
const AUTO: usize = 0;

/// Process-wide default worker count override (0 = auto-detect), set by
/// [`set_global_jobs`] — the CLI's `--jobs` flag lands here.
static GLOBAL_JOBS: AtomicUsize = AtomicUsize::new(AUTO);

/// Sets the process-wide default worker count for runners constructed with
/// [`Runner::parallel`] / [`Runner::default`]. `0` restores auto-detection
/// (all available cores). Runners built with [`Runner::with_jobs`] or
/// [`Runner::serial`] are unaffected.
pub fn set_global_jobs(jobs: usize) {
    GLOBAL_JOBS.store(jobs, Ordering::Relaxed);
}

/// The process-wide unit cache. Hit/miss/insert counts live in the
/// telemetry registry (`cache.hits` / `cache.misses` / `cache.inserts`),
/// not here — see [`telemetry`].
struct Cache {
    map: Mutex<HashMap<UnitKey, LayerReport>>,
}

fn cache() -> &'static Cache {
    static CACHE: OnceLock<Cache> = OnceLock::new();
    CACHE.get_or_init(|| Cache {
        map: Mutex::new(HashMap::new()),
    })
}

/// `&'static` handles to every runner metric, registered on first use.
/// The `cache.*` / `runner.units_*` / `runner.jobs` counters are
/// [`Class::Deterministic`]: with [`cache_reset`] +
/// [`metrics::reset`] beforehand they are byte-identical across reruns
/// of the same work. The wall-clock histograms and the utilization gauge
/// are [`Class::Timing`] and excluded from deterministic snapshots.
struct Telemetry {
    jobs: &'static Counter,
    units_planned: &'static Counter,
    units_executed: &'static Counter,
    units_cached: &'static Counter,
    cache_hits: &'static Counter,
    cache_misses: &'static Counter,
    cache_inserts: &'static Counter,
    exec_micros: &'static Histogram,
    queue_wait_micros: &'static Histogram,
    reduce_micros: &'static Histogram,
    exec_wall_micros: &'static Histogram,
    worker_utilization: &'static Gauge,
}

fn telemetry() -> &'static Telemetry {
    static TELEMETRY: OnceLock<Telemetry> = OnceLock::new();
    let t = metrics::TIME_BUCKETS_US;
    TELEMETRY.get_or_init(|| Telemetry {
        jobs: metrics::counter("runner.jobs", Class::Deterministic),
        units_planned: metrics::counter("runner.units_planned", Class::Deterministic),
        units_executed: metrics::counter("runner.units_executed", Class::Deterministic),
        units_cached: metrics::counter("runner.units_cached", Class::Deterministic),
        cache_hits: metrics::counter("cache.hits", Class::Deterministic),
        cache_misses: metrics::counter("cache.misses", Class::Deterministic),
        cache_inserts: metrics::counter("cache.inserts", Class::Deterministic),
        exec_micros: metrics::histogram("unit.exec_micros", Class::Timing, t),
        queue_wait_micros: metrics::histogram("unit.queue_wait_micros", Class::Timing, t),
        reduce_micros: metrics::histogram("runner.reduce_micros", Class::Timing, t),
        exec_wall_micros: metrics::histogram("runner.exec_wall_micros", Class::Timing, t),
        worker_utilization: metrics::gauge("runner.worker_utilization", Class::Timing),
    })
}

fn micros(d: std::time::Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// Empties the process-wide unit cache (for cold-start measurements).
/// Leaves the `cache.*` counters running; see [`cache_reset`] to zero
/// them too.
pub fn clear_cache() {
    cache().map.lock().expect("cache poisoned").clear();
}

/// Empties the unit cache **and** zeroes the `cache.*` counters, so
/// callers can assert exact hit/miss counts no matter what ran earlier
/// in the process (test execution order, warm-up passes, ...).
pub fn cache_reset() {
    let t = telemetry();
    cache().map.lock().expect("cache poisoned").clear();
    t.cache_hits.reset();
    t.cache_misses.reset();
    t.cache_inserts.reset();
}

/// `(hits, misses, entries)` counters of the process-wide unit cache.
#[must_use]
pub fn cache_stats() -> (u64, u64, usize) {
    let t = telemetry();
    let entries = cache().map.lock().expect("cache poisoned").len();
    (t.cache_hits.get(), t.cache_misses.get(), entries)
}

/// Executes [`SimJob`]s: plans per-layer units, runs them (optionally in
/// parallel, optionally memoized) and reduces deterministically.
///
/// The parallel and serial modes produce bit-identical [`SimReport`]s; see
/// the [module docs](self) for the contract.
#[derive(Clone, Copy, Debug)]
pub struct Runner {
    jobs: usize,
    cached: bool,
}

impl Default for Runner {
    /// The standard drive path: parallel across all cores (or the
    /// [`set_global_jobs`] override), with the unit cache enabled.
    fn default() -> Self {
        Runner::parallel()
    }
}

impl Runner {
    /// A runner executing units one at a time, in plan order.
    #[must_use]
    pub fn serial() -> Self {
        Runner {
            jobs: 1,
            cached: true,
        }
    }

    /// A runner fanning units out across all available cores (or the
    /// process-wide [`set_global_jobs`] override).
    #[must_use]
    pub fn parallel() -> Self {
        Runner {
            jobs: AUTO,
            cached: true,
        }
    }

    /// A runner with an explicit worker count (`0` = auto-detect).
    #[must_use]
    pub fn with_jobs(jobs: usize) -> Self {
        Runner { jobs, cached: true }
    }

    /// Disables the unit cache for this runner (every unit recomputes).
    #[must_use]
    pub fn without_cache(mut self) -> Self {
        self.cached = false;
        self
    }

    /// The worker count this runner would use right now.
    #[must_use]
    pub fn effective_jobs(&self) -> usize {
        let requested = match self.jobs {
            AUTO => GLOBAL_JOBS.load(Ordering::Relaxed),
            n => n,
        };
        match requested {
            AUTO => std::thread::available_parallelism().map_or(1, |n| n.get()),
            n => n,
        }
    }

    /// Runs one job.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Unsupported`] if the architecture cannot run
    /// the workload (e.g. S2TA on InceptionV3).
    pub fn run(&self, job: &SimJob<'_>) -> Result<SimReport, SimError> {
        self.run_all(std::slice::from_ref(job))
            .pop()
            .expect("one job in, one report out")
    }

    /// Runs a batch of jobs, fanning all their units out together, and
    /// returns one result per job in submission order.
    pub fn run_all(&self, jobs: &[SimJob<'_>]) -> Vec<Result<SimReport, SimError>> {
        let t = telemetry();
        let _run_span = eureka_obs::span!("runner.run_all", "{} job(s)", jobs.len());
        t.jobs.add(jobs.len() as u64);
        // Plan: enumerate every job's per-layer units.
        let mut units = Vec::new();
        let mut ranges = Vec::with_capacity(jobs.len());
        {
            let _plan_span = eureka_obs::span!("runner.plan");
            for job in jobs {
                let start = units.len();
                plan(job, &mut units);
                ranges.push(start..units.len());
            }
        }
        t.units_planned.add(units.len() as u64);
        // Execute: serial order or index-claimed pool, cache-first.
        let results = self.execute(&units);
        // Reduce: reassemble per job, in layer-index order.
        let _reduce_span = eureka_obs::span!("runner.reduce");
        let reduce_started = Instant::now();
        let out = jobs
            .iter()
            .zip(ranges)
            .map(|(job, range)| reduce(job, &results[range]))
            .collect();
        t.reduce_micros.record(micros(reduce_started.elapsed()));
        out
    }

    /// Executes planned units, returning results in unit order.
    fn execute(&self, units: &[WorkUnit<'_>]) -> Vec<Result<LayerReport, SimError>> {
        let t = telemetry();
        let workers = self.effective_jobs().min(units.len());
        let wall = Instant::now();
        let busy_us = AtomicU64::new(0);
        let results: Vec<Result<LayerReport, SimError>> = if workers <= 1 {
            units
                .iter()
                .map(|unit| {
                    t.queue_wait_micros.record(micros(wall.elapsed()));
                    let started = Instant::now();
                    let result = self.run_unit(unit);
                    busy_us.fetch_add(micros(started.elapsed()), Ordering::Relaxed);
                    result
                })
                .collect()
        } else {
            let slots: Vec<OnceLock<Result<LayerReport, SimError>>> =
                (0..units.len()).map(|_| OnceLock::new()).collect();
            let next = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| {
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            let Some(unit) = units.get(i) else { break };
                            t.queue_wait_micros.record(micros(wall.elapsed()));
                            let started = Instant::now();
                            slots[i]
                                .set(self.run_unit(unit))
                                .unwrap_or_else(|_| unreachable!("unit {i} claimed twice"));
                            busy_us.fetch_add(micros(started.elapsed()), Ordering::Relaxed);
                        }
                        // `thread::scope` unblocks when this closure
                        // returns — possibly before TLS destructors run —
                        // so hand buffered spans over explicitly.
                        eureka_obs::span::flush_thread();
                    });
                }
            });
            slots
                .into_iter()
                .map(|slot| slot.into_inner().expect("every slot filled"))
                .collect()
        };
        let wall_us = micros(wall.elapsed());
        if !units.is_empty() {
            t.exec_wall_micros.record(wall_us);
            if wall_us > 0 {
                let busy = busy_us.load(Ordering::Relaxed) as f64;
                t.worker_utilization
                    .set(busy / (workers.max(1) as f64 * wall_us as f64));
            }
        }
        results
    }

    /// Executes one unit, consulting the cache first.
    fn run_unit(&self, unit: &WorkUnit<'_>) -> Result<LayerReport, SimError> {
        let t = telemetry();
        let _span = eureka_obs::span!("unit.exec", "{} {}", unit.key.arch, unit.gemm.name);
        if self.cached {
            if let Some(hit) = cache()
                .map
                .lock()
                .expect("cache poisoned")
                .get(&unit.key)
                .cloned()
            {
                t.cache_hits.inc();
                t.units_cached.inc();
                return Ok(hit);
            }
        }
        let started = Instant::now();
        let result = execute_unit(unit);
        t.exec_micros.record(micros(started.elapsed()));
        t.units_executed.inc();
        if self.cached {
            t.cache_misses.inc();
            if let Ok(report) = &result {
                cache()
                    .map
                    .lock()
                    .expect("cache poisoned")
                    .insert(unit.key.clone(), report.clone());
                t.cache_inserts.inc();
            }
        }
        result
    }
}

/// Plans one job into per-layer units appended to `units`.
fn plan<'a>(job: &SimJob<'a>, units: &mut Vec<WorkUnit<'a>>) {
    let workload = job.workload;
    let bench = workload.benchmark();
    let base_rng = DetRng::new(workload.seed());
    let act_density = workload.activation_density();
    let s2ta_act_density = activation::s2ta_activation_density(bench);
    let s2ta_fil_density = activation::s2ta_filter_density(bench);
    for (i, gemm) in workload.gemms().into_iter().enumerate() {
        let stream = i as u64;
        let key = UnitKey {
            arch: job.arch.name().to_string(),
            gemm_name: gemm.name.clone(),
            n: gemm.shape.n,
            k: gemm.shape.k,
            m: gemm.shape.m,
            unique_act_bytes: gemm.unique_act_bytes,
            weight_density: gemm.weight_density.to_bits(),
            clustered: gemm.clustered,
            depthwise: gemm.depthwise,
            act_density: act_density.to_bits(),
            s2ta_act_density: s2ta_act_density.map(f64::to_bits),
            s2ta_fil_density: s2ta_fil_density.map(f64::to_bits),
            rng_seed: workload.seed(),
            rng_stream: stream,
            cfg: CfgKey::of(&job.cfg),
        };
        units.push(WorkUnit {
            arch: job.arch,
            gemm,
            ctx: LayerCtx {
                act_density,
                s2ta_act_density,
                s2ta_fil_density,
                rng: base_rng.fork(stream),
            },
            cfg: job.cfg,
            key,
        });
    }
}

/// The pure per-layer computation: architecture timing, plus the measured
/// cache-replay residency when `detailed_memory` is on.
fn execute_unit(unit: &WorkUnit<'_>) -> Result<LayerReport, SimError> {
    let mut report = unit.arch.simulate_layer(&unit.gemm, &unit.ctx, &unit.cfg)?;
    if unit.cfg.detailed_memory {
        // Replace the analytic residency constant with a measured one from
        // the cache substrate, and re-derive the exposure.
        let residency = crate::cachesim::replay_layer(
            &unit.gemm,
            &unit.cfg,
            crate::cachesim::CacheConfig::ampere_l2(),
            96,
        )
        .act_hit_rate;
        let mem = crate::config::MemoryConfig {
            l2_act_residency: residency,
            ..unit.cfg.mem
        };
        report.mem_cycles = crate::memory::exposed_cycles(&report, &mem);
    }
    Ok(report)
}

/// Assembles one job's unit results (already in layer order) into a
/// [`SimReport`], surfacing the lowest-index error if any unit failed.
fn reduce(
    job: &SimJob<'_>,
    results: &[Result<LayerReport, SimError>],
) -> Result<SimReport, SimError> {
    let mut layers = Vec::with_capacity(results.len() + 1);
    for r in results {
        layers.push(r.clone()?);
    }
    // Weight-free attention matmuls run dense on every architecture.
    if job.cfg.include_attention_aux {
        let aux = job.workload.attention_aux_macs();
        if aux > 0 {
            let compute = (aux as f64 / job.cfg.total_macs() as f64).ceil() as u64;
            layers.push(LayerReport {
                name: "attention-aux".into(),
                compute_cycles: compute,
                mem_cycles: (job.cfg.mem.ramp_fraction * compute as f64).ceil() as u64,
                mac_ops: aux,
                idle_mac_cycles: 0,
                ..LayerReport::default()
            });
        }
    }
    Ok(SimReport {
        arch: job.arch.name().to_string(),
        workload: format!(
            "{} ({}, batch {})",
            job.workload.benchmark().name(),
            job.workload.pruning().label(),
            job.workload.batch()
        ),
        layers,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch;
    use eureka_models::{Benchmark, PruningLevel, Workload};

    fn tiny_cfg() -> SimConfig {
        SimConfig {
            rowgroup_samples: 8,
            slice_samples: 8,
            act_samples: 8,
            ..SimConfig::paper_default()
        }
    }

    #[test]
    fn serial_and_parallel_agree_on_one_job() {
        let w = Workload::new(Benchmark::MobileNetV1, PruningLevel::Moderate, 32);
        let cfg = tiny_cfg();
        let a = arch::eureka_p4();
        let job = SimJob::new(&a, &w, cfg);
        let serial = Runner::serial().without_cache().run(&job).unwrap();
        let parallel = Runner::with_jobs(4).without_cache().run(&job).unwrap();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn run_all_preserves_submission_order() {
        let w = Workload::new(Benchmark::MobileNetV1, PruningLevel::Moderate, 32);
        let cfg = tiny_cfg();
        let dense = arch::dense();
        let eureka = arch::eureka_p4();
        let jobs = [SimJob::new(&dense, &w, cfg), SimJob::new(&eureka, &w, cfg)];
        let out = Runner::with_jobs(3).run_all(&jobs);
        assert_eq!(out[0].as_ref().unwrap().arch, "Dense");
        assert_eq!(out[1].as_ref().unwrap().arch, "Eureka P=4");
    }

    #[test]
    fn unsupported_arch_errors_like_engine() {
        let w = Workload::new(Benchmark::InceptionV3, PruningLevel::Moderate, 32);
        let cfg = tiny_cfg();
        let s2ta = arch::s2ta();
        let job = SimJob::new(&s2ta, &w, cfg);
        let serial = Runner::serial().run(&job);
        let parallel = Runner::with_jobs(4).run(&job);
        assert!(serial.is_err());
        assert_eq!(serial, parallel);
    }

    #[test]
    fn cache_counts_hits_and_returns_identical_results() {
        let w = Workload::new(Benchmark::MobileNetV1, PruningLevel::Conservative, 16);
        let cfg = SimConfig {
            rowgroup_samples: 7, // distinctive: avoid collisions with other tests
            ..tiny_cfg()
        };
        let a = arch::ampere();
        let job = SimJob::new(&a, &w, cfg);
        let cold = Runner::serial().run(&job).unwrap();
        let (h0, _, _) = cache_stats();
        let warm = Runner::serial().run(&job).unwrap();
        let (h1, _, _) = cache_stats();
        assert_eq!(cold, warm);
        assert!(
            h1 >= h0 + w.layer_count() as u64,
            "expected {} cache hits, saw {}",
            w.layer_count(),
            h1 - h0
        );
    }

    #[test]
    fn global_jobs_override_applies_to_auto_runners() {
        set_global_jobs(3);
        assert_eq!(Runner::parallel().effective_jobs(), 3);
        assert_eq!(Runner::serial().effective_jobs(), 1);
        assert_eq!(Runner::with_jobs(5).effective_jobs(), 5);
        set_global_jobs(0);
        assert!(Runner::parallel().effective_jobs() >= 1);
    }

    #[test]
    fn attention_aux_reduces_identically_in_both_modes() {
        let w = Workload::new(Benchmark::BertSquad, PruningLevel::Moderate, 8);
        let cfg = SimConfig {
            include_attention_aux: true,
            ..tiny_cfg()
        };
        let a = arch::dense();
        let job = SimJob::new(&a, &w, cfg);
        let serial = Runner::serial().without_cache().run(&job).unwrap();
        let parallel = Runner::with_jobs(2).without_cache().run(&job).unwrap();
        assert_eq!(serial, parallel);
        assert!(serial.layers.iter().any(|l| l.name == "attention-aux"));
    }
}
