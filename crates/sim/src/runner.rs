//! The unified simulation drive path: explicit jobs, a plan/execute split,
//! parallel execution, fault isolation and a content-keyed result cache.
//!
//! Every consumer of the simulator — [`crate::engine`], the figure drivers
//! in `eureka-bench`, the ablation sweeps and the CLI — submits
//! [`SimJob`]s to a [`Runner`] instead of hand-rolling a serial loop over
//! `(architecture × workload × layer)`. The runner
//!
//! 1. **plans** each job into independent per-layer [work units](`WorkUnit`)
//!    (every unit owns its forked [`DetRng`] stream, so units are
//!    order-independent by construction),
//! 2. **executes** the units — serially or fanned out across a scoped
//!    thread pool — consulting a process-wide content-keyed cache (and,
//!    when resuming, an on-disk checkpoint) first, and
//! 3. **reduces** the results back into [`JobOutcome`]s in layer-index
//!    order.
//!
//! # Determinism contract
//!
//! [`Runner::parallel`] output is bit-identical to [`Runner::serial`]
//! output: units are pure functions of their content key, the reduction
//! assembles layers by index (never by completion order), and no
//! floating-point accumulation crosses unit boundaries. The workspace
//! test-suite asserts `SimReport` equality across both modes for every
//! registry architecture. Fault handling preserves the contract: failures
//! are deterministic properties of a unit's inputs, every planned unit is
//! always executed (no early abort on failure), and outcomes are reduced
//! by index.
//!
//! # Failure model
//!
//! Each unit executes under [`std::panic::catch_unwind`]: a panic or
//! [`SimError`] becomes a typed [`UnitFailure`] instead of aborting the
//! sweep, optionally retried under a bounded deterministic
//! [`RetryPolicy`]. [`Runner::run_outcomes`] surfaces the full taxonomy
//! ([`JobOutcome::Complete`] / [`JobOutcome::Degraded`] /
//! [`JobOutcome::Failed`]); the legacy [`Runner::run_all`] collapses it
//! back to `Result`s. Failed units are never inserted into the cache or
//! the checkpoint directory, so no later run can replay a poisoned
//! result. See DESIGN.md "Failure model & recovery".
//!
//! # Caching
//!
//! Figure sweeps re-simulate identical dense baselines dozens of times
//! (every speedup column divides by the same dense run). Units are
//! memoized behind a hash of their full content: architecture name, GEMM
//! descriptor, per-layer RNG stream, and every timing-relevant
//! [`SimConfig`] field. Architecture display names must therefore uniquely
//! identify simulation behaviour — an invariant the registry upholds and
//! [`Architecture::name`] documents. Cached replays are bit-identical to
//! cold misses because unit execution is deterministic. The same content
//! key, rendered canonically as text, names on-disk checkpoint entries
//! ([`crate::checkpoint`]) so interrupted sweeps resume bit-identically.
//!
//! Below the unit cache sits a second, finer memoization layer: the
//! content-addressed tile store ([`crate::store`]). Planning plants a
//! [`TileBroker`] in every unit's [`LayerCtx`]; tile-timer architectures
//! resolve each sampled tile through it, so tiles with equal canonical
//! row-length signatures are simulated once per process (hot tier) — or
//! once *ever*, when [`Runner::with_store_dir`] persists outcomes across
//! runs. A unit whose tiles all came from the store still executes (its
//! RNG streams advance identically, keeping reports bit-identical to a
//! cold run) but performs zero tile simulations; such units count toward
//! `runner.units_from_store` instead of `cache.misses`.
//!
//! # Telemetry
//!
//! The runner is fully instrumented through [`eureka_obs`]: every phase
//! opens a span (`runner.run_all`, `runner.plan`, `unit.exec`,
//! `runner.reduce`, plus zero-length `unit.retry` / `unit.failure`
//! markers) and updates the process-wide metrics registry (`runner.*`,
//! `cache.*`, `unit.*`, `checkpoint.*`, `store.*` — see the table in
//! `DESIGN.md`). For a cache-enabled runner the deterministic counters
//! reconcile as `runner.units_planned == cache.hits + checkpoint.hits +
//! runner.units_from_store + cache.misses + runner.failures.*` — every
//! planned unit is accounted for exactly once,
//! even on degraded runs. Telemetry never feeds back into simulation:
//! spans cost one relaxed atomic load while disabled, metric updates are
//! plain atomics, and no measured time influences any unit's result, so
//! instrumented output stays bit-identical to uninstrumented output.
//!
//! When the [`eureka_obs::events`] bus is armed (`--events-out` /
//! `--progress`), the drive path additionally emits the
//! `eureka-events-v1` stream — `run-started`, `unit-planned` per unit,
//! `unit-started` / `unit-finished` (with its `cache` / `checkpoint` /
//! `store` / `computed` source classification), `retry` / `failure`,
//! `checkpoint-written`, `store-flush`, `run-finished`. Every emit site
//! is guarded by one relaxed atomic load and feeds nothing back into
//! simulation, so event-instrumented runs stay bit-identical too.

use crate::arch::{Architecture, LayerCtx, SimError};
use crate::backoff::BackoffPolicy;
use crate::checkpoint::{fnv1a64, CheckpointStore};
use crate::config::SimConfig;
use crate::outcome::{FailureKind, JobOutcome, RetryPolicy, UnitFailure};
use crate::profile::{LayerProfile, ProfileConfig, SimProfile};
use crate::report::{LayerReport, SimReport};
use crate::store::{self, TileBroker};
use eureka_models::{activation, workload::LayerGemm, Workload};
use eureka_obs::events::{self, Event};
use eureka_obs::metrics::{self, Class, Counter, Gauge, Histogram};
use eureka_sparse::rng::DetRng;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Instant;

/// One simulation request: an architecture applied to a workload under a
/// configuration.
#[derive(Clone, Copy)]
pub struct SimJob<'a> {
    /// The architecture to simulate.
    pub arch: &'a dyn Architecture,
    /// The workload to run.
    pub workload: &'a Workload,
    /// The simulator configuration.
    pub cfg: SimConfig,
}

impl<'a> SimJob<'a> {
    /// A job simulating `workload` on `arch` under `cfg`.
    #[must_use]
    pub fn new(arch: &'a dyn Architecture, workload: &'a Workload, cfg: SimConfig) -> Self {
        SimJob {
            arch,
            workload,
            cfg,
        }
    }
}

/// The smallest schedulable piece of a job: one layer of one workload on
/// one architecture. Owns everything needed to execute independently.
struct WorkUnit<'a> {
    arch: &'a dyn Architecture,
    gemm: LayerGemm,
    ctx: LayerCtx,
    cfg: SimConfig,
    key: UnitKey,
    /// Position in the batch's plan order — the stable `unit` coordinate
    /// every run event carries (deterministic: planning is serial).
    index: usize,
}

/// Bit-exact content key of a work unit. Two units with equal keys are
/// guaranteed to produce equal [`LayerReport`]s, because unit execution is
/// a pure function of exactly these inputs.
#[derive(Clone, PartialEq, Eq, Hash)]
struct UnitKey {
    arch: String,
    gemm_name: String,
    n: usize,
    k: usize,
    m: usize,
    unique_act_bytes: u64,
    weight_density: u64,
    clustered: bool,
    depthwise: bool,
    act_density: u64,
    s2ta_act_density: Option<u64>,
    s2ta_fil_density: Option<u64>,
    rng_seed: u64,
    rng_stream: u64,
    cfg: CfgKey,
}

impl UnitKey {
    /// Stable single-line text rendering of the full content key; names
    /// on-disk checkpoint entries, so it must be identical across
    /// processes and platforms for identical units (floats are rendered
    /// as raw bits, never formatted).
    fn canonical(&self) -> String {
        fn opt(v: Option<u64>) -> String {
            v.map_or_else(|| "-".to_string(), |b| format!("{b:016x}"))
        }
        format!(
            "v1|arch={}|gemm={}|nkm={}x{}x{}|uab={}|wd={:016x}|cl={}|dw={}|ad={:016x}|s2a={}|s2f={}|seed={:016x}|stream={}|{}",
            self.arch,
            self.gemm_name,
            self.n,
            self.k,
            self.m,
            self.unique_act_bytes,
            self.weight_density,
            self.clustered,
            self.depthwise,
            self.act_density,
            opt(self.s2ta_act_density),
            opt(self.s2ta_fil_density),
            self.rng_seed,
            self.rng_stream,
            self.cfg.canonical(),
        )
    }
}

/// The timing-relevant [`SimConfig`] fields, with floats as raw bits.
/// `include_attention_aux` is deliberately excluded: it only affects the
/// reduce step, never a unit's result.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct CfgKey {
    tensor_cores: usize,
    sub_array_dim: usize,
    grid_rows: usize,
    grid_cols: usize,
    window: usize,
    bytes_per_cycle: u64,
    l2_act_residency: u64,
    ramp_fraction: u64,
    rowgroup_samples: usize,
    slice_samples: usize,
    act_samples: usize,
    row_density_sigma: u64,
    sparten_chunk_min_cycles: u64,
    dstc_crossbar_width: usize,
    detailed_memory: bool,
}

impl CfgKey {
    fn of(cfg: &SimConfig) -> Self {
        CfgKey {
            tensor_cores: cfg.tensor_cores,
            sub_array_dim: cfg.core.sub_array_dim,
            grid_rows: cfg.core.grid_rows,
            grid_cols: cfg.core.grid_cols,
            window: cfg.core.window,
            bytes_per_cycle: cfg.mem.bytes_per_cycle.to_bits(),
            l2_act_residency: cfg.mem.l2_act_residency.to_bits(),
            ramp_fraction: cfg.mem.ramp_fraction.to_bits(),
            rowgroup_samples: cfg.rowgroup_samples,
            slice_samples: cfg.slice_samples,
            act_samples: cfg.act_samples,
            row_density_sigma: cfg.row_density_sigma.to_bits(),
            sparten_chunk_min_cycles: cfg.sparten_chunk_min_cycles.to_bits(),
            dstc_crossbar_width: cfg.dstc_crossbar_width,
            detailed_memory: cfg.detailed_memory,
        }
    }

    /// Stable text rendering for [`UnitKey::canonical`].
    fn canonical(&self) -> String {
        format!(
            "cfg=tc{},sa{},gr{},gc{},w{},bpc{:016x},l2{:016x},rf{:016x},rg{},sl{},ac{},sg{:016x},sc{:016x},xw{},dm{}",
            self.tensor_cores,
            self.sub_array_dim,
            self.grid_rows,
            self.grid_cols,
            self.window,
            self.bytes_per_cycle,
            self.l2_act_residency,
            self.ramp_fraction,
            self.rowgroup_samples,
            self.slice_samples,
            self.act_samples,
            self.row_density_sigma,
            self.sparten_chunk_min_cycles,
            self.dstc_crossbar_width,
            self.detailed_memory,
        )
    }
}

/// Requested worker count when the runner should use every available core.
const AUTO: usize = 0;

/// Process-wide default worker count override (0 = auto-detect), set by
/// [`set_global_jobs`] — the CLI's `--jobs` flag lands here.
static GLOBAL_JOBS: AtomicUsize = AtomicUsize::new(AUTO);

/// Process-wide default retry policy, consumed only by
/// [`Runner::default`] — the CLI's `--retries` flag lands here.
static GLOBAL_RETRY: Mutex<RetryPolicy> = Mutex::new(RetryPolicy::NONE);

/// Process-wide default checkpoint configuration `(dir, resume)`,
/// consumed only by [`Runner::default`] — the CLI's `--checkpoint-dir` /
/// `--resume` flags land here.
static GLOBAL_CHECKPOINT: Mutex<Option<(PathBuf, bool)>> = Mutex::new(None);

/// Process-wide default tile-store configuration `(dir, enabled)`,
/// consumed only by [`Runner::default`] — the CLI's `--store-dir` /
/// `--no-store` flags land here. The in-memory hot tier defaults to
/// enabled with no persistence directory.
static GLOBAL_STORE: Mutex<(Option<PathBuf>, bool)> = Mutex::new((None, true));

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // The runner must stay usable after a unit panic was caught while
    // some other thread held a shared lock: recover the data instead of
    // propagating poisoning forever.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Sets the process-wide default worker count for runners constructed with
/// [`Runner::parallel`] / [`Runner::default`]. `0` restores auto-detection
/// (all available cores). Runners built with [`Runner::with_jobs`] or
/// [`Runner::serial`] are unaffected.
pub fn set_global_jobs(jobs: usize) {
    GLOBAL_JOBS.store(jobs, Ordering::Relaxed);
}

/// Sets the process-wide default [`RetryPolicy`], consumed only by
/// [`Runner::default`] (explicitly constructed runners are unaffected, so
/// tests composing their own runners stay isolated).
pub fn set_global_retry(policy: RetryPolicy) {
    *lock(&GLOBAL_RETRY) = policy;
}

/// Sets (or clears) the process-wide default checkpoint configuration,
/// consumed only by [`Runner::default`]: the directory for completed-unit
/// files and whether to resume from entries already present.
pub fn set_global_checkpoint(cfg: Option<(PathBuf, bool)>) {
    *lock(&GLOBAL_CHECKPOINT) = cfg;
}

/// Sets the process-wide default tile-store configuration, consumed only
/// by [`Runner::default`]: an optional persistence directory for tile
/// outcomes and whether the store participates at all (`enabled =
/// false` disables even the in-memory hot tier). Explicitly constructed
/// runners are unaffected.
pub fn set_global_store(dir: Option<PathBuf>, enabled: bool) {
    *lock(&GLOBAL_STORE) = (dir, enabled);
}

/// The process-wide unit cache. Hit/miss/insert counts live in the
/// telemetry registry (`cache.hits` / `cache.misses` / `cache.inserts`),
/// not here — see [`telemetry`].
struct Cache {
    map: Mutex<HashMap<UnitKey, LayerReport>>,
}

fn cache() -> &'static Cache {
    static CACHE: OnceLock<Cache> = OnceLock::new();
    CACHE.get_or_init(|| Cache {
        map: Mutex::new(HashMap::new()),
    })
}

/// `&'static` handles to every runner metric, registered on first use.
/// The `cache.*` / `checkpoint.*` / `runner.units_*` / `runner.jobs` /
/// `runner.failures.*` / `runner.retries.*` counters are
/// [`Class::Deterministic`]: with [`cache_reset`] +
/// [`metrics::reset`] beforehand they are byte-identical across reruns
/// of the same work. The wall-clock histograms and the utilization gauge
/// are [`Class::Timing`] and excluded from deterministic snapshots.
struct Telemetry {
    jobs: &'static Counter,
    units_planned: &'static Counter,
    units_executed: &'static Counter,
    units_cached: &'static Counter,
    cache_hits: &'static Counter,
    cache_misses: &'static Counter,
    cache_inserts: &'static Counter,
    units_from_store: &'static Counter,
    failures_panic: &'static Counter,
    failures_sim: &'static Counter,
    failures_cancelled: &'static Counter,
    retries_attempts: &'static Counter,
    retries_recovered: &'static Counter,
    backoff_slept_us: &'static Counter,
    ckpt_hits: &'static Counter,
    ckpt_writes: &'static Counter,
    ckpt_errors: &'static Counter,
    exec_micros: &'static Histogram,
    queue_wait_micros: &'static Histogram,
    reduce_micros: &'static Histogram,
    exec_wall_micros: &'static Histogram,
    worker_utilization: &'static Gauge,
}

fn telemetry() -> &'static Telemetry {
    static TELEMETRY: OnceLock<Telemetry> = OnceLock::new();
    let t = metrics::TIME_BUCKETS_US;
    TELEMETRY.get_or_init(|| Telemetry {
        jobs: metrics::counter("runner.jobs", Class::Deterministic),
        units_planned: metrics::counter("runner.units_planned", Class::Deterministic),
        units_executed: metrics::counter("runner.units_executed", Class::Deterministic),
        units_cached: metrics::counter("runner.units_cached", Class::Deterministic),
        cache_hits: metrics::counter("cache.hits", Class::Deterministic),
        cache_misses: metrics::counter("cache.misses", Class::Deterministic),
        cache_inserts: metrics::counter("cache.inserts", Class::Deterministic),
        units_from_store: metrics::counter("runner.units_from_store", Class::Deterministic),
        failures_panic: metrics::counter("runner.failures.panic", Class::Deterministic),
        failures_sim: metrics::counter("runner.failures.sim_error", Class::Deterministic),
        failures_cancelled: metrics::counter("runner.failures.cancelled", Class::Deterministic),
        retries_attempts: metrics::counter("runner.retries.attempts", Class::Deterministic),
        retries_recovered: metrics::counter("runner.retries.recovered", Class::Deterministic),
        // Deterministic: the slept total is a pure function of the
        // (deterministic) retry schedule and the backoff policy.
        backoff_slept_us: metrics::counter("runner.backoff.slept_us", Class::Deterministic),
        ckpt_hits: metrics::counter("checkpoint.hits", Class::Deterministic),
        ckpt_writes: metrics::counter("checkpoint.writes", Class::Deterministic),
        ckpt_errors: metrics::counter("checkpoint.errors", Class::Deterministic),
        exec_micros: metrics::histogram("unit.exec_micros", Class::Timing, t),
        queue_wait_micros: metrics::histogram("unit.queue_wait_micros", Class::Timing, t),
        reduce_micros: metrics::histogram("runner.reduce_micros", Class::Timing, t),
        exec_wall_micros: metrics::histogram("runner.exec_wall_micros", Class::Timing, t),
        worker_utilization: metrics::gauge("runner.worker_utilization", Class::Timing),
    })
}

fn micros(d: std::time::Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// The per-architecture unit execution-time histogram
/// (`unit.exec_micros.<slug>`, [`Class::Timing`]), interned on first
/// use. Slugs are the lowercased arch display name with every
/// non-alphanumeric character mapped to `_` (e.g. `Eureka P=4` →
/// `eureka_p_4`). Timing-class, so which architectures happened to run
/// never changes a deterministic snapshot.
fn arch_exec_histogram(arch: &str) -> &'static Histogram {
    static BY_ARCH: OnceLock<Mutex<HashMap<String, &'static Histogram>>> = OnceLock::new();
    let map = BY_ARCH.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = lock(map);
    if let Some(h) = map.get(arch) {
        return h;
    }
    let slug: String = arch
        .to_lowercase()
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    let name: &'static str = Box::leak(format!("unit.exec_micros.{slug}").into_boxed_str());
    let h = metrics::histogram(name, Class::Timing, metrics::TIME_BUCKETS_US);
    map.insert(arch.to_string(), h);
    h
}

/// The `key` event field: the fnv1a64 digest of the unit's canonical
/// content key, rendered as 16 hex digits (the same digest that names
/// checkpoint files).
fn unit_key_digest(key: &UnitKey) -> String {
    format!("{:016x}", fnv1a64(key.canonical().as_bytes()))
}

/// Emits the `unit-finished` event for a successful unit. `exec_us` is
/// `0` for cache/checkpoint replays (nothing executed). The `source`
/// classification (`cache` / `checkpoint` / `store` / `computed`) is a
/// deterministic field: unit keys within a shipped plan are distinct,
/// so which memoization layer serves a unit never depends on worker
/// scheduling.
fn emit_unit_finished(unit: &WorkUnit<'_>, source: &str, report: &LayerReport, exec_us: u64) {
    events::emit(
        Event::new("unit-finished")
            .det_u64("unit", unit.index as u64)
            .det_str("source", source)
            .det_bool("ok", true)
            .det_u64("cycles", report.total_cycles())
            .wall_u64("exec_us", exec_us),
    );
}

/// Empties the process-wide unit cache (for cold-start measurements).
/// Leaves the `cache.*` counters running; see [`cache_reset`] to zero
/// them too.
pub fn clear_cache() {
    lock(&cache().map).clear();
}

/// Empties the unit cache **and** the tile store's hot tier, and zeroes
/// the `cache.*`, `checkpoint.*`, `store.*`, `runner.units_from_store`,
/// `runner.failures.*` and `runner.retries.*` counters, so callers can
/// assert exact counts no matter what ran earlier in the process (test
/// execution order, warm-up passes, ...). Dirty tile records are flushed
/// to their store directories first — a cold-start measurement must not
/// silently discard persistent state (see [`store::store_reset`]).
pub fn cache_reset() {
    let t = telemetry();
    lock(&cache().map).clear();
    store::store_reset();
    t.cache_hits.reset();
    t.cache_misses.reset();
    t.cache_inserts.reset();
    t.units_from_store.reset();
    t.failures_panic.reset();
    t.failures_sim.reset();
    t.failures_cancelled.reset();
    t.retries_attempts.reset();
    t.retries_recovered.reset();
    t.backoff_slept_us.reset();
    t.ckpt_hits.reset();
    t.ckpt_writes.reset();
    t.ckpt_errors.reset();
}

/// `(hits, misses, entries)` counters of the process-wide unit cache.
#[must_use]
pub fn cache_stats() -> (u64, u64, usize) {
    let t = telemetry();
    let entries = lock(&cache().map).len();
    (t.cache_hits.get(), t.cache_misses.get(), entries)
}

/// `(panics, sim_errors)` — units that exhausted their retry budget,
/// by failure kind (`runner.failures.*`).
#[must_use]
pub fn failure_stats() -> (u64, u64) {
    let t = telemetry();
    (t.failures_panic.get(), t.failures_sim.get())
}

/// Units refused at a unit boundary because their [`CancelToken`] had
/// fired (`runner.failures.cancelled`).
#[must_use]
pub fn cancelled_stats() -> u64 {
    telemetry().failures_cancelled.get()
}

/// Total microseconds of backoff delay slept before retries
/// (`runner.backoff.slept_us`; deterministic — the schedule is a pure
/// function of unit keys and the policy).
#[must_use]
pub fn backoff_stats() -> u64 {
    telemetry().backoff_slept_us.get()
}

/// `(extra_attempts, recovered)` — retry attempts beyond the first, and
/// units that ultimately succeeded after at least one failed attempt
/// (`runner.retries.*`).
#[must_use]
pub fn retry_stats() -> (u64, u64) {
    let t = telemetry();
    (t.retries_attempts.get(), t.retries_recovered.get())
}

/// `(hits, writes, errors)` of the on-disk checkpoint layer
/// (`checkpoint.*`).
#[must_use]
pub fn checkpoint_stats() -> (u64, u64, u64) {
    let t = telemetry();
    (t.ckpt_hits.get(), t.ckpt_writes.get(), t.ckpt_errors.get())
}

/// Units that executed with every sampled tile served by the tile store
/// (`runner.units_from_store`): the unit ran — its RNG streams advanced
/// and its report is bit-identical to a cold compute — but zero tile
/// simulations happened.
#[must_use]
pub fn units_from_store_stats() -> u64 {
    telemetry().units_from_store.get()
}

/// Checkpoint configuration carried by a runner: where completed-unit
/// files live, and whether to consult existing entries before executing.
#[derive(Clone, Debug)]
struct CheckpointCfg {
    store: CheckpointStore,
    resume: bool,
}

/// A unit failure as seen by the execute phase, before the reduce phase
/// attaches job/layer coordinates.
#[derive(Clone, Debug)]
struct UnitError {
    kind: FailureKind,
    payload: String,
    attempts: u32,
}

/// Cooperative cancellation handle, checked by the runner at unit
/// boundaries (never mid-unit: a unit that has started always runs to
/// its own completion or failure, keeping unit results pure).
///
/// A token fires either *explicitly* — [`CancelToken::cancel`], from an
/// operator or a service drain — or *implicitly*, when its optional
/// deadline passes. Clones share the explicit flag (and carry the same
/// deadline), so the service can hold one end while the runner polls
/// the other. Once fired, a token never un-fires; units observed after
/// that fail with [`FailureKind::Cancelled`] and are never retried.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token that only fires when [`CancelToken::cancel`] is called.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A token that additionally fires once `deadline` has elapsed from
    /// now (the job's admission into execution).
    #[must_use]
    pub fn with_deadline(deadline: std::time::Duration) -> Self {
        CancelToken {
            flag: Arc::new(AtomicBool::new(false)),
            deadline: Some(Instant::now() + deadline),
        }
    }

    /// Fires the token explicitly. Idempotent; shared by all clones.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether [`CancelToken::cancel`] was called (deadline excluded).
    #[must_use]
    pub fn cancelled_explicitly(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }

    /// Whether the deadline (if any) has passed.
    #[must_use]
    pub fn deadline_exceeded(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Whether the token has fired, for either reason. Cheap enough to
    /// poll at every unit boundary.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.cancelled_explicitly() || self.deadline_exceeded()
    }
}

/// Executes [`SimJob`]s: plans per-layer units, runs them (optionally in
/// parallel, optionally memoized, optionally checkpointed) under panic
/// isolation and a bounded retry policy, and reduces deterministically.
///
/// The parallel and serial modes produce bit-identical results; see the
/// [module docs](self) for the contract.
#[derive(Clone, Debug)]
pub struct Runner {
    jobs: usize,
    cached: bool,
    retry: RetryPolicy,
    backoff: BackoffPolicy,
    cancel: Option<CancelToken>,
    checkpoint: Option<CheckpointCfg>,
    store_enabled: bool,
    store_dir: Option<PathBuf>,
}

/// How the plan phase wires work units to the tile store, resolved once
/// per run so every unit shares one disk-tier handle (and one shard
/// cache) instead of re-opening the directory per layer.
enum BrokerSource {
    Disabled,
    Enabled(Option<Arc<store::DiskTier>>),
}

impl BrokerSource {
    /// A fresh per-unit broker (each unit tallies its own lookups).
    fn broker(&self) -> TileBroker {
        match self {
            BrokerSource::Disabled => TileBroker::disabled(),
            BrokerSource::Enabled(disk) => TileBroker::enabled(disk.clone()),
        }
    }

    /// Persists tile outcomes computed during this run, if a store
    /// directory is attached.
    fn flush(&self) {
        if let BrokerSource::Enabled(Some(disk)) = self {
            disk.flush();
        }
    }

    /// Whether a persistent disk tier is attached (and [`Self::flush`]
    /// therefore actually writes).
    fn has_disk(&self) -> bool {
        matches!(self, BrokerSource::Enabled(Some(_)))
    }
}

impl Default for Runner {
    /// The standard drive path: parallel across all cores (or the
    /// [`set_global_jobs`] override), with the unit cache enabled, and the
    /// process-wide [`set_global_retry`] / [`set_global_checkpoint`] /
    /// [`set_global_store`] settings applied (explicit constructors
    /// ignore those, so tests composing their own runners stay isolated).
    fn default() -> Self {
        let mut runner = Runner::parallel();
        runner.retry = *lock(&GLOBAL_RETRY);
        runner.checkpoint = lock(&GLOBAL_CHECKPOINT)
            .clone()
            .map(|(dir, resume)| CheckpointCfg {
                store: CheckpointStore::new(dir),
                resume,
            });
        let (store_dir, store_enabled) = lock(&GLOBAL_STORE).clone();
        runner.store_dir = store_dir;
        runner.store_enabled = store_enabled;
        runner
    }
}

impl Runner {
    /// A runner executing units one at a time, in plan order.
    #[must_use]
    pub fn serial() -> Self {
        Runner {
            jobs: 1,
            cached: true,
            retry: RetryPolicy::NONE,
            backoff: BackoffPolicy::NONE,
            cancel: None,
            checkpoint: None,
            store_enabled: true,
            store_dir: None,
        }
    }

    /// A runner fanning units out across all available cores (or the
    /// process-wide [`set_global_jobs`] override).
    #[must_use]
    pub fn parallel() -> Self {
        Runner {
            jobs: AUTO,
            cached: true,
            retry: RetryPolicy::NONE,
            backoff: BackoffPolicy::NONE,
            cancel: None,
            checkpoint: None,
            store_enabled: true,
            store_dir: None,
        }
    }

    /// A runner with an explicit worker count (`0` = auto-detect).
    #[must_use]
    pub fn with_jobs(jobs: usize) -> Self {
        Runner {
            jobs,
            cached: true,
            retry: RetryPolicy::NONE,
            backoff: BackoffPolicy::NONE,
            cancel: None,
            checkpoint: None,
            store_enabled: true,
            store_dir: None,
        }
    }

    /// Disables the unit cache for this runner (every unit recomputes).
    #[must_use]
    pub fn without_cache(mut self) -> Self {
        self.cached = false;
        self
    }

    /// Sets this runner's retry policy for failed units.
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Sets this runner's backoff schedule for retries: before attempt
    /// `n+1` of a unit, the worker sleeps
    /// [`BackoffPolicy::delay_us`]`(seed, n)` microseconds, where `seed`
    /// is derived from the unit's content key — deterministic across
    /// reruns, decorrelated across units. Backoff reshapes wall-clock
    /// time only; results stay bit-identical.
    #[must_use]
    pub fn with_backoff(mut self, backoff: BackoffPolicy) -> Self {
        self.backoff = backoff;
        self
    }

    /// Attaches a cooperative cancellation token, checked at every unit
    /// boundary: units observed after the token fires (explicit cancel
    /// or deadline) fail with [`FailureKind::Cancelled`] instead of
    /// executing, and are never retried. Units already executing always
    /// finish their attempt.
    #[must_use]
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Enables checkpointing under `dir`: every successfully executed
    /// unit is persisted, and with `resume` existing entries are replayed
    /// instead of recomputed (bit-identically — entries are keyed by the
    /// unit's full content key).
    #[must_use]
    pub fn with_checkpoint(mut self, dir: impl Into<PathBuf>, resume: bool) -> Self {
        self.checkpoint = Some(CheckpointCfg {
            store: CheckpointStore::new(dir.into()),
            resume,
        });
        self
    }

    /// Disables the tile-result store for this runner: every sampled
    /// tile is simulated directly, with no hot-tier sharing and no disk
    /// I/O. Output is bit-identical either way — the store only removes
    /// redundant work.
    #[must_use]
    pub fn without_store(mut self) -> Self {
        self.store_enabled = false;
        self.store_dir = None;
        self
    }

    /// Persists tile outcomes under `dir` ([`crate::store`] shard
    /// files): cold runs record every computed tile, and later runs —
    /// including fresh processes — replay them instead of re-simulating.
    #[must_use]
    pub fn with_store_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.store_enabled = true;
        self.store_dir = Some(dir.into());
        self
    }

    /// Resolves this runner's store configuration into the broker source
    /// the plan phase plants into each unit.
    fn broker_source(&self) -> BrokerSource {
        if self.store_enabled {
            BrokerSource::Enabled(self.store_dir.as_deref().map(store::disk_tier_for))
        } else {
            BrokerSource::Disabled
        }
    }

    /// The worker count this runner would use right now.
    #[must_use]
    pub fn effective_jobs(&self) -> usize {
        let requested = match self.jobs {
            AUTO => GLOBAL_JOBS.load(Ordering::Relaxed),
            n => n,
        };
        match requested {
            AUTO => std::thread::available_parallelism().map_or(1, |n| n.get()),
            n => n,
        }
    }

    /// Runs one job.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Unsupported`] if the architecture cannot run
    /// the workload (e.g. S2TA on InceptionV3), or the first failure of a
    /// degraded run ([`SimError::UnitPanic`] for caught panics). Partial
    /// results are available via [`Runner::run_outcome`] instead.
    pub fn run(&self, job: &SimJob<'_>) -> Result<SimReport, SimError> {
        self.run_all(std::slice::from_ref(job))
            .pop()
            .expect("invariant: run_all returns exactly one result per submitted job")
    }

    /// Runs one job, surfacing the full [`JobOutcome`] taxonomy (partial
    /// results survive individual unit failures).
    #[must_use]
    pub fn run_outcome(&self, job: &SimJob<'_>) -> JobOutcome {
        self.run_outcomes(std::slice::from_ref(job))
            .pop()
            .expect("invariant: run_outcomes returns exactly one outcome per submitted job")
    }

    /// Runs a batch of jobs, fanning all their units out together, and
    /// returns one result per job in submission order. Degraded jobs
    /// collapse to their lowest-layer-index failure; use
    /// [`Runner::run_outcomes`] to keep partial results.
    pub fn run_all(&self, jobs: &[SimJob<'_>]) -> Vec<Result<SimReport, SimError>> {
        self.run_outcomes(jobs)
            .into_iter()
            .map(JobOutcome::into_result)
            .collect()
    }

    /// Runs a batch of jobs under fault isolation, returning one
    /// [`JobOutcome`] per job in submission order. Every planned unit is
    /// executed regardless of other units' failures, so the set of
    /// surviving layers — and their bit-exact reports — is deterministic
    /// and identical across serial and parallel modes.
    #[must_use]
    pub fn run_outcomes(&self, jobs: &[SimJob<'_>]) -> Vec<JobOutcome> {
        let t = telemetry();
        let _run_span = eureka_obs::span!("runner.run_all", "{} job(s)", jobs.len());
        t.jobs.add(jobs.len() as u64);
        let run_started = Instant::now();
        if events::enabled() {
            events::emit(Event::new("run-started").wall_u64("jobs", jobs.len() as u64));
        }
        // Plan: enumerate every job's per-layer units.
        let tiles = self.broker_source();
        let mut units = Vec::new();
        let mut ranges = Vec::with_capacity(jobs.len());
        {
            let _plan_span = eureka_obs::span!("runner.plan");
            for job in jobs {
                let start = units.len();
                plan(job, &mut units, &tiles);
                ranges.push(start..units.len());
            }
        }
        t.units_planned.add(units.len() as u64);
        if events::enabled() {
            for (job_idx, range) in ranges.iter().enumerate() {
                for unit in &units[range.clone()] {
                    events::emit(
                        Event::new("unit-planned")
                            .det_u64("unit", unit.index as u64)
                            .det_u64("job", job_idx as u64)
                            .det_str("arch", unit.key.arch.clone())
                            .det_str("gemm", unit.gemm.name.clone())
                            .det_str("key", unit_key_digest(&unit.key)),
                    );
                }
            }
        }
        // Execute: serial order or index-claimed pool, cache-first.
        let results = self.execute(&units);
        // Persist tile outcomes computed during this run before reducing,
        // so a crash in reduce still leaves the store warm.
        tiles.flush();
        if events::enabled() && tiles.has_disk() {
            events::emit(Event::new("store-flush"));
        }
        // Reduce: reassemble per job, in layer-index order.
        let _reduce_span = eureka_obs::span!("runner.reduce");
        let reduce_started = Instant::now();
        let out: Vec<JobOutcome> = jobs
            .iter()
            .enumerate()
            .zip(ranges)
            .map(|((job_idx, job), range)| {
                reduce(job, job_idx, &units[range.clone()], &results[range])
            })
            .collect();
        t.reduce_micros.record(micros(reduce_started.elapsed()));
        if events::enabled() {
            let failures: u64 = out
                .iter()
                .map(|o| match o {
                    JobOutcome::Complete(_) => 0,
                    JobOutcome::Degraded { failed_layers, .. } => failed_layers.len() as u64,
                    JobOutcome::Failed { failures } => failures.len() as u64,
                })
                .sum();
            events::emit(
                Event::new("run-finished")
                    .det_u64("units", units.len() as u64)
                    .det_u64("failures", failures)
                    .wall_u64("jobs", jobs.len() as u64)
                    .wall_u64("wall_us", micros(run_started.elapsed())),
            );
        }
        out
    }

    /// Executes planned units, returning results in unit order.
    fn execute(&self, units: &[WorkUnit<'_>]) -> Vec<Result<LayerReport, UnitError>> {
        self.execute_with(units, |unit| self.run_unit(unit))
    }

    /// The shared execute phase: runs `run` over every unit — serially or
    /// via the index-claimed scoped pool — and returns results in unit
    /// order. Generic over the result type so the plain and profiled
    /// paths share one pool implementation (and one determinism story:
    /// slot `i` always holds unit `i`'s result, whichever worker ran it).
    fn execute_with<R: Send + Sync>(
        &self,
        units: &[WorkUnit<'_>],
        run: impl Fn(&WorkUnit<'_>) -> R + Sync,
    ) -> Vec<R> {
        let t = telemetry();
        let workers = self.effective_jobs().min(units.len());
        let wall = Instant::now();
        let busy_us = AtomicU64::new(0);
        let results: Vec<R> = if workers <= 1 {
            units
                .iter()
                .map(|unit| {
                    t.queue_wait_micros.record(micros(wall.elapsed()));
                    let started = Instant::now();
                    let result = run(unit);
                    busy_us.fetch_add(micros(started.elapsed()), Ordering::Relaxed);
                    result
                })
                .collect()
        } else {
            let slots: Vec<OnceLock<R>> = (0..units.len()).map(|_| OnceLock::new()).collect();
            let next = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| {
                        // `thread::scope` unblocks when this closure
                        // returns — possibly before TLS destructors run —
                        // so hand buffered spans over via a guard that
                        // also fires if anything below unwinds.
                        let _flush = eureka_obs::span::FlushGuard::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            let Some(unit) = units.get(i) else { break };
                            t.queue_wait_micros.record(micros(wall.elapsed()));
                            let started = Instant::now();
                            if slots[i].set(run(unit)).is_err() {
                                unreachable!("unit {i} claimed twice");
                            }
                            busy_us.fetch_add(micros(started.elapsed()), Ordering::Relaxed);
                        }
                    });
                }
            });
            slots
                .into_iter()
                .map(|slot| {
                    slot.into_inner()
                        .expect("invariant: the worker pool fills every unit slot")
                })
                .collect()
        };
        let wall_us = micros(wall.elapsed());
        if !units.is_empty() {
            t.exec_wall_micros.record(wall_us);
            if wall_us > 0 {
                let busy = busy_us.load(Ordering::Relaxed) as f64;
                t.worker_utilization
                    .set(busy / (workers.max(1) as f64 * wall_us as f64));
            }
        }
        results
    }

    /// Executes one unit: in-memory cache first, then (when resuming) the
    /// on-disk checkpoint, then real execution under panic isolation and
    /// the retry policy. Exactly one of `cache.hits`, `checkpoint.hits`,
    /// `runner.units_from_store` (successful execution with every tile
    /// served by the store), `cache.misses` (successful execution that
    /// simulated at least one tile, or looked none up) or
    /// `runner.failures.*` (final failure) fires per call, for cached
    /// runners.
    fn run_unit(&self, unit: &WorkUnit<'_>) -> Result<LayerReport, UnitError> {
        let t = telemetry();
        let _span = eureka_obs::span!("unit.exec", "{} {}", unit.key.arch, unit.gemm.name);
        let events_on = events::enabled();
        if events_on {
            events::emit(Event::new("unit-started").det_u64("unit", unit.index as u64));
        }
        // Cooperative cancellation: the unit boundary is the only place
        // the runner looks at the token, so a unit either never starts
        // or runs to its own conclusion. Checked before the cache so a
        // cancelled job does zero work, not merely zero compute.
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                t.failures_cancelled.inc();
                let payload = if token.cancelled_explicitly() {
                    "cancelled before execution"
                } else {
                    "deadline exceeded before execution"
                };
                if events_on {
                    events::emit(
                        Event::new("failure")
                            .det_u64("unit", unit.index as u64)
                            .det_str("kind", FailureKind::Cancelled.label())
                            .det_u64("attempts", 0)
                            .det_str("payload", payload),
                    );
                }
                return Err(UnitError {
                    kind: FailureKind::Cancelled,
                    payload: payload.to_string(),
                    attempts: 0,
                });
            }
        }
        if self.cached {
            if let Some(hit) = lock(&cache().map).get(&unit.key).cloned() {
                t.cache_hits.inc();
                t.units_cached.inc();
                if let Some(ck) = &self.checkpoint {
                    // Keep the checkpoint directory complete even when
                    // the unit never re-executes in this process.
                    let key = unit.key.canonical();
                    if ck.store.load(&key).is_none() {
                        match ck.store.store(&key, &hit) {
                            Ok(()) => {
                                t.ckpt_writes.inc();
                                if events_on {
                                    events::emit(
                                        Event::new("checkpoint-written")
                                            .det_u64("unit", unit.index as u64),
                                    );
                                }
                            }
                            Err(_) => t.ckpt_errors.inc(),
                        }
                    }
                }
                if events_on {
                    emit_unit_finished(unit, "cache", &hit, 0);
                }
                return Ok(hit);
            }
        }
        if let Some(ck) = &self.checkpoint {
            if ck.resume {
                let key = unit.key.canonical();
                if let Some(report) = ck.store.load(&key) {
                    t.ckpt_hits.inc();
                    t.units_cached.inc();
                    if self.cached {
                        lock(&cache().map).insert(unit.key.clone(), report.clone());
                        t.cache_inserts.inc();
                    }
                    if events_on {
                        emit_unit_finished(unit, "checkpoint", &report, 0);
                    }
                    return Ok(report);
                }
            }
        }
        let mut attempt: u32 = 0;
        loop {
            attempt += 1;
            if attempt > 1 {
                t.retries_attempts.inc();
                let _retry = eureka_obs::span!(
                    "unit.retry",
                    "{} {} attempt {}",
                    unit.key.arch,
                    unit.gemm.name,
                    attempt
                );
            }
            // A fresh tally per attempt: classification below must
            // reflect the final (successful) attempt only.
            unit.ctx.tiles.reset_tally();
            let started = Instant::now();
            let outcome =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| execute_unit(unit)));
            let exec_us = micros(started.elapsed());
            t.exec_micros.record(exec_us);
            arch_exec_histogram(&unit.key.arch).record(exec_us);
            t.units_executed.inc();
            let failure = match outcome {
                Ok(Ok(report)) => {
                    if attempt > 1 {
                        t.retries_recovered.inc();
                    }
                    let source = {
                        let (tile_lookups, tile_computes) = unit.ctx.tiles.tally();
                        if tile_lookups > 0 && tile_computes == 0 {
                            "store"
                        } else {
                            "computed"
                        }
                    };
                    if self.cached {
                        if source == "store" {
                            t.units_from_store.inc();
                        } else {
                            t.cache_misses.inc();
                        }
                        lock(&cache().map).insert(unit.key.clone(), report.clone());
                        t.cache_inserts.inc();
                    }
                    if let Some(ck) = &self.checkpoint {
                        match ck.store.store(&unit.key.canonical(), &report) {
                            Ok(()) => {
                                t.ckpt_writes.inc();
                                if events_on {
                                    events::emit(
                                        Event::new("checkpoint-written")
                                            .det_u64("unit", unit.index as u64),
                                    );
                                }
                            }
                            Err(_) => t.ckpt_errors.inc(),
                        }
                    }
                    if events_on {
                        emit_unit_finished(unit, source, &report, exec_us);
                    }
                    return Ok(report);
                }
                Ok(Err(e)) => UnitError {
                    payload: e.to_string(),
                    kind: FailureKind::Sim(e),
                    attempts: attempt,
                },
                Err(panic) => UnitError {
                    payload: panic_message(panic.as_ref()),
                    kind: FailureKind::Panic,
                    attempts: attempt,
                },
            };
            if !self.retry.should_retry(&failure.kind, attempt) {
                match failure.kind {
                    FailureKind::Panic => t.failures_panic.inc(),
                    FailureKind::Sim(_) => t.failures_sim.inc(),
                    // Unreachable today (the boundary check above is the
                    // only source of Cancelled), but the accounting is
                    // correct if an architecture ever surfaces it.
                    FailureKind::Cancelled => t.failures_cancelled.inc(),
                }
                let _failure = eureka_obs::span!(
                    "unit.failure",
                    "{} {}: {} after {} attempt(s)",
                    unit.key.arch,
                    unit.gemm.name,
                    failure.kind.label(),
                    failure.attempts
                );
                if events_on {
                    events::emit(
                        Event::new("failure")
                            .det_u64("unit", unit.index as u64)
                            .det_str("kind", failure.kind.label())
                            .det_u64("attempts", u64::from(failure.attempts))
                            .det_str("payload", failure.payload.clone()),
                    );
                }
                return Err(failure);
            }
            // Space the next attempt out: deterministic exponential
            // backoff seeded by the unit's content key, so the schedule
            // replays exactly and different units decorrelate.
            let delay_us = self
                .backoff
                .delay_us(unit.key.rng_seed ^ unit.key.rng_stream, attempt);
            if events_on {
                events::emit(
                    Event::new("retry")
                        .det_u64("unit", unit.index as u64)
                        .det_u64("attempt", u64::from(attempt))
                        .det_str("kind", failure.kind.label())
                        .wall_u64("backoff_us", delay_us),
                );
            }
            if delay_us > 0 {
                t.backoff_slept_us.add(delay_us);
                std::thread::sleep(std::time::Duration::from_micros(delay_us));
            }
        }
    }

    /// Runs one job with cycle-attribution profiling, returning the
    /// report and its [`SimProfile`].
    ///
    /// The report is bit-identical to [`Runner::run`] on the same job
    /// (the profiled architecture paths consume identical RNG streams —
    /// asserted by the workspace test-suite for every registry
    /// architecture), and the profile is assembled in layer-index order,
    /// so its JSON export is byte-identical across serial and parallel
    /// runners. Profiled units bypass the unit cache and the checkpoint
    /// store: both hold bare [`LayerReport`]s, and replaying one could
    /// not reconstruct its row-level attribution. The deterministic
    /// `runner.*`/`cache.*` counters are therefore untouched, keeping the
    /// plain drive path's reconciliation invariant intact. The tile
    /// store, however, *does* serve profiled units — tile outcomes carry
    /// everything the per-tile attribution needs — so the `store.*`
    /// counters tick and a warmed store accelerates profiling too.
    ///
    /// # Errors
    ///
    /// Returns the lowest-layer-index failure ([`SimError::Unsupported`]
    /// from the architecture, [`SimError::UnitPanic`] for caught panics)
    /// — profiling has no degraded mode.
    pub fn run_profiled(
        &self,
        job: &SimJob<'_>,
        pcfg: &ProfileConfig,
    ) -> Result<(SimReport, SimProfile), SimError> {
        let _span = eureka_obs::span!(
            "runner.run_profiled",
            "{} on {}",
            job.arch.name(),
            job.workload.benchmark().name()
        );
        let tiles = self.broker_source();
        let mut units = Vec::new();
        plan(job, &mut units, &tiles);
        let run_started = Instant::now();
        let events_on = events::enabled();
        if events_on {
            events::emit(Event::new("run-started").wall_u64("jobs", 1));
            for unit in &units {
                events::emit(
                    Event::new("unit-planned")
                        .det_u64("unit", unit.index as u64)
                        .det_u64("job", 0)
                        .det_str("arch", unit.key.arch.clone())
                        .det_str("gemm", unit.gemm.name.clone())
                        .det_str("key", unit_key_digest(&unit.key)),
                );
            }
        }
        let results = self.execute_with(&units, |unit| {
            if events::enabled() {
                events::emit(Event::new("unit-started").det_u64("unit", unit.index as u64));
            }
            let started = Instant::now();
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                execute_unit_profiled(unit, pcfg)
            }));
            let exec_us = micros(started.elapsed());
            arch_exec_histogram(&unit.key.arch).record(exec_us);
            let result = match outcome {
                Ok(r) => r,
                Err(panic) => Err(SimError::UnitPanic {
                    layer: unit.gemm.name.clone(),
                    payload: panic_message(panic.as_ref()),
                }),
            };
            if events::enabled() {
                match &result {
                    Ok((report, _)) => {
                        let (tile_lookups, tile_computes) = unit.ctx.tiles.tally();
                        let source = if tile_lookups > 0 && tile_computes == 0 {
                            "store"
                        } else {
                            "computed"
                        };
                        emit_unit_finished(unit, source, report, exec_us);
                    }
                    Err(e) => {
                        let kind = if matches!(e, SimError::UnitPanic { .. }) {
                            "panic"
                        } else {
                            "sim-error"
                        };
                        events::emit(
                            Event::new("failure")
                                .det_u64("unit", unit.index as u64)
                                .det_str("kind", kind)
                                .det_u64("attempts", 1)
                                .det_str("payload", e.to_string()),
                        );
                    }
                }
            }
            result
        });
        tiles.flush();
        if events_on && tiles.has_disk() {
            events::emit(Event::new("store-flush"));
        }
        if events_on {
            let failures = results.iter().filter(|r| r.is_err()).count() as u64;
            events::emit(
                Event::new("run-finished")
                    .det_u64("units", units.len() as u64)
                    .det_u64("failures", failures)
                    .wall_u64("jobs", 1)
                    .wall_u64("wall_us", micros(run_started.elapsed())),
            );
        }
        let mut layers = Vec::with_capacity(results.len() + 1);
        let mut profiles = Vec::with_capacity(results.len() + 1);
        for result in results {
            let (report, profile) = result?;
            layers.push(report);
            profiles.push(profile);
        }
        if let Some(aux) = attention_aux_layer(job) {
            profiles.push(LayerProfile::from_report(&aux));
            layers.push(aux);
        }
        let report = SimReport {
            arch: job.arch.name().to_string(),
            workload: workload_label(job),
            layers,
        };
        let profile = SimProfile {
            arch: report.arch.clone(),
            workload: report.workload.clone(),
            layers: profiles,
        };
        Ok((report, profile))
    }
}

/// Best-effort rendering of a caught panic payload. `&str` and `String`
/// payloads (what `panic!` produces) render verbatim; the fault-injection
/// payload renders through its `Display`; anything else gets a
/// placeholder.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(p) = payload.downcast_ref::<crate::faults::InjectedPanic>() {
        p.to_string()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Plans one job into per-layer units appended to `units`, each wired to
/// the tile store through its own broker from `tiles`.
fn plan<'a>(job: &SimJob<'a>, units: &mut Vec<WorkUnit<'a>>, tiles: &BrokerSource) {
    let workload = job.workload;
    let bench = workload.benchmark();
    let base_rng = DetRng::new(workload.seed());
    // One pool per job: all its units share recycled scratch buffers, so
    // the steady-state allocation count is bounded by worker concurrency.
    let scratch = crate::scratch::ScratchPool::default();
    let act_density = workload.activation_density();
    let s2ta_act_density = activation::s2ta_activation_density(bench);
    let s2ta_fil_density = activation::s2ta_filter_density(bench);
    for (i, gemm) in workload.gemms().into_iter().enumerate() {
        let stream = i as u64;
        let key = UnitKey {
            arch: job.arch.name().to_string(),
            gemm_name: gemm.name.clone(),
            n: gemm.shape.n,
            k: gemm.shape.k,
            m: gemm.shape.m,
            unique_act_bytes: gemm.unique_act_bytes,
            weight_density: gemm.weight_density.to_bits(),
            clustered: gemm.clustered,
            depthwise: gemm.depthwise,
            act_density: act_density.to_bits(),
            s2ta_act_density: s2ta_act_density.map(f64::to_bits),
            s2ta_fil_density: s2ta_fil_density.map(f64::to_bits),
            rng_seed: workload.seed(),
            rng_stream: stream,
            cfg: CfgKey::of(&job.cfg),
        };
        units.push(WorkUnit {
            arch: job.arch,
            gemm,
            ctx: LayerCtx {
                act_density,
                s2ta_act_density,
                s2ta_fil_density,
                rng: base_rng.fork(stream),
                tiles: tiles.broker(),
                scratch: scratch.clone(),
            },
            cfg: job.cfg,
            key,
            index: units.len(),
        });
    }
}

/// The pure per-layer computation: architecture timing, plus the measured
/// cache-replay residency when `detailed_memory` is on.
fn execute_unit(unit: &WorkUnit<'_>) -> Result<LayerReport, SimError> {
    let mut report = unit.arch.simulate_layer(&unit.gemm, &unit.ctx, &unit.cfg)?;
    if let Some(mem_cycles) = detailed_mem_cycles(unit, &report) {
        report.mem_cycles = mem_cycles;
    }
    Ok(report)
}

/// [`execute_unit`] with cycle attribution: same timing, same RNG
/// consumption, plus the layer's [`LayerProfile`]. The detailed-memory
/// adjustment is mirrored into the profile so its `memory` stall bucket
/// keeps matching the report's `mem_cycles` exactly.
fn execute_unit_profiled(
    unit: &WorkUnit<'_>,
    pcfg: &ProfileConfig,
) -> Result<(LayerReport, LayerProfile), SimError> {
    let (mut report, mut profile) = unit
        .arch
        .simulate_layer_profiled(&unit.gemm, &unit.ctx, &unit.cfg, pcfg)?;
    if let Some(mem_cycles) = detailed_mem_cycles(unit, &report) {
        report.mem_cycles = mem_cycles;
        profile.mem_cycles = mem_cycles;
        profile.stalls.memory = mem_cycles;
    }
    Ok((report, profile))
}

/// The measured-residency memory exposure for `unit`, when
/// `detailed_memory` is on: replaces the analytic residency constant with
/// one measured on the cache substrate and re-derives the exposed cycles.
fn detailed_mem_cycles(unit: &WorkUnit<'_>, report: &LayerReport) -> Option<u64> {
    if !unit.cfg.detailed_memory {
        return None;
    }
    let residency = crate::cachesim::replay_layer(
        &unit.gemm,
        &unit.cfg,
        crate::cachesim::CacheConfig::ampere_l2(),
        96,
    )
    .act_hit_rate;
    let mem = crate::config::MemoryConfig {
        l2_act_residency: residency,
        ..unit.cfg.mem
    };
    Some(crate::memory::exposed_cycles(report, &mem))
}

/// The human-readable workload label shared by every report assembled
/// from `job`.
fn workload_label(job: &SimJob<'_>) -> String {
    format!(
        "{} ({}, batch {})",
        job.workload.benchmark().name(),
        job.workload.pruning().label(),
        job.workload.batch()
    )
}

/// The synthetic dense layer for the weight-free attention matmuls, when
/// `include_attention_aux` asks for it and the workload has any.
fn attention_aux_layer(job: &SimJob<'_>) -> Option<LayerReport> {
    if !job.cfg.include_attention_aux {
        return None;
    }
    let aux = job.workload.attention_aux_macs();
    if aux == 0 {
        return None;
    }
    let compute = (aux as f64 / job.cfg.total_macs() as f64).ceil() as u64;
    Some(LayerReport {
        name: "attention-aux".into(),
        compute_cycles: compute,
        mem_cycles: (job.cfg.mem.ramp_fraction * compute as f64).ceil() as u64,
        mac_ops: aux,
        idle_mac_cycles: 0,
        ..LayerReport::default()
    })
}

/// Assembles one job's unit results (already in layer order) into a
/// [`JobOutcome`]: complete when every unit succeeded, degraded when some
/// survived, failed when none did. Surviving layers are exactly what a
/// fault-free run produces for them; failures carry full reproduction
/// coordinates (job, layer, kind, seed).
fn reduce(
    job: &SimJob<'_>,
    job_idx: usize,
    units: &[WorkUnit<'_>],
    results: &[Result<LayerReport, UnitError>],
) -> JobOutcome {
    let mut layers = Vec::with_capacity(results.len() + 1);
    let mut failures = Vec::new();
    for (layer_idx, (unit, result)) in units.iter().zip(results).enumerate() {
        match result {
            Ok(layer) => layers.push(layer.clone()),
            Err(e) => failures.push(UnitFailure {
                job: job_idx,
                layer: layer_idx,
                layer_name: unit.gemm.name.clone(),
                arch: unit.key.arch.clone(),
                kind: e.kind.clone(),
                payload: e.payload.clone(),
                rng_seed: unit.key.rng_seed,
                attempts: e.attempts,
            }),
        }
    }
    if layers.is_empty() && !failures.is_empty() {
        return JobOutcome::Failed { failures };
    }
    // Weight-free attention matmuls run dense on every architecture.
    if let Some(aux) = attention_aux_layer(job) {
        layers.push(aux);
    }
    let report = SimReport {
        arch: job.arch.name().to_string(),
        workload: workload_label(job),
        layers,
    };
    if failures.is_empty() {
        JobOutcome::Complete(report)
    } else {
        JobOutcome::Degraded {
            report,
            failed_layers: failures,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch;
    use crate::faults::{FaultKind, FaultPlan, FaultSpec, FaultyArch};
    use eureka_models::{Benchmark, PruningLevel, Workload};

    fn tiny_cfg() -> SimConfig {
        SimConfig {
            rowgroup_samples: 8,
            slice_samples: 8,
            act_samples: 8,
            ..SimConfig::paper_default()
        }
    }

    #[test]
    fn serial_and_parallel_agree_on_one_job() {
        let w = Workload::new(Benchmark::MobileNetV1, PruningLevel::Moderate, 32);
        let cfg = tiny_cfg();
        let a = arch::eureka_p4();
        let job = SimJob::new(&a, &w, cfg);
        let serial = Runner::serial().without_cache().run(&job).unwrap();
        let parallel = Runner::with_jobs(4).without_cache().run(&job).unwrap();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn run_all_preserves_submission_order() {
        let w = Workload::new(Benchmark::MobileNetV1, PruningLevel::Moderate, 32);
        let cfg = tiny_cfg();
        let dense = arch::dense();
        let eureka = arch::eureka_p4();
        let jobs = [SimJob::new(&dense, &w, cfg), SimJob::new(&eureka, &w, cfg)];
        let out = Runner::with_jobs(3).run_all(&jobs);
        assert_eq!(out[0].as_ref().unwrap().arch, "Dense");
        assert_eq!(out[1].as_ref().unwrap().arch, "Eureka P=4");
    }

    #[test]
    fn unsupported_arch_errors_like_engine() {
        let w = Workload::new(Benchmark::InceptionV3, PruningLevel::Moderate, 32);
        let cfg = tiny_cfg();
        let s2ta = arch::s2ta();
        let job = SimJob::new(&s2ta, &w, cfg);
        let serial = Runner::serial().run(&job);
        let parallel = Runner::with_jobs(4).run(&job);
        assert!(serial.is_err());
        assert_eq!(serial, parallel);
    }

    #[test]
    fn cache_counts_hits_and_returns_identical_results() {
        let w = Workload::new(Benchmark::MobileNetV1, PruningLevel::Conservative, 16);
        let cfg = SimConfig {
            rowgroup_samples: 7, // distinctive: avoid collisions with other tests
            ..tiny_cfg()
        };
        let a = arch::ampere();
        let job = SimJob::new(&a, &w, cfg);
        let cold = Runner::serial().run(&job).unwrap();
        let (h0, _, _) = cache_stats();
        let warm = Runner::serial().run(&job).unwrap();
        let (h1, _, _) = cache_stats();
        assert_eq!(cold, warm);
        assert!(
            h1 >= h0 + w.layer_count() as u64,
            "expected {} cache hits, saw {}",
            w.layer_count(),
            h1 - h0
        );
    }

    #[test]
    fn global_jobs_override_applies_to_auto_runners() {
        set_global_jobs(3);
        assert_eq!(Runner::parallel().effective_jobs(), 3);
        assert_eq!(Runner::serial().effective_jobs(), 1);
        assert_eq!(Runner::with_jobs(5).effective_jobs(), 5);
        set_global_jobs(0);
        assert!(Runner::parallel().effective_jobs() >= 1);
    }

    #[test]
    fn attention_aux_reduces_identically_in_both_modes() {
        let w = Workload::new(Benchmark::BertSquad, PruningLevel::Moderate, 8);
        let cfg = SimConfig {
            include_attention_aux: true,
            ..tiny_cfg()
        };
        let a = arch::dense();
        let job = SimJob::new(&a, &w, cfg);
        let serial = Runner::serial().without_cache().run(&job).unwrap();
        let parallel = Runner::with_jobs(2).without_cache().run(&job).unwrap();
        assert_eq!(serial, parallel);
        assert!(serial.layers.iter().any(|l| l.name == "attention-aux"));
    }

    #[test]
    fn panicking_unit_degrades_instead_of_aborting() {
        let w = Workload::new(Benchmark::MobileNetV1, PruningLevel::Moderate, 32);
        let cfg = tiny_cfg();
        let victim = w.gemms()[2].name.clone();
        let a = FaultyArch::new(
            Box::new(arch::dense()),
            FaultPlan::new(vec![FaultSpec {
                layer: victim.clone(),
                kind: FaultKind::Panic,
                fail_first: u32::MAX,
            }]),
            "runner-panic",
        );
        let job = SimJob::new(&a, &w, cfg);
        let outcome = Runner::serial().without_cache().run_outcome(&job);
        match &outcome {
            JobOutcome::Degraded {
                report,
                failed_layers,
            } => {
                assert_eq!(report.layers.len(), w.layer_count() - 1);
                assert_eq!(failed_layers.len(), 1);
                assert_eq!(failed_layers[0].layer, 2);
                assert_eq!(failed_layers[0].layer_name, victim);
                assert_eq!(failed_layers[0].kind, FailureKind::Panic);
                assert_eq!(failed_layers[0].rng_seed, w.seed());
                assert_eq!(failed_layers[0].attempts, 1);
            }
            other => panic!("expected Degraded, got {other:?}"),
        }
        // The legacy Result view surfaces the panic as a typed error.
        let err = outcome.into_result().unwrap_err();
        assert!(matches!(err, SimError::UnitPanic { ref layer, .. } if *layer == victim));
    }

    #[test]
    fn retry_recovers_transient_faults() {
        let w = Workload::new(Benchmark::MobileNetV1, PruningLevel::Moderate, 32);
        let cfg = tiny_cfg();
        let victim = w.gemms()[0].name.clone();
        let a = FaultyArch::new(
            Box::new(arch::dense()),
            FaultPlan::new(vec![FaultSpec {
                layer: victim,
                kind: FaultKind::Error,
                fail_first: 1,
            }]),
            "runner-retry",
        );
        let job = SimJob::new(&a, &w, cfg);
        // Without retries the transient fault is fatal for its layer...
        let outcome = Runner::serial().without_cache().run_outcome(&job);
        assert!(!outcome.is_complete());
        // ...with one retry the whole job completes.
        a.reset_attempts();
        let outcome = Runner::serial()
            .without_cache()
            .with_retry(RetryPolicy::transient(2))
            .run_outcome(&job);
        assert!(outcome.is_complete(), "{outcome:?}");
    }

    #[test]
    fn global_retry_and_checkpoint_only_affect_default_runners() {
        set_global_retry(RetryPolicy::transient(3));
        let dir = std::env::temp_dir().join(format!("eureka-ckpt-glob-{}", std::process::id()));
        set_global_checkpoint(Some((dir.clone(), true)));
        let d = Runner::default();
        assert_eq!(d.retry.max_attempts, 3);
        assert!(d.checkpoint.as_ref().is_some_and(|c| c.resume));
        // Explicit constructors are unaffected (test isolation).
        assert_eq!(Runner::serial().retry, RetryPolicy::NONE);
        assert!(Runner::parallel().checkpoint.is_none());
        set_global_retry(RetryPolicy::NONE);
        set_global_checkpoint(None);
        assert_eq!(Runner::default().retry, RetryPolicy::NONE);
        assert!(Runner::default().checkpoint.is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn global_store_settings_only_affect_default_runners() {
        let dir = std::env::temp_dir().join(format!("eureka-store-glob-{}", std::process::id()));
        set_global_store(Some(dir.clone()), true);
        let d = Runner::default();
        assert!(d.store_enabled);
        assert_eq!(d.store_dir.as_deref(), Some(dir.as_path()));
        set_global_store(None, false);
        let d = Runner::default();
        assert!(!d.store_enabled);
        assert!(d.store_dir.is_none());
        // Explicit constructors keep the hot tier on, with no directory,
        // regardless of the globals (test isolation).
        assert!(Runner::serial().store_enabled);
        assert!(Runner::serial().store_dir.is_none());
        assert!(Runner::with_jobs(2).without_store().store_dir.is_none());
        set_global_store(None, true);
    }

    #[test]
    fn profiled_run_does_not_perturb_the_report() {
        let w = Workload::new(Benchmark::MobileNetV1, PruningLevel::Moderate, 32);
        let cfg = tiny_cfg();
        let a = arch::eureka_p4();
        let job = SimJob::new(&a, &w, cfg);
        let plain = Runner::serial().without_cache().run(&job).unwrap();
        let (profiled, profile) = Runner::serial()
            .without_cache()
            .run_profiled(&job, &ProfileConfig::default())
            .unwrap();
        assert_eq!(plain, profiled, "profiling must not change the report");
        assert_eq!(profile.total_attributed_cycles(), profiled.total_cycles());
        assert_eq!(profile.idle_mac_cycles(), profiled.idle_mac_cycles());
    }

    #[test]
    fn profiles_are_identical_across_worker_counts() {
        let w = Workload::new(Benchmark::MobileNetV1, PruningLevel::Moderate, 32);
        let cfg = tiny_cfg();
        let a = arch::eureka_p2();
        let job = SimJob::new(&a, &w, cfg);
        let pcfg = ProfileConfig::default();
        let (r1, p1) = Runner::serial()
            .without_cache()
            .run_profiled(&job, &pcfg)
            .unwrap();
        let (r4, p4) = Runner::with_jobs(4)
            .without_cache()
            .run_profiled(&job, &pcfg)
            .unwrap();
        assert_eq!(r1, r4);
        assert_eq!(p1, p4);
        assert_eq!(p1.to_json(), p4.to_json(), "JSON export is byte-stable");
    }

    #[test]
    fn profiled_run_includes_attention_aux_layer() {
        let w = Workload::new(Benchmark::BertSquad, PruningLevel::Moderate, 8);
        let cfg = SimConfig {
            include_attention_aux: true,
            ..tiny_cfg()
        };
        let a = arch::dense();
        let job = SimJob::new(&a, &w, cfg);
        let (report, profile) = Runner::serial()
            .without_cache()
            .run_profiled(&job, &ProfileConfig::default())
            .unwrap();
        assert_eq!(report.layers.len(), profile.layers.len());
        let aux = profile.layers.last().unwrap();
        assert_eq!(aux.name, "attention-aux");
        assert_eq!(profile.total_attributed_cycles(), report.total_cycles());
    }

    #[test]
    fn profiled_run_mirrors_detailed_memory_adjustment() {
        let w = Workload::new(Benchmark::MobileNetV1, PruningLevel::Moderate, 32);
        let cfg = SimConfig {
            detailed_memory: true,
            ..tiny_cfg()
        };
        let a = arch::dense();
        let job = SimJob::new(&a, &w, cfg);
        let plain = Runner::serial().without_cache().run(&job).unwrap();
        let (profiled, profile) = Runner::serial()
            .without_cache()
            .run_profiled(&job, &ProfileConfig::default())
            .unwrap();
        assert_eq!(plain, profiled);
        for (l, p) in profiled.layers.iter().zip(&profile.layers) {
            assert_eq!(l.mem_cycles, p.mem_cycles);
            assert_eq!(l.mem_cycles, p.stalls.memory);
        }
    }

    #[test]
    fn canonical_keys_are_stable_and_distinct() {
        let w = Workload::new(Benchmark::MobileNetV1, PruningLevel::Moderate, 32);
        let a = arch::dense();
        let job = SimJob::new(&a, &w, tiny_cfg());
        let mut units = Vec::new();
        plan(&job, &mut units, &BrokerSource::Disabled);
        let keys: Vec<String> = units.iter().map(|u| u.key.canonical()).collect();
        let mut uniq = keys.clone();
        uniq.sort();
        uniq.dedup();
        assert_eq!(uniq.len(), keys.len(), "every unit key is distinct");
        // Same plan, same keys (the stability the checkpoint layer needs).
        let mut units2 = Vec::new();
        plan(&job, &mut units2, &BrokerSource::Disabled);
        let keys2: Vec<String> = units2.iter().map(|u| u.key.canonical()).collect();
        assert_eq!(keys, keys2);
        assert!(keys[0].starts_with("v1|arch=Dense|"));
    }
}
