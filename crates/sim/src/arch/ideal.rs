//! The 1-sided Ideal bound: speedup limited only by filter sparsity.
//!
//! Every stored non-zero weight is multiplied exactly once per activation
//! column, with perfect load balance and no pipeline bubbles — the
//! unconstrained-displacement upper bound Figure 11 plots Eureka against.

use super::{Architecture, LayerCtx, SimError};
use crate::config::SimConfig;
use crate::memory;
use crate::report::{LayerReport, OpCounts};
use eureka_models::workload::LayerGemm;

/// The ideal one-sided architecture.
#[derive(Clone, Copy, Debug, Default)]
pub struct Ideal;

/// Constructs the ideal bound.
#[must_use]
pub fn ideal() -> Ideal {
    Ideal
}

impl Architecture for Ideal {
    fn name(&self) -> &str {
        "1-sided Ideal"
    }

    fn simulate_layer(
        &self,
        gemm: &LayerGemm,
        _ctx: &LayerCtx,
        cfg: &SimConfig,
    ) -> Result<LayerReport, SimError> {
        let (n, k, m) = (gemm.shape.n, gemm.shape.k, gemm.shape.m);
        let nnz = (n * k) as f64 * gemm.weight_density;
        let mac_ops = (nnz * m as f64) as u64;
        let compute_cycles = (mac_ops as f64 / cfg.total_macs() as f64).ceil().max(1.0) as u64;
        // Metadata as Eureka P=4 (the bound still pays for the format).
        let metadata_bytes = (nnz * 5.0 / 8.0) as u64;
        let mut report = LayerReport {
            name: gemm.name.clone(),
            compute_cycles,
            mem_cycles: 0,
            mac_ops,
            idle_mac_cycles: (compute_cycles * cfg.total_macs() as u64).saturating_sub(mac_ops),
            bubble_cycles: 0,
            weight_bytes: (nnz * 2.0) as u64,
            act_bytes: gemm.unique_act_bytes,
            out_bytes: (2 * n * m) as u64,
            metadata_bytes,
            ops: OpCounts {
                mux16: mac_ops,
                ..OpCounts::default()
            },
        };
        report.mem_cycles = memory::exposed_cycles(&report, &cfg.mem);
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::onesided;
    use eureka_models::GemmShape;
    use eureka_sparse::rng::DetRng;

    #[test]
    fn ideal_speedup_is_inverse_density() {
        let cfg = SimConfig::fast();
        let g = LayerGemm {
            name: "t".into(),
            shape: GemmShape {
                n: 256,
                k: 2304,
                m: 6272,
            },
            unique_act_bytes: 1 << 20,
            weight_density: 0.13,
            clustered: false,
            depthwise: false,
        };
        let ctx = LayerCtx {
            act_density: 0.5,
            s2ta_act_density: None,
            s2ta_fil_density: None,
            rng: DetRng::new(1),
            tiles: Default::default(),
            scratch: Default::default(),
        };
        let d = onesided::dense().simulate_layer(&g, &ctx, &cfg).unwrap();
        let i = ideal().simulate_layer(&g, &ctx, &cfg).unwrap();
        let speedup = d.compute_cycles as f64 / i.compute_cycles as f64;
        assert!((speedup - 1.0 / 0.13).abs() < 0.3, "speedup {speedup}");
        // Eureka never beats the bound.
        let e = onesided::eureka_p4()
            .simulate_layer(&g, &ctx, &cfg)
            .unwrap();
        assert!(e.compute_cycles >= i.compute_cycles);
    }
}
