//! The S2TA baseline (HPCA 2022).
//!
//! S2TA exploits structured sparsity on both sides but — as the Eureka
//! paper reads its clock-gated design (§4) — only one-sided *activation*
//! structured sparsity for **performance**, and two-sided structured
//! sparsity for **energy**: a MAC is clock-gated when a non-zero
//! activation meets a zero filter value, but the cycle is not reclaimed.
//!
//! Performance therefore scales with the structured activation density
//! (Table 1); for BERT, whose GELU activations are nearly dense, there is
//! no structured activation sparsity to harvest and S2TA degenerates to
//! roughly dense performance (§5.1).

use super::{Architecture, LayerCtx, SimError};
use crate::config::SimConfig;
use crate::memory;
use crate::report::{LayerReport, OpCounts};
use eureka_models::workload::LayerGemm;

/// The S2TA architecture model.
#[derive(Clone, Copy, Debug, Default)]
pub struct S2ta;

/// Constructs the S2TA baseline.
#[must_use]
pub fn s2ta() -> S2ta {
    S2ta
}

impl Architecture for S2ta {
    fn name(&self) -> &str {
        "S2TA"
    }

    fn simulate_layer(
        &self,
        gemm: &LayerGemm,
        ctx: &LayerCtx,
        cfg: &SimConfig,
    ) -> Result<LayerReport, SimError> {
        let (Some(s2ta_act), Some(s2ta_fil)) = (ctx.s2ta_act_density, ctx.s2ta_fil_density) else {
            return Err(SimError::Unsupported {
                arch: "S2TA".into(),
                reason: "no structured activation-sparsity data for this benchmark (Table 1)"
                    .into(),
            });
        };
        let (n, k, m) = (gemm.shape.n, gemm.shape.k, gemm.shape.m);
        // Performance: one-sided structured activation sparsity. BERT's
        // nearly-dense activations leave nothing to skip (§5.1), which
        // the clustered-filter flag identifies.
        let act_perf_density = if gemm.clustered {
            ctx.act_density
        } else {
            s2ta_act
        };
        let dense_cycles = (gemm.shape.macs() as f64 / cfg.total_macs() as f64)
            .ceil()
            .max(1.0);
        let compute_cycles = (dense_cycles * act_perf_density).ceil().max(1.0) as u64;

        // Energy: two-sided structured gating — multiplies only where a
        // kept filter value meets a kept activation value.
        let mac_ops = ((n * k * m) as f64 * s2ta_fil * s2ta_act) as u64;

        let mut report = LayerReport {
            name: gemm.name.clone(),
            compute_cycles,
            mem_cycles: 0,
            mac_ops,
            idle_mac_cycles: (compute_cycles * cfg.total_macs() as u64).saturating_sub(mac_ops),
            bubble_cycles: 0,
            weight_bytes: ((n * k) as f64 * s2ta_fil * 2.0) as u64,
            act_bytes: (gemm.unique_act_bytes as f64 * s2ta_act) as u64,
            out_bytes: (2 * n * m) as u64,
            // 2-bit positional metadata per kept value on both sides.
            metadata_bytes: (((n * k) as f64 * s2ta_fil
                + gemm.unique_act_bytes as f64 / 2.0 * s2ta_act)
                / 4.0) as u64,
            ops: OpCounts {
                mux4: mac_ops,
                ..OpCounts::default()
            },
        };
        report.mem_cycles = memory::exposed_cycles(&report, &cfg.mem);
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::onesided;
    use eureka_models::GemmShape;
    use eureka_sparse::rng::DetRng;

    fn gemm(clustered: bool) -> LayerGemm {
        LayerGemm {
            name: "t".into(),
            shape: GemmShape {
                n: 256,
                k: 2304,
                m: 6272,
            },
            unique_act_bytes: 1 << 20,
            weight_density: 0.13,
            clustered,
            depthwise: false,
        }
    }

    #[test]
    fn cnn_speedup_tracks_structured_activation_density() {
        let cfg = SimConfig::fast();
        let ctx = LayerCtx {
            act_density: 0.50,
            s2ta_act_density: Some(0.44),
            s2ta_fil_density: Some(0.38),
            rng: DetRng::new(1),
            tiles: Default::default(),
            scratch: Default::default(),
        };
        let d = onesided::dense()
            .simulate_layer(&gemm(false), &ctx, &cfg)
            .unwrap();
        let s = s2ta().simulate_layer(&gemm(false), &ctx, &cfg).unwrap();
        let speedup = d.compute_cycles as f64 / s.compute_cycles as f64;
        assert!((speedup - 1.0 / 0.44).abs() < 0.2, "speedup {speedup}");
    }

    #[test]
    fn bert_degenerates_to_dense_performance() {
        let cfg = SimConfig::fast();
        let ctx = LayerCtx {
            act_density: 0.98,
            s2ta_act_density: Some(0.50),
            s2ta_fil_density: Some(0.50),
            rng: DetRng::new(1),
            tiles: Default::default(),
            scratch: Default::default(),
        };
        let d = onesided::dense()
            .simulate_layer(&gemm(true), &ctx, &cfg)
            .unwrap();
        let s = s2ta().simulate_layer(&gemm(true), &ctx, &cfg).unwrap();
        let speedup = d.compute_cycles as f64 / s.compute_cycles as f64;
        assert!(speedup < 1.1, "speedup {speedup}");
        // But energy-side gating still halves the multiplies.
        assert!(s.mac_ops < d.mac_ops / 2 + d.mac_ops / 20);
    }

    #[test]
    fn unsupported_without_table1_data() {
        let cfg = SimConfig::fast();
        let ctx = LayerCtx {
            act_density: 0.45,
            s2ta_act_density: None,
            s2ta_fil_density: None,
            rng: DetRng::new(1),
            tiles: Default::default(),
            scratch: Default::default(),
        };
        assert!(matches!(
            s2ta().simulate_layer(&gemm(false), &ctx, &cfg),
            Err(SimError::Unsupported { .. })
        ));
    }
}
