//! The shared tile-stream engine for one-sided architectures.
//!
//! Dense, Ampere/STC, Cnvlutin-like, the whole Eureka family and the
//! Figure 12 ablations differ only in three knobs:
//!
//! * the **compaction factor** `P` (tile width `q = p·P`);
//! * the **tile timer** — how a sparse tile's critical path becomes cycles
//!   (dense, 2:4, compaction-only max-row, greedy SUDS, optimal SUDS);
//! * the **schedule mode** — natural tile order vs offline systolic
//!   grouping (§3.3).
//!
//! Timing is statistical: tiles are sampled from the layer's (possibly
//! clustered) sparsity distribution; the busy total scales the sample mean
//! to the layer's true tile count, and the scheduling utilization comes
//! from running the macro-step pipeline on the sampled stream.

use super::{sample_tile, tile_density, Architecture, LayerCtx, SimError};
use crate::config::SimConfig;
use crate::memory;
use crate::profile::{
    LayerProfile, MacBreakdown, ProfileConfig, RowOccupancy, StallBreakdown, SudsStats, TileStat,
};
use crate::report::{LayerReport, OpCounts};
use crate::store::{TileKey, TileOutcome};
use eureka_core::schedule::pipeline::{run_steps, run_steps_with_sink};
use eureka_core::schedule::profile::StepProfile;
use eureka_core::schedule::{
    schedule_grouped, schedule_grouped_steps, schedule_natural, schedule_natural_steps,
    SystolicConfig,
};
use eureka_core::suds;
use eureka_models::workload::LayerGemm;
use eureka_sparse::TilePattern;
use std::collections::BTreeMap;

/// How a tile's sparsity becomes a cycle count.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TileTimer {
    /// Dense operation: every tile takes `q` cycles (`q = p`, factor 1).
    Dense,
    /// Ampere 2:4: uniform `q/2` cycles.
    TwoFour,
    /// Compaction only: the longest left-aligned row (Cnvlutin-like,
    /// Eureka-unopt, Eureka-no-SUDS).
    MaxRow,
    /// Greedy SUDS displacement (Figure 12's *Greedy SUDS*).
    GreedySuds,
    /// Optimal SUDS work assignment (Algorithm 1 + binary search).
    OptimalSuds,
    /// Hypothetical reach-R displacement (execute up to R rows below) —
    /// the design-space ablation behind the paper's "single-step" choice.
    /// Costs R return wires and an (R+2)-input adder per MAC.
    MultiStepSuds(usize),
}

impl TileTimer {
    /// The content-addressed store key for timing `tile` under this
    /// timer, or `None` for uniform-latency timers (dense, 2:4), whose
    /// per-tile cost ignores the sparsity pattern and is never cached at
    /// tile granularity.
    ///
    /// Every sampled timer is a pure function of the tile's row-length
    /// signature, so the key is the timer's discipline tag plus the
    /// canonical signature: sorted for the permutation-invariant max-row
    /// timer, exact row order for the SUDS planners (whose displacement
    /// walk and base-row choice are position-dependent). Equal keys
    /// imply bit-identical [`TileTimer::outcome`]s — the congruence the
    /// workspace property suite asserts for every registry architecture.
    #[must_use]
    pub fn key(self, tile: &TilePattern) -> Option<TileKey> {
        let (mut lens, mut token) = (Vec::new(), String::new());
        let (mut tag, mut key) = (String::new(), String::new());
        self.key_into(tile, &mut lens, &mut token, &mut tag, &mut key)
            .then(|| TileKey::new(&tag, &token))
    }

    /// [`key`](Self::key) into caller-owned buffers: fills `key` with the
    /// store key's text form (byte-identical to what [`key`](Self::key)
    /// produces) and returns `true`, or returns `false` for uniform
    /// timers without touching `key`. The intermediate buffers (`lens`,
    /// `token`, `tag`) are cleared and refilled; hot loops recycle all
    /// four from a [`crate::scratch::Scratch`] so keying a tile performs
    /// no allocation in steady state.
    pub(crate) fn key_into(
        self,
        tile: &TilePattern,
        lens: &mut Vec<usize>,
        token: &mut String,
        tag: &mut String,
        key: &mut String,
    ) -> bool {
        use eureka_sparse::canon::{canonical_lens_into, lens_token_into, RowOrder};
        use std::fmt::Write as _;
        tag.clear();
        let order = match self {
            TileTimer::Dense | TileTimer::TwoFour => return false,
            TileTimer::MaxRow => {
                tag.push_str("maxrow");
                RowOrder::Sorted
            }
            TileTimer::GreedySuds => {
                tag.push_str("greedy");
                RowOrder::Exact
            }
            TileTimer::OptimalSuds => {
                tag.push_str("optimal");
                RowOrder::Exact
            }
            TileTimer::MultiStepSuds(reach) => {
                let _ = write!(tag, "ms{reach}");
                RowOrder::Exact
            }
        };
        canonical_lens_into(tile, order, lens);
        lens_token_into(lens, token);
        TileKey::encode_into(tag, token, key);
        true
    }

    /// Times `tile` under this timer, packaged as the [`TileOutcome`]
    /// record the store persists. Pure: no RNG, no shared state.
    #[must_use]
    pub fn outcome(self, tile: &TilePattern) -> TileOutcome {
        let nnz = tile.nnz() as u64;
        match self {
            TileTimer::Dense => TileOutcome {
                cycles: tile.q() as u64,
                displaced: 0,
                base_row: None,
                nnz,
            },
            TileTimer::TwoFour => TileOutcome {
                cycles: (tile.q() as u64) / 2,
                displaced: 0,
                base_row: None,
                nnz,
            },
            TileTimer::MaxRow => TileOutcome {
                cycles: tile.critical_path().max(1) as u64,
                displaced: 0,
                base_row: None,
                nnz,
            },
            TileTimer::GreedySuds => {
                let plan = suds::greedy(&tile.row_lens());
                TileOutcome {
                    cycles: plan.k.max(1) as u64,
                    displaced: plan.displaced_count() as u64,
                    base_row: Some(plan.base_row),
                    nnz,
                }
            }
            TileTimer::OptimalSuds => {
                let plan = suds::optimize(&tile.row_lens());
                TileOutcome {
                    cycles: plan.k.max(1) as u64,
                    displaced: plan.displaced_count() as u64,
                    base_row: Some(plan.base_row),
                    nnz,
                }
            }
            TileTimer::MultiStepSuds(reach) => {
                let lens = tile.row_lens();
                let reach = reach.min(lens.len().saturating_sub(1));
                let k = suds::multistep::optimal_k(&lens, reach);
                // Displaced work: at least each row's overflow must move.
                let moved: usize = lens.iter().map(|&l| l.saturating_sub(k)).sum();
                TileOutcome {
                    cycles: k.max(1) as u64,
                    displaced: moved as u64,
                    base_row: None,
                    nnz,
                }
            }
        }
    }
}

/// Tile dispatch order on the systolic rows.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScheduleMode {
    /// Arrival order, one tile per row per macro-step.
    Natural,
    /// Offline systolic scheduling (§3.3).
    Grouped,
}

/// A one-sided architecture instance.
#[derive(Clone, Debug)]
pub struct OneSided {
    name: String,
    factor: usize,
    timer: TileTimer,
    schedule: ScheduleMode,
}

impl OneSided {
    /// Builds a custom one-sided configuration.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is zero.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        factor: usize,
        timer: TileTimer,
        schedule: ScheduleMode,
    ) -> Self {
        assert!(factor > 0, "compaction factor must be positive");
        OneSided {
            name: name.into(),
            factor,
            timer,
            schedule,
        }
    }

    /// Compaction factor `P`.
    #[must_use]
    pub fn factor(&self) -> usize {
        self.factor
    }

    /// The tile timer this configuration simulates with — exposed so
    /// the congruence property suite can exercise every registry
    /// architecture's timer against the canonical store keys.
    #[must_use]
    pub fn timer(&self) -> TileTimer {
        self.timer
    }

    /// Per-value metadata bits for this configuration at tile width `q`.
    fn meta_bits(&self, q: usize) -> u32 {
        let col_bits = usize::BITS - (q - 1).leading_zeros();
        match self.timer {
            TileTimer::Dense => 0,
            TileTimer::TwoFour => 2,
            TileTimer::MaxRow => col_bits,
            // SUDS adds the displaced bit (§3.1).
            TileTimer::GreedySuds | TileTimer::OptimalSuds => col_bits + 1,
            // Reach-R displacement must encode the landing offset.
            TileTimer::MultiStepSuds(reach) => col_bits + (usize::BITS - reach.leading_zeros()),
        }
    }

    /// Cycles and displaced-element count for one sampled tile.
    fn time_tile(&self, tile: &TilePattern) -> (u64, u64) {
        let (t, disp, _) = self.time_tile_full(tile);
        (t, disp)
    }

    /// [`Self::time_tile`] plus the SUDS plan's base row (for the
    /// profiler's rotation statistics). The base row falls out of the
    /// plan the timer already builds, so reporting it draws no extra
    /// randomness and changes no timing.
    fn time_tile_full(&self, tile: &TilePattern) -> (u64, u64, Option<usize>) {
        let o = self.timer.outcome(tile);
        (o.cycles, o.displaced, o.base_row)
    }
}

/// What the sampled-pipeline branch hands back to the report assembly:
/// the pipeline's row-cycle totals (always, for `bubble_cycles`) and the
/// full attribution detail (profiled runs only).
#[derive(Default)]
struct SampledPipe {
    busy_rc: u64,
    idle_rc: u64,
    sink: Option<StepProfile>,
    tiles: Vec<TileStat>,
    suds: Option<SudsStats>,
}

/// `value * num / den` in u128, floored; 0 when `den == 0`.
fn scale(value: u64, num: u64, den: u64) -> u64 {
    if den == 0 {
        return 0;
    }
    (u128::from(value) * u128::from(num) / u128::from(den)) as u64
}

impl OneSided {
    /// The shared simulation body. `prof` is `None` on the plain path
    /// (no attribution work at all) and `Some` on the profiled path; the
    /// two paths draw identical RNG sequences and produce bit-identical
    /// [`LayerReport`]s — profiling only *additionally* records values
    /// the simulation already computed.
    #[allow(clippy::too_many_lines)] // one straight-line timing model
    fn simulate_layer_impl(
        &self,
        gemm: &LayerGemm,
        ctx: &LayerCtx,
        cfg: &SimConfig,
        prof: Option<&ProfileConfig>,
    ) -> Result<(LayerReport, Option<LayerProfile>), SimError> {
        let p = cfg.core.sub_array_dim;
        let q = p * self.factor;
        assert!(q <= 64, "tile width {q} exceeds the 64-bit row masks");
        let (n, k, m) = (gemm.shape.n, gemm.shape.k, gemm.shape.m);
        let stages = cfg.core.grid_cols;
        let rows = cfg.core.grid_rows;
        let rowgroups = n.div_ceil(p) as u64;
        let slices = k.div_ceil(q) as u64;
        let colgroups = m.div_ceil(p) as u64;
        let passes = colgroups.div_ceil(stages as u64);
        let total_tiles = rowgroups * slices;

        let uniform_time = match self.timer {
            TileTimer::Dense => Some(q as u64),
            TileTimer::TwoFour => Some((q as u64 / 2).max(1)),
            _ => None,
        };

        let mut sampled = SampledPipe::default();
        let (mean_t, mean_nnz, mean_displaced, utilization) = if let Some(t) = uniform_time {
            // Uniform latency: no load imbalance, no bubbles (§2.3.1).
            let nnz_per_tile = match self.timer {
                TileTimer::Dense => (p * q) as f64,
                _ => (p * q) as f64 / 2.0,
            };
            (t as f64, nnz_per_tile, 0.0, 1.0)
        } else {
            let profiling = prof.is_some();
            if profiling && matches!(self.timer, TileTimer::GreedySuds | TileTimer::OptimalSuds) {
                sampled.suds = Some(SudsStats {
                    tiles: 0,
                    displaced: 0,
                    rotation: vec![0; p],
                });
            }
            let mut rng = ctx.rng.fork(0x0001_51DE);
            let n_rg = (cfg.rowgroup_samples as u64).min(rowgroups).max(1);
            let n_sl = (cfg.slice_samples as u64).min(slices).max(1);
            // Check one scratch set out for the whole layer: the tile,
            // its key strings and the time stream all recycle buffers
            // across samples (and across layers, via the pool).
            let mut scratch = ctx.scratch.acquire();
            let crate::scratch::Scratch {
                masks,
                tile,
                lens,
                token,
                key,
                tag,
                times,
            } = &mut *scratch;
            times.clear();
            times.reserve((n_rg * n_sl) as usize);
            let (mut sum_t, mut sum_nnz, mut sum_disp) = (0f64, 0f64, 0f64);
            for i in 0..n_rg {
                let rg = i * rowgroups / n_rg;
                let rows_live = p.min(n - (rg as usize) * p);
                for j in 0..n_sl {
                    let si = j * slices / n_sl;
                    let cols_live = q.min(k - (si as usize) * q);
                    let d = tile_density(gemm, &mut rng);
                    super::sample_tile_into(
                        masks,
                        tile,
                        p,
                        q,
                        rows_live,
                        cols_live,
                        d,
                        cfg.row_density_sigma,
                        &mut rng,
                    );
                    // Resolve through the content-addressed store: the
                    // tile is always *sampled* (identical RNG draws hot
                    // or cold), only its timing memoizes. `outcome` is a
                    // pure function of the canonical key, so a store hit
                    // is bit-identical to the skipped computation.
                    let keyed = self.timer.key_into(tile, lens, token, tag, key);
                    let o = ctx
                        .tiles
                        .resolve_str(keyed.then_some(key.as_str()), || self.timer.outcome(tile));
                    let (t, disp, base_row) = (o.cycles, o.displaced, o.base_row);
                    times.push(t);
                    sum_t += t as f64;
                    sum_nnz += o.nnz as f64;
                    sum_disp += disp as f64;
                    if profiling {
                        sampled.tiles.push(TileStat {
                            index: (times.len() - 1) as u64,
                            cycles: t,
                            nnz: o.nnz,
                            displaced: disp,
                        });
                        if let (Some(su), Some(base)) = (sampled.suds.as_mut(), base_row) {
                            su.tiles += 1;
                            su.displaced += disp;
                            // The crossbar rotation that lands the base
                            // row on the last physical row.
                            su.rotation[p - 1 - base.min(p - 1)] += 1;
                        }
                    }
                }
            }
            let count = times.len() as f64;
            let sys = SystolicConfig {
                rows,
                stages,
                window: cfg.core.window,
            };
            let steps = match self.schedule {
                ScheduleMode::Natural => schedule_natural_steps(times, &sys),
                ScheduleMode::Grouped => schedule_grouped_steps(times, &sys),
            };
            let pipe = if profiling {
                let mut sink = StepProfile::new(sys.rows);
                let pipe = run_steps_with_sink(&steps, &sys, &mut sink);
                sampled.sink = Some(sink);
                pipe
            } else {
                run_steps(&steps, &sys)
            };
            sampled.busy_rc = pipe.busy_cycles;
            sampled.idle_rc = pipe.bubble_cycles;
            (
                sum_t / count,
                sum_nnz / count,
                sum_disp / count,
                pipe.row_utilization(),
            )
        };

        let busy_row_cycles = mean_t * total_tiles as f64 * passes as f64;
        let parallel_rows = (cfg.tensor_cores * rows) as f64;
        let compute_cycles = (busy_row_cycles / utilization / parallel_rows).ceil() as u64;
        let compute_cycles = compute_cycles.max(1);

        // Useful multiplies: every stored non-zero weight meets every one
        // of the m activation columns (2:4 stores exactly half the values).
        let nnz_total = match self.timer {
            TileTimer::Dense => (n * k) as f64,
            TileTimer::TwoFour => (n * k) as f64 / 2.0,
            _ => mean_nnz * total_tiles as f64,
        };
        let mac_ops = (nnz_total * m as f64) as u64;
        let csa_ops = (mean_displaced * total_tiles as f64 * m as f64) as u64;
        // Operand-mux selections, bucketed by fan-in: 2:4 and compaction
        // use a q-to-1 mux per multiply; SUDS additionally toggles the two
        // 2-1 adder-input muxes on every displaced fold.
        let mut mux_by_width = [0u64; 3]; // 4-1, 8-1, 16-1
        if !matches!(self.timer, TileTimer::Dense) {
            let bucket = match q {
                0..=4 => 0,
                5..=8 => 1,
                _ => 2,
            };
            mux_by_width[bucket] = mac_ops;
        }
        let mux2_ops = if matches!(
            self.timer,
            TileTimer::GreedySuds | TileTimer::OptimalSuds | TileTimer::MultiStepSuds(_)
        ) {
            2 * csa_ops
        } else {
            0
        };

        let device_macs = cfg.total_macs() as u64;
        let idle_mac_cycles = (compute_cycles * device_macs).saturating_sub(mac_ops);

        let meta_bits = u64::from(self.meta_bits(q));
        let rotation_bits = if matches!(
            self.timer,
            TileTimer::GreedySuds | TileTimer::OptimalSuds | TileTimer::MultiStepSuds(_)
        ) {
            (usize::BITS - (p - 1).leading_zeros()) as u64
        } else {
            0
        };
        let weight_bytes = (nnz_total * 2.0) as u64;
        let metadata_bytes =
            ((nnz_total * meta_bits as f64) / 8.0) as u64 + total_tiles * rotation_bits / 8;

        // Device cycles lost to pipeline idle row-cycles of any kind,
        // scaled exactly from the sampled stream (0 for uniform timers,
        // whose pipeline never bubbles).
        let observed_rc = sampled.busy_rc + sampled.idle_rc;
        let bubble_cycles = scale(compute_cycles, sampled.idle_rc, observed_rc);

        let mut report = LayerReport {
            name: gemm.name.clone(),
            compute_cycles,
            mem_cycles: 0,
            mac_ops,
            idle_mac_cycles,
            bubble_cycles,
            weight_bytes,
            act_bytes: gemm.unique_act_bytes,
            out_bytes: (2 * n * m) as u64,
            metadata_bytes,
            ops: OpCounts {
                mux2: mux2_ops,
                mux4: mux_by_width[0],
                mux8: mux_by_width[1],
                mux16: mux_by_width[2],
                csa: csa_ops,
                ..OpCounts::default()
            },
        };
        report.mem_cycles = memory::exposed_cycles(&report, &cfg.mem);

        let profile = prof.map(|pcfg| self.build_profile(&report, &sampled, device_macs, pcfg));
        Ok((report, profile))
    }

    /// Assembles the [`LayerProfile`] from the finished report and the
    /// sampled pipeline detail. Pure arithmetic on already-computed
    /// values; every derived bucket is constructed to reconcile exactly
    /// (stalls sum to the report's total cycles, idle-MAC buckets sum to
    /// the report's `idle_mac_cycles`).
    fn build_profile(
        &self,
        report: &LayerReport,
        sampled: &SampledPipe,
        device_macs: u64,
        pcfg: &ProfileConfig,
    ) -> LayerProfile {
        let Some(sink) = &sampled.sink else {
            // Uniform-latency timers have no sampled pipeline: all
            // compute is compute-bound.
            return LayerProfile::from_report(report);
        };
        let observed_rc = sampled.busy_rc + sampled.idle_rc;
        // True macro-step bubbles scale separately from whole-row drain;
        // the remainder assignment keeps the pair exactly equal to the
        // report's bubble_cycles scalar.
        let pipeline_bubble = scale(report.compute_cycles, sink.bubble_cycles(), observed_rc);
        let tail_drain = report.bubble_cycles.saturating_sub(pipeline_bubble);
        let compute = report.compute_cycles - report.bubble_cycles;

        let idle_total = report.idle_mac_cycles;
        let bubble_macs = pipeline_bubble.saturating_mul(device_macs).min(idle_total);
        let drain_macs = tail_drain
            .saturating_mul(device_macs)
            .min(idle_total - bubble_macs);
        let slack = idle_total - bubble_macs - drain_macs;

        let rows = (0..sink.rows())
            .map(|r| RowOccupancy {
                busy: sink.row_busy()[r],
                bubble: sink.row_bubble()[r],
                drain: sink.row_drain()[r],
            })
            .collect();

        let mut histogram: BTreeMap<u64, u64> = BTreeMap::new();
        for t in &sampled.tiles {
            *histogram.entry(t.cycles).or_insert(0) += 1;
        }
        let mut worst = sampled.tiles.clone();
        worst.sort_by(|a, b| b.cycles.cmp(&a.cycles).then(a.index.cmp(&b.index)));
        worst.truncate(pcfg.top_tiles);

        LayerProfile {
            name: report.name.clone(),
            compute_cycles: report.compute_cycles,
            mem_cycles: report.mem_cycles,
            stalls: StallBreakdown {
                compute,
                memory: report.mem_cycles,
                pipeline_bubble,
                tail_drain,
            },
            macs: MacBreakdown {
                busy: report.mac_ops,
                bubble: bubble_macs,
                drain: drain_macs,
                slack,
            },
            rows,
            critical_path: histogram.into_iter().collect(),
            suds: sampled.suds.clone(),
            worst_tiles: worst,
        }
    }
}

impl Architecture for OneSided {
    fn name(&self) -> &str {
        &self.name
    }

    fn simulate_layer(
        &self,
        gemm: &LayerGemm,
        ctx: &LayerCtx,
        cfg: &SimConfig,
    ) -> Result<LayerReport, SimError> {
        self.simulate_layer_impl(gemm, ctx, cfg, None)
            .map(|(report, _)| report)
    }

    fn simulate_layer_profiled(
        &self,
        gemm: &LayerGemm,
        ctx: &LayerCtx,
        cfg: &SimConfig,
        profile: &ProfileConfig,
    ) -> Result<(LayerReport, LayerProfile), SimError> {
        self.simulate_layer_impl(gemm, ctx, cfg, Some(profile))
            .map(|(report, prof)| {
                let prof = prof.unwrap_or_else(|| LayerProfile::from_report(&report));
                (report, prof)
            })
    }
}

/// The dense tensor-core baseline.
#[must_use]
pub fn dense() -> OneSided {
    OneSided::new("Dense", 1, TileTimer::Dense, ScheduleMode::Natural)
}

/// Ampere's 2:4 structured-sparse tensor core (covers STC as well).
#[must_use]
pub fn ampere() -> OneSided {
    OneSided::new("Ampere/STC", 1, TileTimer::TwoFour, ScheduleMode::Natural)
}

/// Cnvlutin-like: compaction factor 4, no load balancing, no systolic
/// scheduling (§5.1).
#[must_use]
pub fn cnvlutin_like() -> OneSided {
    OneSided::new("Cnvlutin-like", 4, TileTimer::MaxRow, ScheduleMode::Natural)
}

/// Full Eureka at compaction factor 2.
#[must_use]
pub fn eureka_p2() -> OneSided {
    OneSided::new(
        "Eureka P=2",
        2,
        TileTimer::OptimalSuds,
        ScheduleMode::Grouped,
    )
}

/// Full Eureka at compaction factor 4 (the headline configuration).
#[must_use]
pub fn eureka_p4() -> OneSided {
    OneSided::new(
        "Eureka P=4",
        4,
        TileTimer::OptimalSuds,
        ScheduleMode::Grouped,
    )
}

/// Figure 12: unoptimized Eureka — no compaction, no SUDS, no scheduling.
#[must_use]
pub fn eureka_unopt() -> OneSided {
    OneSided::new("Eureka-unopt", 1, TileTimer::MaxRow, ScheduleMode::Natural)
}

/// Figure 12: compaction only, at the given factor.
#[must_use]
pub fn compaction_only(factor: usize) -> OneSided {
    OneSided::new(
        format!("Compaction P={factor}"),
        factor,
        TileTimer::MaxRow,
        ScheduleMode::Natural,
    )
}

/// Figure 12: greedy SUDS on top of factor-4 compaction (no scheduling).
#[must_use]
pub fn greedy_suds_p4() -> OneSided {
    OneSided::new(
        "Greedy SUDS",
        4,
        TileTimer::GreedySuds,
        ScheduleMode::Natural,
    )
}

/// Figure 12: optimal SUDS on top of factor-4 compaction (no scheduling).
#[must_use]
pub fn optimal_suds_p4() -> OneSided {
    OneSided::new(
        "Optimal SUDS",
        4,
        TileTimer::OptimalSuds,
        ScheduleMode::Natural,
    )
}

/// Figure 12: full Eureka minus SUDS (compaction + systolic scheduling).
#[must_use]
pub fn eureka_no_suds_p4() -> OneSided {
    OneSided::new(
        "Eureka-no-SUDS",
        4,
        TileTimer::MaxRow,
        ScheduleMode::Grouped,
    )
}

/// Exact (non-sampled) compute cycles for one layer: materializes a full
/// synthetic weight pattern from the same distribution the statistical
/// engine samples, times *every* tile, and runs the real scheduler over
/// the complete stream. `O(tiles)` — used to validate the sampling
/// methodology (see the `sampling_matches_exact_enumeration` test) and
/// for small layers where exactness is cheap.
#[must_use]
pub fn exact_layer_compute_cycles(
    arch: &OneSided,
    gemm: &LayerGemm,
    ctx: &LayerCtx,
    cfg: &SimConfig,
) -> u64 {
    let p = cfg.core.sub_array_dim;
    let q = p * arch.factor();
    let (n, k, m) = (gemm.shape.n, gemm.shape.k, gemm.shape.m);
    let stages = cfg.core.grid_cols;
    let rows = cfg.core.grid_rows;
    let mut rng = ctx.rng.fork(0x000E_5AC7);

    // Materialize the full pattern: per-tile cluster density, per-row
    // log-normal heterogeneity — the sampling engine's distribution.
    let rowgroups = n.div_ceil(p);
    let slices = k.div_ceil(q);
    let mut times = Vec::with_capacity(rowgroups * slices);
    let mut busy = 0u64;
    for rg in 0..rowgroups {
        let rows_live = p.min(n - rg * p);
        for si in 0..slices {
            let cols_live = q.min(k - si * q);
            let d = tile_density(gemm, &mut rng);
            let tile = sample_tile(
                p,
                q,
                rows_live,
                cols_live,
                d,
                cfg.row_density_sigma,
                &mut rng,
            );
            let (t, _) = arch.time_tile(&tile);
            times.push(t);
            busy += t;
        }
    }
    let sys = SystolicConfig {
        rows,
        stages,
        window: cfg.core.window,
    };
    let pipe = match arch.schedule {
        ScheduleMode::Natural => schedule_natural(&times, &sys),
        ScheduleMode::Grouped => schedule_grouped(&times, &sys),
    };
    let colgroups = m.div_ceil(p) as u64;
    let passes = colgroups.div_ceil(stages as u64);
    let busy_row_cycles = busy as f64 * passes as f64;
    let parallel_rows = (cfg.tensor_cores * rows) as f64;
    ((busy_row_cycles / pipe.row_utilization() / parallel_rows).ceil() as u64).max(1)
}

/// Ablation: Eureka with hypothetical reach-`reach` displacement (the
/// `ablations` experiment quantifying the paper's single-step choice).
///
/// # Panics
///
/// Panics if `reach` is zero (use [`eureka_no_suds_p4`] for no
/// displacement).
#[must_use]
pub fn eureka_multistep(reach: usize) -> OneSided {
    assert!(reach > 0, "reach must be positive");
    OneSided::new(
        format!("Eureka reach-{reach}"),
        4,
        TileTimer::MultiStepSuds(reach),
        ScheduleMode::Grouped,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use eureka_models::GemmShape;
    use eureka_sparse::rng::DetRng;

    fn ctx() -> LayerCtx {
        LayerCtx {
            act_density: 0.5,
            s2ta_act_density: Some(0.44),
            s2ta_fil_density: Some(0.38),
            rng: DetRng::new(42),
            tiles: Default::default(),
            scratch: Default::default(),
        }
    }

    fn gemm(n: usize, k: usize, m: usize, d: f64) -> LayerGemm {
        LayerGemm {
            name: "test".into(),
            shape: GemmShape { n, k, m },
            unique_act_bytes: 1 << 20,
            weight_density: d,
            clustered: false,
            depthwise: false,
        }
    }

    #[test]
    fn dense_matches_analytic() {
        let cfg = SimConfig::fast();
        let g = gemm(256, 2304, 6272, 1.0);
        let r = dense().simulate_layer(&g, &ctx(), &cfg).unwrap();
        let expect = g.shape.macs() / cfg.total_macs() as u64;
        let got = r.compute_cycles;
        assert!(
            (got as f64 - expect as f64).abs() / (expect as f64) < 0.02,
            "got {got} expect {expect}"
        );
        assert_eq!(r.mac_ops, g.shape.macs());
        assert_eq!(r.ops.mux_total(), 0);
    }

    #[test]
    fn ampere_is_twice_dense() {
        let cfg = SimConfig::fast();
        let g = gemm(256, 2304, 6272, 0.13);
        let d = dense().simulate_layer(&g, &ctx(), &cfg).unwrap();
        let a = ampere().simulate_layer(&g, &ctx(), &cfg).unwrap();
        let speedup = d.compute_cycles as f64 / a.compute_cycles as f64;
        assert!((speedup - 2.0).abs() < 0.05, "speedup {speedup}");
        assert_eq!(a.mac_ops, d.mac_ops / 2);
    }

    #[test]
    fn eureka_beats_cnvlutin_beats_ampere() {
        let cfg = SimConfig::fast();
        let g = gemm(256, 2304, 6272, 0.13);
        let c = ctx();
        let amp = ampere().simulate_layer(&g, &c, &cfg).unwrap();
        let cnv = cnvlutin_like().simulate_layer(&g, &c, &cfg).unwrap();
        let eur = eureka_p4().simulate_layer(&g, &c, &cfg).unwrap();
        assert!(cnv.compute_cycles < amp.compute_cycles);
        assert!(eur.compute_cycles < cnv.compute_cycles);
        // Eureka cannot exceed the one-sided bound 1/density.
        let dense_r = dense().simulate_layer(&g, &c, &cfg).unwrap();
        let speedup = dense_r.compute_cycles as f64 / eur.compute_cycles as f64;
        assert!(speedup < 1.0 / 0.13 + 0.5, "speedup {speedup}");
        assert!(speedup > 4.0, "speedup {speedup}");
    }

    #[test]
    fn p4_beats_p2() {
        let cfg = SimConfig::fast();
        let g = gemm(512, 4608, 1568, 0.13);
        let c = ctx();
        let p2 = eureka_p2().simulate_layer(&g, &c, &cfg).unwrap();
        let p4 = eureka_p4().simulate_layer(&g, &c, &cfg).unwrap();
        assert!(p4.compute_cycles <= p2.compute_cycles);
    }

    #[test]
    fn figure12_ordering() {
        // Progressive techniques must not regress: unopt >= compaction >=
        // greedy >= optimal >= full Eureka cycles.
        let cfg = SimConfig::fast();
        let g = gemm(256, 2304, 6272, 0.13);
        let c = ctx();
        let steps = [
            eureka_unopt().simulate_layer(&g, &c, &cfg).unwrap(),
            compaction_only(4).simulate_layer(&g, &c, &cfg).unwrap(),
            greedy_suds_p4().simulate_layer(&g, &c, &cfg).unwrap(),
            optimal_suds_p4().simulate_layer(&g, &c, &cfg).unwrap(),
            eureka_p4().simulate_layer(&g, &c, &cfg).unwrap(),
        ];
        for w in steps.windows(2) {
            assert!(
                w[1].compute_cycles <= w[0].compute_cycles + w[0].compute_cycles / 50,
                "{} ({}) should not regress to {} ({})",
                w[0].name,
                w[0].compute_cycles,
                w[1].name,
                w[1].compute_cycles
            );
        }
    }

    #[test]
    fn suds_counts_displaced_csa_ops() {
        let cfg = SimConfig::fast();
        let g = gemm(256, 2304, 6272, 0.13);
        let e = eureka_p4().simulate_layer(&g, &ctx(), &cfg).unwrap();
        assert!(e.ops.csa > 0, "SUDS should displace something");
        assert!(e.ops.csa < e.mac_ops);
        assert_eq!(e.ops.mux16, e.mac_ops);
        let c = compaction_only(4).simulate_layer(&g, &ctx(), &cfg).unwrap();
        assert_eq!(c.ops.csa, 0);
    }

    #[test]
    fn metadata_scales_with_factor() {
        let cfg = SimConfig::fast();
        let g = gemm(256, 2304, 6272, 0.13);
        let p2 = eureka_p2().simulate_layer(&g, &ctx(), &cfg).unwrap();
        let p4 = eureka_p4().simulate_layer(&g, &ctx(), &cfg).unwrap();
        // P=4 uses 4+1 bits/value vs P=2's 3+1.
        assert!(p4.metadata_bytes > p2.metadata_bytes);
        let d = dense().simulate_layer(&g, &ctx(), &cfg).unwrap();
        assert_eq!(d.metadata_bytes, 0);
    }

    #[test]
    fn depthwise_tiny_reduction_works() {
        let cfg = SimConfig::fast();
        let g = LayerGemm {
            name: "dw".into(),
            shape: GemmShape {
                n: 512,
                k: 9,
                m: 6272,
            },
            unique_act_bytes: 1 << 20,
            weight_density: 0.9,
            clustered: false,
            depthwise: true,
        };
        let r = eureka_p4().simulate_layer(&g, &ctx(), &cfg).unwrap();
        assert!(r.compute_cycles > 0);
        assert!(r.mac_ops > 0);
    }

    #[test]
    fn sampling_matches_exact_enumeration() {
        // The statistical engine's estimate must track a full enumeration
        // of the same distribution within a few percent.
        let cfg = SimConfig::paper_default();
        let g = gemm(512, 2304, 6272, 0.13);
        let c = ctx();
        for a in [eureka_p4(), cnvlutin_like(), eureka_p2()] {
            let sampled = a.simulate_layer(&g, &c, &cfg).unwrap().compute_cycles;
            let exact = exact_layer_compute_cycles(&a, &g, &c, &cfg);
            let ratio = sampled as f64 / exact as f64;
            assert!(
                (0.93..1.07).contains(&ratio),
                "{}: sampled {sampled} vs exact {exact} (ratio {ratio})",
                a.name()
            );
        }
    }

    #[test]
    fn clustered_sparsity_hurts_utilization() {
        // At equal density, clustered filters give longer worst-case rows,
        // but SUDS+scheduling should keep Eureka's penalty small.
        let cfg = SimConfig::fast();
        let mut g = gemm(768, 3072, 12288, 0.10);
        let c = ctx();
        let uni = eureka_p4().simulate_layer(&g, &c, &cfg).unwrap();
        g.clustered = true;
        let clu = eureka_p4().simulate_layer(&g, &c, &cfg).unwrap();
        // Clustered can be modestly slower but within 2x.
        assert!(clu.compute_cycles < uni.compute_cycles * 2);
    }
}
