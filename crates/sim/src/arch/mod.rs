//! Architecture models.
//!
//! Each architecture converts a pruned GEMM into a [`LayerReport`]:
//! device-level compute cycles, exposed memory traffic, and component
//! activity. One-sided schemes (Dense, Ampere, Cnvlutin-like, the Eureka
//! family, Ideal) share the tile-stream engine in [`onesided`]; the
//! two-sided baselines have their own models.

pub mod dstc;
pub mod extensions;
pub mod ideal;
pub mod onesided;
pub mod s2ta;
pub mod sparten;

use crate::config::SimConfig;
use crate::profile::{LayerProfile, ProfileConfig};
use crate::report::LayerReport;
use crate::scratch::ScratchPool;
use crate::store::TileBroker;
use core::fmt;
use eureka_models::workload::LayerGemm;
use eureka_sparse::rng::DetRng;
use eureka_sparse::TilePattern;

pub use dstc::{dstc, Dstc};
pub use extensions::{eureka_two_sided, EurekaTwoSided};
pub use ideal::{ideal, Ideal};
pub use onesided::{
    ampere, cnvlutin_like, compaction_only, dense, eureka_multistep, eureka_no_suds_p4, eureka_p2,
    eureka_p4, eureka_unopt, greedy_suds_p4, optimal_suds_p4, OneSided, ScheduleMode, TileTimer,
};
pub use s2ta::{s2ta, S2ta};
pub use sparten::{sparten, SparTen};

/// Per-layer simulation context supplied by the engine.
#[derive(Clone, Debug)]
pub struct LayerCtx {
    /// Mean unstructured activation density of the workload.
    pub act_density: f64,
    /// S2TA structured activation density, if the benchmark has one.
    pub s2ta_act_density: Option<f64>,
    /// S2TA structured filter density, if the benchmark has one.
    pub s2ta_fil_density: Option<f64>,
    /// Deterministic RNG stream for this (workload, layer).
    pub rng: DetRng,
    /// Tile-result resolution through the content-addressed store
    /// ([`crate::store`]). [`TileBroker::disabled`] computes every tile
    /// directly — the right default for ad-hoc simulation call sites;
    /// the runner plants an enabled broker per work unit. Either way the
    /// simulated results are bit-identical: the store only skips
    /// recomputing outcomes it can prove equal by canonical key.
    pub tiles: TileBroker,
    /// Reusable per-worker scratch buffers ([`crate::scratch`]): tiles,
    /// key strings, signature and schedule buffers recycle across units
    /// instead of re-allocating per sample. `Default` works standalone,
    /// so ad-hoc `LayerCtx` construction needs no setup; buffers never
    /// influence results (every user overwrites before reading).
    pub scratch: ScratchPool,
}

/// Errors an architecture can report.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The architecture cannot run this workload (e.g. S2TA on
    /// InceptionV3, whose structured activation sparsity the paper has no
    /// data for).
    Unsupported {
        /// Architecture name.
        arch: String,
        /// Why it cannot run.
        reason: String,
    },
    /// A work unit panicked during simulation; the runner caught it
    /// ([`std::panic::catch_unwind`]) and converted it into this typed
    /// error so one bad unit cannot abort a whole sweep.
    UnitPanic {
        /// Layer (GEMM) name of the panicking unit.
        layer: String,
        /// The panic message, best-effort rendered.
        payload: String,
    },
    /// A fault injected by the test-only [`crate::faults`] layer. Never
    /// produced outside fault-injection runs; treated as transient by
    /// retry policies.
    Injected {
        /// The faulted layer name.
        site: String,
    },
    /// The unit was cooperatively stopped at a unit boundary — its
    /// cancel token fired (operator cancel or deadline) before the unit
    /// started. Never retried: the token stays fired.
    Cancelled {
        /// The layer that was about to run when the token was observed.
        layer: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Unsupported { arch, reason } => {
                write!(f, "{arch} cannot simulate this workload: {reason}")
            }
            SimError::UnitPanic { layer, payload } => {
                write!(f, "layer {layer} panicked during simulation: {payload}")
            }
            SimError::Injected { site } => {
                write!(f, "injected test fault at {site}")
            }
            SimError::Cancelled { layer } => {
                write!(f, "layer {layer} cancelled at unit boundary")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// A simulated architecture.
///
/// Architectures are plain configuration data (`Send + Sync`), so sweeps
/// can fan out across threads.
pub trait Architecture: Send + Sync {
    /// Display name used in the figures.
    ///
    /// The name must uniquely identify the architecture's simulation
    /// behaviour: the [`crate::runner`] unit cache keys results on it, so
    /// two differently-configured architectures sharing a name would
    /// alias each other's cached layers.
    fn name(&self) -> &str;

    /// Simulates one pruned GEMM.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Unsupported`] when the architecture cannot run
    /// the layer (see the S2TA/InceptionV3 case).
    fn simulate_layer(
        &self,
        gemm: &LayerGemm,
        ctx: &LayerCtx,
        cfg: &SimConfig,
    ) -> Result<LayerReport, SimError>;

    /// Simulates one pruned GEMM and attributes its cycles.
    ///
    /// The returned report must be bit-identical to what
    /// [`Architecture::simulate_layer`] produces for the same inputs —
    /// profiling observes, never perturbs. The default implementation
    /// covers architectures without pipeline-level detail: it runs the
    /// plain simulation and attributes everything to compute/memory
    /// ([`LayerProfile::from_report`]). Architectures with a sampled
    /// systolic pipeline (the one-sided engine) override this to break
    /// cycles into the full stall taxonomy.
    ///
    /// # Errors
    ///
    /// Same contract as [`Architecture::simulate_layer`].
    fn simulate_layer_profiled(
        &self,
        gemm: &LayerGemm,
        ctx: &LayerCtx,
        cfg: &SimConfig,
        _profile: &ProfileConfig,
    ) -> Result<(LayerReport, LayerProfile), SimError> {
        let report = self.simulate_layer(gemm, ctx, cfg)?;
        let profile = LayerProfile::from_report(&report);
        Ok((report, profile))
    }
}

/// Parameters of the synthetic clustered-sparsity mixture, kept consistent
/// with `eureka_sparse::gen::clustered_pattern`: a fraction `F` of blocks
/// carries density `d_hi`, the rest `0.1 · d_hi`, preserving the mean.
pub(crate) const CLUSTER_DENSE_FRACTION: f64 = 0.2;

/// Block-density mixture for a clustered layer of mean density `d`:
/// `(dense_fraction, d_hi, d_lo)`. When `d` is high enough that the dense
/// blocks would exceed full density, the dense fraction grows instead so
/// the mixture mean always equals `d`.
pub(crate) fn cluster_mixture(d: f64) -> (f64, f64, f64) {
    let f = CLUSTER_DENSE_FRACTION;
    let d_hi = d / (f + 0.1 * (1.0 - f));
    if d_hi <= 1.0 {
        (f, d_hi, 0.1 * d_hi)
    } else {
        // Cap blocks at fully dense and widen the dense fraction:
        // f' + 0.1 (1 - f') = d.
        let f = ((d - 0.1) / 0.9).clamp(0.0, 1.0);
        (f, 1.0, 0.1)
    }
}

/// Draws the local density for one tile of a layer: the layer's density for
/// uniform sparsity, or a mixture sample for clustered (BERT) filters.
pub(crate) fn tile_density(gemm: &LayerGemm, rng: &mut DetRng) -> f64 {
    if gemm.clustered {
        let (f, hi, lo) = cluster_mixture(gemm.weight_density);
        if rng.bernoulli(f) {
            hi
        } else {
            lo
        }
    } else {
        gemm.weight_density
    }
}

/// Per-filter-row density: the tile-local base density modulated by a
/// mean-one log-normal factor (`sigma = 0` disables the heterogeneity).
///
/// Near-dense layers have little room for heterogeneity, so the factor's
/// sigma tapers towards zero as `base` approaches 1 — this also keeps the
/// `[0, 0.98]` clamp from biasing the mean (an unclamped hot row would
/// violate the one-sided Ideal nnz bound).
pub(crate) fn row_density(base: f64, sigma: f64, rng: &mut DetRng) -> f64 {
    if sigma == 0.0 {
        return base;
    }
    let sigma = sigma * ((1.0 - base) * 2.0).clamp(0.0, 1.0);
    let z = rng.next_gaussian();
    (base * (sigma * z - 0.5 * sigma * sigma).exp()).clamp(0.0, 0.98)
}

/// Samples a `p × q` weight tile: each live row draws its own density via
/// [`row_density`]; `rows_live`/`cols_live` cap how much of the tile lies
/// inside the matrix (edge tiles are zero-padded).
pub(crate) fn sample_tile(
    p: usize,
    q: usize,
    rows_live: usize,
    cols_live: usize,
    base_density: f64,
    sigma: f64,
    rng: &mut DetRng,
) -> TilePattern {
    let mut masks = vec![0u64; p];
    sample_masks(
        &mut masks,
        rows_live,
        cols_live,
        q,
        base_density,
        sigma,
        rng,
    );
    TilePattern::from_rows(&masks, q).expect("q validated by caller")
}

/// [`sample_tile`] into caller-owned buffers: `masks` is resized to `p`
/// and refilled, `tile` rebuilt in place — the zero-allocation sampling
/// path. The RNG draw sequence is identical to [`sample_tile`]'s (reports
/// are byte-identical either way).
#[allow(clippy::too_many_arguments)] // mirrors sample_tile plus the two buffers
pub(crate) fn sample_tile_into(
    masks: &mut Vec<u64>,
    tile: &mut TilePattern,
    p: usize,
    q: usize,
    rows_live: usize,
    cols_live: usize,
    base_density: f64,
    sigma: f64,
    rng: &mut DetRng,
) {
    masks.clear();
    masks.resize(p, 0);
    sample_masks(masks, rows_live, cols_live, q, base_density, sigma, rng);
    tile.reset_from_rows(masks, q)
        .expect("q validated by caller");
}

/// The shared sampling loop: one [`row_density`] draw per live row, one
/// Bernoulli draw per live cell, in row-major order. The draw order is
/// load-bearing — it defines the deterministic RNG stream every committed
/// report was produced with.
fn sample_masks(
    masks: &mut [u64],
    rows_live: usize,
    cols_live: usize,
    q: usize,
    base_density: f64,
    sigma: f64,
    rng: &mut DetRng,
) {
    let p = masks.len();
    for mask in masks.iter_mut().take(rows_live.min(p)) {
        let d = row_density(base_density, sigma, rng);
        // One Bernoulli draw per live cell, branchless. The integer
        // compare is exactly `rng.bernoulli(d)`: `next_f64()` is
        // `(next_u64() >> 11) · 2⁻⁵³` (lossless — 53 bits scaled by a
        // power of two), so `next_f64() < d  ⟺  (next_u64() >> 11) <
        // ⌈d·2⁵³⌉`, where `d·2⁵³` is itself exact for clamped `d`.
        // `tests/kernel_equivalence.rs` pins the equivalence.
        let thr = (d.clamp(0.0, 1.0) * (1u64 << 53) as f64).ceil() as u64;
        let mut m = 0u64;
        for c in 0..cols_live.min(q) {
            m |= u64::from(rng.next_u64() >> 11 < thr) << c;
        }
        *mask |= m;
    }
}

/// Binomial sample: number of successes in `n` Bernoulli(p) trials.
pub(crate) fn binomial(n: usize, p: f64, rng: &mut DetRng) -> usize {
    (0..n).filter(|_| rng.bernoulli(p)).count()
}

/// A registry constructor: builds one boxed architecture.
type ArchCtor = fn() -> Box<dyn Architecture>;

/// The single name → constructor table behind [`registry_names`] and
/// [`by_name`], in figure order. Constructors must yield architectures
/// whose display names are pairwise distinct (the runner's unit cache
/// keys on [`Architecture::name`]); the registry test enforces this.
static REGISTRY: [(&str, ArchCtor); 16] = [
    ("dense", || Box::new(onesided::dense())),
    ("ampere", || Box::new(onesided::ampere())),
    ("cnvlutin", || Box::new(onesided::cnvlutin_like())),
    ("eureka-p2", || Box::new(onesided::eureka_p2())),
    ("eureka-p4", || Box::new(onesided::eureka_p4())),
    ("ideal", || Box::new(ideal::ideal())),
    ("dstc", || Box::new(dstc::dstc())),
    ("sparten", || Box::new(sparten::sparten())),
    ("s2ta", || Box::new(s2ta::s2ta())),
    ("eureka-unopt", || Box::new(onesided::eureka_unopt())),
    ("compaction-p4", || Box::new(onesided::compaction_only(4))),
    ("greedy-suds", || Box::new(onesided::greedy_suds_p4())),
    ("optimal-suds", || Box::new(onesided::optimal_suds_p4())),
    ("eureka-no-suds", || Box::new(onesided::eureka_no_suds_p4())),
    ("eureka-reach2", || Box::new(onesided::eureka_multistep(2))),
    ("eureka-act-gate", || {
        Box::new(extensions::eureka_two_sided())
    }),
];

/// All architecture names [`by_name`] resolves, in figure order.
#[must_use]
pub fn registry_names() -> Vec<&'static str> {
    REGISTRY.iter().map(|(name, _)| *name).collect()
}

/// Resolves an architecture by its kebab-case name (see
/// [`registry_names`]); `None` for unknown names.
#[must_use]
pub fn by_name(name: &str) -> Option<Box<dyn Architecture>> {
    REGISTRY
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, build)| build())
}

/// Samples weight tiles of a layer at the Eureka P=4 geometry
/// (`p × 4p`), for offline analyses like the Figure 9 critical-path
/// distributions. `stream` selects an independent deterministic sample
/// group.
#[must_use]
pub fn tile_samples_for_layer(gemm: &LayerGemm, cfg: &SimConfig, stream: u64) -> Vec<TilePattern> {
    let p = cfg.core.sub_array_dim;
    let q = (4 * p).min(64);
    let mut rng =
        DetRng::new(0xF169 ^ gemm.shape.n as u64 ^ (gemm.shape.k as u64) << 20).fork(stream);
    (0..cfg.rowgroup_samples.max(1))
        .map(|_| {
            let d = tile_density(gemm, &mut rng);
            sample_tile(p, q, p, q, d, cfg.row_density_sigma, &mut rng)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use eureka_models::GemmShape;

    fn gemm(density: f64, clustered: bool) -> LayerGemm {
        LayerGemm {
            name: "t".into(),
            shape: GemmShape {
                n: 64,
                k: 64,
                m: 64,
            },
            unique_act_bytes: 1 << 20,
            weight_density: density,
            clustered,
            depthwise: false,
        }
    }

    #[test]
    fn cluster_mixture_preserves_mean() {
        for d in [0.05, 0.1, 0.2, 0.28, 0.5, 0.9, 0.99] {
            let (f, hi, lo) = cluster_mixture(d);
            let mean = f * hi + (1.0 - f) * lo;
            assert!((mean - d).abs() < 1e-9, "d={d} mean={mean}");
            assert!(hi <= 1.0);
            assert!((0.0..=1.0).contains(&f));
        }
    }

    #[test]
    fn tile_density_uniform_vs_clustered() {
        let mut rng = DetRng::new(1);
        let g = gemm(0.2, false);
        assert_eq!(tile_density(&g, &mut rng), 0.2);
        let g = gemm(0.1, true);
        let samples: Vec<f64> = (0..1000).map(|_| tile_density(&g, &mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / 1000.0;
        assert!((mean - 0.1).abs() < 0.02, "mean {mean}");
        // Two distinct values only.
        let mut uniq = samples;
        uniq.sort_by(f64::total_cmp);
        uniq.dedup();
        assert_eq!(uniq.len(), 2);
    }

    #[test]
    fn sample_tile_respects_live_region() {
        let mut rng = DetRng::new(2);
        let t = sample_tile(4, 16, 2, 8, 1.0, 0.0, &mut rng);
        // sigma 0 and density 1.0 clamp to 0.98, so rows are near-full;
        // check live extent strictly with density 1 capped rows.
        assert!(t.row_len(0) >= 6);
        assert!(t.row_len(1) >= 6);
        assert_eq!(t.row_len(2), 0);
        assert_eq!(t.row_len(3), 0);
        assert!(t.row_indices(0).iter().all(|&c| c < 8));
    }

    #[test]
    fn row_density_is_mean_preserving() {
        let mut rng = DetRng::new(9);
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|_| row_density(0.13, 0.8, &mut rng))
            .sum::<f64>()
            / n as f64;
        assert!((mean - 0.13).abs() < 0.01, "mean {mean}");
        assert_eq!(row_density(0.13, 0.0, &mut rng), 0.13);
    }

    #[test]
    fn binomial_mean() {
        let mut rng = DetRng::new(3);
        let total: usize = (0..2000).map(|_| binomial(32, 0.25, &mut rng)).sum();
        let mean = total as f64 / 2000.0;
        assert!((mean - 8.0).abs() < 0.3, "mean {mean}");
    }

    #[test]
    fn registry_is_complete_and_consistent() {
        let mut display_names = Vec::new();
        for name in registry_names() {
            let arch = by_name(name).unwrap_or_else(|| panic!("{name} missing"));
            assert!(!arch.name().is_empty());
            display_names.push(arch.name().to_string());
        }
        // Display names are the runner's cache identity: no duplicates.
        let mut uniq = display_names.clone();
        uniq.sort();
        uniq.dedup();
        assert_eq!(uniq.len(), display_names.len(), "{display_names:?}");
        assert!(by_name("not-an-arch").is_none());
        assert_eq!(by_name("eureka-p4").unwrap().name(), "Eureka P=4");
    }

    #[test]
    fn sim_error_display() {
        let e = SimError::Unsupported {
            arch: "S2TA".into(),
            reason: "no structured activation data".into(),
        };
        assert!(e.to_string().contains("S2TA"));
        let p = SimError::UnitPanic {
            layer: "conv1".into(),
            payload: "boom".into(),
        };
        assert!(p.to_string().contains("conv1"));
        assert!(p.to_string().contains("boom"));
        let i = SimError::Injected { site: "fc".into() };
        assert!(i.to_string().contains("fc"));
    }
}
