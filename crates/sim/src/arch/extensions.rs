//! Extensions beyond the paper's shipped design.
//!
//! §1 and §3.4: "We considered extending our ideas to two-sided sparsity
//! which, however, is significant only in convolutional neural networks
//! ... As such, we do not pursue two-sided sparse tensor cores."
//! [`EurekaTwoSided`] makes that decision quantitative: it keeps Eureka's
//! one-sided *timing* (activations are broadcast dense, so zero
//! activations save no cycles without the routing hardware the paper
//! rejects) but clock-gates the multiplier when the broadcast activation
//! value is zero, saving *energy* on post-ReLU CNN feature maps.

use super::onesided::{self, OneSided};
use super::{Architecture, LayerCtx, SimError};
use crate::config::SimConfig;
use crate::profile::{LayerProfile, ProfileConfig};
use crate::report::LayerReport;
use eureka_models::workload::LayerGemm;

/// Eureka P=4 with activation-zero clock gating (energy-only two-sided
/// extension).
#[derive(Clone, Debug)]
pub struct EurekaTwoSided {
    inner: OneSided,
}

/// Constructs the two-sided-gating extension.
#[must_use]
pub fn eureka_two_sided() -> EurekaTwoSided {
    EurekaTwoSided {
        inner: onesided::eureka_p4(),
    }
}

impl Architecture for EurekaTwoSided {
    fn name(&self) -> &str {
        "Eureka P=4 +act-gate"
    }

    fn simulate_layer(
        &self,
        gemm: &LayerGemm,
        ctx: &LayerCtx,
        cfg: &SimConfig,
    ) -> Result<LayerReport, SimError> {
        let mut report = self.inner.simulate_layer(gemm, ctx, cfg)?;
        report.name = gemm.name.clone();
        apply_act_gating(&mut report, ctx);
        Ok(report)
    }

    fn simulate_layer_profiled(
        &self,
        gemm: &LayerGemm,
        ctx: &LayerCtx,
        cfg: &SimConfig,
        profile: &ProfileConfig,
    ) -> Result<(LayerReport, LayerProfile), SimError> {
        let (mut report, mut prof) = self
            .inner
            .simulate_layer_profiled(gemm, ctx, cfg, profile)?;
        report.name = gemm.name.clone();
        prof.name = gemm.name.clone();
        let gated_away = apply_act_gating(&mut report, ctx);
        // Gated multiplies were busy in the inner profile; they become
        // slack here (the cycle is still occupied, the lane just idles).
        prof.macs.busy = report.mac_ops;
        prof.macs.slack += gated_away;
        Ok((report, prof))
    }
}

/// Timing is untouched: the MAC still occupies its cycle. Only the
/// multiplier (and the wide mux feeding it) stops toggling when the
/// activation operand is zero. Returns the number of multiplies gated
/// away (moved from `mac_ops` to `idle_mac_cycles`).
fn apply_act_gating(report: &mut LayerReport, ctx: &LayerCtx) -> u64 {
    let act = ctx.act_density.clamp(0.0, 1.0);
    let gate = |v: u64| (v as f64 * act) as u64;
    let gated_away = report.mac_ops - gate(report.mac_ops);
    report.mac_ops = gate(report.mac_ops);
    report.idle_mac_cycles += gated_away;
    report.ops.mux16 = gate(report.ops.mux16);
    report.ops.csa = gate(report.ops.csa);
    report.ops.mux2 = gate(report.ops.mux2);
    gated_away
}

#[cfg(test)]
mod tests {
    use super::*;
    use eureka_models::GemmShape;
    use eureka_sparse::rng::DetRng;

    fn gemm() -> LayerGemm {
        LayerGemm {
            name: "t".into(),
            shape: GemmShape {
                n: 256,
                k: 2304,
                m: 6272,
            },
            unique_act_bytes: 1 << 20,
            weight_density: 0.13,
            clustered: false,
            depthwise: false,
        }
    }

    fn ctx(act: f64) -> LayerCtx {
        LayerCtx {
            act_density: act,
            s2ta_act_density: None,
            s2ta_fil_density: None,
            rng: DetRng::new(5),
            tiles: Default::default(),
            scratch: Default::default(),
        }
    }

    #[test]
    fn same_timing_fewer_multiplies_on_cnn() {
        let cfg = SimConfig::fast();
        let base = onesided::eureka_p4()
            .simulate_layer(&gemm(), &ctx(0.5), &cfg)
            .unwrap();
        let gated = eureka_two_sided()
            .simulate_layer(&gemm(), &ctx(0.5), &cfg)
            .unwrap();
        assert_eq!(gated.compute_cycles, base.compute_cycles);
        assert_eq!(gated.mem_cycles, base.mem_cycles);
        // Half the activations are zero -> half the multiplies gated.
        let ratio = gated.mac_ops as f64 / base.mac_ops as f64;
        assert!((ratio - 0.5).abs() < 0.01, "ratio {ratio}");
        assert!(gated.idle_mac_cycles > base.idle_mac_cycles);
    }

    #[test]
    fn no_benefit_on_dense_activations() {
        // The paper's rationale: transformers have no ReLU, so the
        // extension buys nothing there.
        let cfg = SimConfig::fast();
        let base = onesided::eureka_p4()
            .simulate_layer(&gemm(), &ctx(0.98), &cfg)
            .unwrap();
        let gated = eureka_two_sided()
            .simulate_layer(&gemm(), &ctx(0.98), &cfg)
            .unwrap();
        let ratio = gated.mac_ops as f64 / base.mac_ops as f64;
        assert!(ratio > 0.97, "ratio {ratio}");
    }
}
