//! The DSTC baseline (Dual-Side Sparse Tensor Core, ISCA 2021).
//!
//! DSTC computes two-sided sparse outer products: compressed weight
//! columns cross compressed activation rows, with the resulting partial
//! products scattered into accumulation buffers through a crossbar. The
//! paper's model (§4, §5.1) is power/area-limited to four 4×4 crossbars
//! routing at most **16 partial products per cycle** out of the 64 an 8×8
//! array can generate — which, with its lack of load balancing, is why
//! DSTC leaves most of the two-sided opportunity on the table.
//!
//! Model: for each 8×8 output block and each reduction index `k`, the
//! work is `nnz(W-column-segment) × nnz(A-row-segment)` partial products,
//! committed at `crossbar_width` per cycle (`ceil` quantization models the
//! burstiness penalty; zero-product steps are skipped by the compressed
//! format).

use super::{binomial, tile_density, Architecture, LayerCtx, SimError};
use crate::config::SimConfig;
use crate::memory;
use crate::report::{LayerReport, OpCounts};
use eureka_models::workload::LayerGemm;

/// DSTC's output-block edge (its 8×8 array).
const BLOCK: usize = 8;

/// The DSTC architecture model.
#[derive(Clone, Copy, Debug, Default)]
pub struct Dstc;

/// Constructs the DSTC baseline.
#[must_use]
pub fn dstc() -> Dstc {
    Dstc
}

impl Architecture for Dstc {
    fn name(&self) -> &str {
        "DSTC"
    }

    fn simulate_layer(
        &self,
        gemm: &LayerGemm,
        ctx: &LayerCtx,
        cfg: &SimConfig,
    ) -> Result<LayerReport, SimError> {
        let (n, k, m) = (gemm.shape.n, gemm.shape.k, gemm.shape.m);
        let d_a = ctx.act_density;
        let width = cfg.dstc_crossbar_width as f64;
        let mut rng = ctx.rng.fork(0xD57C);

        // Streaming model over windows of consecutive reduction steps:
        // compressed weight non-zeros feed the vector lanes (4 values per
        // cycle) and the crossbar commits `width` products per cycle;
        // per-window ceil quantization captures the burstiness an
        // unbalanced design cannot smooth. A window shares one clustered
        // block density (pruned blocks are larger than a window).
        const WINDOW: usize = 16;
        let samples = (cfg.rowgroup_samples * cfg.slice_samples).max(256);
        let window_stats = |d_w: f64, rng: &mut eureka_sparse::rng::DetRng| -> (f64, f64) {
            let (mut sum_cycles, mut sum_products) = (0f64, 0f64);
            for _ in 0..samples {
                let (mut products, mut w_total) = (0f64, 0f64);
                for _ in 0..WINDOW {
                    let w_nnz = binomial(BLOCK.min(n), d_w, rng);
                    let a_nnz = binomial(BLOCK.min(m), d_a, rng);
                    products += (w_nnz * a_nnz) as f64;
                    w_total += w_nnz as f64;
                }
                sum_products += products;
                // 1×8 weight vector lanes bound the front end; the
                // crossbar bounds the commit side.
                sum_cycles += (products / width).ceil().max((w_total / 8.0).ceil());
            }
            (sum_cycles / samples as f64, sum_products / samples as f64)
        };

        let (mean_cycles, mean_products, imbalance) = if gemm.clustered {
            // Coarsely clustered filters assign whole dense regions to
            // some compute units and near-empty regions to others; with no
            // load balancing the slowest unit gates the device (§5.1:
            // "DSTC incurs heavy load imbalance in BERT").
            let (f, hi, lo) = super::cluster_mixture(gemm.weight_density);
            let (cyc_hi, prod_hi) = window_stats(hi, &mut rng);
            let (cyc_lo, prod_lo) = window_stats(lo, &mut rng);
            let mean_cyc = f * cyc_hi + (1.0 - f) * cyc_lo;
            let mean_prod = f * prod_hi + (1.0 - f) * prod_lo;
            // Each unit statically owns a set of contiguous regions.
            const UNITS: usize = 16;
            const REGIONS_PER_UNIT: usize = 16;
            let mut max_work = 0f64;
            let mut total_work = 0f64;
            for _ in 0..UNITS {
                let work: f64 = (0..REGIONS_PER_UNIT)
                    .map(|_| if rng.bernoulli(f) { cyc_hi } else { cyc_lo })
                    .sum();
                total_work += work;
                max_work = max_work.max(work);
            }
            let factor = if total_work > 0.0 {
                max_work / (total_work / UNITS as f64)
            } else {
                1.0
            };
            (mean_cyc, mean_prod, factor.max(1.0))
        } else {
            let d_w = tile_density(gemm, &mut rng);
            let (cyc, prod) = window_stats(d_w, &mut rng);
            (cyc, prod, 1.0)
        };

        let blocks = (n.div_ceil(BLOCK) * m.div_ceil(BLOCK)) as f64;
        let windows = k.div_ceil(WINDOW) as f64;
        let core_cycles = mean_cycles * windows * blocks * imbalance / cfg.tensor_cores as f64;
        let compute_cycles = core_cycles.ceil().max(1.0) as u64;

        let mac_ops = (mean_products * windows * blocks) as u64;
        let nnz_w = (n * k) as f64 * gemm.weight_density;
        let act_elems = gemm.unique_act_bytes / 2;
        let device_macs = cfg.total_macs() as u64;

        let mut report = LayerReport {
            name: gemm.name.clone(),
            compute_cycles,
            mem_cycles: 0,
            mac_ops,
            idle_mac_cycles: (compute_cycles * device_macs).saturating_sub(mac_ops),
            bubble_cycles: 0,
            // Compressed payloads plus one mask bit per position.
            weight_bytes: (nnz_w * 2.0) as u64,
            act_bytes: (act_elems as f64 * d_a * 2.0) as u64,
            out_bytes: (2 * n * m) as u64,
            metadata_bytes: ((n * k) as u64 + act_elems) / 8,
            ops: OpCounts {
                crossbar: mac_ops,
                // Accumulation-buffer write + read-back per partial product.
                buffer: 2 * mac_ops,
                ..OpCounts::default()
            },
        };
        report.mem_cycles = memory::exposed_cycles(&report, &cfg.mem);
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::onesided;
    use eureka_models::GemmShape;
    use eureka_sparse::rng::DetRng;

    fn ctx(act: f64) -> LayerCtx {
        LayerCtx {
            act_density: act,
            s2ta_act_density: None,
            s2ta_fil_density: None,
            rng: DetRng::new(7),
            tiles: Default::default(),
            scratch: Default::default(),
        }
    }

    fn gemm(d: f64, clustered: bool) -> LayerGemm {
        LayerGemm {
            name: "t".into(),
            shape: GemmShape {
                n: 256,
                k: 2304,
                m: 6272,
            },
            unique_act_bytes: 1 << 20,
            weight_density: d,
            clustered,
            depthwise: false,
        }
    }

    #[test]
    fn crossbar_limits_speedup() {
        // Analytic check: speedup over dense ≈ 1/(4·d_w·d_a) when the
        // per-step products stay above the skip threshold.
        let cfg = SimConfig::fast();
        let g = gemm(0.13, false);
        let d = onesided::dense()
            .simulate_layer(&g, &ctx(0.5), &cfg)
            .unwrap();
        let r = dstc().simulate_layer(&g, &ctx(0.5), &cfg).unwrap();
        let speedup = d.compute_cycles as f64 / r.compute_cycles as f64;
        // Quantization pushes below the 3.85 bound.
        assert!(speedup > 2.0 && speedup < 4.2, "speedup {speedup}");
    }

    #[test]
    fn bert_clustering_hurts_dstc() {
        let cfg = SimConfig::fast();
        let dense_r = onesided::dense()
            .simulate_layer(&gemm(0.10, true), &ctx(0.98), &cfg)
            .unwrap();
        let clustered = dstc()
            .simulate_layer(&gemm(0.10, true), &ctx(0.98), &cfg)
            .unwrap();
        let uniform = dstc()
            .simulate_layer(&gemm(0.10, false), &ctx(0.98), &cfg)
            .unwrap();
        // Clustered (bursty) sparsity quantizes worse against the crossbar.
        assert!(clustered.compute_cycles >= uniform.compute_cycles);
        let speedup = dense_r.compute_cycles as f64 / clustered.compute_cycles as f64;
        assert!(speedup < 3.0, "speedup {speedup}");
    }

    #[test]
    fn counts_crossbar_traffic() {
        let cfg = SimConfig::fast();
        let r = dstc()
            .simulate_layer(&gemm(0.13, false), &ctx(0.5), &cfg)
            .unwrap();
        assert_eq!(r.ops.crossbar, r.mac_ops);
        assert_eq!(r.ops.buffer, 2 * r.mac_ops);
        // Two-sided products ≈ n·k·m·d_w·d_a.
        let expect = 256.0 * 2304.0 * 6272.0 * 0.13 * 0.5;
        let got = r.mac_ops as f64;
        assert!(
            (got - expect).abs() / expect < 0.1,
            "got {got} expect {expect}"
        );
    }
}
