//! The SparTen baseline (MICRO 2019).
//!
//! SparTen computes two-sided sparse inner products: per output element,
//! 32-value chunks of the filter row and activation column are ANDed
//! (bitmasks); prefix-sum + priority-encoder logic feeds one matched pair
//! per cycle to the MAC. The Eureka paper models it with hardware greedy
//! balancing (GB-H) and two double-buffered input chunks per MAC (§4).
//!
//! Model: each participating chunk pair costs
//! `max(matches, chunk_min_cycles)` front-end cycles (double-buffer
//! refill bounds the front end); a chunk whose *weight* side is entirely
//! empty still costs half the refill (the activations stream past and are
//! "fetched and skipped over", §5.1 — the effect that sinks SparTen on
//! BERT's coarse filter sparsity). GB-H keeps cross-MAC imbalance small
//! (a fixed 5% residual).

use super::{tile_density, Architecture, LayerCtx, SimError};
use crate::config::SimConfig;
use crate::memory;
use crate::report::{LayerReport, OpCounts};
use eureka_models::workload::LayerGemm;
use eureka_sparse::bitmask::CHUNK_WIDTH;

/// Relative cost of skipping past an empty weight chunk: the activation
/// chunk still streams through the double buffer ("large parts of the
/// nearly-dense activations are fetched and skipped over wasting time and
/// energy", §5.1), so a skip costs a full refill.
const SKIP_FACTOR: f64 = 1.0;

/// Simulates GB-H (hardware greedy balancing, §4): output dot-products
/// with the sampled per-output costs are assigned from a look-ahead
/// window to the least-loaded of a group of MACs; the group's makespan
/// over the mean is the residual imbalance.
fn gbh_imbalance(costs: &[f64], macs: usize, window: usize) -> f64 {
    if costs.is_empty() || macs == 0 {
        return 1.0;
    }
    let mut load = vec![0.0f64; macs];
    for chunk in costs.chunks(window.max(1)) {
        // Within the window, place the largest jobs first (the hardware
        // sorts by non-zero count from the bitmask prefix sums).
        let mut jobs: Vec<f64> = chunk.to_vec();
        jobs.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
        for j in jobs {
            let min = load
                .iter_mut()
                .min_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal))
                .expect("macs > 0");
            *min += j;
        }
    }
    let max = load.iter().copied().fold(0.0f64, f64::max);
    let mean = load.iter().sum::<f64>() / macs as f64;
    if mean <= 0.0 {
        1.0
    } else {
        (max / mean).max(1.0)
    }
}

/// The SparTen architecture model.
#[derive(Clone, Copy, Debug, Default)]
pub struct SparTen;

/// Constructs the SparTen baseline.
#[must_use]
pub fn sparten() -> SparTen {
    SparTen
}

impl Architecture for SparTen {
    fn name(&self) -> &str {
        "SparTen"
    }

    fn simulate_layer(
        &self,
        gemm: &LayerGemm,
        ctx: &LayerCtx,
        cfg: &SimConfig,
    ) -> Result<LayerReport, SimError> {
        let (n, k, m) = (gemm.shape.n, gemm.shape.k, gemm.shape.m);
        let d_a = ctx.act_density;
        let chunk_min = cfg.sparten_chunk_min_cycles;
        let mut rng = ctx.rng.fork(0x59A2);

        // Sample chunk pairs: joint (weight, activation) bit draws.
        let samples = (cfg.rowgroup_samples * cfg.slice_samples).max(256);
        let (mut sum_cost, mut sum_matches) = (0f64, 0f64);
        let mut chunk_costs = Vec::with_capacity(samples);
        for _ in 0..samples {
            let d_w = tile_density(gemm, &mut rng);
            let width = CHUNK_WIDTH.min(k);
            let mut w_nnz = 0usize;
            let mut matches = 0usize;
            for _ in 0..width {
                let w = rng.bernoulli(d_w);
                let a = rng.bernoulli(d_a);
                w_nnz += usize::from(w);
                matches += usize::from(w && a);
            }
            sum_matches += matches as f64;
            let cost = if w_nnz == 0 {
                SKIP_FACTOR * chunk_min
            } else {
                (matches as f64).max(chunk_min)
            };
            sum_cost += cost;
            chunk_costs.push(cost);
        }
        let mean_cost = sum_cost / samples as f64;
        let mean_matches = sum_matches / samples as f64;

        let chunks = k.div_ceil(CHUNK_WIDTH) as f64;
        // Per-output dot-product costs for GB-H: resample enough synthetic
        // outputs (each a sum of `chunks` chunk costs) to keep every
        // virtual MAC fed, as the real n*m output space does.
        let chunks_per_output = (chunks as usize).max(1);
        const OUTPUT_SAMPLES: usize = 1024;
        let output_costs: Vec<f64> = (0..OUTPUT_SAMPLES)
            .map(|i| {
                (0..chunks_per_output)
                    .map(|j| chunk_costs[(i * chunks_per_output + j) % chunk_costs.len()])
                    .sum()
            })
            .collect();
        let imbalance = gbh_imbalance(&output_costs, 16, 32);

        let outputs = (n * m) as f64;
        let total_front_end = mean_cost * chunks * outputs * imbalance;
        let device_macs = cfg.total_macs() as f64;
        let compute_cycles = (total_front_end / device_macs).ceil().max(1.0) as u64;

        let mac_ops = (mean_matches * chunks * outputs) as u64;
        let chunk_pairs = (chunks * outputs) as u64;
        let nnz_w = (n * k) as f64 * gemm.weight_density;
        let act_elems = gemm.unique_act_bytes / 2;

        let mut report = LayerReport {
            name: gemm.name.clone(),
            compute_cycles,
            mem_cycles: 0,
            mac_ops,
            idle_mac_cycles: (compute_cycles * cfg.total_macs() as u64).saturating_sub(mac_ops),
            bubble_cycles: 0,
            weight_bytes: (nnz_w * 2.0) as u64,
            act_bytes: (act_elems as f64 * d_a * 2.0) as u64,
            out_bytes: (2 * n * m) as u64,
            metadata_bytes: ((n * k) as u64 + act_elems) / 8,
            ops: OpCounts {
                prefix: chunk_pairs,
                // Two 32-value double-buffered chunks per pair.
                buffer: 2 * chunk_pairs * CHUNK_WIDTH as u64,
                ..OpCounts::default()
            },
        };
        report.mem_cycles = memory::exposed_cycles(&report, &cfg.mem);
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::onesided;
    use eureka_models::GemmShape;
    use eureka_sparse::rng::DetRng;

    fn ctx(act: f64) -> LayerCtx {
        LayerCtx {
            act_density: act,
            s2ta_act_density: None,
            s2ta_fil_density: None,
            rng: DetRng::new(11),
            tiles: Default::default(),
            scratch: Default::default(),
        }
    }

    fn gemm(n: usize, k: usize, m: usize, d: f64, clustered: bool) -> LayerGemm {
        LayerGemm {
            name: "t".into(),
            shape: GemmShape { n, k, m },
            unique_act_bytes: 1 << 20,
            weight_density: d,
            clustered,
            depthwise: false,
        }
    }

    #[test]
    fn beats_eureka_on_uniform_cnn_sparsity() {
        // §5.1: "the two-sided SparTen achieves higher speedups than
        // Eureka for the CNNs though at the cost of energy."
        let cfg = SimConfig::fast();
        let g = gemm(256, 2304, 6272, 0.13, false);
        let c = ctx(0.5);
        let d = onesided::dense().simulate_layer(&g, &c, &cfg).unwrap();
        let s = sparten().simulate_layer(&g, &c, &cfg).unwrap();
        let e = onesided::eureka_p4().simulate_layer(&g, &c, &cfg).unwrap();
        assert!(
            s.compute_cycles < e.compute_cycles,
            "SparTen should win on CNNs"
        );
        let speedup = d.compute_cycles as f64 / s.compute_cycles as f64;
        assert!(speedup > 4.0 && speedup < 16.0, "speedup {speedup}");
    }

    #[test]
    fn loses_to_eureka_on_clustered_bert() {
        // §5.1: BERT's coarse filter sparsity makes SparTen fetch and skip
        // nearly-dense activation chunks.
        let cfg = SimConfig::fast();
        let g = gemm(768, 768, 12288, 0.10, true);
        let c = ctx(0.98);
        let s = sparten().simulate_layer(&g, &c, &cfg).unwrap();
        let e = onesided::eureka_p4().simulate_layer(&g, &c, &cfg).unwrap();
        assert!(
            e.compute_cycles < s.compute_cycles,
            "Eureka {} should beat SparTen {} on BERT",
            e.compute_cycles,
            s.compute_cycles
        );
    }

    #[test]
    fn gbh_balancing_behaviour() {
        // Uniform jobs balance perfectly.
        let uniform = vec![4.0; 256];
        assert!((gbh_imbalance(&uniform, 16, 32) - 1.0).abs() < 1e-9);
        // Realistic skew stays a small residual (the old model's ~1.05).
        let skewed: Vec<f64> = (0..512).map(|i| 2.0 + f64::from(i % 5)).collect();
        let f = gbh_imbalance(&skewed, 16, 32);
        assert!((1.0..1.15).contains(&f), "factor {f}");
        // A tiny window cannot balance a bursty stream as well as a big one.
        let bursty: Vec<f64> = (0..512)
            .map(|i| if i % 16 == 0 { 40.0 } else { 1.0 })
            .collect();
        let narrow = gbh_imbalance(&bursty, 16, 4);
        let wide = gbh_imbalance(&bursty, 16, 64);
        assert!(wide <= narrow, "wide {wide} vs narrow {narrow}");
        // Degenerate inputs.
        assert_eq!(gbh_imbalance(&[], 16, 32), 1.0);
        assert_eq!(gbh_imbalance(&[1.0], 0, 32), 1.0);
    }

    #[test]
    fn activity_counters() {
        let cfg = SimConfig::fast();
        let g = gemm(64, 64, 64, 0.2, false);
        let r = sparten().simulate_layer(&g, &ctx(0.5), &cfg).unwrap();
        assert_eq!(r.ops.prefix, (64u64 * 64) * 2); // 2 chunks of k=64
        assert!(r.ops.buffer > r.ops.prefix);
        assert!(r.mac_ops > 0);
    }
}
