//! Off-chip memory model.
//!
//! The paper's workloads are heavily compute-bound: with 1.5 TB/s of DRAM
//! bandwidth against a 251 GB/s worst-case demand, "the memory system
//! accounts for only 9-13% of the execution time in all the architectures"
//! (§5.1). The timing model reflects that regime:
//!
//! * weights and metadata are fetched from DRAM once per layer;
//! * a large fraction of activation/output traffic stays resident in the
//!   shared L2 between layers (§3.4) and never costs DRAM *time* (energy
//!   accounting in `eureka-energy` still charges the full traffic);
//! * the exposed memory time is a ramp fraction of compute (cold misses,
//!   layer boundaries) plus any genuine bandwidth shortfall when the
//!   DRAM-visible transfer exceeds the compute time.

use crate::config::MemoryConfig;
use crate::report::LayerReport;

/// DRAM-visible bytes for timing: full weight/metadata traffic plus the
/// non-resident share of activations and outputs.
#[must_use]
pub fn dram_timing_bytes(report: &LayerReport, mem: &MemoryConfig) -> f64 {
    let resident = mem.l2_act_residency.clamp(0.0, 1.0);
    (report.weight_bytes + report.metadata_bytes) as f64
        + (report.act_bytes + report.out_bytes) as f64 * (1.0 - resident)
}

/// Exposed memory cycles for a layer given its traffic and compute time.
#[must_use]
pub fn exposed_cycles(report: &LayerReport, mem: &MemoryConfig) -> u64 {
    let transfer = dram_timing_bytes(report, mem) / mem.bytes_per_cycle;
    let compute = report.compute_cycles as f64;
    let shortfall = (transfer - compute).max(0.0);
    (mem.ramp_fraction * compute + shortfall).ceil() as u64
}

/// Peak DRAM bandwidth demand of a layer in bytes/cycle if its DRAM-visible
/// transfer had to complete within its compute time (the paper's "251 GB/s
/// maximum demand" statistic, at 1 GHz).
#[must_use]
pub fn bandwidth_demand(report: &LayerReport, mem: &MemoryConfig) -> f64 {
    if report.compute_cycles == 0 {
        return 0.0;
    }
    dram_timing_bytes(report, mem) / report.compute_cycles as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::OpCounts;

    fn layer(weight: u64, act: u64, compute: u64) -> LayerReport {
        LayerReport {
            name: "l".into(),
            compute_cycles: compute,
            mem_cycles: 0,
            mac_ops: 0,
            idle_mac_cycles: 0,
            bubble_cycles: 0,
            weight_bytes: weight,
            act_bytes: act,
            out_bytes: 0,
            metadata_bytes: 0,
            ops: OpCounts::default(),
        }
    }

    fn mem() -> MemoryConfig {
        MemoryConfig {
            bytes_per_cycle: 100.0,
            l2_act_residency: 0.7,
            ramp_fraction: 0.10,
        }
    }

    #[test]
    fn compute_bound_layer_exposes_ramp_only() {
        // Transfer (100 + 0.3*1000)/100 = 4 cycles << 1000 compute.
        let r = layer(100, 1000, 1000);
        assert_eq!(exposed_cycles(&r, &mem()), 100); // 10% ramp
    }

    #[test]
    fn bandwidth_bound_layer_exposes_shortfall() {
        // Transfer = (100_000 + 0)/100 = 1000 cycles vs 100 compute.
        let r = layer(100_000, 0, 100);
        assert_eq!(exposed_cycles(&r, &mem()), 910); // 900 shortfall + 10 ramp
    }

    #[test]
    fn residency_discounts_activations() {
        let r = layer(0, 10_000, 1);
        let full = MemoryConfig {
            l2_act_residency: 0.0,
            ..mem()
        };
        assert!(dram_timing_bytes(&r, &full) > 3.0 * dram_timing_bytes(&r, &mem()));
    }

    #[test]
    fn demand_statistic() {
        let r = layer(150, 0, 100);
        assert!((bandwidth_demand(&r, &mem()) - 1.5).abs() < 1e-12);
        assert_eq!(bandwidth_demand(&layer(10, 0, 0), &mem()), 0.0);
    }
}
