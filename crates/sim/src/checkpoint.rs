//! Sweep checkpointing: persist completed work-unit results so an
//! interrupted run can resume without recomputing.
//!
//! Each successfully executed unit is serialized to one file under the
//! checkpoint directory, named by the FNV-1a hash of the unit's canonical
//! content key (the same identity the in-memory cache uses, rendered as a
//! stable string). A resuming runner consults the directory before
//! executing a unit and replays the stored [`LayerReport`] bit-identically
//! — every field is an exact integer or string, so the text round-trip is
//! lossless.
//!
//! # Crash safety
//!
//! Files are written to a temporary name and atomically renamed into
//! place, so a unit killed mid-write never leaves a readable (and thus
//! never a poisonous) entry. Failed units are never written at all. On
//! load, the stored key line is compared against the requesting unit's
//! canonical key: a mismatch (hash collision, stale directory from an
//! incompatible run) is treated as a miss, never as data.

use crate::report::{LayerReport, OpCounts};
use eureka_obs::metrics::{self, Class};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Largest checkpoint entry `load` will even read. Real entries are a
/// few hundred bytes; anything bigger is filesystem corruption or a
/// foreign file that collided with our name, and slurping it would
/// trade a bounded recompute for an unbounded allocation.
const MAX_ENTRY_BYTES: u64 = 1 << 20;

/// Format marker; bump when the serialization changes incompatibly.
/// Readers ignore entries with any other header, so mixing versions in
/// one directory degrades to recomputation, never to wrong data.
/// (v2 added `bubble_cycles` as the ninth field; v1 entries are
/// recomputed.)
const HEADER: &str = "eureka-checkpoint v2";

/// FNV-1a 64-bit over `bytes` — stable across processes and platforms
/// (unlike `DefaultHasher`, whose keys are unspecified), so checkpoint
/// file names survive a restart.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Escapes newlines and backslashes so arbitrary layer names fit the
/// line-oriented format. Shared with the job journal, which uses the
/// same line-oriented envelope.
pub(crate) fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

pub(crate) fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some(other) => out.push(other),
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// Serializes one completed unit (its canonical key plus its report) to
/// the checkpoint text format.
#[must_use]
pub fn encode(key: &str, report: &LayerReport) -> String {
    let o = &report.ops;
    format!(
        "{HEADER}\nkey {}\nname {}\nfields {} {} {} {} {} {} {} {} {}\nops {} {} {} {} {} {} {} {}\n",
        escape(key),
        escape(&report.name),
        report.compute_cycles,
        report.mem_cycles,
        report.mac_ops,
        report.idle_mac_cycles,
        report.bubble_cycles,
        report.weight_bytes,
        report.act_bytes,
        report.out_bytes,
        report.metadata_bytes,
        o.mux2,
        o.mux4,
        o.mux8,
        o.mux16,
        o.csa,
        o.crossbar,
        o.prefix,
        o.buffer,
    )
}

/// Parses a checkpoint entry, returning the report only if the text is
/// well-formed **and** its key line matches `expected_key` exactly.
/// Anything else — truncation, version skew, a hash collision — is `None`
/// (a recompute, never a wrong replay).
#[must_use]
pub fn decode(text: &str, expected_key: &str) -> Option<LayerReport> {
    let mut lines = text.lines();
    if lines.next()? != HEADER {
        return None;
    }
    let key = lines.next()?.strip_prefix("key ")?;
    if unescape(key) != expected_key {
        return None;
    }
    let name = unescape(lines.next()?.strip_prefix("name ")?);
    let fields: Vec<u64> = lines
        .next()?
        .strip_prefix("fields ")?
        .split(' ')
        .map(str::parse)
        .collect::<Result<_, _>>()
        .ok()?;
    let ops: Vec<u64> = lines
        .next()?
        .strip_prefix("ops ")?
        .split(' ')
        .map(str::parse)
        .collect::<Result<_, _>>()
        .ok()?;
    if fields.len() != 9 || ops.len() != 8 || lines.next().is_some() {
        return None;
    }
    Some(LayerReport {
        name,
        compute_cycles: fields[0],
        mem_cycles: fields[1],
        mac_ops: fields[2],
        idle_mac_cycles: fields[3],
        bubble_cycles: fields[4],
        weight_bytes: fields[5],
        act_bytes: fields[6],
        out_bytes: fields[7],
        metadata_bytes: fields[8],
        ops: OpCounts {
            mux2: ops[0],
            mux4: ops[1],
            mux8: ops[2],
            mux16: ops[3],
            csa: ops[4],
            crossbar: ops[5],
            prefix: ops[6],
            buffer: ops[7],
        },
    })
}

/// A directory of per-unit checkpoint files.
#[derive(Clone, Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
}

impl CheckpointStore {
    /// A store rooted at `dir` (created on first write).
    #[must_use]
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        CheckpointStore { dir: dir.into() }
    }

    /// The store's directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_for(&self, key: &str) -> PathBuf {
        self.dir
            .join(format!("{:016x}.unit", fnv1a64(key.as_bytes())))
    }

    /// Loads the completed result for `key`, if a valid entry exists.
    ///
    /// Fail-soft, mirroring the tile store's policy: a missing file is a
    /// plain miss, but a file that exists and is unusable — oversized,
    /// NUL-bearing, non-UTF-8, truncated, or otherwise undecodable —
    /// ticks `checkpoint.errors` and is *also* a miss. Resume never
    /// aborts on a corrupt directory; it recomputes the damaged units.
    #[must_use]
    pub fn load(&self, key: &str) -> Option<LayerReport> {
        let path = self.path_for(key);
        let oversized = std::fs::metadata(&path)
            .map(|m| m.len() > MAX_ENTRY_BYTES)
            .unwrap_or(false);
        if oversized {
            metrics::counter("checkpoint.errors", Class::Deterministic).inc();
            return None;
        }
        // Absent (or racily deleted) file: a plain miss, not an error.
        let bytes = std::fs::read(&path).ok()?;
        let report = std::str::from_utf8(&bytes)
            .ok()
            .filter(|text| !text.contains('\0'))
            .and_then(|text| decode(text, key));
        if report.is_none() {
            metrics::counter("checkpoint.errors", Class::Deterministic).inc();
        }
        report
    }

    /// Persists a completed unit result atomically (temp file + rename):
    /// a crash mid-write leaves no readable entry.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation, write, or rename failures; callers
    /// should treat these as non-fatal (the run still holds the result in
    /// memory).
    pub fn store(&self, key: &str, report: &LayerReport) -> std::io::Result<()> {
        static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
        std::fs::create_dir_all(&self.dir)?;
        let target = self.path_for(key);
        let tmp = self.dir.join(format!(
            "{:016x}.tmp-{}-{}",
            fnv1a64(key.as_bytes()),
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::write(&tmp, encode(key, report))?;
        std::fs::rename(&tmp, &target)
    }

    /// Number of completed-unit entries currently on disk (`.unit` files
    /// only; in-flight temporaries are excluded).
    #[must_use]
    pub fn entry_count(&self) -> usize {
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return 0;
        };
        entries
            .filter_map(Result::ok)
            .filter(|e| e.path().extension().is_some_and(|x| x == "unit"))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LayerReport {
        LayerReport {
            name: "conv4_2/3x3".into(),
            compute_cycles: 123,
            mem_cycles: 45,
            mac_ops: 6789,
            idle_mac_cycles: 10,
            bubble_cycles: 9,
            weight_bytes: 11,
            act_bytes: 12,
            out_bytes: 13,
            metadata_bytes: 14,
            ops: OpCounts {
                mux2: 1,
                mux4: 2,
                mux8: 3,
                mux16: 4,
                csa: 5,
                crossbar: 6,
                prefix: 7,
                buffer: 8,
            },
        }
    }

    #[test]
    fn encode_decode_round_trips_bit_identically() {
        let r = sample();
        let text = encode("some|key", &r);
        assert_eq!(decode(&text, "some|key"), Some(r));
    }

    #[test]
    fn decode_rejects_wrong_key_truncation_and_version_skew() {
        let r = sample();
        let text = encode("k1", &r);
        assert_eq!(decode(&text, "k2"), None, "key mismatch is a miss");
        let truncated = &text[..text.len() / 2];
        assert_eq!(decode(truncated, "k1"), None, "truncation is a miss");
        let skewed = text.replace("v2", "v9");
        assert_eq!(decode(&skewed, "k1"), None, "version skew is a miss");
        let trailing = format!("{text}junk\n");
        assert_eq!(decode(&trailing, "k1"), None, "trailing data is a miss");
    }

    #[test]
    fn escaped_names_round_trip() {
        let mut r = sample();
        r.name = "weird\\name\nwith newline".into();
        let text = encode("key\nwith\\newline", &r);
        assert_eq!(decode(&text, "key\nwith\\newline"), Some(r));
    }

    #[test]
    fn store_and_load_via_directory() {
        let dir = std::env::temp_dir().join(format!("eureka-ckpt-test-{}", std::process::id()));
        let store = CheckpointStore::new(&dir);
        assert_eq!(store.load("k"), None, "empty store misses");
        assert_eq!(store.entry_count(), 0);
        let r = sample();
        store.store("k", &r).expect("store writes");
        assert_eq!(store.load("k"), Some(r));
        assert_eq!(store.entry_count(), 1);
        assert_eq!(store.load("other"), None);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_entries_are_skipped_with_an_error_tick_not_an_abort() {
        let dir = std::env::temp_dir().join(format!("eureka-ckpt-corrupt-{}", std::process::id()));
        let store = CheckpointStore::new(&dir);
        let r = sample();
        store.store("good", &r).expect("store writes");
        let errors = || metrics::counter("checkpoint.errors", Class::Deterministic).get();

        // Truncated entry: load misses and ticks the error counter.
        let before = errors();
        let text = encode("trunc", &r);
        std::fs::write(store.path_for("trunc"), &text[..text.len() / 2]).unwrap();
        assert_eq!(store.load("trunc"), None, "truncated entry is a miss");
        assert!(errors() > before, "truncation ticks checkpoint.errors");

        // NUL bytes (torn write on some filesystems): skipped.
        let before = errors();
        std::fs::write(store.path_for("nul"), b"eureka\0checkpoint").unwrap();
        assert_eq!(store.load("nul"), None, "NUL-bearing entry is a miss");
        assert!(errors() > before);

        // Non-UTF-8 garbage: skipped.
        let before = errors();
        std::fs::write(store.path_for("bin"), [0xff, 0xfe, 0x80, 0x80]).unwrap();
        assert_eq!(store.load("bin"), None, "non-UTF-8 entry is a miss");
        assert!(errors() > before);

        // Oversized file: never even read into memory.
        let before = errors();
        let big = vec![b'x'; (MAX_ENTRY_BYTES + 1) as usize];
        std::fs::write(store.path_for("big"), big).unwrap();
        assert_eq!(store.load("big"), None, "oversized entry is a miss");
        assert!(errors() > before);

        // The valid neighbour is untouched by the carnage.
        assert_eq!(store.load("good"), Some(r), "healthy entries still load");
        // And a plain absence stays a silent miss.
        let before = errors();
        assert_eq!(store.load("absent"), None);
        assert_eq!(errors(), before, "a missing file is not an error");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fnv_is_stable() {
        // Pinned values: file names must survive process restarts.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fnv1a64(b"ab"), fnv1a64(b"ba"));
    }
}
