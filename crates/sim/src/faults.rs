//! Deterministic fault injection for testing the runner's failure paths.
//!
//! Nothing here runs in production sweeps: the module exists so tests,
//! `eureka_verify::faultcheck`, and CI can *prove* the fault-tolerance
//! contract — that a panicking unit is isolated, that surviving layers
//! are bit-identical to a fault-free run, that failed units never poison
//! the content cache, and that checkpoint/resume replays exactly.
//!
//! A [`FaultPlan`] names (layer, kind) sites, chosen explicitly or by a
//! seeded RNG; [`FaultyArch`] wraps any real [`Architecture`] and injects
//! the planned faults — a panic, a [`SimError::Injected`], or a slow-unit
//! stall — on the first [`FaultSpec::fail_first`] simulation attempts of
//! each site, then delegates to the wrapped model. Because the wrapper
//! takes a caller-supplied tag into its display name, its units never
//! alias the clean architecture's cache entries (the runner caches on
//! [`Architecture::name`]).

use crate::arch::{Architecture, LayerCtx, SimError};
use crate::config::SimConfig;
use crate::report::LayerReport;
use eureka_models::workload::LayerGemm;
use eureka_sparse::rng::DetRng;
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock, PoisonError};

/// What to inject at a fault site.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic inside the unit (tests [`std::panic::catch_unwind`]
    /// isolation). The payload is an [`InjectedPanic`], which the
    /// process-wide quiet hook suppresses from stderr.
    Panic,
    /// Return [`SimError::Injected`] (tests the typed-error path).
    Error,
    /// Sleep this many milliseconds, then simulate normally (tests that
    /// slow units change nothing but timing telemetry).
    Stall(u64),
}

/// One fault site: a layer name, what to inject, and for how many
/// attempts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultSpec {
    /// The layer (GEMM) name to fault.
    pub layer: String,
    /// What to inject.
    pub kind: FaultKind,
    /// Inject on the first `fail_first` simulation attempts of this
    /// site, then succeed — `1` models a transient fault that a retry
    /// recovers, `u32::MAX` a permanent one.
    pub fail_first: u32,
}

/// A deterministic set of fault sites.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<FaultSpec>,
}

impl FaultPlan {
    /// A plan with no faults (the wrapper becomes a transparent proxy).
    #[must_use]
    pub fn empty() -> Self {
        FaultPlan::default()
    }

    /// A plan from explicit sites.
    #[must_use]
    pub fn new(faults: Vec<FaultSpec>) -> Self {
        FaultPlan { faults }
    }

    /// Chooses `k` distinct fault sites from `layers` with a seeded RNG:
    /// the same `(seed, layers, k, kind)` always yields the same plan.
    /// Sites fail permanently (`fail_first = u32::MAX`).
    #[must_use]
    pub fn seeded(seed: u64, layers: &[String], k: usize, kind: FaultKind) -> Self {
        let mut rng = DetRng::new(seed);
        let picks = rng.choose_indices(layers.len(), k.min(layers.len()));
        FaultPlan {
            faults: picks
                .into_iter()
                .map(|i| FaultSpec {
                    layer: layers[i].clone(),
                    kind,
                    fail_first: u32::MAX,
                })
                .collect(),
        }
    }

    /// The planned site layer names, in plan order.
    #[must_use]
    pub fn sites(&self) -> Vec<&str> {
        self.faults.iter().map(|f| f.layer.as_str()).collect()
    }

    fn spec_for(&self, layer: &str) -> Option<&FaultSpec> {
        self.faults.iter().find(|f| f.layer == layer)
    }
}

/// The payload of an injected panic. Typed so the quiet hook can
/// distinguish injected panics (suppressed from stderr) from real ones
/// (reported as usual), and so the runner can render a stable message.
#[derive(Clone, Debug)]
pub struct InjectedPanic {
    /// The faulted layer name.
    pub site: String,
}

impl core::fmt::Display for InjectedPanic {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "injected panic at {}", self.site)
    }
}

/// Installs (once, process-wide) a panic hook that suppresses
/// [`InjectedPanic`] payloads and forwards everything else to the
/// previously installed hook. Keeps fault-matrix runs from spraying
/// "thread panicked" noise while leaving real panics fully reported.
pub fn install_quiet_hook() {
    static INSTALLED: OnceLock<()> = OnceLock::new();
    INSTALLED.get_or_init(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<InjectedPanic>().is_none() {
                prev(info);
            }
        }));
    });
}

/// A test-only [`Architecture`] wrapper that injects the faults of a
/// [`FaultPlan`] and otherwise delegates to the wrapped model.
///
/// The display name is `"<inner> ⚡<tag>"`; callers must pick a tag that
/// is unique per distinct plan (the runner's cache keys on the name, so
/// two same-named wrappers with different plans would alias).
pub struct FaultyArch {
    inner: Box<dyn Architecture>,
    plan: FaultPlan,
    name: String,
    /// Per-site simulation-attempt counters (keyed by layer name).
    attempts: Mutex<HashMap<String, u32>>,
}

impl FaultyArch {
    /// Wraps `inner`, injecting `plan`'s faults. Installs the quiet
    /// panic hook so injected panics stay off stderr.
    #[must_use]
    pub fn new(inner: Box<dyn Architecture>, plan: FaultPlan, tag: &str) -> Self {
        install_quiet_hook();
        let name = format!("{} ⚡{tag}", inner.name());
        FaultyArch {
            inner,
            plan,
            name,
            attempts: Mutex::new(HashMap::new()),
        }
    }

    /// Resets the per-site attempt counters, as if no layer had ever been
    /// simulated (lets one wrapper model several independent runs).
    pub fn reset_attempts(&self) {
        self.attempts
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
    }

    /// The wrapped plan.
    #[must_use]
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }
}

impl Architecture for FaultyArch {
    fn name(&self) -> &str {
        &self.name
    }

    fn simulate_layer(
        &self,
        gemm: &LayerGemm,
        ctx: &LayerCtx,
        cfg: &SimConfig,
    ) -> Result<LayerReport, SimError> {
        let attempt = {
            let mut attempts = self.attempts.lock().unwrap_or_else(PoisonError::into_inner);
            let n = attempts.entry(gemm.name.clone()).or_insert(0);
            *n += 1;
            *n
        };
        if let Some(spec) = self.plan.spec_for(&gemm.name) {
            if attempt <= spec.fail_first {
                match spec.kind {
                    FaultKind::Panic => std::panic::panic_any(InjectedPanic {
                        site: gemm.name.clone(),
                    }),
                    FaultKind::Error => {
                        return Err(SimError::Injected {
                            site: gemm.name.clone(),
                        })
                    }
                    FaultKind::Stall(millis) => {
                        std::thread::sleep(std::time::Duration::from_millis(millis));
                    }
                }
            }
        }
        self.inner.simulate_layer(gemm, ctx, cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch;

    #[test]
    fn seeded_plans_are_deterministic_and_distinct_by_seed() {
        let layers: Vec<String> = (0..10).map(|i| format!("l{i}")).collect();
        let a = FaultPlan::seeded(7, &layers, 3, FaultKind::Error);
        let b = FaultPlan::seeded(7, &layers, 3, FaultKind::Error);
        assert_eq!(a, b, "same seed, same plan");
        assert_eq!(a.sites().len(), 3);
        let c = FaultPlan::seeded(8, &layers, 3, FaultKind::Error);
        assert_ne!(a, c, "different seed, different plan");
        // k is capped at the layer count.
        let all = FaultPlan::seeded(7, &layers, 99, FaultKind::Panic);
        assert_eq!(all.sites().len(), layers.len());
    }

    #[test]
    fn wrapper_name_is_distinct_from_inner() {
        let a = FaultyArch::new(Box::new(arch::dense()), FaultPlan::empty(), "t1");
        assert_ne!(a.name(), "Dense");
        assert!(a.name().contains("Dense"));
        assert!(a.name().contains("t1"));
    }

    #[test]
    fn empty_plan_delegates_transparently() {
        use eureka_models::{Benchmark, PruningLevel, Workload};
        let w = Workload::new(Benchmark::MobileNetV1, PruningLevel::Moderate, 32);
        let cfg = SimConfig::fast();
        let gemm = w.gemms().into_iter().next().expect("has layers");
        let ctx = LayerCtx {
            act_density: w.activation_density(),
            s2ta_act_density: None,
            s2ta_fil_density: None,
            rng: DetRng::new(w.seed()).fork(0),
            tiles: Default::default(),
            scratch: Default::default(),
        };
        let clean = arch::dense()
            .simulate_layer(&gemm, &ctx, &cfg)
            .expect("dense supports every layer");
        let wrapped = FaultyArch::new(Box::new(arch::dense()), FaultPlan::empty(), "t2");
        let faulty = wrapped
            .simulate_layer(&gemm, &ctx, &cfg)
            .expect("empty plan injects nothing");
        assert_eq!(clean, faulty, "empty plan is a transparent proxy");
    }

    #[test]
    fn fail_first_counts_attempts_per_site() {
        use eureka_models::{Benchmark, PruningLevel, Workload};
        let w = Workload::new(Benchmark::MobileNetV1, PruningLevel::Moderate, 32);
        let cfg = SimConfig::fast();
        let gemm = w.gemms().into_iter().next().expect("has layers");
        let ctx = LayerCtx {
            act_density: w.activation_density(),
            s2ta_act_density: None,
            s2ta_fil_density: None,
            rng: DetRng::new(w.seed()).fork(0),
            tiles: Default::default(),
            scratch: Default::default(),
        };
        let plan = FaultPlan::new(vec![FaultSpec {
            layer: gemm.name.clone(),
            kind: FaultKind::Error,
            fail_first: 1,
        }]);
        let arch = FaultyArch::new(Box::new(arch::dense()), plan, "t3");
        assert!(
            matches!(
                arch.simulate_layer(&gemm, &ctx, &cfg),
                Err(SimError::Injected { .. })
            ),
            "attempt 1 faults"
        );
        assert!(
            arch.simulate_layer(&gemm, &ctx, &cfg).is_ok(),
            "attempt 2 succeeds"
        );
        arch.reset_attempts();
        assert!(
            arch.simulate_layer(&gemm, &ctx, &cfg).is_err(),
            "reset restores attempt 1 behaviour"
        );
    }
}
