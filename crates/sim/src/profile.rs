//! Cycle-attribution profiles: where a simulated workload's cycles go.
//!
//! Profiling is opt-in ([`ProfileConfig`] threaded through
//! [`crate::engine::try_profile`] / [`crate::Runner::run_profiled`]) and
//! observational: a profiled run produces bit-identical [`crate::report`]
//! results to an unprofiled one, because the profiled code paths consume
//! the same RNG streams and the same intermediate values — the profile is
//! assembled from numbers the simulation already computed.
//!
//! # Stall taxonomy
//!
//! Every cycle of [`LayerProfile::total_cycles`] lands in exactly one
//! bucket of [`StallBreakdown`]:
//!
//! * **compute** — MAC rows were doing useful work;
//! * **pipeline_bubble** — a systolic row idled behind a longer row in
//!   its macro-step (Figure 10(a)); the fix is better scheduling or SUDS;
//! * **tail_drain** — rows with no resident work: unfilled scheduler
//!   rows plus pipeline fill/drain; the fix is more tiles in flight;
//! * **memory** — exposed (non-overlapped) DRAM cycles; the fix is
//!   bandwidth or residency.
//!
//! The device-cycle split is derived from the sampled pipeline's
//! row-cycle attribution ([`eureka_core::schedule::profile::StepProfile`])
//! by exact integer scaling, so `compute + pipeline_bubble + tail_drain
//! == compute_cycles` and the workload-level invariant
//! `SimProfile::total_attributed_cycles() == SimReport::total_cycles()`
//! holds identically — tested, not approximated.

use crate::report::{LayerReport, SimReport};
use eureka_obs::chrome::TraceBuilder;
use eureka_obs::json::{escape, fmt_f64};

/// Opt-in switches for a profiled run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProfileConfig {
    /// How many worst (longest critical path) tiles to keep per layer.
    pub top_tiles: usize,
}

impl Default for ProfileConfig {
    fn default() -> Self {
        ProfileConfig { top_tiles: 5 }
    }
}

/// Where one layer's device cycles went. Buckets are disjoint and
/// exhaustive: they sum to the layer's total cycles.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StallBreakdown {
    /// Cycles with useful MAC work resident.
    pub compute: u64,
    /// Exposed memory cycles.
    pub memory: u64,
    /// Cycles lost to macro-step mismatch between systolic rows.
    pub pipeline_bubble: u64,
    /// Cycles where rows had no work at all (unfilled rows, fill/drain).
    pub tail_drain: u64,
}

impl StallBreakdown {
    /// Sum of all buckets — the layer's total cycles.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.compute + self.memory + self.pipeline_bubble + self.tail_drain
    }
}

/// Idle-MAC attribution. `busy` counts useful multiplies; the three idle
/// buckets sum exactly to the layer report's `idle_mac_cycles`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MacBreakdown {
    /// Useful multiplies (the report's `mac_ops`).
    pub busy: u64,
    /// MAC-cycles idled by pipeline bubbles (whole rows waiting).
    pub bubble: u64,
    /// MAC-cycles idled by empty rows and pipeline fill/drain.
    pub drain: u64,
    /// Residual slack: lanes idle within otherwise-busy cycles
    /// (imperfect compaction, ceil rounding).
    pub slack: u64,
}

impl MacBreakdown {
    /// Total idle MAC-cycles — must equal the report's `idle_mac_cycles`.
    #[must_use]
    pub fn idle(&self) -> u64 {
        self.bubble + self.drain + self.slack
    }
}

/// Sampled occupancy of one systolic row, in row-cycles.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RowOccupancy {
    /// Row-cycles executing resident work.
    pub busy: u64,
    /// Row-cycles idle behind a longer row in the same macro-step.
    pub bubble: u64,
    /// Row-cycles with no work scheduled.
    pub drain: u64,
}

impl RowOccupancy {
    /// Total observed row-cycles.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.busy + self.bubble + self.drain
    }

    /// Busy fraction (1.0 when nothing was observed).
    #[must_use]
    pub fn utilization(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            return 1.0;
        }
        self.busy as f64 / t as f64
    }
}

/// One sampled tile, kept for the worst-tiles ranking.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TileStat {
    /// Sample index (stable: sampling order is deterministic).
    pub index: u64,
    /// The tile's critical path in cycles.
    pub cycles: u64,
    /// Non-zeros in the tile.
    pub nnz: u64,
    /// Values SUDS displaced out of their home row.
    pub displaced: u64,
}

/// SUDS displacement statistics over the sampled tiles.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SudsStats {
    /// Tiles sampled through the SUDS assignment.
    pub tiles: u64,
    /// Total displaced values across sampled tiles.
    pub displaced: u64,
    /// Base-row rotation histogram: `rotation[i]` counts tiles whose
    /// crossbar rotation is `i` (the rotation that lands the plan's base
    /// row on the last physical row).
    pub rotation: Vec<u64>,
}

/// Cycle attribution for one simulated layer.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LayerProfile {
    /// Layer name (matches the [`LayerReport`]).
    pub name: String,
    /// Device compute cycles (copied from the report).
    pub compute_cycles: u64,
    /// Exposed memory cycles (copied from the report).
    pub mem_cycles: u64,
    /// Stall taxonomy; sums to `compute_cycles + mem_cycles`.
    pub stalls: StallBreakdown,
    /// Idle-MAC attribution; `macs.idle()` equals the report's
    /// `idle_mac_cycles`.
    pub macs: MacBreakdown,
    /// Per-systolic-row sampled occupancy (empty when the architecture
    /// has no sampled pipeline — uniform timers, non-systolic models).
    pub rows: Vec<RowOccupancy>,
    /// Critical-path histogram over sampled tiles: sorted
    /// `(cycles, tile_count)` pairs.
    pub critical_path: Vec<(u64, u64)>,
    /// SUDS displacement statistics (`None` when the architecture does
    /// not displace).
    pub suds: Option<SudsStats>,
    /// The top-N longest sampled tiles, worst first.
    pub worst_tiles: Vec<TileStat>,
}

impl LayerProfile {
    /// Total cycles attributed to this layer; equals the matching
    /// [`LayerReport::total_cycles`].
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.stalls.total()
    }

    /// The trivial profile for a report with no pipeline detail: the
    /// report's aggregate `bubble_cycles` (pipeline mismatch plus empty
    /// rows, unsplittable without row-level attribution) all lands in
    /// `pipeline_bubble`, the rest of the compute cycles are
    /// compute-bound, and idle MACs are unexplained slack.
    #[must_use]
    pub fn from_report(report: &LayerReport) -> Self {
        let bubble = report.bubble_cycles.min(report.compute_cycles);
        LayerProfile {
            name: report.name.clone(),
            compute_cycles: report.compute_cycles,
            mem_cycles: report.mem_cycles,
            stalls: StallBreakdown {
                compute: report.compute_cycles - bubble,
                memory: report.mem_cycles,
                pipeline_bubble: bubble,
                tail_drain: 0,
            },
            macs: MacBreakdown {
                busy: report.mac_ops,
                bubble: 0,
                drain: 0,
                slack: report.idle_mac_cycles,
            },
            rows: Vec::new(),
            critical_path: Vec::new(),
            suds: None,
            worst_tiles: Vec::new(),
        }
    }
}

/// A full workload × architecture cycle-attribution profile.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SimProfile {
    /// Architecture name.
    pub arch: String,
    /// Workload description.
    pub workload: String,
    /// Per-layer profiles, in workload order.
    pub layers: Vec<LayerProfile>,
}

impl SimProfile {
    /// Sum of per-layer attributed cycles; the invariant (tested against
    /// every architecture) is equality with [`SimReport::total_cycles`].
    #[must_use]
    pub fn total_attributed_cycles(&self) -> u64 {
        self.layers.iter().map(LayerProfile::total_cycles).sum()
    }

    /// Aggregated stall taxonomy across layers.
    #[must_use]
    pub fn stalls(&self) -> StallBreakdown {
        let mut acc = StallBreakdown::default();
        for l in &self.layers {
            acc.compute += l.stalls.compute;
            acc.memory += l.stalls.memory;
            acc.pipeline_bubble += l.stalls.pipeline_bubble;
            acc.tail_drain += l.stalls.tail_drain;
        }
        acc
    }

    /// Total idle MAC-cycles attributed by the profiler; must equal
    /// [`SimReport::idle_mac_cycles`].
    #[must_use]
    pub fn idle_mac_cycles(&self) -> u64 {
        self.layers.iter().map(|l| l.macs.idle()).sum()
    }

    /// Byte-stable JSON export (profile schema v1). All numeric fields
    /// are exact integers, names go through the shared JSON escaper, and
    /// layer order is workload order — so identical simulations serialize
    /// to identical bytes regardless of worker count.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\"schema\":\"eureka-profile-v1\"");
        out.push_str(&format!(",\"arch\":\"{}\"", escape(&self.arch)));
        out.push_str(&format!(",\"workload\":\"{}\"", escape(&self.workload)));
        out.push_str(&format!(
            ",\"total_cycles\":{}",
            self.total_attributed_cycles()
        ));
        let s = self.stalls();
        out.push_str(&format!(
            ",\"stalls\":{{\"compute\":{},\"memory\":{},\"pipeline_bubble\":{},\"tail_drain\":{}}}",
            s.compute, s.memory, s.pipeline_bubble, s.tail_drain
        ));
        out.push_str(",\"layers\":[");
        for (i, l) in self.layers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"name\":\"{}\"", escape(&l.name)));
            out.push_str(&format!(",\"compute_cycles\":{}", l.compute_cycles));
            out.push_str(&format!(",\"mem_cycles\":{}", l.mem_cycles));
            out.push_str(&format!(
                ",\"stalls\":{{\"compute\":{},\"memory\":{},\"pipeline_bubble\":{},\"tail_drain\":{}}}",
                l.stalls.compute, l.stalls.memory, l.stalls.pipeline_bubble, l.stalls.tail_drain
            ));
            out.push_str(&format!(
                ",\"macs\":{{\"busy\":{},\"bubble\":{},\"drain\":{},\"slack\":{}}}",
                l.macs.busy, l.macs.bubble, l.macs.drain, l.macs.slack
            ));
            out.push_str(",\"rows\":[");
            for (j, r) in l.rows.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"busy\":{},\"bubble\":{},\"drain\":{}}}",
                    r.busy, r.bubble, r.drain
                ));
            }
            out.push(']');
            out.push_str(",\"critical_path\":[");
            for (j, (cycles, count)) in l.critical_path.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("[{cycles},{count}]"));
            }
            out.push(']');
            match &l.suds {
                Some(su) => {
                    out.push_str(&format!(
                        ",\"suds\":{{\"tiles\":{},\"displaced\":{},\"rotation\":[",
                        su.tiles, su.displaced
                    ));
                    for (j, c) in su.rotation.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        out.push_str(&c.to_string());
                    }
                    out.push_str("]}");
                }
                None => out.push_str(",\"suds\":null"),
            }
            out.push_str(",\"worst_tiles\":[");
            for (j, t) in l.worst_tiles.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"index\":{},\"cycles\":{},\"nnz\":{},\"displaced\":{}}}",
                    t.index, t.cycles, t.nnz, t.displaced
                ));
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }

    /// Per-row utilization heatmap as CSV: one line per (layer, row).
    #[must_use]
    pub fn heatmap_csv(&self) -> String {
        let mut out = String::from("layer,row,busy,bubble,drain,utilization\n");
        for l in &self.layers {
            for (r, occ) in l.rows.iter().enumerate() {
                out.push_str(&format!(
                    "{},{},{},{},{},{:.4}\n",
                    l.name,
                    r,
                    occ.busy,
                    occ.bubble,
                    occ.drain,
                    occ.utilization()
                ));
            }
        }
        out
    }

    /// Chrome-trace occupancy tracks: one track per systolic row, one
    /// colored slice per layer phase (busy, then bubble, then drain),
    /// plus a memory track. Time is in sampled row-cycles, concatenated
    /// across layers — load in `chrome://tracing` / Perfetto.
    #[must_use]
    pub fn to_chrome_json(&self) -> String {
        let rows = self.layers.iter().map(|l| l.rows.len()).max().unwrap_or(0);
        let mut tb = TraceBuilder::new();
        for r in 0..rows {
            tb.thread_name(0, r as u64, &format!("systolic row {r}"));
        }
        tb.thread_name(0, rows as u64, "memory");
        let mut cursor = vec![0u64; rows + 1];
        for l in &self.layers {
            for (r, occ) in l.rows.iter().enumerate() {
                let mut ts = cursor[r];
                for (phase, dur, color) in [
                    ("busy", occ.busy, "thread_state_running"),
                    ("bubble", occ.bubble, "thread_state_iowait"),
                    ("drain", occ.drain, "thread_state_sleeping"),
                ] {
                    if dur > 0 {
                        tb.complete_with(
                            &format!("{}:{phase}", l.name),
                            ts,
                            dur,
                            0,
                            r as u64,
                            Some(color),
                            &[],
                        );
                        ts += dur;
                    }
                }
            }
            // Align all row cursors on the layer boundary.
            let span = l.rows.iter().map(RowOccupancy::total).max().unwrap_or(0);
            for c in cursor.iter_mut().take(rows) {
                *c += span;
            }
            if l.mem_cycles > 0 {
                tb.complete_with(
                    &format!("{}:memory", l.name),
                    cursor[rows],
                    l.mem_cycles,
                    0,
                    rows as u64,
                    Some("thread_state_iowait"),
                    &[],
                );
            }
            cursor[rows] += l.mem_cycles.max(span);
        }
        tb.build()
    }

    /// The human bottleneck report: aggregate stall ranking (what to fix
    /// first), then the heaviest layers with their dominant stall and
    /// worst tiles.
    #[must_use]
    pub fn bottleneck_report(&self, top_layers: usize) -> String {
        let total = self.total_attributed_cycles();
        let mut out = format!("profile: {} on {}\n", self.arch, self.workload);
        out.push_str(&format!("  total cycles: {total}\n"));
        if total == 0 {
            return out;
        }
        let s = self.stalls();
        let mut ranked = [
            (
                "compute (useful work; optimize the kernel itself)",
                s.compute,
            ),
            (
                "memory stalls (exposed DRAM; improve residency/bandwidth)",
                s.memory,
            ),
            (
                "pipeline bubbles (macro-step mismatch; better scheduling/SUDS)",
                s.pipeline_bubble,
            ),
            (
                "tail drain (empty rows + fill; more tiles in flight)",
                s.tail_drain,
            ),
        ];
        ranked.sort_by_key(|r| std::cmp::Reverse(r.1));
        out.push_str("  where the cycles go (fix the top non-compute item first):\n");
        for (what, cycles) in ranked {
            out.push_str(&format!(
                "    {:>6.2}%  {:>14}  {what}\n",
                100.0 * cycles as f64 / total as f64,
                cycles,
            ));
        }
        let idle = self.idle_mac_cycles();
        let busy: u64 = self.layers.iter().map(|l| l.macs.busy).sum();
        if busy + idle > 0 {
            out.push_str(&format!(
                "  MAC utilization: {:.1}% ({busy} useful, {idle} idle)\n",
                100.0 * busy as f64 / (busy + idle) as f64
            ));
        }
        let mut heaviest: Vec<&LayerProfile> = self.layers.iter().collect();
        heaviest.sort_by_key(|l| std::cmp::Reverse(l.total_cycles()));
        out.push_str(&format!(
            "  heaviest layers (top {}):\n",
            top_layers.min(heaviest.len())
        ));
        for l in heaviest.iter().take(top_layers) {
            let lt = l.total_cycles();
            let (dom, dc) = [
                ("compute", l.stalls.compute),
                ("memory", l.stalls.memory),
                ("bubble", l.stalls.pipeline_bubble),
                ("drain", l.stalls.tail_drain),
            ]
            .into_iter()
            .max_by_key(|&(_, c)| c)
            .unwrap_or(("compute", 0));
            out.push_str(&format!(
                "    {:<24} {:>14} cycles ({:>5.2}% of total; dominant: {dom} {:.1}%)\n",
                l.name,
                lt,
                100.0 * lt as f64 / total as f64,
                if lt == 0 {
                    0.0
                } else {
                    100.0 * dc as f64 / lt as f64
                },
            ));
            for t in &l.worst_tiles {
                out.push_str(&format!(
                    "      worst tile #{}: {} cycles, {} nnz, {} displaced\n",
                    t.index, t.cycles, t.nnz, t.displaced
                ));
            }
        }
        out
    }
}

/// Builds the versioned BENCH snapshot JSON (key figures per arch:
/// cycles, utilization, speedup vs dense). `entries` pairs each arch
/// name with its report; the first entry whose name is `dense` anchors
/// the speedup column.
#[must_use]
pub fn bench_snapshot_json(
    benchmark: &str,
    pruning: &str,
    batch: usize,
    sampling: &str,
    entries: &[(&str, &SimReport)],
) -> String {
    let dense_cycles = entries
        .iter()
        .find(|(n, _)| *n == "dense")
        .map(|(_, r)| r.total_cycles());
    let mut out = String::from("{\"schema\":\"eureka-bench-v1\"");
    out.push_str(&format!(",\"benchmark\":\"{}\"", escape(benchmark)));
    out.push_str(&format!(",\"pruning\":\"{}\"", escape(pruning)));
    out.push_str(&format!(",\"batch\":{batch}"));
    out.push_str(&format!(",\"sampling\":\"{}\"", escape(sampling)));
    out.push_str(",\"archs\":[");
    for (i, (name, r)) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{{\"name\":\"{}\"", escape(name)));
        out.push_str(&format!(",\"total_cycles\":{}", r.total_cycles()));
        out.push_str(&format!(",\"compute_cycles\":{}", r.compute_cycles()));
        out.push_str(&format!(",\"mem_cycles\":{}", r.mem_cycles()));
        out.push_str(&format!(",\"bubble_cycles\":{}", r.bubble_cycles()));
        out.push_str(&format!(
            ",\"mac_utilization\":{}",
            fmt_f64(r.mac_utilization())
        ));
        match dense_cycles {
            Some(d) if r.total_cycles() > 0 => out.push_str(&format!(
                ",\"speedup_vs_dense\":{}",
                fmt_f64(d as f64 / r.total_cycles() as f64)
            )),
            _ => out.push_str(",\"speedup_vs_dense\":null"),
        }
        out.push('}');
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::OpCounts;

    fn report() -> LayerReport {
        LayerReport {
            name: "conv1".into(),
            compute_cycles: 100,
            mem_cycles: 20,
            mac_ops: 500,
            idle_mac_cycles: 140,
            bubble_cycles: 10,
            weight_bytes: 1,
            act_bytes: 2,
            out_bytes: 3,
            metadata_bytes: 4,
            ops: OpCounts::default(),
        }
    }

    #[test]
    fn trivial_profile_attributes_everything() {
        let r = report();
        let p = LayerProfile::from_report(&r);
        assert_eq!(p.total_cycles(), r.total_cycles());
        assert_eq!(p.macs.idle(), r.idle_mac_cycles);
        assert_eq!(p.stalls.compute, 90);
        assert_eq!(p.stalls.memory, 20);
        assert_eq!(p.stalls.pipeline_bubble, 10, "bubble_cycles carried over");
        assert_eq!(p.stalls.tail_drain, 0);
    }

    #[test]
    fn json_is_stable_and_wellformed() {
        let mut p = SimProfile {
            arch: "Eureka \"P4\"".into(),
            workload: "t".into(),
            layers: vec![LayerProfile::from_report(&report())],
        };
        p.layers[0].rows = vec![RowOccupancy {
            busy: 3,
            bubble: 1,
            drain: 0,
        }];
        p.layers[0].critical_path = vec![(2, 10), (4, 1)];
        p.layers[0].suds = Some(SudsStats {
            tiles: 11,
            displaced: 4,
            rotation: vec![5, 6],
        });
        p.layers[0].worst_tiles = vec![TileStat {
            index: 7,
            cycles: 4,
            nnz: 9,
            displaced: 1,
        }];
        let a = p.to_json();
        let b = p.to_json();
        assert_eq!(a, b);
        assert!(a.starts_with("{\"schema\":\"eureka-profile-v1\""));
        assert!(a.contains("\\\"P4\\\""), "names are escaped: {a}");
        assert!(a.contains("\"critical_path\":[[2,10],[4,1]]"));
        assert!(a.contains("\"rotation\":[5,6]"));
        // Balanced braces/brackets (cheap well-formedness check).
        let depth = a.chars().fold(0i64, |d, c| match c {
            '{' | '[' => d + 1,
            '}' | ']' => d - 1,
            _ => d,
        });
        assert_eq!(depth, 0);
    }

    #[test]
    fn heatmap_lists_layer_rows() {
        let mut p = SimProfile {
            arch: "a".into(),
            workload: "w".into(),
            layers: vec![LayerProfile::from_report(&report())],
        };
        p.layers[0].rows = vec![
            RowOccupancy {
                busy: 3,
                bubble: 1,
                drain: 0,
            },
            RowOccupancy {
                busy: 0,
                bubble: 0,
                drain: 4,
            },
        ];
        let csv = p.heatmap_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "layer,row,busy,bubble,drain,utilization");
        assert_eq!(lines[1], "conv1,0,3,1,0,0.7500");
        assert_eq!(lines[2], "conv1,1,0,0,4,0.0000");
    }

    #[test]
    fn chrome_trace_has_row_tracks() {
        let mut p = SimProfile {
            arch: "a".into(),
            workload: "w".into(),
            layers: vec![LayerProfile::from_report(&report())],
        };
        p.layers[0].rows = vec![RowOccupancy {
            busy: 3,
            bubble: 1,
            drain: 2,
        }];
        let json = p.to_chrome_json();
        assert!(json.contains("systolic row 0"));
        assert!(json.contains("conv1:busy"));
        assert!(json.contains("conv1:memory"));
        assert!(json.starts_with('[') && json.ends_with(']'));
    }

    #[test]
    fn bottleneck_report_ranks_stalls() {
        let mut p = SimProfile {
            arch: "a".into(),
            workload: "w".into(),
            layers: vec![LayerProfile::from_report(&report())],
        };
        p.layers[0].stalls = StallBreakdown {
            compute: 10,
            memory: 20,
            pipeline_bubble: 60,
            tail_drain: 30,
        };
        let text = p.bottleneck_report(3);
        let bubble_pos = text.find("pipeline bubbles").unwrap();
        let compute_pos = text.find("compute (useful work").unwrap();
        assert!(bubble_pos < compute_pos, "largest bucket first:\n{text}");
        assert!(text.contains("total cycles: 120"));
    }

    #[test]
    fn bench_snapshot_is_versioned_and_anchored_on_dense() {
        let mk = |cycles: u64| SimReport {
            arch: "x".into(),
            workload: "w".into(),
            layers: vec![LayerReport {
                name: "l".into(),
                compute_cycles: cycles,
                mac_ops: 10,
                idle_mac_cycles: 10,
                ..LayerReport::default()
            }],
        };
        let dense = mk(100);
        let fast = mk(25);
        let json = bench_snapshot_json(
            "mobilenetv1",
            "mod",
            32,
            "paper",
            &[("dense", &dense), ("eureka-p4", &fast)],
        );
        assert!(json.starts_with("{\"schema\":\"eureka-bench-v1\""));
        assert!(json.contains("\"speedup_vs_dense\":4"));
        assert!(json.contains("\"mac_utilization\":0.5"));
        assert_eq!(json, json.clone());
    }
}
