//! Set-associative cache + DDR5 substrate.
//!
//! The paper's simulator models "cache and memory (DDR5)" behind the
//! tensor cores (§4). The main timing path in this reproduction uses the
//! analytic model in [`crate::memory`] (an L2 residency fraction plus a
//! bandwidth pipe); this module provides the detailed substrate that
//! *justifies* those constants: a true LRU set-associative cache and a
//! DDR bandwidth/latency model, driven by the output-stationary access
//! stream of a layer. `estimate_l2_residency` measures the activation hit
//! rate the analytic model assumes.

use crate::config::SimConfig;
use eureka_models::workload::LayerGemm;

/// Cache geometry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
    /// Associativity.
    pub ways: usize,
}

impl CacheConfig {
    /// An Ampere-class 40 MB shared L2.
    #[must_use]
    pub fn ampere_l2() -> Self {
        CacheConfig {
            size_bytes: 40 << 20,
            line_bytes: 128,
            ways: 16,
        }
    }

    /// Number of sets.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero fields, capacity not a
    /// multiple of `line_bytes × ways`).
    #[must_use]
    pub fn sets(&self) -> usize {
        assert!(
            self.line_bytes > 0 && self.ways > 0 && self.size_bytes > 0,
            "degenerate cache geometry {self:?}"
        );
        let sets = self.size_bytes / (self.line_bytes * self.ways);
        assert!(sets > 0, "cache smaller than one set: {self:?}");
        sets
    }
}

/// An LRU set-associative cache.
#[derive(Clone, Debug)]
pub struct Cache {
    cfg: CacheConfig,
    /// Per set: (tag, last-use stamp) per way.
    sets: Vec<Vec<(u64, u64)>>,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Creates an empty cache.
    #[must_use]
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = cfg.sets();
        Cache {
            cfg,
            sets: vec![Vec::new(); sets],
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Accesses one byte address; returns `true` on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        self.clock += 1;
        let line = addr / self.cfg.line_bytes as u64;
        let set = (line % self.sets.len() as u64) as usize;
        let tag = line / self.sets.len() as u64;
        let ways = &mut self.sets[set];
        if let Some(entry) = ways.iter_mut().find(|(t, _)| *t == tag) {
            entry.1 = self.clock;
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        if ways.len() < self.cfg.ways {
            ways.push((tag, self.clock));
        } else if let Some(victim) = ways.iter_mut().min_by_key(|(_, stamp)| *stamp) {
            // A zero-way cache degenerates gracefully: every access
            // misses and nothing is retained.
            *victim = (tag, self.clock);
        }
        false
    }

    /// Accesses every line of the byte range `[base, base + len)`;
    /// returns `(lines_touched, lines_missed)`.
    pub fn access_range(&mut self, base: u64, len: u64) -> (u64, u64) {
        if len == 0 {
            return (0, 0);
        }
        let lb = self.cfg.line_bytes as u64;
        let first = base / lb;
        let last = (base + len - 1) / lb;
        let touched = last - first + 1;
        let missed = (first..=last)
            .filter(|&line| !self.access(line * lb))
            .count() as u64;
        (touched, missed)
    }

    /// Hits so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate over all accesses (0 when untouched).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }
}

/// Result of replaying a layer's access stream.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ReplayReport {
    /// Activation-stream hit rate (the analytic model's residency).
    pub act_hit_rate: f64,
    /// Weight-stream hit rate (re-streams hitting after the compulsory
    /// pass).
    pub weight_hit_rate: f64,
    /// DRAM lines fetched.
    pub dram_lines: u64,
    /// DRAM cycles at the configured bandwidth.
    pub dram_cycles: u64,
}

/// Replays (a bounded sample of) a layer's output-stationary access
/// stream: for each pass over a row-group, the weight slices stream in
/// and the activation blocks for the pass's column group are read.
///
/// `max_passes` bounds the replay cost; passes sample the full pass space
/// evenly.
#[must_use]
pub fn replay_layer(
    gemm: &LayerGemm,
    cfg: &SimConfig,
    cache_cfg: CacheConfig,
    max_passes: usize,
) -> ReplayReport {
    let p = cfg.core.sub_array_dim;
    let q = p * 4;
    let (n, k, m) = (gemm.shape.n, gemm.shape.k, gemm.shape.m);
    let rowgroups = n.div_ceil(p);
    let slices = k.div_ceil(q);
    let colgroups = m.div_ceil(p * cfg.core.grid_cols);

    // Address map: weights at 0, activations at 1 TiB (disjoint tags).
    const ACT_BASE: u64 = 1 << 40;
    // Compressed weight-slice bytes (payload + metadata at ~19 bits/value).
    let wslice_bytes = ((p * q) as f64 * gemm.weight_density * 2.4).ceil() as u64;
    // Activation block for one (slice, colgroup): unique input rows only
    // (implicit GEMM re-reads hit the register file, not the L2).
    let act_block_bytes =
        (gemm.unique_act_bytes / (slices as u64 * colgroups as u64).max(1)).max(2);

    let mut cache = Cache::new(cache_cfg);
    let (mut act_hits, mut act_total) = (0u64, 0u64);
    let (mut w_hits, mut w_total) = (0u64, 0u64);
    let mut dram_lines = 0u64;

    // Replay a contiguous prefix of the pass space: sampling strided
    // passes would destroy exactly the temporal locality being measured.
    let total_passes = rowgroups * colgroups;
    for pass in 0..total_passes.min(max_passes.max(1)) {
        let rg = pass % rowgroups;
        let cg = pass / rowgroups;
        for si in 0..slices {
            let w_addr = (rg * slices + si) as u64 * wslice_bytes;
            let (lines, miss) = cache.access_range(w_addr, wslice_bytes);
            w_total += lines;
            w_hits += lines - miss;
            dram_lines += miss;

            let a_addr = ACT_BASE + (cg * slices + si) as u64 * act_block_bytes;
            let (lines, miss) = cache.access_range(a_addr, act_block_bytes);
            act_total += lines;
            act_hits += lines - miss;
            dram_lines += miss;
        }
    }

    let dram_bytes = dram_lines * cache_cfg.line_bytes as u64;
    ReplayReport {
        act_hit_rate: if act_total == 0 {
            0.0
        } else {
            act_hits as f64 / act_total as f64
        },
        weight_hit_rate: if w_total == 0 {
            0.0
        } else {
            w_hits as f64 / w_total as f64
        },
        dram_lines,
        dram_cycles: (dram_bytes as f64 / cfg.mem.bytes_per_cycle).ceil() as u64,
    }
}

/// Measures the *inter-layer* activation residency the analytic memory
/// model assumes (`MemoryConfig::l2_act_residency`): the fraction of a
/// producer layer's output tensor still resident in the L2 when the
/// consumer layer reads it, after the consumer's weights have streamed
/// through the cache in between.
#[must_use]
pub fn interlayer_residency(
    tensor_bytes: u64,
    intervening_weight_bytes: u64,
    cache_cfg: CacheConfig,
) -> f64 {
    const OUT_BASE: u64 = 2 << 40;
    let mut cache = Cache::new(cache_cfg);
    // Producer writes its output tensor.
    cache.access_range(OUT_BASE, tensor_bytes);
    // Consumer streams its weights (evicting part of the tensor).
    cache.access_range(0, intervening_weight_bytes);
    // Consumer reads the tensor back: hits = resident fraction.
    let (lines, missed) = cache.access_range(OUT_BASE, tensor_bytes);
    if lines == 0 {
        return 0.0;
    }
    (lines - missed) as f64 / lines as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use eureka_models::GemmShape;

    fn tiny_cache() -> CacheConfig {
        CacheConfig {
            size_bytes: 4096,
            line_bytes: 64,
            ways: 4,
        }
    }

    #[test]
    fn geometry() {
        assert_eq!(tiny_cache().sets(), 16);
        assert_eq!(CacheConfig::ampere_l2().sets(), 20480);
    }

    #[test]
    fn hit_and_miss_behaviour() {
        let mut c = Cache::new(tiny_cache());
        assert!(!c.access(0)); // compulsory miss
        assert!(c.access(8)); // same line
        assert!(c.access(0));
        assert_eq!(c.misses(), 1);
        assert_eq!(c.hits(), 2);
    }

    #[test]
    fn lru_eviction() {
        let cfg = CacheConfig {
            size_bytes: 256,
            line_bytes: 64,
            ways: 2,
        }; // 2 sets x 2 ways
        let mut c = Cache::new(cfg);
        // Three lines mapping to set 0: lines 0, 2, 4 (line % 2 == 0).
        assert!(!c.access(0));
        assert!(!c.access(2 * 64));
        assert!(!c.access(4 * 64)); // evicts line 0 (LRU)
        assert!(!c.access(0)); // line 0 gone
        assert!(c.access(4 * 64)); // still resident
    }

    #[test]
    fn access_range_counts_lines() {
        let mut c = Cache::new(tiny_cache());
        assert_eq!(c.access_range(0, 200), (4, 4)); // lines 0..=3 cold
        assert_eq!(c.access_range(0, 200), (4, 0)); // all hot
        assert_eq!(c.access_range(0, 0), (0, 0));
        // An unaligned range spans an extra line.
        assert_eq!(c.access_range(60, 8), (2, 0)); // lines 0 and 1, both hot
    }

    #[test]
    fn small_working_set_is_resident() {
        // A layer whose activations fit the L2 easily: high residency.
        let gemm = LayerGemm {
            name: "small".into(),
            shape: GemmShape {
                n: 256,
                k: 512,
                m: 4096,
            },
            unique_act_bytes: 4 << 20, // 4 MB
            weight_density: 0.13,
            clustered: false,
            depthwise: false,
        };
        let cfg = SimConfig::fast();
        let r = replay_layer(&gemm, &cfg, CacheConfig::ampere_l2(), 256);
        assert!(r.act_hit_rate > 0.8, "act hit rate {}", r.act_hit_rate);
        // Weights re-stream once per pass: high reuse too.
        assert!(
            r.weight_hit_rate > 0.8,
            "weight hit rate {}",
            r.weight_hit_rate
        );
    }

    #[test]
    fn oversized_working_set_thrashes() {
        // 5 MB of compressed weights re-streamed four times.
        let gemm = LayerGemm {
            name: "huge".into(),
            shape: GemmShape {
                n: 256,
                k: 16384,
                m: 16384,
            },
            unique_act_bytes: 64 << 20,
            weight_density: 0.5,
            clustered: false,
            depthwise: false,
        };
        let cfg = SimConfig::fast();
        let small = CacheConfig {
            size_bytes: 1 << 20,
            line_bytes: 128,
            ways: 16,
        };
        let thrashed = replay_layer(&gemm, &cfg, small, 256);
        let roomy = replay_layer(&gemm, &cfg, CacheConfig::ampere_l2(), 256);
        // Re-streaming the weights through a too-small cache loses the
        // temporal hits the 40 MB L2 keeps (spatial line sharing between
        // adjacent compressed slices remains in both).
        assert!(
            thrashed.weight_hit_rate < roomy.weight_hit_rate - 0.2,
            "thrashed {} vs roomy {}",
            thrashed.weight_hit_rate,
            roomy.weight_hit_rate
        );
        assert!(thrashed.dram_lines > roomy.dram_lines);
        assert!(thrashed.dram_cycles > 0);
    }

    #[test]
    fn intralayer_activation_reuse_is_high() {
        // Within a layer, each activation block is re-read once per
        // row-group pass — the reuse the output-stationary dataflow (and
        // the paper's §3.4 "tensor cores achieve similar on-chip reuse as
        // the TPU") relies on.
        let gemm = LayerGemm {
            name: "conv4".into(),
            shape: GemmShape {
                n: 256,
                k: 2304,
                m: 6272,
            },
            unique_act_bytes: 2 * 256 * 14 * 14 * 32,
            weight_density: 0.13,
            clustered: false,
            depthwise: false,
        };
        let cfg = SimConfig::fast();
        let r = replay_layer(&gemm, &cfg, CacheConfig::ampere_l2(), 512);
        assert!(r.act_hit_rate > 0.9, "act hit rate {}", r.act_hit_rate);
    }

    #[test]
    fn analytic_residency_matches_interlayer_band() {
        // The analytic default (0.7) is an inter-layer producer-consumer
        // residency: ResNet50/MobileNet tensors at batch 32 span roughly
        // 6..80 MB against the 40 MB L2; the measured band must bracket
        // the default.
        let l2 = CacheConfig::ampere_l2();
        let weights = 8 << 20; // a consumer layer's compressed weights
        let sizes: [u64; 4] = [6 << 20, 25 << 20, 50 << 20, 80 << 20];
        let rates: Vec<f64> = sizes
            .iter()
            .map(|&s| interlayer_residency(s, weights, l2))
            .collect();
        // Small tensors stay fully resident; oversized ones mostly do not.
        assert!(rates[0] > 0.95, "6MB residency {}", rates[0]);
        assert!(rates[3] < 0.5, "80MB residency {}", rates[3]);
        let mean = rates.iter().sum::<f64>() / rates.len() as f64;
        assert!(
            (0.4..0.95).contains(&mean),
            "mean residency {mean} should bracket the analytic 0.7"
        );
    }
}
