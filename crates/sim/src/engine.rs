//! Workload-level simulation entry points.
//!
//! These are thin wrappers over the [`crate::runner`] drive path — one
//! job, default runner — kept for API continuity and for callers that
//! simulate a single `(architecture, workload)` pair.

use crate::arch::{Architecture, SimError};
use crate::config::SimConfig;
use crate::outcome::JobOutcome;
use crate::profile::{ProfileConfig, SimProfile};
use crate::report::SimReport;
use crate::runner::{Runner, SimJob};
use eureka_models::Workload;

/// Simulates every layer of a workload under an architecture.
///
/// Equivalent to submitting one [`SimJob`] to the default [`Runner`];
/// sweeps over many pairs should batch jobs through
/// [`Runner::run_all`] instead of calling this in a loop.
///
/// # Errors
///
/// Returns [`SimError::Unsupported`] if the architecture cannot run the
/// workload (S2TA on InceptionV3).
pub fn try_simulate(
    arch: &dyn Architecture,
    workload: &Workload,
    cfg: &SimConfig,
) -> Result<SimReport, SimError> {
    let _span = eureka_obs::span!(
        "engine.simulate",
        "{} on {}",
        arch.name(),
        workload.benchmark().name()
    );
    Runner::default().run(&SimJob::new(arch, workload, *cfg))
}

/// Like [`try_simulate`] but surfaces the full [`JobOutcome`] taxonomy:
/// layers untouched by a failure survive as a partial report instead of
/// being discarded with the whole job. Uses the default runner, so the
/// process-wide retry/checkpoint settings apply.
#[must_use]
pub fn simulate_outcome(
    arch: &dyn Architecture,
    workload: &Workload,
    cfg: &SimConfig,
) -> JobOutcome {
    let _span = eureka_obs::span!(
        "engine.simulate",
        "{} on {}",
        arch.name(),
        workload.benchmark().name()
    );
    Runner::default().run_outcome(&SimJob::new(arch, workload, *cfg))
}

/// Like [`try_simulate`] but with cycle-attribution profiling: returns
/// the report (bit-identical to an unprofiled run) together with its
/// [`SimProfile`]. Uses the default runner, so `--jobs` applies; the
/// profile is assembled in layer-index order and serializes to identical
/// bytes regardless of worker count.
///
/// # Errors
///
/// Returns [`SimError::Unsupported`] if the architecture cannot run the
/// workload.
pub fn try_profile(
    arch: &dyn Architecture,
    workload: &Workload,
    cfg: &SimConfig,
    pcfg: &ProfileConfig,
) -> Result<(SimReport, SimProfile), SimError> {
    let _span = eureka_obs::span!(
        "engine.profile",
        "{} on {}",
        arch.name(),
        workload.benchmark().name()
    );
    Runner::default().run_profiled(&SimJob::new(arch, workload, *cfg), pcfg)
}

/// Like [`try_simulate`] but panics on unsupported combinations.
///
/// # Panics
///
/// Panics if the architecture cannot run the workload.
#[must_use]
pub fn simulate(arch: &dyn Architecture, workload: &Workload, cfg: &SimConfig) -> SimReport {
    try_simulate(arch, workload, cfg)
        .expect("caller contract: the architecture must support this workload (use try_simulate to handle refusals)")
}

/// Speedup of `other` relative to `baseline` on total cycles.
#[must_use]
pub fn speedup(baseline: &SimReport, other: &SimReport) -> f64 {
    baseline.total_cycles() as f64 / other.total_cycles() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch;
    use eureka_models::{Benchmark, PruningLevel, Workload};

    #[test]
    fn resnet_moderate_headline_ordering() {
        let cfg = SimConfig::fast();
        let w = Workload::new(Benchmark::ResNet50, PruningLevel::Moderate, 32);
        let dense = simulate(&arch::onesided::dense(), &w, &cfg);
        let ampere = simulate(&arch::onesided::ampere(), &w, &cfg);
        let eureka = simulate(&arch::onesided::eureka_p4(), &w, &cfg);
        let ideal = simulate(&arch::ideal::ideal(), &w, &cfg);

        let s_ampere = speedup(&dense, &ampere);
        let s_eureka = speedup(&dense, &eureka);
        let s_ideal = speedup(&dense, &ideal);
        assert!((1.7..2.1).contains(&s_ampere), "ampere {s_ampere}");
        assert!(s_eureka > s_ampere * 1.5, "eureka {s_eureka}");
        assert!(s_ideal >= s_eureka, "ideal {s_ideal} vs eureka {s_eureka}");
    }

    #[test]
    fn memory_share_is_compute_bound_range() {
        let cfg = SimConfig::fast();
        let w = Workload::new(Benchmark::ResNet50, PruningLevel::Dense, 32);
        let dense = simulate(&arch::onesided::dense(), &w, &cfg);
        let share = dense.mem_share();
        assert!(
            (0.02..0.20).contains(&share),
            "dense memory share {share} out of compute-bound range"
        );
    }

    #[test]
    fn s2ta_unsupported_on_inception() {
        let cfg = SimConfig::fast();
        let w = Workload::new(Benchmark::InceptionV3, PruningLevel::Moderate, 32);
        assert!(try_simulate(&arch::s2ta::s2ta(), &w, &cfg).is_err());
        let w = Workload::new(Benchmark::ResNet50, PruningLevel::Moderate, 32);
        assert!(try_simulate(&arch::s2ta::s2ta(), &w, &cfg).is_ok());
    }

    #[test]
    fn detailed_memory_mode_tracks_analytic() {
        // The measured-residency mode must land near the analytic
        // constant on a real workload (that is the constant's whole
        // justification).
        let mut cfg = SimConfig::fast();
        let w = Workload::new(Benchmark::ResNet50, PruningLevel::Moderate, 32);
        let analytic = simulate(&arch::dense(), &w, &cfg);
        cfg.detailed_memory = true;
        let detailed = simulate(&arch::dense(), &w, &cfg);
        assert_eq!(analytic.compute_cycles(), detailed.compute_cycles());
        let (a, d) = (analytic.mem_cycles() as f64, detailed.mem_cycles() as f64);
        assert!(
            (0.5..2.0).contains(&(d / a)),
            "detailed {d} vs analytic {a}"
        );
        // Still a compute-bound regime.
        assert!(
            detailed.mem_share() < 0.25,
            "share {}",
            detailed.mem_share()
        );
    }

    #[test]
    fn attention_aux_dampens_bert_equally() {
        let mut cfg = SimConfig::fast();
        let w = Workload::new(Benchmark::BertSquad, PruningLevel::Moderate, 32);
        let base = speedup(
            &simulate(&arch::dense(), &w, &cfg),
            &simulate(&arch::eureka_p4(), &w, &cfg),
        );
        cfg.include_attention_aux = true;
        let dense = simulate(&arch::dense(), &w, &cfg);
        assert!(dense.layers.iter().any(|l| l.name == "attention-aux"));
        let damped = speedup(&dense, &simulate(&arch::eureka_p4(), &w, &cfg));
        assert!(damped < base, "aux work must dampen: {damped} vs {base}");
        assert!(damped > base * 0.6, "but only modestly: {damped} vs {base}");
        // CNNs are unaffected.
        let rn = Workload::new(Benchmark::ResNet50, PruningLevel::Moderate, 32);
        let r = simulate(&arch::dense(), &rn, &cfg);
        assert!(r.layers.iter().all(|l| l.name != "attention-aux"));
    }

    #[test]
    fn determinism_across_runs() {
        let cfg = SimConfig::fast();
        let w = Workload::new(Benchmark::MobileNetV1, PruningLevel::Moderate, 32);
        let a = simulate(&arch::onesided::eureka_p4(), &w, &cfg);
        let b = simulate(&arch::onesided::eureka_p4(), &w, &cfg);
        assert_eq!(a, b);
    }
}
